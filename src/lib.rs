//! MAGUS reproduction suite: workspace façade.
//!
//! Re-exports the public API of every crate in the workspace so examples
//! and downstream users can depend on a single package. See the individual
//! crates for full documentation:
//!
//! * [`hetsim`] — the heterogeneous node simulator substrate.
//! * [`msr`] — MSR encodings and device abstraction.
//! * [`pcm`] — memory-throughput monitoring.
//! * [`powermon`] — RAPL/NVML-style power monitoring.
//! * [`workloads`] — the evaluated application suite as phase traces.
//! * [`runtime`] — the MAGUS uncore-scaling runtime itself.
//! * [`ups`] — the UPScavenger baseline.
//! * [`experiments`] — the evaluation harness (systems, trials, metrics).
//! * [`telemetry`] — metric registry + structured decision-event log.
//! * [`ctl`] — the fleet control plane: daemon, wire protocol, client.

pub mod cli;
pub mod shared;

pub use magus_ctl as ctl;
pub use magus_experiments as experiments;
pub use magus_hetsim as hetsim;
pub use magus_msr as msr;
pub use magus_pcm as pcm;
pub use magus_powermon as powermon;
pub use magus_runtime as runtime;
pub use magus_telemetry as telemetry;
pub use magus_ups as ups;
pub use magus_workloads as workloads;
