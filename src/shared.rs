//! Shared-simulation plumbing for multi-threaded deployments.
//!
//! A real MAGUS deployment is a background daemon: the application runs
//! untouched while the runtime samples counters and writes MSRs from its
//! own thread (§4, "user-transparent"). This module provides the pieces to
//! stage that deployment against the simulator: a [`SharedSim`] handle that
//! many threads can hold, plus [`SharedThroughputProbe`] and
//! [`SharedUncoreActuator`] implementing the monitoring/actuation traits
//! over it — the exact interfaces a real-hardware backend would implement
//! over PCM and `/dev/cpu/*/msr`.

use std::sync::Arc;

use magus_experiments::engine::TrialSpec;
use magus_hetsim::governor::UncoreSetter;
use magus_hetsim::{Node, Simulation};
use magus_pcm::{SampleError, ThroughputSource};
use magus_runtime::{ActuateError, MagusAction, UncoreActuator, UncoreLevel};
use parking_lot::Mutex;

/// A thread-shareable simulation.
#[derive(Clone)]
pub struct SharedSim {
    inner: Arc<Mutex<Simulation>>,
}

impl SharedSim {
    /// Wrap a simulation for shared access.
    #[must_use]
    pub fn new(sim: Simulation) -> Self {
        Self {
            inner: Arc::new(Mutex::new(sim)),
        }
    }

    /// Stage the simulation a [`TrialSpec`] describes — same node config,
    /// seed perturbation, and workload trace the engine would execute —
    /// but hand it to the caller unstarted, for deployment-style runs
    /// where the daemon samples and actuates from its own thread.
    #[must_use]
    pub fn for_spec(spec: &TrialSpec) -> Self {
        let mut sim = Simulation::new(Node::new(spec.node_config()));
        if let Some(trace) = spec.build_trace() {
            sim.load(trace);
        }
        Self::new(sim)
    }

    /// Run `f` with exclusive access to the simulation.
    pub fn with<R>(&self, f: impl FnOnce(&mut Simulation) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Current simulated time (µs).
    #[must_use]
    pub fn time_us(&self) -> u64 {
        self.inner.lock().node().time_us()
    }

    /// Whether the loaded application has completed.
    #[must_use]
    pub fn done(&self) -> bool {
        self.inner.lock().done()
    }

    /// Advance one simulation tick.
    pub fn step(&self) {
        self.inner.lock().step();
    }

    /// A throughput probe over this simulation.
    #[must_use]
    pub fn throughput_probe(&self) -> SharedThroughputProbe {
        SharedThroughputProbe { sim: self.clone() }
    }

    /// An uncore actuator over this simulation.
    #[must_use]
    pub fn uncore_actuator(&self) -> SharedUncoreActuator {
        let (min, max) = self.with(|sim| {
            let u = &sim.node().config().uncore;
            (u.freq_min_ghz, u.freq_max_ghz)
        });
        SharedUncoreActuator {
            sim: self.clone(),
            setter: UncoreSetter::new(),
            min_ghz: min,
            max_ghz: max,
        }
    }
}

/// [`ThroughputSource`] over a [`SharedSim`].
pub struct SharedThroughputProbe {
    sim: SharedSim,
}

impl ThroughputSource for SharedThroughputProbe {
    fn sample_mbs(&mut self) -> Result<f64, SampleError> {
        Ok(self
            .sim
            .with(|sim| magus_pcm::gbs_to_mbs(sim.node_mut().pcm_read_gbs())))
    }

    fn window_us(&self) -> u64 {
        self.sim.with(|sim| sim.node().config().pcm_window_us)
    }
}

/// [`UncoreActuator`] over a [`SharedSim`], deduplicating MSR writes.
pub struct SharedUncoreActuator {
    sim: SharedSim,
    setter: UncoreSetter,
    min_ghz: f64,
    max_ghz: f64,
}

impl UncoreActuator for SharedUncoreActuator {
    fn range_ghz(&self) -> (f64, f64) {
        (self.min_ghz, self.max_ghz)
    }

    fn apply(&mut self, action: MagusAction) -> Result<(), ActuateError> {
        let target = match action.target() {
            Some(UncoreLevel::Upper) => self.max_ghz,
            Some(UncoreLevel::Lower) => self.min_ghz,
            None => return Ok(()),
        };
        self.sim
            .with(|sim| self.setter.set_max(sim.node_mut(), target))
            .map_err(ActuateError::Msr)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_hetsim::{Node, NodeConfig};
    use magus_runtime::{MagusConfig, MagusDaemon};
    use magus_workloads::{app_trace, AppId, Platform};

    fn shared() -> SharedSim {
        let mut sim = Simulation::new(Node::new(NodeConfig::intel_a100()));
        sim.load(app_trace(AppId::Bfs, Platform::IntelA100));
        SharedSim::new(sim)
    }

    #[test]
    fn probe_and_actuator_work_through_shared_handle() {
        let shared = shared();
        for _ in 0..50 {
            shared.step();
        }
        let mut probe = shared.throughput_probe();
        assert!(probe.sample_mbs().unwrap() >= 0.0);
        assert_eq!(probe.window_us(), 100_000);

        let mut act = shared.uncore_actuator();
        assert_eq!(act.range_ghz(), (0.8, 2.2));
        act.apply(MagusAction::SetLower).unwrap();
        for _ in 0..100 {
            shared.step();
        }
        shared.with(|sim| {
            assert!((sim.node().sockets()[0].uncore.freq_ghz() - 0.8).abs() < 1e-9);
        });
    }

    #[test]
    fn daemon_runs_over_shared_sim() {
        let shared = shared();
        let mut daemon = MagusDaemon::attach(
            MagusConfig::default(),
            shared.throughput_probe(),
            shared.uncore_actuator(),
        )
        .unwrap();
        // Interleave app progress and daemon cycles.
        for _ in 0..40 {
            for _ in 0..30 {
                shared.step();
            }
            daemon.run_cycle().unwrap();
        }
        assert!(daemon.core().cycles() == 40);
        assert!(daemon.telemetry().raised + daemon.telemetry().lowered > 0);
    }

    #[test]
    fn for_spec_stages_the_engine_workload() {
        use magus_experiments::engine::{GovernorSpec, TrialSpec};
        use magus_experiments::harness::SystemId;
        let spec = TrialSpec::new(
            SystemId::IntelA100,
            AppId::Bfs,
            GovernorSpec::magus_default(),
        );
        let shared = SharedSim::for_spec(&spec);
        assert!(!shared.done());
        for _ in 0..50 {
            shared.step();
        }
        // The staged simulation matches the direct construction path.
        let direct = super::SharedSim::new({
            let mut sim = Simulation::new(Node::new(spec.node_config()));
            sim.load(spec.build_trace().expect("app workload"));
            sim
        });
        for _ in 0..50 {
            direct.step();
        }
        assert_eq!(shared.time_us(), direct.time_us());
    }

    #[test]
    fn shared_handles_are_cloneable_across_threads() {
        let shared = shared();
        let clone = shared.clone();
        let handle = std::thread::spawn(move || {
            for _ in 0..100 {
                clone.step();
            }
            clone.time_us()
        });
        let t = handle.join().unwrap();
        assert_eq!(t, 1_000_000);
        assert_eq!(shared.time_us(), 1_000_000);
    }
}
