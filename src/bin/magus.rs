//! `magus` — the reproduction suite's command-line front end.
//!
//! ```sh
//! cargo run --release --bin magus -- run --app srad --runtime magus
//! cargo run --release --bin magus -- compare --app UNet
//! cargo run --release --bin magus -- suite --system intel-max1550
//! ```
//!
//! Every experiment command goes through the trial engine: results are
//! cached under `results/cache/` by spec hash, trials are scheduled in
//! parallel, and each run writes a manifest next to the cache.
//! `--no-cache` / `--serial` (or `MAGUS_CACHE=off` / `MAGUS_SERIAL=1`)
//! opt out. The fleet control plane lives behind `serve` (the daemon),
//! `ctl` (the client), and `fleet` (the batch equivalent CI diffs
//! daemon sessions against).

use std::error::Error;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::{fs, io};

use magus_suite::cli::{parse, usage, Command, CtlAction, EngineOpts, Invocation};
use magus_suite::ctl::{
    fleet_prometheus, peak_rss_kb, serve_fleet, CtlClient, ServeConfig, SubEvent,
};
use magus_suite::experiments::engine::{Engine, GovernorSpec, TrialSpec};
use magus_suite::experiments::figures::{evaluate_app, fig4, fig7_sensitivity};
use magus_suite::experiments::fleet::{default_fleet_dedup, fleet_app, FleetRun, FleetSpec};
use magus_suite::experiments::harness::{default_sim_path, SystemId};
use magus_suite::experiments::pareto::{distance_to_frontier, pareto_frontier};
use magus_suite::experiments::report::render_fig4_table;
use magus_suite::hetsim::fleet::FleetSummary;
use magus_suite::workloads::AppId;

/// Build the trial engine for one invocation from the shared
/// [`EngineOpts`] (defaults — `--sim-path`, `--faults` — are installed
/// once in `main` before any command runs).
fn build_engine(opts: &EngineOpts) -> Engine {
    opts.build_engine()
}

/// Finish a named run: manifest summary, plus the `--telemetry` export
/// (JSONL event stream + Prometheus snapshot) when requested.
fn finish(engine: &Engine, label: &str, opts: &EngineOpts) -> ExitCode {
    engine.finish(label);
    if let Some(path) = &opts.telemetry {
        match engine.write_telemetry(path) {
            Ok(()) => eprintln!(
                "[engine] telemetry written to {} (+ {})",
                path.display(),
                path.with_extension("prom").display()
            ),
            Err(e) => {
                eprintln!("[engine] telemetry write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Invocation {
        command,
        engine: opts,
    } = match parse(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = opts.install_defaults() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    match command {
        Command::Help => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Command::List => {
            list();
            ExitCode::SUCCESS
        }
        Command::Run {
            system,
            app,
            governor,
            json,
        } => {
            let engine = build_engine(&opts);
            run(&engine, system, app, governor, json);
            finish(&engine, "run", &opts)
        }
        Command::Compare { system, app } => {
            let engine = build_engine(&opts);
            compare(&engine, system, app);
            finish(&engine, "compare", &opts)
        }
        Command::Suite { system } => {
            let engine = build_engine(&opts);
            let rows = fig4(&engine, system);
            print!("{}", render_fig4_table(system.name(), &rows));
            finish(&engine, "suite", &opts)
        }
        Command::Overhead { system, duration_s } => {
            let engine = build_engine(&opts);
            overhead(&engine, system, duration_s);
            finish(&engine, "overhead", &opts)
        }
        Command::Sweep { app } => {
            let engine = build_engine(&opts);
            sweep(&engine, app);
            finish(&engine, "sweep", &opts)
        }
        Command::Powercap => {
            let engine = build_engine(&opts);
            powercap(&engine);
            finish(&engine, "powercap", &opts)
        }
        Command::Variance { app, replicates } => {
            let engine = build_engine(&opts);
            variance(&engine, app, replicates);
            finish(&engine, "variance", &opts)
        }
        Command::Amd => {
            let engine = build_engine(&opts);
            amd(&engine);
            finish(&engine, "amd", &opts)
        }
        Command::Serve {
            addr,
            http,
            governor,
            budget_s,
            shards,
        } => serve(addr, http, governor, budget_s, shards),
        Command::Ctl { addr, action } => match run_ctl(&addr, action) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Command::Fleet {
            nodes,
            system,
            governor,
            budget_s,
            shards,
            summary,
            traffic,
        } => match fleet(
            nodes,
            system,
            governor,
            budget_s,
            shards,
            summary.as_deref(),
            traffic.as_deref(),
            &opts,
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

/// Boot the control-plane daemon and block until shutdown. The bound
/// addresses go to stdout as `CTL_ADDR=`/`HTTP_ADDR=` lines (stdout is
/// line-buffered, so a harness reading a pipe sees them immediately).
fn serve(
    addr: String,
    http: Option<String>,
    governor: GovernorSpec,
    budget_s: f64,
    shards: usize,
) -> ExitCode {
    let cfg = ServeConfig {
        ctl_addr: addr,
        http_addr: http,
        governor,
        budget_s,
        shards,
        path: default_sim_path(),
        dedup: default_fleet_dedup(),
        ..ServeConfig::default()
    };
    let server = match serve_fleet(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.ctl_addr() {
        Ok(addr) => println!("CTL_ADDR={addr}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(addr) = server.http_addr() {
        println!("HTTP_ADDR={addr}");
    }
    let result = server.run();
    if let Some(kb) = peak_rss_kb() {
        eprintln!("[serve] peak RSS {kb} kB");
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The fleet summary's file rendering, shared by every path that writes
/// one (`ctl drive --summary`, `ctl snapshot`, `fleet --summary`) so the
/// CI system test can byte-compare daemon and batch output.
fn summary_json(summary: &FleetSummary) -> Result<String, serde_json::Error> {
    Ok(format!("{}\n", serde_json::to_string_pretty(summary)?))
}

/// Write `contents` to `path`, creating parent directories as needed.
fn write_file(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, contents)
}

/// Execute one `magus ctl` verb against a running daemon.
fn run_ctl(addr: &str, action: CtlAction) -> Result<(), Box<dyn Error>> {
    match action {
        CtlAction::Join {
            system,
            count,
            start_offset_us,
        } => {
            let nodes = CtlClient::connect(addr)?.join(system, count, start_offset_us)?;
            match (nodes.first(), nodes.last()) {
                (Some(first), Some(last)) if nodes.len() > 1 => {
                    println!("joined nodes {first}..={last}");
                }
                (Some(first), _) => println!("joined node {first}"),
                _ => println!("joined 0 nodes"),
            }
        }
        CtlAction::Submit { node, app, traffic } => match (app, traffic) {
            (Some(app), None) => {
                CtlClient::connect(addr)?.submit(node, app)?;
                println!("submitted {app} on node {node}");
            }
            (None, Some(path)) => {
                let spec = magus_suite::workloads::io::load_traffic_spec(&path)?;
                CtlClient::connect(addr)?.submit_traffic(node, spec)?;
                println!(
                    "submitted traffic slot (seed {}, {} tenant(s)) on node {node}",
                    spec.seed, spec.tenants
                );
            }
            // The parser enforces exactly-one-of; this arm is unreachable
            // from the command line.
            _ => return Err("submit requires exactly one of --app / --traffic".into()),
        },
        CtlAction::Leave { node } => {
            CtlClient::connect(addr)?.leave(node)?;
            println!("node {node} left");
        }
        CtlAction::Advance => {
            let (epoch, summary) = CtlClient::connect(addr)?.advance()?;
            println!(
                "epoch {epoch}: {} node(s), {} completed, {:.0} J, makespan {:.2} s",
                summary.nodes.len(),
                summary.completed,
                summary.total_j,
                summary.makespan_s
            );
        }
        CtlAction::Snapshot => {
            let snap = CtlClient::connect(addr)?.snapshot()?;
            eprintln!("[ctl] epoch {}", snap.epoch);
            match &snap.summary {
                Some(summary) => print!("{}", summary_json(summary)?),
                None => println!("null"),
            }
        }
        CtlAction::Metrics => {
            print!("{}", CtlClient::connect(addr)?.snapshot()?.prometheus);
        }
        CtlAction::Watch => {
            let mut sub = CtlClient::connect(addr)?.subscribe()?;
            eprintln!("[ctl] subscribed at epoch {}", sub.since_epoch);
            while let Some(event) = sub.next_event()? {
                match event {
                    SubEvent::Telemetry { epoch, jsonl } => {
                        eprintln!("[ctl] epoch {epoch}");
                        print!("{jsonl}");
                    }
                    SubEvent::ShuttingDown => {
                        eprintln!("[ctl] daemon shutting down");
                        break;
                    }
                }
            }
        }
        CtlAction::Shutdown => {
            CtlClient::connect(addr)?.shutdown()?;
            eprintln!("[ctl] daemon shutting down");
        }
        CtlAction::Drive {
            nodes,
            system,
            telemetry,
            summary,
            metrics,
            shutdown,
        } => drive(
            addr, nodes, system, &telemetry, &summary, &metrics, shutdown,
        )?,
    }
    Ok(())
}

/// One whole daemon session: join, submit round-robin catalog apps,
/// advance one epoch, snapshot — writing the streamed telemetry, the
/// summary JSON, and the Prometheus text to files. Byte-for-byte the
/// output of `magus fleet` with the same size/system/governor.
fn drive(
    addr: &str,
    nodes: u32,
    system: SystemId,
    telemetry: &Option<PathBuf>,
    summary_path: &Option<PathBuf>,
    metrics: &Option<PathBuf>,
    shutdown: bool,
) -> Result<(), Box<dyn Error>> {
    let mut client = CtlClient::connect(addr)?;
    let ids = client.join(system, nodes, 0)?;
    for (i, id) in ids.iter().enumerate() {
        client.submit(*id, fleet_app(i))?;
    }
    // Subscribe on a second connection *before* advancing so the epoch's
    // telemetry broadcast cannot race past us.
    let mut sub = CtlClient::connect(addr)?.subscribe()?;
    let (epoch, summary) = client.advance()?;
    let jsonl = loop {
        match sub.next_event()? {
            Some(SubEvent::Telemetry { epoch: e, jsonl }) if e == epoch => break jsonl,
            Some(_) => {}
            None => return Err("subscription closed before the epoch's telemetry frame".into()),
        }
    };
    let snap = client.snapshot()?;
    if let Some(path) = telemetry {
        write_file(path, &jsonl)?;
    }
    if let Some(path) = summary_path {
        write_file(path, &summary_json(&summary)?)?;
    }
    if let Some(path) = metrics {
        write_file(path, &snap.prometheus)?;
    }
    eprintln!(
        "[ctl] drove {} node(s) through epoch {epoch}: {} completed, {:.0} J",
        ids.len(),
        summary.completed,
        summary.total_j
    );
    if shutdown {
        client.shutdown()?;
        // Drain the subscription: the daemon queues a final shutting-down
        // frame and closes only after subscribers have read everything.
        while sub.next_event()?.is_some() {}
    }
    Ok(())
}

/// The batch fleet run with the telemetry JSONL rendering (empty without
/// the `telemetry` feature, matching what the daemon streams there).
#[cfg(feature = "telemetry")]
fn fleet_run_and_jsonl(spec: &FleetSpec) -> (FleetRun, String) {
    magus_suite::experiments::fleet::run_fleet_with_telemetry(spec)
}

#[cfg(not(feature = "telemetry"))]
fn fleet_run_and_jsonl(spec: &FleetSpec) -> (FleetRun, String) {
    (
        magus_suite::experiments::fleet::run_fleet(spec),
        String::new(),
    )
}

/// In-process batch equivalent of a daemon drive session, writing the
/// same bytes to the same three artefacts (`--telemetry` JSONL + `.prom`
/// sibling, `--summary` JSON) so CI can diff the two paths.
fn fleet(
    nodes: usize,
    system: SystemId,
    governor: GovernorSpec,
    budget_s: f64,
    shards: usize,
    summary_path: Option<&Path>,
    traffic_path: Option<&Path>,
    opts: &EngineOpts,
) -> Result<(), Box<dyn Error>> {
    let mut spec = FleetSpec {
        system,
        max_s: budget_s,
        shards,
        ..FleetSpec::new(governor, nodes)
    };
    if let Some(path) = traffic_path {
        spec = spec.with_traffic(magus_suite::workloads::io::load_traffic_spec(path)?);
    }
    let (run, jsonl) = fleet_run_and_jsonl(&spec);
    println!(
        "fleet of {nodes}: {} completed, {:.0} J, makespan {:.2} s ({} decisions)",
        run.summary.completed, run.summary.total_j, run.summary.makespan_s, run.summary.decisions
    );
    if spec.traffic.is_some() {
        let s = &run.summary;
        let tenant_total: f64 = s.tenant_energy_j.iter().map(|(_, j)| j).sum();
        println!(
            "traffic: {} deadline job(s), {} missed; {} tenant(s), {:.0} J attributed",
            s.deadline_jobs,
            s.deadline_misses,
            s.tenant_energy_j.len(),
            tenant_total
        );
    }
    if let Some(path) = &opts.telemetry {
        write_file(path, &jsonl)?;
        // One epoch ran: the .prom sibling matches the daemon's /metrics
        // after a single advance of the same fleet.
        write_file(
            &path.with_extension("prom"),
            &fleet_prometheus(1, Some(&run.summary)),
        )?;
        eprintln!(
            "[fleet] telemetry written to {} (+ {})",
            path.display(),
            path.with_extension("prom").display()
        );
    }
    if let Some(path) = summary_path {
        write_file(path, &summary_json(&run.summary)?)?;
    }
    Ok(())
}

fn list() {
    println!("systems:");
    for s in [
        SystemId::IntelA100,
        SystemId::Intel4A100,
        SystemId::IntelMax1550,
    ] {
        let cfg = s.node_config();
        println!(
            "  {:<14} {} sockets x {} cores, uncore {:.1}-{:.1} GHz, {} GPU(s)",
            s.name(),
            cfg.sockets,
            cfg.cpu.cores,
            cfg.uncore.freq_min_ghz,
            cfg.uncore.freq_max_ghz,
            cfg.gpus.len()
        );
    }
    println!("applications:");
    for app in AppId::all() {
        println!("  {app}");
    }
}

fn run(engine: &Engine, system: SystemId, app: AppId, governor: GovernorSpec, json: bool) {
    let mut spec = TrialSpec::new(system, app, governor);
    if json {
        spec = spec.recorded();
    }
    let out = engine.run(&spec);
    let r = out.result;
    if json {
        match serde_json::to_string_pretty(&r) {
            Ok(s) => println!("{s}"),
            Err(e) => eprintln!("serialisation failed: {e}"),
        }
        return;
    }
    println!(
        "{} on {} under {}: runtime {:.2} s ({}), mean CPU {:.1} W, total energy {:.0} J, {} invocations (mean {:.0} ms){}",
        app,
        system.name(),
        r.runtime,
        r.summary.runtime_s,
        if r.summary.completed { "completed" } else { "TRUNCATED" },
        r.summary.mean_cpu_w,
        r.summary.energy.total_j(),
        r.invocations,
        r.mean_invocation_us / 1000.0,
        if out.cached { " [cached]" } else { "" },
    );
}

fn compare(engine: &Engine, system: SystemId, app: AppId) {
    let eval = evaluate_app(engine, system, app);
    println!(
        "{} on {} (baseline {:.1} s, {:.1} W CPU)",
        eval.app,
        system.name(),
        eval.baseline_runtime_s,
        eval.baseline_cpu_w
    );
    for (name, c) in [("MAGUS", eval.magus), ("UPS", eval.ups)] {
        println!(
            "  {name:<6} loss {:>6.2}% | CPU power saving {:>6.2}% | energy saving {:>6.2}%",
            c.perf_loss_pct, c.power_saving_pct, c.energy_saving_pct
        );
    }
}

fn overhead(engine: &Engine, system: SystemId, duration_s: f64) {
    use magus_suite::experiments::overhead::measure_overhead;
    let m = measure_overhead(engine, system, &GovernorSpec::magus_default(), duration_s);
    let u = measure_overhead(engine, system, &GovernorSpec::ups_default(), duration_s);
    for r in [m, u] {
        println!(
            "{:<16} {:<6} power overhead {:>5.2}% | invocation {:>5.2} s (idle {:.1} W -> {:.1} W)",
            r.system,
            r.runtime,
            r.power_overhead_pct,
            r.invocation_s,
            r.idle_power_w,
            r.loaded_power_w
        );
    }
}

fn powercap(engine: &Engine) {
    let caps = [None, Some(120.0), Some(105.0), Some(95.0), Some(85.0)];
    for c in magus_suite::experiments::powercap::powercap_study(engine, &caps) {
        println!(
            "cap {:>6} | {:<8} runtime {:>7.2} s | mean CPU {:>6.1} W | energy {:>8.0} J",
            c.cap_w.map_or("none".into(), |w| format!("{w:.0} W")),
            c.policy,
            c.runtime_s,
            c.mean_cpu_w,
            c.energy_j
        );
    }
}

fn variance(engine: &Engine, app: AppId, replicates: usize) {
    let e = magus_suite::experiments::replicate::evaluate_replicated(
        engine,
        SystemId::IntelA100,
        app,
        replicates,
    );
    println!(
        "{} x{}: loss {:.2}±{:.2}% | power saving {:.2}±{:.2}% | energy saving {:.2}±{:.2}%",
        e.app,
        e.replicates,
        e.perf_loss_pct.mean,
        e.perf_loss_pct.std,
        e.power_saving_pct.mean,
        e.power_saving_pct.std,
        e.energy_saving_pct.mean,
        e.energy_saving_pct.std,
    );
}

fn amd(engine: &Engine) {
    for app in [AppId::Bfs, AppId::Srad, AppId::Unet] {
        let (cmp, summary) = magus_suite::experiments::amd::evaluate_amd(engine, app);
        println!(
            "{:<12} on AMD+MI210 via HSMP: loss {:>5.2}% | power saving {:>6.2}% | energy saving {:>6.2}% ({:.1} s)",
            app.name(),
            cmp.perf_loss_pct,
            cmp.power_saving_pct,
            cmp.energy_saving_pct,
            summary.runtime_s
        );
    }
}

fn sweep(engine: &Engine, app: AppId) {
    let result = fig7_sensitivity(engine, app);
    let frontier = pareto_frontier(&result.points);
    println!(
        "{}: {} configurations, {} on the Pareto frontier",
        result.app,
        result.points.len(),
        frontier.len()
    );
    for p in &frontier {
        println!(
            "  {:<30} runtime {:>7.2} s  energy {:>9.0} J",
            p.label, p.runtime_s, p.energy_j
        );
    }
    println!(
        "  default ({}) distance-to-frontier: {:.4}",
        result.default_point.label,
        distance_to_frontier(&result.default_point, &frontier)
    );
}
