//! `magus` — the reproduction suite's command-line front end.
//!
//! ```sh
//! cargo run --release --bin magus -- run --app srad --runtime magus
//! cargo run --release --bin magus -- compare --app UNet
//! cargo run --release --bin magus -- suite --system intel-max1550
//! ```

use std::process::ExitCode;

use magus_suite::cli::{parse, usage, Command, RuntimeSel};
use magus_suite::experiments::drivers::{
    FixedUncoreDriver, MagusDriver, NoopDriver, RuntimeDriver, UpsDriver,
};
use magus_suite::experiments::figures::{evaluate_app, fig4, fig7_sensitivity};
use magus_suite::experiments::harness::{run_trial, SystemId, TrialOpts};
use magus_suite::experiments::overhead::measure_overhead;
use magus_suite::experiments::pareto::{distance_to_frontier, pareto_frontier};
use magus_suite::experiments::report::render_fig4_table;
use magus_suite::workloads::AppId;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match command {
        Command::Help => println!("{}", usage()),
        Command::List => list(),
        Command::Run {
            system,
            app,
            runtime,
            json,
        } => run(system, app, runtime, json),
        Command::Compare { system, app } => compare(system, app),
        Command::Suite { system } => {
            let rows = fig4(system);
            print!("{}", render_fig4_table(system.name(), &rows));
        }
        Command::Overhead { system, duration_s } => overhead(system, duration_s),
        Command::Sweep { app } => sweep(app),
        Command::Powercap => powercap(),
        Command::Variance { app, replicates } => variance(app, replicates),
        Command::Amd => amd(),
    }
    ExitCode::SUCCESS
}

fn list() {
    println!("systems:");
    for s in [SystemId::IntelA100, SystemId::Intel4A100, SystemId::IntelMax1550] {
        let cfg = s.node_config();
        println!(
            "  {:<14} {} sockets x {} cores, uncore {:.1}-{:.1} GHz, {} GPU(s)",
            s.name(),
            cfg.sockets,
            cfg.cpu.cores,
            cfg.uncore.freq_min_ghz,
            cfg.uncore.freq_max_ghz,
            cfg.gpus.len()
        );
    }
    println!("applications:");
    for app in AppId::all() {
        println!("  {app}");
    }
}

fn make_driver(system: SystemId, sel: RuntimeSel) -> Box<dyn RuntimeDriver> {
    match sel {
        RuntimeSel::Default => Box::new(NoopDriver),
        RuntimeSel::Magus => Box::new(MagusDriver::with_defaults()),
        RuntimeSel::Ups => Box::new(UpsDriver::with_defaults()),
        RuntimeSel::Fixed(ghz) => {
            let _ = system; // range clamping happens in the node
            Box::new(FixedUncoreDriver::new(ghz))
        }
    }
}

fn run(system: SystemId, app: AppId, sel: RuntimeSel, json: bool) {
    let mut driver = make_driver(system, sel);
    let opts = if json {
        TrialOpts::recorded()
    } else {
        TrialOpts::default()
    };
    let r = run_trial(system, app, driver.as_mut(), opts);
    if json {
        match serde_json::to_string_pretty(&r) {
            Ok(s) => println!("{s}"),
            Err(e) => eprintln!("serialisation failed: {e}"),
        }
        return;
    }
    println!(
        "{} on {} under {}: runtime {:.2} s ({}), mean CPU {:.1} W, total energy {:.0} J, {} invocations (mean {:.0} ms)",
        app,
        system.name(),
        r.runtime,
        r.summary.runtime_s,
        if r.summary.completed { "completed" } else { "TRUNCATED" },
        r.summary.mean_cpu_w,
        r.summary.energy.total_j(),
        r.invocations,
        r.mean_invocation_us / 1000.0,
    );
}

fn compare(system: SystemId, app: AppId) {
    let eval = evaluate_app(system, app);
    println!(
        "{} on {} (baseline {:.1} s, {:.1} W CPU)",
        eval.app, system.name(), eval.baseline_runtime_s, eval.baseline_cpu_w
    );
    for (name, c) in [("MAGUS", eval.magus), ("UPS", eval.ups)] {
        println!(
            "  {name:<6} loss {:>6.2}% | CPU power saving {:>6.2}% | energy saving {:>6.2}%",
            c.perf_loss_pct, c.power_saving_pct, c.energy_saving_pct
        );
    }
}

fn overhead(system: SystemId, duration_s: f64) {
    let mut magus = MagusDriver::with_defaults();
    let m = measure_overhead(system, &mut magus, duration_s);
    let mut ups = UpsDriver::with_defaults();
    let u = measure_overhead(system, &mut ups, duration_s);
    for r in [m, u] {
        println!(
            "{:<16} {:<6} power overhead {:>5.2}% | invocation {:>5.2} s (idle {:.1} W -> {:.1} W)",
            r.system, r.runtime, r.power_overhead_pct, r.invocation_s, r.idle_power_w, r.loaded_power_w
        );
    }
}

fn powercap() {
    let caps = [None, Some(120.0), Some(105.0), Some(95.0), Some(85.0)];
    for c in magus_suite::experiments::powercap::powercap_study(&caps) {
        println!(
            "cap {:>6} | {:<8} runtime {:>7.2} s | mean CPU {:>6.1} W | energy {:>8.0} J",
            c.cap_w.map_or("none".into(), |w| format!("{w:.0} W")),
            c.policy,
            c.runtime_s,
            c.mean_cpu_w,
            c.energy_j
        );
    }
}

fn variance(app: AppId, replicates: usize) {
    let e = magus_suite::experiments::replicate::evaluate_replicated(
        SystemId::IntelA100,
        app,
        replicates,
    );
    println!(
        "{} x{}: loss {:.2}±{:.2}% | power saving {:.2}±{:.2}% | energy saving {:.2}±{:.2}%",
        e.app,
        e.replicates,
        e.perf_loss_pct.mean,
        e.perf_loss_pct.std,
        e.power_saving_pct.mean,
        e.power_saving_pct.std,
        e.energy_saving_pct.mean,
        e.energy_saving_pct.std,
    );
}

fn amd() {
    use magus_suite::workloads::{app_trace, Platform};
    for app in [AppId::Bfs, AppId::Srad, AppId::Unet] {
        let (cmp, summary) =
            magus_suite::experiments::amd::evaluate_amd(app_trace(app, Platform::IntelA100));
        println!(
            "{:<12} on AMD+MI210 via HSMP: loss {:>5.2}% | power saving {:>6.2}% | energy saving {:>6.2}% ({:.1} s)",
            app.name(),
            cmp.perf_loss_pct,
            cmp.power_saving_pct,
            cmp.energy_saving_pct,
            summary.runtime_s
        );
    }
}

fn sweep(app: AppId) {
    let result = fig7_sensitivity(app);
    let frontier = pareto_frontier(&result.points);
    println!(
        "{}: {} configurations, {} on the Pareto frontier",
        result.app,
        result.points.len(),
        frontier.len()
    );
    for p in &frontier {
        println!("  {:<30} runtime {:>7.2} s  energy {:>9.0} J", p.label, p.runtime_s, p.energy_j);
    }
    println!(
        "  default ({}) distance-to-frontier: {:.4}",
        result.default_point.label,
        distance_to_frontier(&result.default_point, &frontier)
    );
}
