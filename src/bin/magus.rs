//! `magus` — the reproduction suite's command-line front end.
//!
//! ```sh
//! cargo run --release --bin magus -- run --app srad --runtime magus
//! cargo run --release --bin magus -- compare --app UNet
//! cargo run --release --bin magus -- suite --system intel-max1550
//! ```
//!
//! Every command goes through the trial engine: results are cached under
//! `results/cache/` by spec hash, trials are scheduled in parallel, and
//! each run writes a manifest next to the cache. `--no-cache` / `--serial`
//! (or `MAGUS_CACHE=off` / `MAGUS_SERIAL=1`) opt out.

use std::process::ExitCode;

use magus_suite::cli::{parse, usage, Command, EngineOpts, Invocation};
use magus_suite::experiments::engine::{Engine, GovernorSpec, TrialSpec};
use magus_suite::experiments::figures::{evaluate_app, fig4, fig7_sensitivity};
use magus_suite::experiments::harness::SystemId;
use magus_suite::experiments::pareto::{distance_to_frontier, pareto_frontier};
use magus_suite::experiments::report::render_fig4_table;
use magus_suite::workloads::AppId;

/// Build the trial engine for one invocation from the shared
/// [`EngineOpts`] (defaults — `--sim-path`, `--faults` — are installed
/// once in `main` before any command runs).
fn build_engine(opts: &EngineOpts) -> Engine {
    opts.build_engine()
}

/// Finish a named run: manifest summary, plus the `--telemetry` export
/// (JSONL event stream + Prometheus snapshot) when requested.
fn finish(engine: &Engine, label: &str, opts: &EngineOpts) -> ExitCode {
    engine.finish(label);
    if let Some(path) = &opts.telemetry {
        match engine.write_telemetry(path) {
            Ok(()) => eprintln!(
                "[engine] telemetry written to {} (+ {})",
                path.display(),
                path.with_extension("prom").display()
            ),
            Err(e) => {
                eprintln!("[engine] telemetry write failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Invocation {
        command,
        engine: opts,
    } = match parse(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = opts.install_defaults() {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    match command {
        Command::Help => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        Command::List => {
            list();
            ExitCode::SUCCESS
        }
        Command::Run {
            system,
            app,
            governor,
            json,
        } => {
            let engine = build_engine(&opts);
            run(&engine, system, app, governor, json);
            finish(&engine, "run", &opts)
        }
        Command::Compare { system, app } => {
            let engine = build_engine(&opts);
            compare(&engine, system, app);
            finish(&engine, "compare", &opts)
        }
        Command::Suite { system } => {
            let engine = build_engine(&opts);
            let rows = fig4(&engine, system);
            print!("{}", render_fig4_table(system.name(), &rows));
            finish(&engine, "suite", &opts)
        }
        Command::Overhead { system, duration_s } => {
            let engine = build_engine(&opts);
            overhead(&engine, system, duration_s);
            finish(&engine, "overhead", &opts)
        }
        Command::Sweep { app } => {
            let engine = build_engine(&opts);
            sweep(&engine, app);
            finish(&engine, "sweep", &opts)
        }
        Command::Powercap => {
            let engine = build_engine(&opts);
            powercap(&engine);
            finish(&engine, "powercap", &opts)
        }
        Command::Variance { app, replicates } => {
            let engine = build_engine(&opts);
            variance(&engine, app, replicates);
            finish(&engine, "variance", &opts)
        }
        Command::Amd => {
            let engine = build_engine(&opts);
            amd(&engine);
            finish(&engine, "amd", &opts)
        }
    }
}

fn list() {
    println!("systems:");
    for s in [
        SystemId::IntelA100,
        SystemId::Intel4A100,
        SystemId::IntelMax1550,
    ] {
        let cfg = s.node_config();
        println!(
            "  {:<14} {} sockets x {} cores, uncore {:.1}-{:.1} GHz, {} GPU(s)",
            s.name(),
            cfg.sockets,
            cfg.cpu.cores,
            cfg.uncore.freq_min_ghz,
            cfg.uncore.freq_max_ghz,
            cfg.gpus.len()
        );
    }
    println!("applications:");
    for app in AppId::all() {
        println!("  {app}");
    }
}

fn run(engine: &Engine, system: SystemId, app: AppId, governor: GovernorSpec, json: bool) {
    let mut spec = TrialSpec::new(system, app, governor);
    if json {
        spec = spec.recorded();
    }
    let out = engine.run(&spec);
    let r = out.result;
    if json {
        match serde_json::to_string_pretty(&r) {
            Ok(s) => println!("{s}"),
            Err(e) => eprintln!("serialisation failed: {e}"),
        }
        return;
    }
    println!(
        "{} on {} under {}: runtime {:.2} s ({}), mean CPU {:.1} W, total energy {:.0} J, {} invocations (mean {:.0} ms){}",
        app,
        system.name(),
        r.runtime,
        r.summary.runtime_s,
        if r.summary.completed { "completed" } else { "TRUNCATED" },
        r.summary.mean_cpu_w,
        r.summary.energy.total_j(),
        r.invocations,
        r.mean_invocation_us / 1000.0,
        if out.cached { " [cached]" } else { "" },
    );
}

fn compare(engine: &Engine, system: SystemId, app: AppId) {
    let eval = evaluate_app(engine, system, app);
    println!(
        "{} on {} (baseline {:.1} s, {:.1} W CPU)",
        eval.app,
        system.name(),
        eval.baseline_runtime_s,
        eval.baseline_cpu_w
    );
    for (name, c) in [("MAGUS", eval.magus), ("UPS", eval.ups)] {
        println!(
            "  {name:<6} loss {:>6.2}% | CPU power saving {:>6.2}% | energy saving {:>6.2}%",
            c.perf_loss_pct, c.power_saving_pct, c.energy_saving_pct
        );
    }
}

fn overhead(engine: &Engine, system: SystemId, duration_s: f64) {
    use magus_suite::experiments::overhead::measure_overhead;
    let m = measure_overhead(engine, system, &GovernorSpec::magus_default(), duration_s);
    let u = measure_overhead(engine, system, &GovernorSpec::ups_default(), duration_s);
    for r in [m, u] {
        println!(
            "{:<16} {:<6} power overhead {:>5.2}% | invocation {:>5.2} s (idle {:.1} W -> {:.1} W)",
            r.system,
            r.runtime,
            r.power_overhead_pct,
            r.invocation_s,
            r.idle_power_w,
            r.loaded_power_w
        );
    }
}

fn powercap(engine: &Engine) {
    let caps = [None, Some(120.0), Some(105.0), Some(95.0), Some(85.0)];
    for c in magus_suite::experiments::powercap::powercap_study(engine, &caps) {
        println!(
            "cap {:>6} | {:<8} runtime {:>7.2} s | mean CPU {:>6.1} W | energy {:>8.0} J",
            c.cap_w.map_or("none".into(), |w| format!("{w:.0} W")),
            c.policy,
            c.runtime_s,
            c.mean_cpu_w,
            c.energy_j
        );
    }
}

fn variance(engine: &Engine, app: AppId, replicates: usize) {
    let e = magus_suite::experiments::replicate::evaluate_replicated(
        engine,
        SystemId::IntelA100,
        app,
        replicates,
    );
    println!(
        "{} x{}: loss {:.2}±{:.2}% | power saving {:.2}±{:.2}% | energy saving {:.2}±{:.2}%",
        e.app,
        e.replicates,
        e.perf_loss_pct.mean,
        e.perf_loss_pct.std,
        e.power_saving_pct.mean,
        e.power_saving_pct.std,
        e.energy_saving_pct.mean,
        e.energy_saving_pct.std,
    );
}

fn amd(engine: &Engine) {
    for app in [AppId::Bfs, AppId::Srad, AppId::Unet] {
        let (cmp, summary) = magus_suite::experiments::amd::evaluate_amd(engine, app);
        println!(
            "{:<12} on AMD+MI210 via HSMP: loss {:>5.2}% | power saving {:>6.2}% | energy saving {:>6.2}% ({:.1} s)",
            app.name(),
            cmp.perf_loss_pct,
            cmp.power_saving_pct,
            cmp.energy_saving_pct,
            summary.runtime_s
        );
    }
}

fn sweep(engine: &Engine, app: AppId) {
    let result = fig7_sensitivity(engine, app);
    let frontier = pareto_frontier(&result.points);
    println!(
        "{}: {} configurations, {} on the Pareto frontier",
        result.app,
        result.points.len(),
        frontier.len()
    );
    for p in &frontier {
        println!(
            "  {:<30} runtime {:>7.2} s  energy {:>9.0} J",
            p.label, p.runtime_s, p.energy_j
        );
    }
    println!(
        "  default ({}) distance-to-frontier: {:.4}",
        result.default_point.label,
        distance_to_frontier(&result.default_point, &frontier)
    );
}
