//! Command-line interface logic for the `magus` binary.
//!
//! Parsing is hand-rolled (the workspace's dependency policy has no CLI
//! crate) and lives here, separated from I/O, so every command line maps
//! to a typed [`Invocation`] that unit tests can assert on. Runtime
//! selection parses straight into the engine's [`GovernorSpec`] — the
//! same type every experiment path consumes — so there is exactly one
//! string→governor conversion in the whole suite, and `magus:<k=v,...>`
//! thresholds go through the validating [`MagusConfig::builder`].

use magus_experiments::engine::GovernorSpec;
use magus_experiments::harness::{SimPath, SystemId};
use magus_experiments::opts::{take_flag, take_switch};
use magus_runtime::MagusConfig;
use magus_workloads::AppId;

pub use magus_experiments::opts::EngineOpts;

/// A parsed CLI invocation: the command plus engine-wide options.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// What to do.
    pub command: Command,
    /// How the trial engine should execute it (the shared
    /// [`EngineOpts`] every bin in the suite parses the same way).
    pub engine: EngineOpts,
}

/// A parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List available applications and systems.
    List,
    /// Run one application under one governor.
    Run {
        /// Target system.
        system: SystemId,
        /// Application to run.
        app: AppId,
        /// Governor selector.
        governor: GovernorSpec,
        /// Emit the recorded trace as JSON to stdout.
        json: bool,
    },
    /// Compare all runtimes on one application.
    Compare {
        /// Target system.
        system: SystemId,
        /// Application to run.
        app: AppId,
    },
    /// Regenerate a whole figure suite (4a / 4b / 4c).
    Suite {
        /// Target system.
        system: SystemId,
    },
    /// Measure idle overheads (Table 2 protocol) on one system.
    Overhead {
        /// Target system.
        system: SystemId,
        /// Idle duration in seconds.
        duration_s: f64,
    },
    /// Threshold sensitivity sweep (Fig 7 protocol) on one application.
    Sweep {
        /// Application to sweep.
        app: AppId,
    },
    /// Power-budget study (§6.1) under per-socket RAPL caps.
    Powercap,
    /// Seeded replication (the paper's ≥5-repetition protocol).
    Variance {
        /// Application to replicate.
        app: AppId,
        /// Number of replicates.
        replicates: usize,
    },
    /// The §6.6 AMD/HSMP portability demonstration.
    Amd,
    /// Run the fleet control-plane daemon.
    Serve {
        /// Control-socket bind address (port 0 picks a free port).
        addr: String,
        /// HTTP `/metrics` bind address (`None` = HTTP disabled).
        http: Option<String>,
        /// Governor every fleet node runs.
        governor: GovernorSpec,
        /// Per-node simulated-time budget per epoch (s).
        budget_s: f64,
        /// Fleet-kernel shard count.
        shards: usize,
    },
    /// Drive a running control-plane daemon.
    Ctl {
        /// Daemon control-socket address.
        addr: String,
        /// The verb to execute.
        action: CtlAction,
    },
    /// Batch fleet run (the in-process equivalent of a daemon session,
    /// used by CI to byte-compare the two).
    Fleet {
        /// Fleet size (round-robin catalog apps, or traffic expansion
        /// slots when `traffic` is set).
        nodes: usize,
        /// Hardware preset every node uses.
        system: SystemId,
        /// Governor every node runs.
        governor: GovernorSpec,
        /// Per-node simulated-time budget (s).
        budget_s: f64,
        /// Fleet-kernel shard count.
        shards: usize,
        /// Write the fleet summary JSON here.
        summary: Option<std::path::PathBuf>,
        /// Drive the fleet from a traffic-spec JSON file instead of the
        /// round-robin catalog (`magus_workloads::TrafficSpec`); the run
        /// then reports deadline and per-tenant energy metrics.
        traffic: Option<std::path::PathBuf>,
    },
    /// Print usage.
    Help,
}

/// One `magus ctl` verb.
#[derive(Debug, Clone, PartialEq)]
pub enum CtlAction {
    /// Enroll nodes.
    Join {
        /// Hardware preset for the batch.
        system: SystemId,
        /// Number of nodes.
        count: u32,
        /// Start offset on the fleet clock (µs).
        start_offset_us: u64,
    },
    /// Stage a workload on a node: a catalog app, or one slot of a
    /// traffic-spec expansion (exactly one of the two is set — the parser
    /// rejects neither/both).
    Submit {
        /// Target node id.
        node: u64,
        /// Catalog application.
        app: Option<AppId>,
        /// Traffic-spec JSON file whose expansion the node runs.
        traffic: Option<std::path::PathBuf>,
    },
    /// Remove a node.
    Leave {
        /// Target node id.
        node: u64,
    },
    /// Run one epoch.
    Advance,
    /// Print the daemon's state (epoch, summary JSON).
    Snapshot,
    /// Print the daemon's Prometheus metrics text.
    Metrics,
    /// Subscribe and print telemetry frames until the daemon shuts down.
    Watch,
    /// Gracefully stop the daemon.
    Shutdown,
    /// Whole-session convenience: join `nodes` nodes, submit round-robin
    /// catalog apps, advance one epoch, snapshot — writing the streamed
    /// telemetry, summary JSON, and Prometheus text to files. This is the
    /// session the CI system test byte-compares against `magus fleet`.
    Drive {
        /// Fleet size.
        nodes: u32,
        /// Hardware preset every node uses.
        system: SystemId,
        /// Write the subscribed telemetry JSONL here.
        telemetry: Option<std::path::PathBuf>,
        /// Write the epoch's summary JSON here.
        summary: Option<std::path::PathBuf>,
        /// Write the snapshot's Prometheus text here.
        metrics: Option<std::path::PathBuf>,
        /// Also shut the daemon down at the end of the session.
        shutdown: bool,
    },
}

/// Parse errors with user-facing messages.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_system(s: &str) -> Result<SystemId, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "intel-a100" | "a100" => Ok(SystemId::IntelA100),
        "intel-4a100" | "4a100" => Ok(SystemId::Intel4A100),
        "intel-max1550" | "max1550" => Ok(SystemId::IntelMax1550),
        other => Err(ParseError(format!(
            "unknown system '{other}' (expected intel-a100, intel-4a100, intel-max1550)"
        ))),
    }
}

fn parse_app(s: &str) -> Result<AppId, ParseError> {
    AppId::from_name(s)
        .ok_or_else(|| ParseError(format!("unknown application '{s}' (see `magus list`)")))
}

/// Parse a governor selector: `default`/`baseline`, `magus`, `ups`,
/// `fixed:<ghz>`, or `magus:<k=v,...>` with custom thresholds.
fn parse_governor(s: &str) -> Result<GovernorSpec, ParseError> {
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "default" | "baseline" => return Ok(GovernorSpec::Default),
        "magus" => return Ok(GovernorSpec::magus_default()),
        "ups" => return Ok(GovernorSpec::ups_default()),
        _ => {}
    }
    if let Some(ghz) = lower.strip_prefix("fixed:") {
        let ghz: f64 = ghz
            .parse()
            .map_err(|_| ParseError(format!("bad frequency in '{s}'")))?;
        if !(0.1..=10.0).contains(&ghz) {
            return Err(ParseError(format!("frequency {ghz} GHz out of range")));
        }
        return Ok(GovernorSpec::Fixed { ghz });
    }
    if let Some(kvs) = lower.strip_prefix("magus:") {
        let mut builder = MagusConfig::builder();
        for kv in kvs.split(',').filter(|kv| !kv.is_empty()) {
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| ParseError(format!("expected key=value, got '{kv}'")))?;
            let bad = |what: &str| ParseError(format!("bad {what} in '{kv}'"));
            builder = match key {
                "inc" => builder.inc_threshold(value.parse().map_err(|_| bad("inc threshold"))?),
                "dec" => builder.dec_threshold(value.parse().map_err(|_| bad("dec threshold"))?),
                "hf" => builder
                    .high_freq_threshold(value.parse().map_err(|_| bad("high-freq threshold"))?),
                "interval_ms" => {
                    let ms: f64 = value.parse().map_err(|_| bad("interval"))?;
                    builder.monitor_interval_us((ms * 1000.0) as u64)
                }
                other => {
                    return Err(ParseError(format!(
                        "unknown magus parameter '{other}' (expected inc, dec, hf, interval_ms)"
                    )))
                }
            };
        }
        let cfg = builder
            .build()
            .map_err(|e| ParseError(format!("invalid magus thresholds: {e}")))?;
        return Ok(GovernorSpec::Magus { cfg });
    }
    Err(ParseError(format!(
        "unknown runtime '{s}' (expected default, magus, ups, fixed:<ghz>, magus:<k=v,...>)"
    )))
}

/// Take an optional flag and parse its value, falling back to `default`
/// when the flag is absent.
fn take_parsed<T: std::str::FromStr>(
    rest: &mut Vec<String>,
    flag: &str,
    default: T,
) -> Result<T, ParseError> {
    take_flag(rest, flag)
        .map(|v| v.parse::<T>())
        .transpose()
        .map_err(|_| ParseError(format!("bad {flag}")))
        .map(|v| v.unwrap_or(default))
}

/// Take a required flag and parse its value.
fn take_required<T: std::str::FromStr>(
    rest: &mut Vec<String>,
    flag: &str,
) -> Result<T, ParseError> {
    take_flag(rest, flag)
        .ok_or_else(|| ParseError(format!("missing required {flag}")))?
        .parse::<T>()
        .map_err(|_| ParseError(format!("bad {flag}")))
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Invocation, ParseError> {
    let mut args: Vec<String> = args.to_vec();
    // Engine options are global: valid anywhere on the command line. The
    // extraction itself is shared with the bench bins (`EngineOpts`).
    let engine = EngineOpts::take_from_args(&mut args).map_err(ParseError)?;
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(Invocation {
            command: Command::Help,
            engine,
        });
    };
    let mut rest: Vec<String> = rest.to_vec();
    let command = match cmd.as_str() {
        "list" => Command::List,
        "help" | "--help" | "-h" => Command::Help,
        "run" => {
            let system = parse_system(
                &take_flag(&mut rest, "--system").unwrap_or_else(|| "intel-a100".into()),
            )?;
            let app = parse_app(
                &take_flag(&mut rest, "--app").ok_or(ParseError("run requires --app".into()))?,
            )?;
            let governor = parse_governor(
                &take_flag(&mut rest, "--runtime").unwrap_or_else(|| "magus".into()),
            )?;
            let json = take_switch(&mut rest, "--json");
            Command::Run {
                system,
                app,
                governor,
                json,
            }
        }
        "compare" => {
            let system = parse_system(
                &take_flag(&mut rest, "--system").unwrap_or_else(|| "intel-a100".into()),
            )?;
            let app = parse_app(
                &take_flag(&mut rest, "--app")
                    .ok_or(ParseError("compare requires --app".into()))?,
            )?;
            Command::Compare { system, app }
        }
        "suite" => {
            let system = parse_system(
                &take_flag(&mut rest, "--system").unwrap_or_else(|| "intel-a100".into()),
            )?;
            Command::Suite { system }
        }
        "overhead" => {
            let system = parse_system(
                &take_flag(&mut rest, "--system").unwrap_or_else(|| "intel-a100".into()),
            )?;
            let duration_s = take_flag(&mut rest, "--duration")
                .map(|d| d.parse::<f64>())
                .transpose()
                .map_err(|_| ParseError("bad --duration".into()))?
                .unwrap_or(120.0);
            if duration_s <= 0.0 {
                return Err(ParseError("--duration must be positive".into()));
            }
            Command::Overhead { system, duration_s }
        }
        "sweep" => {
            let app = parse_app(
                &take_flag(&mut rest, "--app").ok_or(ParseError("sweep requires --app".into()))?,
            )?;
            Command::Sweep { app }
        }
        "powercap" => Command::Powercap,
        "amd" => Command::Amd,
        "serve" => {
            let addr = take_flag(&mut rest, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
            let http = if take_switch(&mut rest, "--no-http") {
                None
            } else {
                Some(take_flag(&mut rest, "--http").unwrap_or_else(|| "127.0.0.1:0".into()))
            };
            let governor = parse_governor(
                &take_flag(&mut rest, "--runtime").unwrap_or_else(|| "default".into()),
            )?;
            let budget_s: f64 = take_parsed(&mut rest, "--budget", 600.0)?;
            if !(budget_s.is_finite() && budget_s > 0.0) {
                return Err(ParseError("--budget must be positive".into()));
            }
            let shards: usize = take_parsed(&mut rest, "--shards", 1)?;
            if shards == 0 {
                return Err(ParseError("--shards must be positive".into()));
            }
            Command::Serve {
                addr,
                http,
                governor,
                budget_s,
                shards,
            }
        }
        "ctl" => {
            let addr = take_flag(&mut rest, "--addr")
                .ok_or(ParseError("ctl requires --addr (see `magus serve`)".into()))?;
            let Some((verb, verb_rest)) = rest.split_first() else {
                return Err(ParseError(
                    "ctl requires a verb: join | submit | leave | advance | snapshot | metrics \
                     | watch | shutdown | drive"
                        .into(),
                ));
            };
            let verb = verb.clone();
            let mut rest2: Vec<String> = verb_rest.to_vec();
            let action = match verb.as_str() {
                "join" => CtlAction::Join {
                    system: parse_system(
                        &take_flag(&mut rest2, "--system").unwrap_or_else(|| "intel-a100".into()),
                    )?,
                    count: take_parsed(&mut rest2, "--count", 1u32)?,
                    start_offset_us: take_parsed(&mut rest2, "--offset-us", 0u64)?,
                },
                "submit" => {
                    let node = take_required(&mut rest2, "--node")?;
                    let app = take_flag(&mut rest2, "--app")
                        .map(|a| parse_app(&a))
                        .transpose()?;
                    let traffic = take_flag(&mut rest2, "--traffic").map(Into::into);
                    match (&app, &traffic) {
                        (None, None) => {
                            return Err(ParseError(
                                "submit requires --app <name> or --traffic <spec.json>".into(),
                            ))
                        }
                        (Some(_), Some(_)) => {
                            return Err(ParseError(
                                "submit takes --app or --traffic, not both".into(),
                            ))
                        }
                        _ => {}
                    }
                    CtlAction::Submit { node, app, traffic }
                }
                "leave" => CtlAction::Leave {
                    node: take_required(&mut rest2, "--node")?,
                },
                "advance" => CtlAction::Advance,
                "snapshot" => CtlAction::Snapshot,
                "metrics" => CtlAction::Metrics,
                "watch" => CtlAction::Watch,
                "shutdown" => CtlAction::Shutdown,
                "drive" => CtlAction::Drive {
                    nodes: take_required(&mut rest2, "--nodes")?,
                    system: parse_system(
                        &take_flag(&mut rest2, "--system").unwrap_or_else(|| "intel-a100".into()),
                    )?,
                    // `--telemetry` is a global engine flag (stripped by
                    // EngineOpts above), reused here as the JSONL sink so
                    // drive and `magus fleet` spell it identically.
                    telemetry: engine.telemetry.clone(),
                    summary: take_flag(&mut rest2, "--summary").map(Into::into),
                    metrics: take_flag(&mut rest2, "--metrics").map(Into::into),
                    shutdown: take_switch(&mut rest2, "--shutdown"),
                },
                other => return Err(ParseError(format!("unknown ctl verb '{other}'"))),
            };
            rest = rest2;
            Command::Ctl { addr, action }
        }
        "fleet" => {
            let nodes: usize = take_required(&mut rest, "--nodes")?;
            if nodes == 0 {
                return Err(ParseError("--nodes must be positive".into()));
            }
            let system = parse_system(
                &take_flag(&mut rest, "--system").unwrap_or_else(|| "intel-a100".into()),
            )?;
            let governor = parse_governor(
                &take_flag(&mut rest, "--runtime").unwrap_or_else(|| "default".into()),
            )?;
            let budget_s: f64 = take_parsed(&mut rest, "--budget", 600.0)?;
            if !(budget_s.is_finite() && budget_s > 0.0) {
                return Err(ParseError("--budget must be positive".into()));
            }
            let shards: usize = take_parsed(&mut rest, "--shards", 1)?;
            if shards == 0 {
                return Err(ParseError("--shards must be positive".into()));
            }
            Command::Fleet {
                nodes,
                system,
                governor,
                budget_s,
                shards,
                summary: take_flag(&mut rest, "--summary").map(Into::into),
                traffic: take_flag(&mut rest, "--traffic").map(Into::into),
            }
        }
        "variance" => {
            let app = parse_app(
                &take_flag(&mut rest, "--app")
                    .ok_or(ParseError("variance requires --app".into()))?,
            )?;
            let replicates = take_flag(&mut rest, "--replicates")
                .map(|v| v.parse::<usize>())
                .transpose()
                .map_err(|_| ParseError("bad --replicates".into()))?
                .unwrap_or(5);
            if replicates == 0 {
                return Err(ParseError("--replicates must be positive".into()));
            }
            Command::Variance { app, replicates }
        }
        other => return Err(ParseError(format!("unknown command '{other}'"))),
    };
    if let Some(stray) = rest.first() {
        return Err(ParseError(format!("unexpected argument '{stray}'")));
    }
    Ok(Invocation { command, engine })
}

/// Usage text.
#[must_use]
pub fn usage() -> &'static str {
    "magus — adaptive uncore frequency scaling reproduction suite

USAGE:
  magus list
  magus run --app <name> [--system <sys>] [--runtime <gov>] [--json]
  magus compare --app <name> [--system <sys>]
  magus suite [--system <sys>]
  magus overhead [--system <sys>] [--duration <s>]
  magus sweep --app <name>
  magus powercap
  magus variance --app <name> [--replicates <n>]
  magus amd
  magus serve [--addr <ip:port>] [--http <ip:port> | --no-http]
              [--runtime <gov>] [--budget <s>] [--shards <n>]
  magus ctl --addr <ip:port> <verb> [...]
  magus fleet --nodes <n> [--system <sys>] [--runtime <gov>] [--budget <s>]
              [--shards <n>] [--summary <file>] [--traffic <spec.json>]

CONTROL:   `serve` runs the fleet control-plane daemon: it prints
           CTL_ADDR=<ip:port> and HTTP_ADDR=<ip:port> on stdout (bind with
           port 0 and parse these to avoid collisions), then serves the
           wire protocol on the control socket and Prometheus text on HTTP
           GET /metrics until a shutdown request. `ctl` drives it: verbs
           join [--system <sys>] [--count <n>] [--offset-us <µs>],
           submit --node <id> (--app <name> | --traffic <spec.json>),
           leave --node <id>, advance,
           snapshot, metrics, watch, shutdown, and
           drive --nodes <n> [--system <sys>] [--telemetry <file>]
           [--summary <file>] [--metrics <file>] [--shutdown] — a whole
           join/submit/advance/snapshot session whose outputs are
           byte-identical to `magus fleet` with the same spec (with
           --telemetry, `fleet` writes the same JSONL + .prom pair).
GOVERNORS: default | magus | ups | fixed:<ghz> | magus:<k=v,...>
           (magus keys: inc, dec, hf, interval_ms — validated before use)
TRAFFIC:   --traffic <spec.json> drives a fleet (or one daemon node) from a
           stochastic multi-tenant traffic spec instead of the round-robin
           catalog: Zipf-skewed app popularity, diurnal + bursty arrivals,
           per-tenant deadline queues, colocation (see DESIGN.md \"Traffic
           generation\"). Expansion is deterministic from the spec's seed;
           with --traffic, `fleet` also reports deadline misses and
           per-tenant energy.
ENGINE:    --no-cache (always simulate), --serial (one trial at a time),
           --jobs <n> (worker threads, 0 = ncpus),
           --sim-path fast|reference (stepping path for every trial; both
           paths emit byte-identical --telemetry JSONL and .prom files),
           --telemetry <file> (write governor decision events as JSON
           Lines to <file> and a Prometheus metrics snapshot to the .prom
           sibling, <file>.prom),
           --faults <plan.json> (inject a deterministic fault plan into
           every trial; validated on load, hashed into each trial's cache
           key — see DESIGN.md \"Fault injection\"),
           --no-dedup (step every fleet node live; trajectory sharing off,
           bit-identical either way);
           MAGUS_CACHE_DIR / MAGUS_CACHE=off / MAGUS_SERIAL=1 / MAGUS_JOBS
           / MAGUS_FLEET_DEDUP=0 / MAGUS_FLEET_SCALAR=1 (scalar fleet
           scans) do the same from the environment. Trials are cached under
           results/cache by spec hash; each command writes a run manifest
           next to it.
SYSTEMS:   intel-a100 (default), intel-4a100, intel-max1550
APPS:      run `magus list`"
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    /// Parse and unwrap just the command (engine opts asserted separately).
    fn cmd(args: &[&str]) -> Command {
        parse(&v(args)).unwrap().command
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(cmd(&[]), Command::Help);
        assert_eq!(cmd(&["--help"]), Command::Help);
        assert_eq!(parse(&[]).unwrap().engine, EngineOpts::default());
    }

    #[test]
    fn list_round_trips() {
        assert_eq!(cmd(&["list"]), Command::List);
    }

    #[test]
    fn run_parses_full_form() {
        assert_eq!(
            cmd(&[
                "run",
                "--system",
                "intel-max1550",
                "--app",
                "srad",
                "--runtime",
                "ups",
                "--json",
            ]),
            Command::Run {
                system: SystemId::IntelMax1550,
                app: AppId::Srad,
                governor: GovernorSpec::ups_default(),
                json: true,
            }
        );
    }

    #[test]
    fn run_defaults_system_and_runtime() {
        assert_eq!(
            cmd(&["run", "--app", "bfs"]),
            Command::Run {
                system: SystemId::IntelA100,
                app: AppId::Bfs,
                governor: GovernorSpec::magus_default(),
                json: false,
            }
        );
    }

    #[test]
    fn fixed_runtime_parses_frequency() {
        match cmd(&["run", "--app", "bfs", "--runtime", "fixed:1.4"]) {
            Command::Run {
                governor: GovernorSpec::Fixed { ghz },
                ..
            } => assert!((ghz - 1.4).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn magus_governor_with_custom_thresholds() {
        let expected = MagusConfig::builder()
            .inc_threshold(300.0)
            .dec_threshold(700.0)
            .high_freq_threshold(0.5)
            .monitor_interval_us(400_000)
            .build()
            .unwrap();
        assert_eq!(
            cmd(&[
                "run",
                "--app",
                "bfs",
                "--runtime",
                "magus:inc=300,dec=700,hf=0.5,interval_ms=400",
            ]),
            Command::Run {
                system: SystemId::IntelA100,
                app: AppId::Bfs,
                governor: GovernorSpec::Magus { cfg: expected },
                json: false,
            }
        );
    }

    #[test]
    fn magus_governor_rejects_invalid_thresholds_via_builder() {
        // The typed builder error surfaces in the CLI message.
        let err = parse(&v(&["run", "--app", "bfs", "--runtime", "magus:inc=-5"])).unwrap_err();
        assert!(err.0.contains("inc_threshold"), "{err}");
        let err = parse(&v(&["run", "--app", "bfs", "--runtime", "magus:hf=1.5"])).unwrap_err();
        assert!(err.0.contains("high_freq_threshold"), "{err}");
        assert!(parse(&v(&["run", "--app", "bfs", "--runtime", "magus:zzz=1"])).is_err());
        assert!(parse(&v(&["run", "--app", "bfs", "--runtime", "magus:inc"])).is_err());
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(parse(&v(&["run"])).is_err()); // missing --app
        assert!(parse(&v(&["run", "--app", "nope"])).is_err());
        assert!(parse(&v(&["run", "--app", "bfs", "--runtime", "x"])).is_err());
        assert!(parse(&v(&["run", "--app", "bfs", "--runtime", "fixed:99"])).is_err());
        assert!(parse(&v(&["overhead", "--duration", "-3"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run", "--app", "bfs", "stray"])).is_err());
    }

    #[test]
    fn system_aliases() {
        assert_eq!(parse_system("4a100").unwrap(), SystemId::Intel4A100);
        assert_eq!(parse_system("A100").unwrap(), SystemId::IntelA100);
        assert!(parse_system("epyc").is_err());
    }

    #[test]
    fn compare_and_suite_round_trip() {
        assert_eq!(
            cmd(&["compare", "--app", "UNet", "--system", "4a100"]),
            Command::Compare {
                system: SystemId::Intel4A100,
                app: AppId::Unet,
            }
        );
        assert_eq!(
            cmd(&["suite", "--system", "intel-max1550"]),
            Command::Suite {
                system: SystemId::IntelMax1550
            }
        );
        assert_eq!(
            cmd(&["suite"]),
            Command::Suite {
                system: SystemId::IntelA100
            }
        );
    }

    #[test]
    fn sweep_round_trips() {
        assert_eq!(
            cmd(&["sweep", "--app", "srad"]),
            Command::Sweep { app: AppId::Srad }
        );
        assert!(parse(&v(&["sweep"])).is_err());
    }

    #[test]
    fn variance_parses_with_default_replicates() {
        assert_eq!(
            cmd(&["variance", "--app", "srad"]),
            Command::Variance {
                app: AppId::Srad,
                replicates: 5
            }
        );
        assert_eq!(
            cmd(&["variance", "--app", "srad", "--replicates", "9"]),
            Command::Variance {
                app: AppId::Srad,
                replicates: 9
            }
        );
        assert!(parse(&v(&["variance", "--app", "srad", "--replicates", "0"])).is_err());
        assert_eq!(cmd(&["powercap"]), Command::Powercap);
        assert_eq!(cmd(&["amd"]), Command::Amd);
    }

    #[test]
    fn overhead_duration_default() {
        assert_eq!(
            cmd(&["overhead"]),
            Command::Overhead {
                system: SystemId::IntelA100,
                duration_s: 120.0
            }
        );
    }

    #[test]
    fn engine_switches_are_global_and_position_independent() {
        let inv = parse(&v(&["--serial", "suite", "--no-cache", "--no-dedup"])).unwrap();
        assert_eq!(
            inv.engine,
            EngineOpts {
                no_cache: true,
                serial: true,
                no_dedup: true,
                ..EngineOpts::default()
            }
        );
        assert_eq!(
            inv.command,
            Command::Suite {
                system: SystemId::IntelA100
            }
        );
        // Absent switches default off; they are not stray arguments.
        let inv = parse(&v(&["powercap"])).unwrap();
        assert_eq!(inv.engine, EngineOpts::default());
    }

    #[test]
    fn jobs_flag_parses_anywhere_and_validates() {
        let inv = parse(&v(&["--jobs", "4", "suite"])).unwrap();
        assert_eq!(inv.engine.jobs, Some(4));
        let inv = parse(&v(&["suite", "--jobs", "0"])).unwrap();
        assert_eq!(inv.engine.jobs, Some(0), "0 means one worker per CPU");
        assert_eq!(parse(&v(&["suite"])).unwrap().engine.jobs, None);
        assert!(parse(&v(&["--jobs", "many", "suite"])).is_err());
        assert!(parse(&v(&["--jobs", "-1", "suite"])).is_err());
    }

    #[test]
    fn usage_mentions_all_commands() {
        let u = usage();
        for word in [
            "run",
            "compare",
            "suite",
            "overhead",
            "sweep",
            "list",
            "powercap",
            "variance",
            "amd",
            "--no-cache",
            "--serial",
            "--jobs",
            "--telemetry",
            "--sim-path",
            "--faults",
            "--no-dedup",
            ".prom",
            "serve",
            "ctl",
            "fleet",
            "drive",
            "/metrics",
            "CTL_ADDR",
            "HTTP_ADDR",
            "--traffic",
            "Traffic generation",
        ] {
            assert!(u.contains(word), "{word}");
        }
    }

    #[test]
    fn serve_parses_with_defaults() {
        assert_eq!(
            cmd(&["serve"]),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                http: Some("127.0.0.1:0".into()),
                governor: GovernorSpec::Default,
                budget_s: 600.0,
                shards: 1,
            }
        );
        assert_eq!(
            cmd(&[
                "serve",
                "--addr",
                "127.0.0.1:7700",
                "--no-http",
                "--runtime",
                "magus",
                "--budget",
                "45",
                "--shards",
                "4",
            ]),
            Command::Serve {
                addr: "127.0.0.1:7700".into(),
                http: None,
                governor: GovernorSpec::magus_default(),
                budget_s: 45.0,
                shards: 4,
            }
        );
        assert!(parse(&v(&["serve", "--budget", "0"])).is_err());
        assert!(parse(&v(&["serve", "--shards", "0"])).is_err());
    }

    #[test]
    fn ctl_verbs_parse() {
        assert_eq!(
            cmd(&["ctl", "--addr", "127.0.0.1:7700", "join", "--count", "64"]),
            Command::Ctl {
                addr: "127.0.0.1:7700".into(),
                action: CtlAction::Join {
                    system: SystemId::IntelA100,
                    count: 64,
                    start_offset_us: 0,
                },
            }
        );
        assert_eq!(
            cmd(&["ctl", "--addr", "h:1", "submit", "--node", "3", "--app", "bfs"]),
            Command::Ctl {
                addr: "h:1".into(),
                action: CtlAction::Submit {
                    node: 3,
                    app: Some(AppId::Bfs),
                    traffic: None,
                },
            }
        );
        assert_eq!(
            cmd(&[
                "ctl",
                "--addr",
                "h:1",
                "submit",
                "--node",
                "3",
                "--traffic",
                "spec.json"
            ]),
            Command::Ctl {
                addr: "h:1".into(),
                action: CtlAction::Submit {
                    node: 3,
                    app: None,
                    traffic: Some(PathBuf::from("spec.json")),
                },
            }
        );
        assert!(
            parse(&v(&["ctl", "--addr", "h:1", "submit", "--node", "3"])).is_err(),
            "submit needs --app or --traffic"
        );
        assert!(
            parse(&v(&[
                "ctl",
                "--addr",
                "h:1",
                "submit",
                "--node",
                "3",
                "--app",
                "bfs",
                "--traffic",
                "spec.json"
            ]))
            .is_err(),
            "submit rejects --app together with --traffic"
        );
        for (verb, action) in [
            ("advance", CtlAction::Advance),
            ("snapshot", CtlAction::Snapshot),
            ("metrics", CtlAction::Metrics),
            ("watch", CtlAction::Watch),
            ("shutdown", CtlAction::Shutdown),
        ] {
            assert_eq!(
                cmd(&["ctl", "--addr", "h:1", verb]),
                Command::Ctl {
                    addr: "h:1".into(),
                    action,
                }
            );
        }
        assert_eq!(
            cmd(&[
                "ctl",
                "--addr",
                "h:1",
                "drive",
                "--nodes",
                "64",
                "--telemetry",
                "t.jsonl",
                "--summary",
                "s.json",
                "--metrics",
                "m.prom",
                "--shutdown",
            ]),
            Command::Ctl {
                addr: "h:1".into(),
                action: CtlAction::Drive {
                    nodes: 64,
                    system: SystemId::IntelA100,
                    telemetry: Some(PathBuf::from("t.jsonl")),
                    summary: Some(PathBuf::from("s.json")),
                    metrics: Some(PathBuf::from("m.prom")),
                    shutdown: true,
                },
            }
        );
        assert!(parse(&v(&["ctl", "advance"])).is_err(), "missing --addr");
        assert!(
            parse(&v(&["ctl", "--addr", "h:1"])).is_err(),
            "missing verb"
        );
        assert!(parse(&v(&["ctl", "--addr", "h:1", "frobnicate"])).is_err());
        assert!(parse(&v(&["ctl", "--addr", "h:1", "leave"])).is_err());
        assert!(parse(&v(&["ctl", "--addr", "h:1", "advance", "stray"])).is_err());
    }

    #[test]
    fn fleet_parses_with_defaults() {
        assert_eq!(
            cmd(&["fleet", "--nodes", "64"]),
            Command::Fleet {
                nodes: 64,
                system: SystemId::IntelA100,
                governor: GovernorSpec::Default,
                budget_s: 600.0,
                shards: 1,
                summary: None,
                traffic: None,
            }
        );
        assert_eq!(
            cmd(&[
                "fleet",
                "--nodes",
                "8",
                "--runtime",
                "magus",
                "--budget",
                "45",
                "--shards",
                "2",
                "--summary",
                "s.json",
                "--traffic",
                "traffic.json",
            ]),
            Command::Fleet {
                nodes: 8,
                system: SystemId::IntelA100,
                governor: GovernorSpec::magus_default(),
                budget_s: 45.0,
                shards: 2,
                summary: Some(PathBuf::from("s.json")),
                traffic: Some(PathBuf::from("traffic.json")),
            }
        );
        assert!(parse(&v(&["fleet"])).is_err(), "missing --nodes");
        assert!(parse(&v(&["fleet", "--nodes", "0"])).is_err());
    }

    #[test]
    fn faults_flag_parses_anywhere() {
        let inv = parse(&v(&["--faults", "plan.json", "suite"])).unwrap();
        assert_eq!(inv.engine.faults, Some(PathBuf::from("plan.json")));
        let inv = parse(&v(&["run", "--app", "bfs", "--faults", "f/p.json"])).unwrap();
        assert_eq!(inv.engine.faults, Some(PathBuf::from("f/p.json")));
        assert_eq!(parse(&v(&["suite"])).unwrap().engine.faults, None);
    }

    #[test]
    fn telemetry_and_sim_path_flags_parse_anywhere() {
        let inv = parse(&v(&[
            "--telemetry",
            "out/t.jsonl",
            "suite",
            "--sim-path",
            "reference",
        ]))
        .unwrap();
        assert_eq!(inv.engine.telemetry, Some(PathBuf::from("out/t.jsonl")));
        assert_eq!(inv.engine.sim_path, Some(SimPath::Reference));
        assert_eq!(
            inv.command,
            Command::Suite {
                system: SystemId::IntelA100
            }
        );
        let inv = parse(&v(&["suite", "--sim-path", "fast"])).unwrap();
        assert_eq!(inv.engine.sim_path, Some(SimPath::Fast));
        assert!(parse(&v(&["suite", "--sim-path", "warp"])).is_err());
        let inv = parse(&v(&["suite"])).unwrap();
        assert_eq!(inv.engine.telemetry, None);
        assert_eq!(inv.engine.sim_path, None);
    }
}
