//! Command-line interface logic for the `magus` binary.
//!
//! Parsing is hand-rolled (the workspace's dependency policy has no CLI
//! crate) and lives here, separated from I/O, so every command line maps
//! to a typed [`Command`] that unit tests can assert on.

use magus_experiments::harness::SystemId;
use magus_workloads::AppId;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List available applications and systems.
    List,
    /// Run one application under one runtime.
    Run {
        /// Target system.
        system: SystemId,
        /// Application to run.
        app: AppId,
        /// Runtime selector.
        runtime: RuntimeSel,
        /// Emit the recorded trace as JSON to stdout.
        json: bool,
    },
    /// Compare all runtimes on one application.
    Compare {
        /// Target system.
        system: SystemId,
        /// Application to run.
        app: AppId,
    },
    /// Regenerate a whole figure suite (4a / 4b / 4c).
    Suite {
        /// Target system.
        system: SystemId,
    },
    /// Measure idle overheads (Table 2 protocol) on one system.
    Overhead {
        /// Target system.
        system: SystemId,
        /// Idle duration in seconds.
        duration_s: f64,
    },
    /// Threshold sensitivity sweep (Fig 7 protocol) on one application.
    Sweep {
        /// Application to sweep.
        app: AppId,
    },
    /// Power-budget study (§6.1) under per-socket RAPL caps.
    Powercap,
    /// Seeded replication (the paper's ≥5-repetition protocol).
    Variance {
        /// Application to replicate.
        app: AppId,
        /// Number of replicates.
        replicates: usize,
    },
    /// The §6.6 AMD/HSMP portability demonstration.
    Amd,
    /// Print usage.
    Help,
}

/// Runtime selection for `run`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuntimeSel {
    /// The stock TDP-coupled governor only.
    Default,
    /// MAGUS with paper-default thresholds.
    Magus,
    /// The UPS baseline.
    Ups,
    /// Uncore pinned to a fixed frequency (GHz).
    Fixed(f64),
}

/// Parse errors with user-facing messages.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_system(s: &str) -> Result<SystemId, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "intel-a100" | "a100" => Ok(SystemId::IntelA100),
        "intel-4a100" | "4a100" => Ok(SystemId::Intel4A100),
        "intel-max1550" | "max1550" => Ok(SystemId::IntelMax1550),
        other => Err(ParseError(format!(
            "unknown system '{other}' (expected intel-a100, intel-4a100, intel-max1550)"
        ))),
    }
}

fn parse_app(s: &str) -> Result<AppId, ParseError> {
    AppId::from_name(s)
        .ok_or_else(|| ParseError(format!("unknown application '{s}' (see `magus list`)")))
}

fn parse_runtime(s: &str) -> Result<RuntimeSel, ParseError> {
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "default" | "baseline" => Ok(RuntimeSel::Default),
        "magus" => Ok(RuntimeSel::Magus),
        "ups" => Ok(RuntimeSel::Ups),
        _ => {
            if let Some(ghz) = lower.strip_prefix("fixed:") {
                let ghz: f64 = ghz
                    .parse()
                    .map_err(|_| ParseError(format!("bad frequency in '{s}'")))?;
                if !(0.1..=10.0).contains(&ghz) {
                    return Err(ParseError(format!("frequency {ghz} GHz out of range")));
                }
                Ok(RuntimeSel::Fixed(ghz))
            } else {
                Err(ParseError(format!(
                    "unknown runtime '{s}' (expected default, magus, ups, fixed:<ghz>)"
                )))
            }
        }
    }
}

/// Extract `--flag value` from an argument list, returning the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn take_switch(args: &mut Vec<String>, switch: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == switch) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let mut rest: Vec<String> = rest.to_vec();
    let command = match cmd.as_str() {
        "list" => Command::List,
        "help" | "--help" | "-h" => Command::Help,
        "run" => {
            let system = parse_system(
                &take_flag(&mut rest, "--system").unwrap_or_else(|| "intel-a100".into()),
            )?;
            let app = parse_app(
                &take_flag(&mut rest, "--app").ok_or(ParseError("run requires --app".into()))?,
            )?;
            let runtime = parse_runtime(
                &take_flag(&mut rest, "--runtime").unwrap_or_else(|| "magus".into()),
            )?;
            let json = take_switch(&mut rest, "--json");
            Command::Run {
                system,
                app,
                runtime,
                json,
            }
        }
        "compare" => {
            let system = parse_system(
                &take_flag(&mut rest, "--system").unwrap_or_else(|| "intel-a100".into()),
            )?;
            let app = parse_app(
                &take_flag(&mut rest, "--app")
                    .ok_or(ParseError("compare requires --app".into()))?,
            )?;
            Command::Compare { system, app }
        }
        "suite" => {
            let system = parse_system(
                &take_flag(&mut rest, "--system").unwrap_or_else(|| "intel-a100".into()),
            )?;
            Command::Suite { system }
        }
        "overhead" => {
            let system = parse_system(
                &take_flag(&mut rest, "--system").unwrap_or_else(|| "intel-a100".into()),
            )?;
            let duration_s = take_flag(&mut rest, "--duration")
                .map(|d| d.parse::<f64>())
                .transpose()
                .map_err(|_| ParseError("bad --duration".into()))?
                .unwrap_or(120.0);
            if duration_s <= 0.0 {
                return Err(ParseError("--duration must be positive".into()));
            }
            Command::Overhead { system, duration_s }
        }
        "sweep" => {
            let app = parse_app(
                &take_flag(&mut rest, "--app").ok_or(ParseError("sweep requires --app".into()))?,
            )?;
            Command::Sweep { app }
        }
        "powercap" => Command::Powercap,
        "amd" => Command::Amd,
        "variance" => {
            let app = parse_app(
                &take_flag(&mut rest, "--app")
                    .ok_or(ParseError("variance requires --app".into()))?,
            )?;
            let replicates = take_flag(&mut rest, "--replicates")
                .map(|v| v.parse::<usize>())
                .transpose()
                .map_err(|_| ParseError("bad --replicates".into()))?
                .unwrap_or(5);
            if replicates == 0 {
                return Err(ParseError("--replicates must be positive".into()));
            }
            Command::Variance { app, replicates }
        }
        other => return Err(ParseError(format!("unknown command '{other}'"))),
    };
    if let Some(stray) = rest.first() {
        return Err(ParseError(format!("unexpected argument '{stray}'")));
    }
    Ok(command)
}

/// Usage text.
#[must_use]
pub fn usage() -> &'static str {
    "magus — adaptive uncore frequency scaling reproduction suite

USAGE:
  magus list
  magus run --app <name> [--system <sys>] [--runtime default|magus|ups|fixed:<ghz>] [--json]
  magus compare --app <name> [--system <sys>]
  magus suite [--system <sys>]
  magus overhead [--system <sys>] [--duration <s>]
  magus sweep --app <name>
  magus powercap
  magus variance --app <name> [--replicates <n>]
  magus amd

SYSTEMS: intel-a100 (default), intel-4a100, intel-max1550
APPS:    run `magus list`"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&v(&["--help"])), Ok(Command::Help));
    }

    #[test]
    fn run_parses_full_form() {
        let cmd = parse(&v(&[
            "run", "--system", "intel-max1550", "--app", "srad", "--runtime", "ups", "--json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                system: SystemId::IntelMax1550,
                app: AppId::Srad,
                runtime: RuntimeSel::Ups,
                json: true,
            }
        );
    }

    #[test]
    fn run_defaults_system_and_runtime() {
        let cmd = parse(&v(&["run", "--app", "bfs"])).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                system: SystemId::IntelA100,
                app: AppId::Bfs,
                runtime: RuntimeSel::Magus,
                json: false,
            }
        );
    }

    #[test]
    fn fixed_runtime_parses_frequency() {
        let cmd = parse(&v(&["run", "--app", "bfs", "--runtime", "fixed:1.4"])).unwrap();
        match cmd {
            Command::Run {
                runtime: RuntimeSel::Fixed(ghz),
                ..
            } => assert!((ghz - 1.4).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        assert!(parse(&v(&["run"])).is_err()); // missing --app
        assert!(parse(&v(&["run", "--app", "nope"])).is_err());
        assert!(parse(&v(&["run", "--app", "bfs", "--runtime", "x"])).is_err());
        assert!(parse(&v(&["run", "--app", "bfs", "--runtime", "fixed:99"])).is_err());
        assert!(parse(&v(&["overhead", "--duration", "-3"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run", "--app", "bfs", "stray"])).is_err());
    }

    #[test]
    fn system_aliases() {
        assert_eq!(parse_system("4a100").unwrap(), SystemId::Intel4A100);
        assert_eq!(parse_system("A100").unwrap(), SystemId::IntelA100);
        assert!(parse_system("epyc").is_err());
    }

    #[test]
    fn variance_parses_with_default_replicates() {
        let cmd = parse(&v(&["variance", "--app", "srad"])).unwrap();
        assert_eq!(
            cmd,
            Command::Variance {
                app: AppId::Srad,
                replicates: 5
            }
        );
        assert!(parse(&v(&["variance", "--app", "srad", "--replicates", "0"])).is_err());
        assert_eq!(parse(&v(&["powercap"])), Ok(Command::Powercap));
        assert_eq!(parse(&v(&["amd"])), Ok(Command::Amd));
    }

    #[test]
    fn overhead_duration_default() {
        let cmd = parse(&v(&["overhead"])).unwrap();
        assert_eq!(
            cmd,
            Command::Overhead {
                system: SystemId::IntelA100,
                duration_s: 120.0
            }
        );
    }

    #[test]
    fn usage_mentions_all_commands() {
        let u = usage();
        for word in ["run", "compare", "suite", "overhead", "sweep", "list", "powercap", "variance", "amd"] {
            assert!(u.contains(word), "{word}");
        }
    }
}
