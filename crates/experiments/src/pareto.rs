//! Pareto-frontier extraction for the §6.4 threshold sensitivity analysis.

use serde::{Deserialize, Serialize};

/// One configuration's outcome in (runtime, energy) space, both
/// to-be-minimised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Configuration label, e.g. `"inc=300 dec=500 hf=0.4"`.
    pub label: String,
    /// Runtime (s).
    pub runtime_s: f64,
    /// Total energy (J).
    pub energy_j: f64,
}

impl ParetoPoint {
    /// Project an engine outcome onto the (runtime, energy) plane.
    #[must_use]
    pub fn from_outcome(label: impl Into<String>, outcome: &crate::engine::TrialOutcome) -> Self {
        Self {
            label: label.into(),
            runtime_s: outcome.result.summary.runtime_s,
            energy_j: outcome.result.summary.energy.total_j(),
        }
    }

    /// Project a streaming summary digest onto the (runtime, energy) plane.
    #[must_use]
    pub fn from_brief(label: impl Into<String>, brief: &crate::engine::TrialBrief) -> Self {
        Self {
            label: label.into(),
            runtime_s: brief.summary.runtime_s,
            energy_j: brief.summary.energy.total_j(),
        }
    }

    /// True when `self` dominates `other` (no worse on both axes, strictly
    /// better on at least one).
    #[must_use]
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.runtime_s <= other.runtime_s && self.energy_j <= other.energy_j;
        let better = self.runtime_s < other.runtime_s || self.energy_j < other.energy_j;
        no_worse && better
    }
}

/// Extract the Pareto frontier (minimising both axes), sorted by runtime.
#[must_use]
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut frontier: Vec<ParetoPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s));
    frontier.dedup_by(|a, b| a.runtime_s == b.runtime_s && a.energy_j == b.energy_j);
    frontier
}

/// Distance of a point from the frontier, normalised per axis by the
/// frontier's spans — 0 when the point is on the frontier. Used to verify
/// the paper's claim that the common threshold set sits "on or close to"
/// every application's frontier.
#[must_use]
pub fn distance_to_frontier(point: &ParetoPoint, frontier: &[ParetoPoint]) -> f64 {
    if frontier.is_empty() {
        return 0.0;
    }
    let rt_span = frontier
        .iter()
        .map(|p| p.runtime_s)
        .fold(f64::NEG_INFINITY, f64::max)
        - frontier
            .iter()
            .map(|p| p.runtime_s)
            .fold(f64::INFINITY, f64::min);
    let en_span = frontier
        .iter()
        .map(|p| p.energy_j)
        .fold(f64::NEG_INFINITY, f64::max)
        - frontier
            .iter()
            .map(|p| p.energy_j)
            .fold(f64::INFINITY, f64::min);
    let rt_span = if rt_span <= 0.0 {
        point.runtime_s.max(1e-9)
    } else {
        rt_span
    };
    let en_span = if en_span <= 0.0 {
        point.energy_j.max(1e-9)
    } else {
        en_span
    };
    frontier
        .iter()
        .map(|p| {
            let dr = ((point.runtime_s - p.runtime_s) / rt_span).max(0.0);
            let de = ((point.energy_j - p.energy_j) / en_span).max(0.0);
            (dr * dr + de * de).sqrt()
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(label: &str, rt: f64, en: f64) -> ParetoPoint {
        ParetoPoint {
            label: label.into(),
            runtime_s: rt,
            energy_j: en,
        }
    }

    #[test]
    fn dominance_relation() {
        assert!(p("a", 1.0, 1.0).dominates(&p("b", 2.0, 2.0)));
        assert!(p("a", 1.0, 2.0).dominates(&p("b", 1.0, 3.0)));
        assert!(!p("a", 1.0, 3.0).dominates(&p("b", 2.0, 1.0)));
        assert!(!p("a", 1.0, 1.0).dominates(&p("b", 1.0, 1.0)));
    }

    #[test]
    fn frontier_filters_dominated() {
        let pts = vec![
            p("fast-hungry", 1.0, 10.0),
            p("slow-frugal", 10.0, 1.0),
            p("balanced", 4.0, 4.0),
            p("dominated", 5.0, 5.0),
            p("worst", 12.0, 12.0),
        ];
        let f = pareto_frontier(&pts);
        let labels: Vec<&str> = f.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["fast-hungry", "balanced", "slow-frugal"]);
    }

    #[test]
    fn frontier_of_single_point() {
        let pts = vec![p("only", 1.0, 1.0)];
        assert_eq!(pareto_frontier(&pts).len(), 1);
    }

    #[test]
    fn frontier_point_has_zero_distance() {
        let pts = vec![p("a", 1.0, 10.0), p("b", 10.0, 1.0), p("c", 5.0, 5.0)];
        let f = pareto_frontier(&pts);
        for point in &f {
            assert!(distance_to_frontier(point, &f) < 1e-9);
        }
    }

    #[test]
    fn off_frontier_distance_positive_and_ordered() {
        let f = vec![p("a", 1.0, 10.0), p("b", 10.0, 1.0)];
        let near = distance_to_frontier(&p("near", 2.0, 10.5), &f);
        let far = distance_to_frontier(&p("far", 8.0, 12.0), &f);
        assert!(near > 0.0);
        assert!(far > near);
    }

    #[test]
    fn empty_inputs() {
        assert!(pareto_frontier(&[]).is_empty());
        assert_eq!(distance_to_frontier(&p("x", 1.0, 1.0), &[]), 0.0);
    }
}
