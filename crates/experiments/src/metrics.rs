//! Evaluation metrics (§5): performance loss, power saving, energy saving —
//! all relative to the stock baseline — plus the §6.3 Jaccard burst score.

use magus_hetsim::{RunSummary, TraceSample};
use serde::{Deserialize, Serialize};

/// One method's results compared to the baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Percentage increase in execution time vs baseline (positive = slower).
    pub perf_loss_pct: f64,
    /// Average reduction in CPU package + DRAM power vs baseline (%).
    pub power_saving_pct: f64,
    /// Reduction in total energy (CPU package + DRAM + GPU board) vs
    /// baseline (%). Negative when the method costs energy overall.
    pub energy_saving_pct: f64,
}

impl Comparison {
    /// Compare `run` against `baseline`.
    #[must_use]
    pub fn against(baseline: &RunSummary, run: &RunSummary) -> Self {
        let perf_loss_pct = pct_change(baseline.runtime_s, run.runtime_s);
        let power_saving_pct = -pct_change(baseline.mean_cpu_w, run.mean_cpu_w);
        let energy_saving_pct = -pct_change(baseline.energy.total_j(), run.energy.total_j());
        Self {
            perf_loss_pct,
            power_saving_pct,
            energy_saving_pct,
        }
    }
}

/// Percentage change from `from` to `to` (positive = increase).
#[must_use]
pub fn pct_change(from: f64, to: f64) -> f64 {
    if from.abs() < 1e-12 {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

/// Jaccard similarity of memory-throughput *burst intervals* between two
/// recorded traces (§6.3).
///
/// Each trace is binarised — a sample is a "burst" when its delivered
/// throughput exceeds `threshold_gbs` — then resampled onto a common
/// normalised-**progress** axis: equal application progress identifies the
/// same point in the program, so runs stretched by governor decisions stay
/// aligned burst-for-burst. The score is `|A ∧ B| / |A ∨ B|`. A burst that
/// one policy *starved* below the threshold (e.g. initialisation bursts
/// served at the idle uncore frequency during MAGUS's warm-up) counts
/// against the overlap — exactly the effect the paper credits for
/// fdtd2d's low score. Returns 1.0 when neither trace ever bursts.
#[must_use]
pub fn burst_jaccard(a: &[TraceSample], b: &[TraceSample], threshold_gbs: f64) -> f64 {
    const BUCKETS: usize = 512;
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let resample = |trace: &[TraceSample]| -> Vec<bool> {
        let total = trace.last().map_or(0.0, |s| s.progress_s).max(1e-9);
        let mut out = Vec::with_capacity(BUCKETS);
        let mut idx = 0usize;
        for i in 0..BUCKETS {
            let target = i as f64 / (BUCKETS - 1) as f64 * total;
            while idx + 1 < trace.len() && trace[idx].progress_s < target {
                idx += 1;
            }
            out.push(trace[idx].mem_gbs > threshold_gbs);
        }
        out
    };
    let in_a = resample(a);
    let in_b = resample(b);
    let mut intersection = 0u64;
    let mut union = 0u64;
    for i in 0..BUCKETS {
        if in_a[i] && in_b[i] {
            intersection += 1;
        }
        if in_a[i] || in_b[i] {
            union += 1;
        }
    }
    if union == 0 {
        1.0
    } else {
        intersection as f64 / union as f64
    }
}

/// Default §6.3 burst threshold: half the peak throughput seen in the
/// baseline trace.
#[must_use]
pub fn default_burst_threshold(baseline: &[TraceSample]) -> f64 {
    0.5 * baseline.iter().map(|s| s.mem_gbs).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_hetsim::power::EnergyTotals;

    fn summary(runtime_s: f64, cpu_w: f64, total_j: f64) -> RunSummary {
        let mut energy = EnergyTotals::default();
        energy.core_j = total_j; // park everything in one domain
        energy.elapsed_s = runtime_s;
        RunSummary {
            app: "x".into(),
            system: "y".into(),
            runtime_s,
            completed: true,
            energy,
            mean_cpu_w: cpu_w,
            mean_total_w: total_j / runtime_s,
            uncore_transitions: 0,
            monitor_reads: 0,
            monitor_writes: 0,
        }
    }

    fn sample_at(progress_s: f64, mem_gbs: f64) -> TraceSample {
        TraceSample {
            t_s: progress_s,
            progress_s,
            mem_gbs,
            demand_gbs: mem_gbs,
            uncore_ghz: 2.2,
            core_freq_ghz: 2.0,
            gpu_clock_mhz: 1000.0,
            pkg_w: 100.0,
            dram_w: 20.0,
            gpu_w: 200.0,
            overhead_w: 0.0,
        }
    }

    #[test]
    fn comparison_signs() {
        let base = summary(100.0, 200.0, 40_000.0);
        let better = summary(103.0, 160.0, 35_000.0);
        let c = Comparison::against(&base, &better);
        assert!((c.perf_loss_pct - 3.0).abs() < 1e-9);
        assert!((c.power_saving_pct - 20.0).abs() < 1e-9);
        assert!((c.energy_saving_pct - 12.5).abs() < 1e-9);
    }

    #[test]
    fn negative_savings_when_worse() {
        let base = summary(100.0, 200.0, 40_000.0);
        let worse = summary(100.0, 210.0, 42_000.0);
        let c = Comparison::against(&base, &worse);
        assert!(c.power_saving_pct < 0.0);
        assert!(c.energy_saving_pct < 0.0);
    }

    #[test]
    fn pct_change_zero_base() {
        assert_eq!(pct_change(0.0, 10.0), 0.0);
    }

    /// A periodic burst trace over a progress axis: `n` samples with
    /// bursts of width `w` every `period` units of progress, optionally
    /// starving (below-threshold) the first `skip` bursts.
    fn burst_trace(n: usize, period: usize, w: usize, skip_bursts: usize) -> Vec<TraceSample> {
        (0..n)
            .map(|i| {
                let in_burst = i % period < w && i / period >= skip_bursts;
                sample_at(i as f64, if in_burst { 80.0 } else { 5.0 })
            })
            .collect()
    }

    #[test]
    fn jaccard_identical_traces_is_one() {
        let trace = burst_trace(400, 40, 10, 0);
        assert_eq!(burst_jaccard(&trace, &trace, 40.0), 1.0);
    }

    #[test]
    fn jaccard_disjoint_bursts_is_low() {
        // Bursts at disjoint progress positions never overlap.
        let a = burst_trace(400, 100, 20, 0);
        let b: Vec<TraceSample> = (0..400)
            .map(|i| sample_at(i as f64, if (i + 50) % 100 < 20 { 80.0 } else { 5.0 }))
            .collect();
        assert!(burst_jaccard(&a, &b, 40.0) < 0.1);
    }

    #[test]
    fn jaccard_missing_bursts_lower_the_score() {
        let full = burst_trace(400, 40, 10, 0);
        let missing_two = burst_trace(400, 40, 10, 2);
        let j = burst_jaccard(&full, &missing_two, 40.0);
        assert!(j < 0.9, "j = {j}");
        assert!(j > 0.5, "j = {j}");
    }

    #[test]
    fn jaccard_invariant_to_time_stretch() {
        // The same bursts at the same *progress* positions but recorded at
        // a different wall-clock density (a stretched run) score perfectly.
        let a = burst_trace(400, 40, 10, 0);
        let b: Vec<TraceSample> = (0..800)
            .map(|i| {
                let p = i as f64 / 2.0; // double sampling density
                sample_at(p, if p % 40.0 < 10.0 { 80.0 } else { 5.0 })
            })
            .collect();
        // Scores stay near-perfect up to resampling granularity (the two
        // traces' total progress differs by half a sample).
        assert!(burst_jaccard(&a, &b, 40.0) > 0.9);
    }

    #[test]
    fn jaccard_no_bursts_is_one() {
        let a: Vec<TraceSample> = (0..100).map(|i| sample_at(i as f64, 1.0)).collect();
        assert_eq!(burst_jaccard(&a, &a, 40.0), 1.0);
        assert_eq!(burst_jaccard(&[], &a, 40.0), 1.0);
    }

    #[test]
    fn default_threshold_is_half_peak() {
        let a: Vec<TraceSample> = [10.0, 90.0, 30.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| sample_at(i as f64, v))
            .collect();
        assert!((default_burst_threshold(&a) - 45.0).abs() < 1e-12);
    }
}
