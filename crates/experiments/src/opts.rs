//! Shared engine-option parsing for every binary in the suite.
//!
//! The `magus` CLI and the bench bins all accept the same global engine
//! switches (`--jobs`, `--no-cache`, `--serial`, `--sim-path`,
//! `--telemetry`, `--faults`, `--no-dedup`) mirrored by the `MAGUS_*`
//! environment knobs that [`Engine::from_env`] reads. [`EngineOpts`] is the one typed home
//! for those flags: [`EngineOpts::take_from_args`] extracts them from any
//! argument vector (position-independent, leaving command-specific
//! arguments behind), [`EngineOpts::to_args`] serializes them back (the
//! round-trip test below replaces the N per-bin parser copies), and
//! [`EngineOpts::install_defaults`] + [`EngineOpts::build_engine`] apply
//! them. Bench bins get the whole pipeline in one call:
//! [`engine_from_cli`].

use std::path::PathBuf;

use magus_hetsim::FaultPlan;

use crate::engine::Engine;
use crate::harness::{set_default_fault_plan, set_default_sim_path, SimPath};

/// Global engine options, valid on every command of every bin.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineOpts {
    /// `--no-cache`: always simulate; don't read or write `results/cache`.
    pub no_cache: bool,
    /// `--serial`: run trials one at a time (results are bit-identical to
    /// the parallel default; this only trades wall time for quiet cores).
    pub serial: bool,
    /// `--jobs N`: pin the engine's worker pool to N threads (`0` = one
    /// per CPU). `None` uses the global rayon default, like `MAGUS_JOBS`
    /// unset. Explicit sizing makes bench numbers reproducible across
    /// machines.
    pub jobs: Option<usize>,
    /// `--telemetry <file>`: after the command, write the decision-event
    /// stream as JSON Lines to `<file>` and a Prometheus-text metrics
    /// snapshot beside it (`<file>` with extension `.prom`).
    pub telemetry: Option<PathBuf>,
    /// `--sim-path fast|reference`: force every trial built with default
    /// options onto one stepping path. CI's telemetry-regression job runs
    /// the suite under both and diffs the event streams (the JSONL and
    /// its `.prom` sibling must match byte-for-byte).
    pub sim_path: Option<SimPath>,
    /// `--faults <plan.json>`: load a [`FaultPlan`] and inject it into
    /// every trial of the command. The plan is validated on load and
    /// becomes part of each spec's content hash, so faulted trials never
    /// share cache entries with clean ones.
    pub faults: Option<PathBuf>,
    /// `--no-dedup`: step every fleet node live instead of sharing
    /// trajectories across identical (or phase-shifted) nodes. Results are
    /// bit-identical either way; the switch exists for differential runs
    /// and raw-kernel benchmarks. Mirrored by `MAGUS_FLEET_DEDUP=0`.
    pub no_dedup: bool,
}

/// Extract `--flag value` from an argument list, removing both tokens.
pub fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Extract a bare `--switch` from an argument list, removing it.
pub fn take_switch(args: &mut Vec<String>, switch: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == switch) {
        args.remove(pos);
        true
    } else {
        false
    }
}

impl EngineOpts {
    /// Extract every engine switch from `args` (anywhere on the command
    /// line), leaving non-engine arguments in place and in order.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for malformed values (`--jobs` that
    /// isn't a count, `--sim-path` that isn't `fast`/`reference`).
    pub fn take_from_args(args: &mut Vec<String>) -> Result<Self, String> {
        let jobs = take_flag(args, "--jobs")
            .map(|v| v.parse::<usize>())
            .transpose()
            .map_err(|_| "bad --jobs (expected a thread count, 0 = ncpus)".to_string())?;
        let telemetry = take_flag(args, "--telemetry").map(PathBuf::from);
        let sim_path = take_flag(args, "--sim-path")
            .map(|v| match v.to_ascii_lowercase().as_str() {
                "fast" => Ok(SimPath::Fast),
                "reference" | "ref" => Ok(SimPath::Reference),
                other => Err(format!(
                    "unknown --sim-path '{other}' (expected fast or reference)"
                )),
            })
            .transpose()?;
        let faults = take_flag(args, "--faults").map(PathBuf::from);
        Ok(Self {
            no_cache: take_switch(args, "--no-cache"),
            serial: take_switch(args, "--serial"),
            jobs,
            telemetry,
            sim_path,
            faults,
            no_dedup: take_switch(args, "--no-dedup"),
        })
    }

    /// Serialize back to the argument tokens [`EngineOpts::take_from_args`]
    /// consumes (the round-trip property the test below pins down).
    #[must_use]
    pub fn to_args(&self) -> Vec<String> {
        let mut args = Vec::new();
        if self.no_cache {
            args.push("--no-cache".to_string());
        }
        if self.serial {
            args.push("--serial".to_string());
        }
        if let Some(jobs) = self.jobs {
            args.push("--jobs".to_string());
            args.push(jobs.to_string());
        }
        if let Some(path) = &self.telemetry {
            args.push("--telemetry".to_string());
            args.push(path.display().to_string());
        }
        if let Some(path) = self.sim_path {
            args.push("--sim-path".to_string());
            args.push(
                match path {
                    SimPath::Fast => "fast",
                    SimPath::Reference => "reference",
                }
                .to_string(),
            );
        }
        if let Some(path) = &self.faults {
            args.push("--faults".to_string());
            args.push(path.display().to_string());
        }
        if self.no_dedup {
            args.push("--no-dedup".to_string());
        }
        args
    }

    /// Install the process-wide defaults these options select: the
    /// `--sim-path` stepping path, the `--no-dedup` fleet-dedup override,
    /// and the `--faults` plan (loaded, validated — serde bypasses the
    /// builder, so [`FaultPlan::validate`] re-checks the constraints — and
    /// set as the default for every trial).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when the fault-plan file cannot be
    /// read, parsed, or validated.
    pub fn install_defaults(&self) -> Result<(), String> {
        if let Some(path) = self.sim_path {
            set_default_sim_path(path);
        }
        if self.no_dedup {
            // One-directional like the other switches: absent means "leave
            // the env-driven default alone", so MAGUS_FLEET_DEDUP still
            // works without any flag.
            crate::fleet::set_default_fleet_dedup(false);
        }
        let Some(path) = &self.faults else {
            return Ok(());
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--faults: cannot read {}: {e}", path.display()))?;
        let plan: FaultPlan = serde_json::from_str(&text)
            .map_err(|e| format!("--faults: {} is not a fault plan: {e}", path.display()))?;
        plan.validate()
            .map_err(|e| format!("--faults: invalid plan in {}: {e}", path.display()))?;
        if plan.is_empty() {
            eprintln!(
                "[engine] fault plan {} is empty: trials run clean",
                path.display()
            );
        } else {
            eprintln!(
                "[engine] injecting faults from {} (seed {})",
                path.display(),
                plan.seed
            );
        }
        set_default_fault_plan(Some(plan));
        Ok(())
    }

    /// Build the trial engine these options select, layered over the
    /// `MAGUS_*` environment (flags win over env).
    #[must_use]
    pub fn build_engine(&self) -> Engine {
        let mut engine = Engine::from_env();
        if self.no_cache {
            engine = engine.without_cache();
        }
        if self.serial {
            engine = engine.serial();
        }
        if let Some(jobs) = self.jobs {
            engine = engine.with_jobs(jobs);
        }
        engine
    }
}

/// The whole pipeline for bench bins: parse the engine switches off this
/// process's argument vector, install the defaults they select, and build
/// the engine. Returns the engine, the parsed options, and the remaining
/// (non-engine) arguments. Exits with status 2 on a malformed switch —
/// bench bins have no usage screen of their own.
#[must_use]
pub fn engine_from_cli(bin: &str) -> (Engine, EngineOpts, Vec<String>) {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match EngineOpts::take_from_args(&mut args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{bin}: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = opts.install_defaults() {
        eprintln!("{bin}: {e}");
        std::process::exit(2);
    }
    (opts.build_engine(), opts, args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn engine_opts_round_trip_through_args() {
        let opts = EngineOpts {
            no_cache: true,
            serial: true,
            jobs: Some(4),
            telemetry: Some(PathBuf::from("out/t.jsonl")),
            sim_path: Some(SimPath::Reference),
            faults: Some(PathBuf::from("plan.json")),
            no_dedup: true,
        };
        let mut args = opts.to_args();
        // Command-specific arguments survive extraction, in order.
        args.insert(0, "fleet".to_string());
        args.push("--nodes".to_string());
        args.push("64".to_string());
        let parsed = EngineOpts::take_from_args(&mut args).unwrap();
        assert_eq!(parsed, opts);
        assert_eq!(args, v(&["fleet", "--nodes", "64"]));

        // And the empty default round-trips to no tokens at all.
        assert!(EngineOpts::default().to_args().is_empty());
        let mut none = v(&["suite"]);
        assert_eq!(
            EngineOpts::take_from_args(&mut none).unwrap(),
            EngineOpts::default()
        );
        assert_eq!(none, v(&["suite"]));
    }

    #[test]
    fn switches_parse_anywhere_on_the_line() {
        let mut args = v(&["--serial", "suite", "--no-cache", "--jobs", "0"]);
        let opts = EngineOpts::take_from_args(&mut args).unwrap();
        assert!(opts.serial && opts.no_cache);
        assert_eq!(opts.jobs, Some(0), "0 means one worker per CPU");
        assert_eq!(args, v(&["suite"]));
    }

    #[test]
    fn malformed_values_error_cleanly() {
        let mut args = v(&["--jobs", "many", "suite"]);
        let err = EngineOpts::take_from_args(&mut args).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        let mut args = v(&["suite", "--sim-path", "warp"]);
        let err = EngineOpts::take_from_args(&mut args).unwrap_err();
        assert!(err.contains("--sim-path"), "{err}");
    }

    #[test]
    fn sim_path_accepts_the_ref_alias() {
        let mut args = v(&["--sim-path", "ref"]);
        let opts = EngineOpts::take_from_args(&mut args).unwrap();
        assert_eq!(opts.sim_path, Some(SimPath::Reference));
        // `to_args` canonicalizes to the long spelling.
        assert_eq!(opts.to_args(), v(&["--sim-path", "reference"]));
    }

    #[test]
    fn missing_fault_file_surfaces_a_readable_error() {
        let opts = EngineOpts {
            faults: Some(PathBuf::from("/nonexistent/magus-fault-plan.json")),
            ..EngineOpts::default()
        };
        let err = opts.install_defaults().unwrap_err();
        assert!(err.contains("--faults"), "{err}");
        assert!(err.contains("magus-fault-plan.json"), "{err}");
    }
}
