//! Robustness study: how gracefully each governor degrades when the
//! sensor/actuator stack misbehaves.
//!
//! The study sweeps a small ladder of [`FaultIntensity`] tiers — each a
//! fixed, seeded [`FaultPlan`] — across the Fig 4a application catalog
//! with all three policies (stock, MAGUS, UPS). Within every tier each
//! governor is compared against the *same-tier* stock baseline, so the
//! comparison isolates the governor's response to faults from the faults'
//! direct effect on the workload. The headline numbers are the suite-mean
//! energy-saving and perf-loss deltas of each faulted tier against the
//! clean tier: a robust governor keeps both deltas near zero.
//!
//! Reproduce the published table with:
//!
//! ```text
//! cargo run --release -p magus-bench --bin robustness > results/robustness.txt
//! ```

use magus_hetsim::FaultPlan;
use magus_workloads::{fig4a_suite, AppId};
use serde::{Deserialize, Serialize};

use crate::engine::{Engine, TrialSpec};
use crate::figures::AppEval;
use crate::harness::SystemId;
use crate::metrics::Comparison;
use crate::report::render_fig4_table;

/// One rung of the fault-intensity ladder. Every tier maps to a fixed,
/// seeded [`FaultPlan`] (see [`FaultIntensity::plan`]), so the study is
/// reproducible bit-for-bit and each tier hashes to distinct cache
/// entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultIntensity {
    /// No injected faults: the Fig 4a evaluation, reused as the anchor.
    Clean,
    /// Rare dropouts and a small actuation delay.
    Low,
    /// Dropouts, stale reads, spikes, occasional MSR write failures,
    /// and a decision-period-scale actuation delay.
    Medium,
    /// Dense everything plus extra sensor noise: several faults per
    /// decision period.
    High,
}

impl FaultIntensity {
    /// All tiers, in sweep order (clean first — the delta anchor).
    pub const ALL: [FaultIntensity; 4] = [
        FaultIntensity::Clean,
        FaultIntensity::Low,
        FaultIntensity::Medium,
        FaultIntensity::High,
    ];

    /// Human-readable tier name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultIntensity::Clean => "clean",
            FaultIntensity::Low => "low",
            FaultIntensity::Medium => "medium",
            FaultIntensity::High => "high",
        }
    }

    /// The tier's fault plan. Fault periods are odd so that per-socket
    /// MSR write bursts (two writes per `set_max` on Intel + A100) are
    /// not pinned to the same phase every actuation, and each tier draws
    /// its noise from a distinct seed.
    #[must_use]
    pub fn plan(self) -> FaultPlan {
        let plan = match self {
            FaultIntensity::Clean => return FaultPlan::default(),
            FaultIntensity::Low => FaultPlan::builder()
                .seed(101)
                .pcm_dropout_every(63)
                .actuation_delay_us(5_000),
            FaultIntensity::Medium => FaultPlan::builder()
                .seed(102)
                .pcm_dropout_every(23)
                .pcm_stale_every(41)
                .pcm_spike(33, 0.3)
                .uncore_write_fail_every(9)
                .actuation_delay_us(20_000),
            FaultIntensity::High => FaultPlan::builder()
                .seed(103)
                .pcm_dropout_every(9)
                .pcm_stale_every(13)
                .pcm_extra_noise_rel(0.05)
                .pcm_spike(11, 0.6)
                .uncore_write_fail_every(5)
                .actuation_delay_us(50_000),
        };
        plan.build().expect("intensity plans are valid")
    }
}

/// One tier's evaluation: the per-app Fig 4-style rows (each governor vs
/// the same-tier stock baseline) plus the injected-fault volume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustnessEval {
    /// The fault tier these rows ran under.
    pub intensity: FaultIntensity,
    /// Per-app MAGUS/UPS comparisons against the same-tier baseline.
    pub rows: Vec<AppEval>,
    /// Total faults injected across all trials of this tier.
    pub injected_faults: u64,
}

/// Suite-mean digest of one tier, with deltas against the clean tier.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RobustnessSummary {
    /// The fault tier.
    pub intensity: FaultIntensity,
    /// Total faults injected across the tier's trials.
    pub injected_faults: u64,
    /// Suite-mean MAGUS comparison vs the same-tier baseline.
    pub magus: Comparison,
    /// Suite-mean UPS comparison vs the same-tier baseline.
    pub ups: Comparison,
    /// MAGUS energy-saving change vs the clean tier (percentage points;
    /// negative = faults cost savings).
    pub magus_energy_delta: f64,
    /// MAGUS perf-loss change vs the clean tier (percentage points;
    /// positive = faults cost performance).
    pub magus_perf_delta: f64,
    /// UPS energy-saving change vs the clean tier (percentage points).
    pub ups_energy_delta: f64,
    /// UPS perf-loss change vs the clean tier (percentage points).
    pub ups_perf_delta: f64,
}

/// The robustness sweep over an explicit app list. One flat spec batch
/// (tier × app × policy) through the engine, reduced from streaming
/// digests in spec order.
#[must_use]
pub fn robustness_study_for_apps(
    engine: &Engine,
    system: SystemId,
    apps: &[AppId],
) -> Vec<RobustnessEval> {
    let specs: Vec<TrialSpec> = FaultIntensity::ALL
        .iter()
        .flat_map(|tier| {
            let plan = tier.plan();
            apps.iter().flat_map(move |&app| {
                crate::figures::eval_specs(system, app).map(|spec| spec.with_faults(plan))
            })
        })
        .collect();
    let briefs = engine.run_brief(&specs);
    FaultIntensity::ALL
        .iter()
        .zip(briefs.chunks_exact(3 * apps.len()))
        .map(|(&intensity, tier_briefs)| RobustnessEval {
            intensity,
            rows: apps
                .iter()
                .zip(tier_briefs.chunks_exact(3))
                .map(|(&app, chunk)| crate::figures::eval_from_briefs(app, chunk))
                .collect(),
            injected_faults: tier_briefs.iter().map(|b| b.fault_counters.total()).sum(),
        })
        .collect()
}

/// The full robustness study on a system's Fig 4a catalog.
#[must_use]
pub fn robustness_study(engine: &Engine, system: SystemId) -> Vec<RobustnessEval> {
    robustness_study_for_apps(engine, system, &fig4a_suite())
}

fn mean_comparison(rows: &[AppEval], pick: impl Fn(&AppEval) -> Comparison) -> Comparison {
    let n = rows.len().max(1) as f64;
    let mut sum = Comparison {
        perf_loss_pct: 0.0,
        power_saving_pct: 0.0,
        energy_saving_pct: 0.0,
    };
    for row in rows {
        let c = pick(row);
        sum.perf_loss_pct += c.perf_loss_pct;
        sum.power_saving_pct += c.power_saving_pct;
        sum.energy_saving_pct += c.energy_saving_pct;
    }
    sum.perf_loss_pct /= n;
    sum.power_saving_pct /= n;
    sum.energy_saving_pct /= n;
    sum
}

/// Reduce tier evaluations to suite means and clean-anchored deltas.
/// Expects the clean tier first, as produced by [`robustness_study`].
#[must_use]
pub fn summarize(evals: &[RobustnessEval]) -> Vec<RobustnessSummary> {
    let zero = Comparison {
        perf_loss_pct: 0.0,
        power_saving_pct: 0.0,
        energy_saving_pct: 0.0,
    };
    let clean_magus = evals
        .first()
        .map(|e| mean_comparison(&e.rows, |r| r.magus))
        .unwrap_or(zero);
    let clean_ups = evals
        .first()
        .map(|e| mean_comparison(&e.rows, |r| r.ups))
        .unwrap_or(zero);
    evals
        .iter()
        .map(|eval| {
            let magus = mean_comparison(&eval.rows, |r| r.magus);
            let ups = mean_comparison(&eval.rows, |r| r.ups);
            RobustnessSummary {
                intensity: eval.intensity,
                injected_faults: eval.injected_faults,
                magus,
                ups,
                magus_energy_delta: magus.energy_saving_pct - clean_magus.energy_saving_pct,
                magus_perf_delta: magus.perf_loss_pct - clean_magus.perf_loss_pct,
                ups_energy_delta: ups.energy_saving_pct - clean_ups.energy_saving_pct,
                ups_perf_delta: ups.perf_loss_pct - clean_ups.perf_loss_pct,
            }
        })
        .collect()
}

/// Render the full robustness report: one Fig 4-style table per tier,
/// then the suite-mean delta summary.
#[must_use]
pub fn render_robustness_report(system_name: &str, evals: &[RobustnessEval]) -> String {
    let mut out = String::new();
    for eval in evals {
        out.push_str(&render_fig4_table(
            &format!(
                "Robustness ({system_name}): {} faults",
                eval.intensity.name()
            ),
            &eval.rows,
        ));
        out.push('\n');
    }
    out.push_str(&format!(
        "== Robustness ({system_name}): suite-mean deltas vs clean ==\n"
    ));
    out.push_str(&format!(
        "{:<10} {:>8} | {:>9} {:>8} {:>9} {:>8} | {:>9} {:>8} {:>9} {:>8}\n",
        "intensity",
        "faults",
        "MAGUS",
        "Δen-sv",
        "loss%",
        "Δloss",
        "UPS",
        "Δen-sv",
        "loss%",
        "Δloss"
    ));
    out.push_str(&format!(
        "{:<10} {:>8} | {:>9} {:>8} {:>9} {:>8} | {:>9} {:>8} {:>9} {:>8}\n",
        "", "", "en-sv%", "", "", "", "en-sv%", "", "", ""
    ));
    for s in summarize(evals) {
        out.push_str(&format!(
            "{:<10} {:>8} | {:>9.2} {:>8.2} {:>9.2} {:>8.2} | {:>9.2} {:>8.2} {:>9.2} {:>8.2}\n",
            s.intensity.name(),
            s.injected_faults,
            s.magus.energy_saving_pct,
            s.magus_energy_delta,
            s.magus.perf_loss_pct,
            s.magus_perf_delta,
            s.ups.energy_saving_pct,
            s.ups_energy_delta,
            s.ups.perf_loss_pct,
            s.ups_perf_delta,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_plans_are_valid_and_distinct() {
        assert!(FaultIntensity::Clean.plan().is_empty());
        let mut seeds = Vec::new();
        for tier in [
            FaultIntensity::Low,
            FaultIntensity::Medium,
            FaultIntensity::High,
        ] {
            let plan = tier.plan();
            assert!(!plan.is_empty(), "{} plan must inject faults", tier.name());
            plan.validate().expect("tier plan validates");
            seeds.push(plan.seed);
        }
        seeds.dedup();
        assert_eq!(seeds.len(), 3, "tiers must use distinct fault seeds");
    }

    #[test]
    fn study_compares_within_tier_and_counts_faults() {
        let engine = Engine::ephemeral();
        let apps = [AppId::Bfs, AppId::Srad];
        let evals = robustness_study_for_apps(&engine, SystemId::IntelA100, &apps);
        assert_eq!(evals.len(), FaultIntensity::ALL.len());
        for eval in &evals {
            assert_eq!(eval.rows.len(), apps.len());
        }
        assert_eq!(evals[0].intensity, FaultIntensity::Clean);
        assert_eq!(evals[0].injected_faults, 0, "clean tier injects nothing");
        let high = evals.last().expect("high tier present");
        assert!(
            high.injected_faults > 20,
            "high tier must inject faults, got {}",
            high.injected_faults
        );

        let summaries = summarize(&evals);
        assert_eq!(summaries[0].magus_energy_delta, 0.0);
        assert_eq!(summaries[0].ups_perf_delta, 0.0);
        // Even at the highest tier the degraded governors keep working:
        // savings move, but stay within a sane band of the clean run.
        let worst = summaries.last().expect("high summary");
        assert!(
            worst.magus_energy_delta.abs() < 20.0,
            "MAGUS energy delta under faults: {}",
            worst.magus_energy_delta
        );

        let report = render_robustness_report("Intel + A100", &evals);
        assert!(report.contains("== Robustness (Intel + A100): high faults =="));
        assert!(report.contains("suite-mean deltas vs clean"));
    }
}
