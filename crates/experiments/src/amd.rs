//! AMD port of the MAGUS driver: identical decision core, HSMP actuation.
//!
//! The §6.6 portability argument made concrete: nothing in MAGUS's logic
//! is Intel-specific. [`HsmpMagusDriver`] reuses [`MagusCore`] verbatim and
//! differs from the Intel driver only in its actuation path — fabric
//! P-state mailbox messages instead of `wrmsr 0x620` — and in being
//! quantised to the discrete P-state table (a no-op for a two-level
//! controller).

use magus_hetsim::Simulation;
use magus_hsmp::{transact, FabricPstateTable, HsmpMessage};
use magus_pcm::{NodeThroughputProbe, ThroughputSource};
use magus_runtime::{MagusConfig, MagusCore, Telemetry, UncoreLevel};

use crate::drivers::RuntimeDriver;

/// MAGUS bound to an AMD node through the HSMP mailbox.
#[derive(Debug)]
pub struct HsmpMagusDriver {
    core: MagusCore,
    table: FabricPstateTable,
    last_pstate: Option<u8>,
    last_sample_mbs: f64,
    monitor_only: bool,
}

impl HsmpMagusDriver {
    /// Driver with the given MAGUS configuration and fabric table.
    #[must_use]
    pub fn new(cfg: MagusConfig, table: FabricPstateTable) -> Self {
        assert!(!table.is_empty(), "fabric P-state table must not be empty");
        Self {
            core: MagusCore::with_log(cfg),
            table,
            last_pstate: None,
            last_sample_mbs: 0.0,
            monitor_only: false,
        }
    }

    /// Paper-default thresholds on the default EPYC table.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(MagusConfig::default(), FabricPstateTable::epyc_default())
    }

    /// Decision telemetry.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        self.core.telemetry()
    }

    fn set_pstate(&mut self, sim: &mut Simulation, pstate: u8) {
        if self.monitor_only || self.last_pstate == Some(pstate) {
            return;
        }
        for socket in 0..sim.node().config().sockets {
            transact(
                sim.node_mut(),
                &self.table,
                socket,
                HsmpMessage::SetDfPstate(pstate),
            )
            .expect("HSMP actuation");
        }
        self.last_pstate = Some(pstate);
    }
}

impl RuntimeDriver for HsmpMagusDriver {
    fn name(&self) -> &str {
        "MAGUS/HSMP"
    }

    fn attach(&mut self, sim: &mut Simulation) {
        // Idle nodes park the fabric in the deepest P-state (§4's policy,
        // translated); warm-up takes no actions.
        let deepest = (self.table.len() - 1) as u8;
        self.set_pstate(sim, deepest);
    }

    fn on_decision(&mut self, sim: &mut Simulation) -> u64 {
        let _ = sim.node_mut().ledger_mut().drain();
        let sample = {
            let mut probe = NodeThroughputProbe::new(sim.node_mut());
            probe.sample_mbs().unwrap_or(self.last_sample_mbs)
        };
        self.last_sample_mbs = sample;
        #[cfg(feature = "telemetry")]
        let log_len_before = self.core.telemetry().log.len();
        let action = self.core.on_sample(sample);
        match action.target() {
            Some(UncoreLevel::Upper) => self.set_pstate(sim, 0),
            Some(UncoreLevel::Lower) => self.set_pstate(sim, (self.table.len() - 1) as u8),
            None => {}
        }
        // Same decision-event taxonomy as the Intel driver; only the
        // actuation path differs, and that is visible as `hsmp` here.
        #[cfg(feature = "telemetry")]
        if let Some(rec) = self.core.telemetry().log.last().copied() {
            if self.core.telemetry().log.len() > log_len_before {
                let t_us = sim.node().time_us();
                sim.node_mut().telemetry_mut().push_event(
                    magus_telemetry::Event::new(t_us, "magus_decision")
                        .with("cycle", rec.cycle)
                        .with("sample_mbs", rec.sample_mbs)
                        .with("trend", crate::drivers::trend_name(rec.trend))
                        .with("tune_event", rec.tune_event)
                        .with("high_freq", rec.high_freq)
                        .with("action", crate::drivers::action_name(rec.action))
                        .with("actuation", "hsmp"),
                );
            }
        }
        sim.node_mut().ledger_mut().drain().latency_us.round() as u64
    }

    fn rest_interval_us(&self) -> u64 {
        self.core.config().monitor_interval_us
    }

    fn set_monitor_only(&mut self, on: bool) {
        self.monitor_only = on;
    }

    fn high_freq_fraction(&self) -> Option<f64> {
        Some(self.core.telemetry().high_freq_fraction())
    }
}

/// Convenience: evaluate MAGUS-over-HSMP against the stock baseline on the
/// AMD preset for one application.
pub fn evaluate_amd(
    engine: &crate::engine::Engine,
    app: magus_workloads::AppId,
) -> (crate::metrics::Comparison, magus_hetsim::RunSummary) {
    use crate::engine::{GovernorSpec, TrialSpec};
    let outs = engine.run_suite(&[
        TrialSpec::amd(app, GovernorSpec::Default),
        TrialSpec::amd(app, GovernorSpec::magus_hsmp_default()),
    ]);
    let [base, run] = <[_; 2]>::try_from(outs).expect("two outcomes");
    (
        crate::metrics::Comparison::against(&base.result.summary, &run.result.summary),
        run.result.summary,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{TrialBuilder, TrialOpts};
    use magus_workloads::{app_trace, AppId, Platform};

    fn amd_trace(app: AppId) -> magus_hetsim::AppTrace {
        // The AMD node's fabric caps bandwidth lower than the Intel hosts;
        // the single-GPU workload set transfers at the same scale.
        app_trace(app, Platform::IntelA100)
    }

    #[test]
    fn magus_over_hsmp_saves_energy_with_bounded_loss() {
        let (cmp, summary) = evaluate_amd(&crate::engine::Engine::ephemeral(), AppId::Bfs);
        assert!(summary.completed);
        assert!(cmp.perf_loss_pct < 5.0, "loss {}", cmp.perf_loss_pct);
        assert!(
            cmp.energy_saving_pct > 3.0,
            "saving {}",
            cmp.energy_saving_pct
        );
    }

    #[test]
    fn driver_actuates_discrete_pstates_only() {
        let cfg = magus_hsmp::amd_epyc_mi210();
        let mut driver = HsmpMagusDriver::with_defaults();
        let r = TrialBuilder::custom(cfg)
            .trace(amd_trace(AppId::Cfd))
            .opts(TrialOpts::recorded())
            .run(&mut driver);
        assert!(r.summary.completed);
        let table = FabricPstateTable::epyc_default();
        // Sampled fabric clocks settle only on table points (transitions
        // excepted: tolerate in-flight slews by checking the modal values).
        let settled = r
            .samples
            .iter()
            .filter(|s| {
                table
                    .fclk_ghz
                    .iter()
                    .any(|&f| (s.uncore_ghz - f).abs() < 1e-6)
            })
            .count();
        assert!(
            settled * 10 >= r.samples.len() * 7,
            "only {settled}/{} samples on P-state points",
            r.samples.len()
        );
    }

    #[test]
    fn monitor_only_mode_freezes_fabric() {
        let cfg = magus_hsmp::amd_epyc_mi210();
        let mut driver = HsmpMagusDriver::with_defaults();
        driver.set_monitor_only(true);
        let r = TrialBuilder::custom(cfg)
            .trace(amd_trace(AppId::Bfs))
            .opts(TrialOpts::recorded())
            .run(&mut driver);
        let min = r
            .samples
            .iter()
            .map(|s| s.uncore_ghz)
            .fold(f64::INFINITY, f64::min);
        assert!(
            (min - 1.6).abs() < 1e-6,
            "fabric moved in monitor-only: {min}"
        );
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_table_rejected() {
        let _ = HsmpMagusDriver::new(
            MagusConfig::default(),
            FabricPstateTable { fclk_ghz: vec![] },
        );
    }
}
