//! Experiment harness: everything needed to regenerate the paper's
//! evaluation (§5–6).
//!
//! * [`engine`] — the trial-execution engine every experiment path goes
//!   through: a [`TrialSpec`] (system × workload × governor × thresholds ×
//!   seed) is content-hashed, scheduled over rayon with a deterministic
//!   (spec-order) reduction, and memoized in a JSON result cache under
//!   `results/cache/`; each run emits a manifest of hashes and hit/miss
//!   counts.
//! * [`drivers`] — runtime drivers binding MAGUS, UPS, fixed-frequency
//!   policies, and the stock baseline to the simulated node, with realistic
//!   invocation scheduling (measurement latency + rest interval).
//! * [`harness`] — the low-level executor for one (system × application ×
//!   runtime) trial, collecting a [`TrialResult`]: runtime, energy
//!   decomposition, power/throughput/uncore time series, decision
//!   telemetry. Prefer [`Engine::run`] — it adds caching and accounting.
//! * [`metrics`] — the paper's three evaluation metrics (performance loss,
//!   CPU power saving, total energy saving) plus the Jaccard burst-overlap
//!   score of §6.3.
//! * [`pareto`] — Pareto-frontier extraction for the §6.4 sensitivity
//!   sweep.
//! * [`overhead`] — the idle-node overhead measurement of §6.5 (Table 2).
//! * [`figures`] — one function per table/figure, producing the data the
//!   `magus-bench` binaries print.
//! * [`fleet`] — the fleet sweep: the catalog under each governor across
//!   an N-node lockstep fleet (`magus_hetsim::fleet`), with per-node
//!   drivers adapted to the fleet's decision callback.
//! * [`opts`] — the shared [`EngineOpts`] parser behind every binary's
//!   global engine switches (`--jobs`, `--no-cache`, `--serial`,
//!   `--sim-path`, `--telemetry`, `--faults`) and their `MAGUS_*`
//!   environment mirrors.
//! * [`report`] — plain-text table/series formatting shared by the bench
//!   binaries.
//! * [`amd`] — the §6.6 AMD port: the same MAGUS core actuating Infinity
//!   Fabric P-states through the HSMP mailbox.
//! * [`replicate`] — the paper's ≥5-repetition protocol: seeded replicates
//!   with mean ± std aggregation.
//! * [`powercap`] — the §6.1 power-budget argument quantified: uncore
//!   scaling as headroom under a RAPL package power limit.
//! * [`robustness`] — the fault-injection study: seeded sensor/actuator
//!   fault plans (`magus_hetsim::fault`) swept at increasing intensity
//!   across the catalog, measuring how each governor's savings and
//!   performance degrade relative to a clean run.
//! * [`traffic`] — the multi-tenant traffic study: seeded
//!   `magus_workloads::generator` traffic shapes (light/steady/diurnal/
//!   bursty) swept across governor fleets, measuring energy savings and
//!   deadline misses under load instead of on solo traces.
//!
//! Trials are deterministic; suite-level sweeps fan out across trials with
//! rayon (each trial owns its simulation, so parallelism is embarrassing),
//! and parallel suites reduce bit-identically to serial ones.

pub mod amd;
pub mod drivers;
pub mod engine;
pub mod figures;
pub mod fleet;
pub mod harness;
pub mod metrics;
pub mod opts;
pub mod overhead;
pub mod pareto;
pub mod powercap;
pub mod replicate;
pub mod report;
pub mod robustness;
pub mod traffic;

pub use drivers::{FixedUncoreDriver, MagusDriver, NoopDriver, RuntimeDriver, UpsDriver};
pub use engine::{
    spec_hash, Engine, ExecMode, GovernorSpec, RunManifest, SystemSel, TrialBrief, TrialOutcome,
    TrialSpec, WorkloadSel, ENGINE_SALT,
};
pub use fleet::{
    build_fleet, default_fleet_dedup, fleet_sweep, governor_run_opts, run_fleet, run_fleet_keeping,
    set_default_fleet_dedup, FleetRun, FleetSpec,
};
#[cfg(feature = "telemetry")]
pub use fleet::{fleet_telemetry_jsonl, run_fleet_with_telemetry};
pub use harness::{
    default_fault_plan, run_trial, set_default_fault_plan, SimPath, SystemId, TrialBuilder,
    TrialOpts, TrialResult,
};
pub use metrics::{burst_jaccard, Comparison};
pub use opts::{engine_from_cli, EngineOpts};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use traffic::{
    render_traffic_report, traffic_study, traffic_study_for_tiers, GovernorRow, TrafficEval,
    TrafficTier,
};
