//! Unified trial-execution engine: one typed [`TrialSpec`] API for every
//! experiment path, a rayon-backed scheduler with deterministic reduction,
//! and a content-addressed on-disk result cache.
//!
//! Every figure, table, sweep, CLI command, and bench binary describes its
//! work as a list of [`TrialSpec`]s — (system × workload × governor ×
//! thresholds × seed) — and hands it to an [`Engine`]:
//!
//! * **Parallel scheduling.** [`Engine::run_suite`] fans independent
//!   trials out over rayon and collects results *in spec order*, so the
//!   reduction is bit-identical to serial execution (each trial is a pure
//!   function of its spec; see `tests/determinism.rs`).
//! * **Content-addressed caching.** Each spec has a stable hash over its
//!   canonical JSON encoding plus a code-version salt ([`ENGINE_SALT`]).
//!   Outcomes are memoized as JSON under `results/cache/<hash>.json`:
//!   re-running `fig4a` after touching only plotting code skips all
//!   simulation, while any spec field change — or a salt bump — forces a
//!   recompute.
//! * **Streaming reduction.** [`Engine::run_mapped`] digests each
//!   [`TrialOutcome`] *inside the worker that produced it* (recorded
//!   samples and all), so only the caller's reduced value survives —
//!   peak resident outcomes stay O(workers) instead of O(trials), which
//!   is what makes 1000-trial fleet sweeps fit in memory.
//!   [`Engine::fold_suite`] goes further: outcomes stream to the caller's
//!   fold as soon as their rayon task finishes, merged deterministically
//!   in trial-index order. [`Engine::run_brief`] is the common digest
//!   (summary metrics, samples dropped).
//! * **Observability.** The engine records a per-run manifest
//!   ([`RunManifest`]): every spec's hash and label, cache hit/miss
//!   counts, and wall time, written next to the cache by
//!   [`Engine::finish`]. It also aggregates a metrics registry (trial,
//!   cache, and node counters; see [`Engine::telemetry_snapshot`]) and
//!   buffers every trial's decision-event stream for export as JSON
//!   Lines ([`Engine::telemetry_jsonl`], the CLI's `--telemetry`).
//!   Recorded values are sim-time-only and deterministic; wall-clock
//!   derived metrics live under the `diag/` prefix, which
//!   [`magus_telemetry::Snapshot::deterministic`] excludes.
//!
//! Environment knobs (read by [`Engine::from_env`]):
//! `MAGUS_CACHE=off` disables the cache, `MAGUS_CACHE_DIR` moves it,
//! `MAGUS_SERIAL=1` forces serial execution, and `MAGUS_JOBS=N` sizes the
//! engine's private rayon pool (0 = one thread per CPU), mirroring the
//! CLI's `--jobs`.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use magus_hetsim::{AppTrace, FaultCounters, FaultPlan, NodeConfig, RunSummary};
use magus_hsmp::FabricPstateTable;
use magus_runtime::MagusConfig;
use magus_telemetry::{Event, FieldValue, Registry, Snapshot};
use magus_ups::UpsConfig;
use magus_workloads::{app_trace, base_spec, AppId, Platform, TrafficSpec};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::amd::HsmpMagusDriver;
use crate::drivers::{FixedUncoreDriver, MagusDriver, NoopDriver, RuntimeDriver, UpsDriver};
use crate::harness::{default_fault_plan, SystemId, TrialBuilder, TrialOpts, TrialResult};

/// Code-version salt mixed into every spec hash. Bump the suffix whenever
/// a change alters simulation results without changing any [`TrialSpec`]
/// field — stale cache entries then miss by construction.
///
/// v4: fault injection landed — `TrialSpec` gained the `faults` field and
/// `TrialResult` the fault counters, so pre-fault cache entries must miss.
///
/// v5: the traffic generator landed — `WorkloadSel` gained the
/// `Traffic(TrafficSpec)` variant and `TrialBrief`/`FleetSummary` grew
/// deadline/tenant-energy fields, so pre-traffic cache entries must miss.
/// Traffic trials hash only the *generator parameters* (the spec's serde
/// form); the synthesized trace is recomputed on demand and never hashed.
pub const ENGINE_SALT: &str = concat!("magus-engine/v5/", env!("CARGO_PKG_VERSION"));

/// The governor driving a trial — the single runtime selector shared by
/// the CLI parser, the drivers, and every experiment path (one conversion
/// point: [`GovernorSpec::build_driver`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GovernorSpec {
    /// The stock TDP-coupled governor only (no runtime attached).
    Default,
    /// Uncore pinned to a fixed frequency.
    Fixed {
        /// Target frequency (GHz).
        ghz: f64,
    },
    /// MAGUS with the given thresholds.
    Magus {
        /// Runtime configuration.
        cfg: MagusConfig,
    },
    /// The UPS baseline with the given parameters.
    Ups {
        /// Runtime configuration.
        cfg: UpsConfig,
    },
    /// MAGUS actuating AMD Infinity Fabric P-states over HSMP (§6.6).
    MagusHsmp {
        /// Runtime configuration (the decision core is identical).
        cfg: MagusConfig,
    },
}

impl GovernorSpec {
    /// MAGUS with the paper-default thresholds.
    #[must_use]
    pub fn magus_default() -> Self {
        GovernorSpec::Magus {
            cfg: MagusConfig::default(),
        }
    }

    /// UPS with its default parameters.
    #[must_use]
    pub fn ups_default() -> Self {
        GovernorSpec::Ups {
            cfg: UpsConfig::default(),
        }
    }

    /// MAGUS-over-HSMP with the paper-default thresholds.
    #[must_use]
    pub fn magus_hsmp_default() -> Self {
        GovernorSpec::MagusHsmp {
            cfg: MagusConfig::default(),
        }
    }

    /// Display name, matching the underlying driver's report name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            GovernorSpec::Default => "default".into(),
            GovernorSpec::Fixed { ghz } => format!("fixed-{ghz:.1}GHz"),
            GovernorSpec::Magus { .. } => "MAGUS".into(),
            GovernorSpec::Ups { .. } => "UPS".into(),
            GovernorSpec::MagusHsmp { .. } => "MAGUS/HSMP".into(),
        }
    }

    /// Instantiate the runtime driver — the one place a governor selector
    /// becomes an executable driver.
    #[must_use]
    pub fn build_driver(&self) -> Box<dyn RuntimeDriver> {
        match self {
            GovernorSpec::Default => Box::new(NoopDriver),
            GovernorSpec::Fixed { ghz } => Box::new(FixedUncoreDriver::new(*ghz)),
            GovernorSpec::Magus { cfg } => Box::new(MagusDriver::new(cfg.clone())),
            GovernorSpec::Ups { cfg } => Box::new(UpsDriver::new(cfg.clone())),
            GovernorSpec::MagusHsmp { cfg } => Box::new(HsmpMagusDriver::new(
                cfg.clone(),
                FabricPstateTable::epyc_default(),
            )),
        }
    }
}

/// The hardware a trial runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemSel {
    /// One of the paper's three Intel testbeds.
    Preset(SystemId),
    /// The §6.6 AMD EPYC + MI210 node (HSMP fabric actuation).
    AmdEpycMi210,
}

impl SystemSel {
    /// The node configuration preset.
    #[must_use]
    pub fn node_config(&self) -> NodeConfig {
        match self {
            SystemSel::Preset(s) => s.node_config(),
            SystemSel::AmdEpycMi210 => magus_hsmp::amd_epyc_mi210(),
        }
    }

    /// The workload platform whose scaling applies. The AMD node runs the
    /// single-GPU workload set (its fabric caps bandwidth lower).
    #[must_use]
    pub fn platform(&self) -> Platform {
        match self {
            SystemSel::Preset(s) => s.platform(),
            SystemSel::AmdEpycMi210 => Platform::IntelA100,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SystemSel::Preset(s) => s.name(),
            SystemSel::AmdEpycMi210 => "AMD+MI210",
        }
    }
}

/// The application (or lack of one) a trial runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSel {
    /// A catalog application at the system platform's scaling.
    App(AppId),
    /// The §6.1 hybrid host+GPU workload of the power-budget study.
    HybridMd,
    /// No application: an idle node for `opts.max_s` (Table 2 protocol).
    Idle,
    /// Node 0 of a multi-tenant traffic expansion: colocated tenants'
    /// Zipf/diurnal/MMPP job queues superposed into one trace (see
    /// `magus_workloads::generator`). Only the generator *parameters*
    /// enter the content hash — the trace is re-expanded on demand.
    Traffic(TrafficSpec),
}

/// One trial, fully specified: hash it, cache it, run it anywhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialSpec {
    /// Hardware.
    pub system: SystemSel,
    /// Workload.
    pub workload: WorkloadSel,
    /// Governor (runtime + thresholds).
    pub governor: GovernorSpec,
    /// Recording interval and wall-clock budget.
    pub opts: TrialOpts,
    /// Seeded-replication index (§6's ≥5-repetition protocol): perturbs
    /// the node's sensor-noise seed and the workload's jitter seed.
    /// `None` runs the canonical seeds.
    pub replicate: Option<u32>,
    /// Per-socket RAPL PL1 limit (W), programmed before the driver
    /// attaches; `None` = uncapped.
    pub power_cap_w: Option<f64>,
    /// Compute decisions but never actuate (the Table 2 overhead
    /// protocol's "excluding uncore scaling").
    pub monitor_only: bool,
    /// Deterministic fault-injection plan threaded into the node before
    /// the driver attaches (the robustness study). `None` = clean run;
    /// the field is part of the content hash, so faulted and clean
    /// outcomes can never share a cache entry. Old serialized specs omit
    /// the field and deserialize as clean.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultPlan>,
}

impl TrialSpec {
    /// A plain (system × app × governor) trial with default options.
    #[must_use]
    pub fn new(system: SystemId, app: AppId, governor: GovernorSpec) -> Self {
        Self {
            system: SystemSel::Preset(system),
            workload: WorkloadSel::App(app),
            governor,
            opts: TrialOpts::default(),
            replicate: None,
            power_cap_w: None,
            monitor_only: false,
            faults: default_fault_plan(),
        }
    }

    /// An app trial on the AMD EPYC + MI210 node.
    #[must_use]
    pub fn amd(app: AppId, governor: GovernorSpec) -> Self {
        Self {
            system: SystemSel::AmdEpycMi210,
            ..Self::new(SystemId::IntelA100, app, governor)
        }
    }

    /// The §6.1 hybrid workload on Intel+A100 under an optional power cap.
    #[must_use]
    pub fn hybrid(governor: GovernorSpec, power_cap_w: Option<f64>) -> Self {
        Self {
            workload: WorkloadSel::HybridMd,
            power_cap_w,
            ..Self::new(SystemId::IntelA100, AppId::Bfs, governor)
        }
    }

    /// A multi-tenant traffic trial: one node of the `spec` expansion
    /// (node 0), superposing its colocated tenants' job queues. The spec's
    /// parameters — never the expanded trace — enter the content hash, so
    /// sweeps over traffic mixes cache per parameter set.
    #[must_use]
    pub fn traffic(system: SystemId, spec: TrafficSpec, governor: GovernorSpec) -> Self {
        Self {
            workload: WorkloadSel::Traffic(spec),
            ..Self::new(system, AppId::Bfs, governor)
        }
    }

    /// An idle-node trial for `duration_s` (the overhead protocol).
    #[must_use]
    pub fn idle(system: SystemId, governor: GovernorSpec, duration_s: f64) -> Self {
        Self {
            workload: WorkloadSel::Idle,
            opts: TrialOpts {
                record_interval_us: 0,
                max_s: duration_s,
                ..TrialOpts::default()
            },
            ..Self::new(system, AppId::Bfs, governor)
        }
    }

    /// Record the trace at the paper's 0.1 s plot resolution.
    #[must_use]
    pub fn recorded(mut self) -> Self {
        self.opts = TrialOpts {
            record_interval_us: TrialOpts::recorded().record_interval_us,
            ..self.opts
        };
        self
    }

    /// Override the trial options wholesale.
    #[must_use]
    pub fn with_opts(mut self, opts: TrialOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Select a seeded-replication index.
    #[must_use]
    pub fn replicate(mut self, rep: u32) -> Self {
        self.replicate = Some(rep);
        self
    }

    /// Enable monitor-only mode (decisions computed, never actuated).
    #[must_use]
    pub fn monitor_only(mut self) -> Self {
        self.monitor_only = true;
        self
    }

    /// Inject faults from `plan`. Empty plans normalize to `None`, keeping
    /// the spec (and its content hash) identical to a clean trial.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = (!plan.is_empty()).then_some(plan);
        self
    }

    /// The node configuration this trial runs on, with the replication
    /// seed perturbation applied.
    #[must_use]
    pub fn node_config(&self) -> NodeConfig {
        let mut cfg = self.system.node_config();
        if let Some(rep) = self.replicate {
            cfg.seed = cfg.seed.wrapping_add(0x9e37_79b9 * (u64::from(rep) + 1));
        }
        cfg
    }

    /// Build the application trace this trial runs (`None` for idle).
    /// Canonical-seed catalog trials share the process-wide interned trace
    /// (synthesized once per `(app, platform)`); replicated trials
    /// re-jitter the workload seed the same way the paper's repeated
    /// hardware runs vary, so they build a private trace.
    #[must_use]
    pub fn build_trace(&self) -> Option<Arc<AppTrace>> {
        match self.workload {
            WorkloadSel::App(app) => Some(match self.replicate {
                None => app_trace(app, self.system.platform()),
                Some(rep) => {
                    let mut spec = base_spec(app);
                    spec.seed = spec.seed.wrapping_add(u64::from(rep));
                    if self.system.platform() != Platform::IntelA100 {
                        spec.util = spec.util.across_gpus(self.system.platform().gpu_count());
                    }
                    Arc::new(spec.build())
                }
            }),
            WorkloadSel::HybridMd => Some(Arc::new(crate::powercap::hybrid_workload())),
            WorkloadSel::Idle => None,
            WorkloadSel::Traffic(spec) => {
                // Replication re-seeds the generator the same way catalog
                // replication re-jitters the workload seed.
                let spec = match self.replicate {
                    None => spec,
                    Some(rep) => spec.with_seed(spec.seed.wrapping_add(u64::from(rep))),
                };
                Some(spec.node_profile(self.system.platform(), 0).trace)
            }
        }
    }

    /// The job deadlines of a traffic trial's node (empty for every other
    /// workload), in the form the deadline-miss accounting consumes.
    #[must_use]
    pub fn traffic_deadlines(&self) -> Vec<magus_hetsim::JobDeadline> {
        let WorkloadSel::Traffic(spec) = self.workload else {
            return Vec::new();
        };
        let spec = match self.replicate {
            None => spec,
            Some(rep) => spec.with_seed(spec.seed.wrapping_add(u64::from(rep))),
        };
        spec.node_profile(self.system.platform(), 0)
            .jobs
            .iter()
            .map(|j| magus_hetsim::JobDeadline {
                work_end_s: j.work_end_s(),
                due_s: j.due_s,
            })
            .collect()
    }

    /// Human-readable label for manifests and logs.
    #[must_use]
    pub fn label(&self) -> String {
        let workload = match self.workload {
            WorkloadSel::App(app) => app.name().to_string(),
            WorkloadSel::HybridMd => "hybrid-md".into(),
            WorkloadSel::Idle => "idle".into(),
            WorkloadSel::Traffic(spec) => {
                format!("traffic#{}x{}t{}", spec.seed, spec.tenants, spec.colocate)
            }
        };
        let mut s = format!("{workload}/{}/{}", self.system.name(), self.governor.name());
        if let Some(rep) = self.replicate {
            s.push_str(&format!("#r{rep}"));
        }
        if let Some(w) = self.power_cap_w {
            s.push_str(&format!("@{w:.0}W"));
        }
        if self.monitor_only {
            s.push_str("+monitor");
        }
        if let Some(plan) = &self.faults {
            s.push_str(&format!("+faults#{}", plan.seed));
        }
        s
    }

    /// Stable content hash under the default code-version salt.
    #[must_use]
    pub fn content_hash(&self) -> String {
        spec_hash(self, ENGINE_SALT)
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Second-lane seed: the FNV offset basis hashed through one prime round,
/// giving an independent 64-bit stream over the same bytes.
const FNV_OFFSET_ALT: u64 = FNV_OFFSET.wrapping_mul(FNV_PRIME) ^ 0x5bd1_e995;

fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable 128-bit content hash of a spec under a salt, as 32 hex chars.
///
/// The spec is hashed through its canonical JSON encoding (field order is
/// declaration order, `serde_json`'s float round-tripping is exact), so
/// equal specs hash equal across processes and any field change produces
/// a new hash. The workspace's dependency policy has no cryptographic
/// hash crate; two independent FNV-1a-64 lanes are ample for cache
/// addressing (collisions are additionally guarded by a full spec
/// equality check on load).
#[must_use]
pub fn spec_hash(spec: &TrialSpec, salt: &str) -> String {
    let json = serde_json::to_string(spec).expect("TrialSpec serialises");
    let mut data = Vec::with_capacity(salt.len() + 1 + json.len());
    data.extend_from_slice(salt.as_bytes());
    data.push(0);
    data.extend_from_slice(json.as_bytes());
    let a = fnv1a64(FNV_OFFSET, &data);
    let b = fnv1a64(FNV_OFFSET_ALT, &data);
    format!("{a:016x}{b:016x}")
}

/// Result of one engine trial: metrics plus trace handles, and where it
/// came from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// The spec that produced this outcome.
    pub spec: TrialSpec,
    /// The spec's content hash under the engine's salt.
    pub spec_hash: String,
    /// Metrics and recorded time series.
    pub result: TrialResult,
    /// Fraction of post-warm-up decision cycles in the high-frequency
    /// locked state (MAGUS-family governors only).
    pub high_freq_fraction: Option<f64>,
    /// Whether this outcome was served from the on-disk cache.
    pub cached: bool,
}

/// Summary-only digest of a [`TrialOutcome`]: everything the sweep-level
/// reductions (fig 4, fig 7, fleet sweeps) consume, minus the recorded
/// time series. Built inside the worker via [`Engine::run_brief`], so the
/// sample vectors never accumulate across a suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialBrief {
    /// Human-readable spec label.
    pub label: String,
    /// The spec's content hash under the engine's salt.
    pub spec_hash: String,
    /// Runtime (governor) name used.
    pub runtime: String,
    /// Run summary (runtime, energy, mean powers, counters).
    pub summary: RunSummary,
    /// Runtime decision invocations during the run.
    pub invocations: u64,
    /// Mean invocation latency (µs).
    pub mean_invocation_us: f64,
    /// High-frequency lock fraction (MAGUS-family governors only).
    pub high_freq_fraction: Option<f64>,
    /// Counts of injected faults, by kind (all zero on clean trials).
    #[serde(default)]
    pub fault_counters: FaultCounters,
    /// Jobs carrying deadlines (traffic workloads only; 0 otherwise).
    #[serde(default)]
    pub deadline_jobs: u64,
    /// Jobs that missed their deadline. For a solo trial the node either
    /// completed its whole trace (job finish times estimated through the
    /// mean stretch factor) or hit its budget (every job counted missed —
    /// `RunSummary` carries no partial-progress field).
    #[serde(default)]
    pub deadline_misses: u64,
    /// Served from the on-disk cache.
    pub cached: bool,
}

impl From<TrialOutcome> for TrialBrief {
    fn from(o: TrialOutcome) -> Self {
        let deadlines = o.spec.traffic_deadlines();
        let deadline_misses = if deadlines.is_empty() {
            0
        } else {
            let progress_s = if o.result.summary.completed {
                o.spec.build_trace().map_or(0.0, |t| t.total_work_s())
            } else {
                0.0
            };
            deadlines
                .iter()
                .filter(|d| {
                    magus_hetsim::deadline_missed(o.result.summary.runtime_s, progress_s, d)
                })
                .count() as u64
        };
        Self {
            label: o.spec.label(),
            spec_hash: o.spec_hash,
            runtime: o.result.runtime,
            summary: o.result.summary,
            invocations: o.result.invocations,
            mean_invocation_us: o.result.mean_invocation_us,
            high_freq_fraction: o.high_freq_fraction,
            fault_counters: o.result.fault_counters,
            deadline_jobs: deadlines.len() as u64,
            deadline_misses,
            cached: o.cached,
        }
    }
}

/// On-disk cache payload: everything needed to reconstruct an outcome,
/// plus the salt and full spec for collision paranoia.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheEntry {
    salt: String,
    spec: TrialSpec,
    high_freq_fraction: Option<f64>,
    result: TrialResult,
}

/// How [`Engine::run_suite`] schedules trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// One trial at a time, in spec order.
    Serial,
    /// Rayon fan-out with order-preserving collection — bit-identical
    /// results to [`ExecMode::Serial`], minus the wall time.
    Parallel,
}

/// One manifest line: what ran, under which hash, and how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Human-readable spec label.
    pub label: String,
    /// Spec content hash (the cache key).
    pub hash: String,
    /// Served from cache.
    pub cached: bool,
    /// Wall time spent simulating (0 for cache hits).
    pub wall_s: f64,
}

/// Per-run manifest: the observability record the engine emits so sweeps
/// are auditable and resumable. Serialized as JSON by
/// [`Engine::write_manifest`]; schema documented in DESIGN.md §4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// The code-version salt all hashes were computed under.
    pub salt: String,
    /// Scheduling mode ("serial" / "parallel").
    pub mode: String,
    /// Every trial this engine ran, sorted by label then hash.
    pub trials: Vec<ManifestEntry>,
    /// Trials served from the cache.
    pub cache_hits: usize,
    /// Trials that had to simulate.
    pub cache_misses: usize,
    /// Wall time since the engine was created (s).
    pub wall_s: f64,
}

impl RunManifest {
    /// Cache hit rate in [0, 1]; 0 when nothing ran.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One trial's buffered decision-event stream, labeled for export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialEvents {
    /// Human-readable spec label ([`TrialSpec::label`]).
    pub label: String,
    /// Decision/actuation events in simulation order.
    pub events: Vec<Event>,
}

#[derive(Debug, Default)]
struct EngineState {
    trials: Vec<ManifestEntry>,
    hits: usize,
    misses: usize,
    events: Vec<TrialEvents>,
}

/// The trial executor: scheduling, caching, and manifest accounting.
#[derive(Debug)]
pub struct Engine {
    salt: String,
    mode: ExecMode,
    cache_dir: Option<PathBuf>,
    /// Private rayon pool when `--jobs`/`MAGUS_JOBS` pinned a worker
    /// count; `None` uses the global pool.
    pool: Option<rayon::ThreadPool>,
    state: Mutex<EngineState>,
    /// Fully-materialized [`TrialOutcome`]s currently alive inside
    /// [`Engine::run_mapped`]/[`Engine::fold_suite`] workers, and the peak
    /// that gauge ever reached — the observable behind the "peak memory is
    /// O(workers)" acceptance test.
    live_outcomes: AtomicU64,
    peak_live: AtomicU64,
    started: Instant,
    /// Aggregated metrics: engine counters, node counter roll-ups, and
    /// `diag/` gauges. Deterministic except under the `diag/` prefix.
    registry: Registry,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Bucket bounds (GHz) for the aggregated uncore residency histogram —
/// aligned on the testbeds' uncore ranges (0.8–2.5 GHz).
const RESIDENCY_BOUNDS: [f64; 9] = [0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.5];

/// Bucket bounds (s) for the diagnostic per-trial wall-time histogram.
const WALL_BOUNDS: [f64; 7] = [0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0];

impl Engine {
    fn build(cache_dir: Option<PathBuf>, mode: ExecMode) -> Self {
        Self {
            salt: ENGINE_SALT.to_string(),
            mode,
            cache_dir,
            pool: None,
            state: Mutex::new(EngineState::default()),
            live_outcomes: AtomicU64::new(0),
            peak_live: AtomicU64::new(0),
            started: Instant::now(),
            registry: Registry::new(),
        }
    }

    /// Engine configured from the environment: parallel with the cache at
    /// `results/cache/`, unless `MAGUS_SERIAL=1`, `MAGUS_CACHE=off`, or
    /// `MAGUS_CACHE_DIR=<dir>` say otherwise. This is what binaries use.
    #[must_use]
    pub fn from_env() -> Self {
        let mode = if std::env::var("MAGUS_SERIAL").is_ok_and(|v| !v.is_empty() && v != "0") {
            ExecMode::Serial
        } else {
            ExecMode::Parallel
        };
        let cache_dir = if std::env::var("MAGUS_CACHE").is_ok_and(|v| v == "off" || v == "0") {
            None
        } else {
            Some(PathBuf::from(
                std::env::var("MAGUS_CACHE_DIR").unwrap_or_else(|_| "results/cache".into()),
            ))
        };
        let mut engine = Self::build(cache_dir, mode);
        if let Ok(v) = std::env::var("MAGUS_JOBS") {
            if !v.is_empty() {
                match v.parse::<usize>() {
                    Ok(jobs) => engine = engine.with_jobs(jobs),
                    Err(_) => eprintln!("[engine] ignoring non-numeric MAGUS_JOBS={v}"),
                }
            }
        }
        engine
    }

    /// Parallel engine with no cache — pure in-memory execution, used by
    /// library tests and anything that must not touch the filesystem.
    #[must_use]
    pub fn ephemeral() -> Self {
        Self::build(None, ExecMode::Parallel)
    }

    /// Parallel engine caching under `dir`.
    #[must_use]
    pub fn with_cache(dir: impl Into<PathBuf>) -> Self {
        Self::build(Some(dir.into()), ExecMode::Parallel)
    }

    /// Switch to serial scheduling.
    #[must_use]
    pub fn serial(mut self) -> Self {
        self.mode = ExecMode::Serial;
        self
    }

    /// Switch to parallel scheduling.
    #[must_use]
    pub fn parallel(mut self) -> Self {
        self.mode = ExecMode::Parallel;
        self
    }

    /// Drop the cache (every trial simulates).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache_dir = None;
        self
    }

    /// Override the code-version salt (tests use this to model a code
    /// change invalidating the cache).
    #[must_use]
    pub fn with_salt(mut self, salt: impl Into<String>) -> Self {
        self.salt = salt.into();
        self
    }

    /// Pin the engine to a private rayon pool of `jobs` workers
    /// (`0` = one per CPU, rayon's default sizing). This is the `--jobs`
    /// CLI flag / `MAGUS_JOBS` env knob: explicit sizing makes fleet
    /// benches reproducible across machines.
    ///
    /// # Panics
    /// Panics if the pool cannot be spawned (thread creation failure).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.pool = Some(
            rayon::ThreadPoolBuilder::new()
                .num_threads(jobs)
                .thread_name(|i| format!("magus-engine-{i}"))
                .build()
                .expect("spawn engine thread pool"),
        );
        self
    }

    /// The engine's worker count: the private pool's size when `--jobs`
    /// was given, otherwise the global rayon pool's.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.pool.as_ref().map_or_else(
            rayon::current_num_threads,
            rayon::ThreadPool::current_num_threads,
        )
    }

    /// The scheduling mode.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The cache directory, when caching is enabled.
    #[must_use]
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Run one trial: cache lookup, simulate on miss, store, account.
    pub fn run(&self, spec: &TrialSpec) -> TrialOutcome {
        let hash = spec_hash(spec, &self.salt);
        if let Some(entry) = self.cache_load(spec, &hash) {
            self.record(spec, &hash, true, 0.0);
            let outcome = TrialOutcome {
                spec: spec.clone(),
                spec_hash: hash,
                result: entry.result,
                high_freq_fraction: entry.high_freq_fraction,
                cached: true,
            };
            self.observe_outcome(&outcome, 0.0);
            return outcome;
        }
        let t0 = Instant::now();
        let mut driver = spec.governor.build_driver();
        if spec.monitor_only {
            driver.set_monitor_only(true);
        }
        let mut trial = TrialBuilder::custom(spec.node_config()).opts(spec.opts);
        if let Some(trace) = spec.build_trace() {
            trial = trial.trace(trace);
        }
        if let Some(w) = spec.power_cap_w {
            trial = trial.power_cap_w(w);
        }
        if let Some(plan) = spec.faults.as_ref() {
            trial = trial.faults(plan);
        }
        let result = trial.run(driver.as_mut());
        let high_freq_fraction = driver.high_freq_fraction();
        self.cache_store(spec, &hash, &result, high_freq_fraction);
        let wall_s = t0.elapsed().as_secs_f64();
        self.record(spec, &hash, false, wall_s);
        let outcome = TrialOutcome {
            spec: spec.clone(),
            spec_hash: hash,
            result,
            high_freq_fraction,
            cached: false,
        };
        self.observe_outcome(&outcome, wall_s);
        outcome
    }

    /// Fold one outcome into the metrics registry and the per-trial event
    /// buffer. Everything except `diag/` metrics derives from simulated
    /// state alone, so the aggregation is identical across serial and
    /// parallel runs (counters commute) and across sim paths.
    fn observe_outcome(&self, outcome: &TrialOutcome, wall_s: f64) {
        let r = &self.registry;
        r.inc("engine/trials_total", 1);
        if outcome.cached {
            r.inc("engine/cache_hits", 1);
        } else {
            r.inc("engine/cache_misses", 1);
        }
        r.inc("node/decision_events", outcome.result.events.len() as u64);
        if let Some(nc) = &outcome.result.node_telemetry {
            r.inc("node/uncore_msr_writes", nc.uncore_msr_writes);
            r.inc("node/fastpath_frozen_spans", nc.fastpath_frozen_spans);
            r.inc("node/fastpath_replayed_ticks", nc.fastpath_replayed_ticks);
            r.inc("node/fastpath_invalidations", nc.fastpath_invalidations);
            r.inc("node/events_dropped", nc.events_dropped);
            for &(bin, us) in &nc.residency_us {
                r.observe(
                    "node/uncore_residency_ghz",
                    &RESIDENCY_BOUNDS,
                    f64::from(bin) / 10.0,
                    us,
                );
            }
        }
        // diag/: wall-clock-derived, excluded from determinism checks.
        r.observe("diag/trial_wall_s", &WALL_BOUNDS, wall_s, 1);
        if !outcome.result.events.is_empty() {
            let mut state = self.state.lock().expect("engine state");
            state.events.push(TrialEvents {
                label: outcome.spec.label(),
                events: outcome.result.events.clone(),
            });
        }
    }

    /// Fold one fleet run into the metrics registry: fleet-level
    /// aggregates plus the per-shard lockstep counters. Everything here is
    /// simulated-state-derived and deterministic for a given spec; the
    /// summary aggregates are also shard-count invariant (only
    /// `fleet/lockstep_*`, which count shard-clock rounds, vary with the
    /// partition).
    pub fn observe_fleet(&self, run: &crate::fleet::FleetRun) {
        let r = &self.registry;
        r.inc("fleet/runs_total", 1);
        r.inc("fleet/nodes", run.summary.nodes.len() as u64);
        r.inc("fleet/completed_nodes", run.summary.completed as u64);
        r.inc("fleet/crashed_nodes", run.summary.crashed as u64);
        r.inc("fleet/decisions", run.summary.decisions);
        r.inc("fleet/node_steps", run.summary.node_steps);
        for shard in &run.shard_stats {
            r.inc("fleet/lockstep_rounds", shard.rounds);
            r.inc("fleet/lockstep_stalls", shard.stalls);
            // Trajectory-dedup efficiency: live trajectories vs mirrored
            // node-rounds, plus followers evicted on divergence. Like the
            // lockstep counters these are shard-partition dependent, which
            // is why they live here and never in `FleetSummary`.
            r.inc("fleet/dedup_classes", shard.classes);
            r.inc("fleet/dedup_rep_node_rounds", shard.rep_node_rounds);
            r.inc(
                "fleet/dedup_replayed_node_rounds",
                shard.replayed_node_rounds,
            );
            r.inc("fleet/dedup_class_evictions", shard.class_evictions);
        }
        r.set_gauge("fleet/shards", run.shard_stats.len() as f64);
    }

    /// Run a suite of independent trials. Outcomes come back in spec
    /// order regardless of scheduling, so parallel and serial runs reduce
    /// to bit-identical results.
    ///
    /// This *retains* every full outcome (O(trials) memory) — figures that
    /// need recorded samples want that. Sweeps that only reduce summaries
    /// should use [`Engine::run_brief`] / [`Engine::run_mapped`] /
    /// [`Engine::fold_suite`], which keep peak memory O(workers).
    pub fn run_suite(&self, specs: &[TrialSpec]) -> Vec<TrialOutcome> {
        self.run_mapped(specs, |_, outcome| outcome)
    }

    /// Run a suite and digest each outcome **inside the worker that
    /// produced it**: `map(index, outcome)` consumes the full
    /// [`TrialOutcome`] (recorded samples included) and only its return
    /// value is collected, in spec order. Peak resident outcomes are
    /// bounded by the worker count (observable via
    /// [`Engine::peak_live_outcomes`]), not the suite length.
    pub fn run_mapped<R: Send>(
        &self,
        specs: &[TrialSpec],
        map: impl Fn(usize, TrialOutcome) -> R + Sync,
    ) -> Vec<R> {
        match self.mode {
            ExecMode::Serial => specs
                .iter()
                .enumerate()
                .map(|(i, s)| self.run_digested(i, s, &map))
                .collect(),
            ExecMode::Parallel => self.in_pool(|| {
                specs
                    .par_iter()
                    .enumerate()
                    .map(|(i, s)| self.run_digested(i, s, &map))
                    .collect()
            }),
        }
    }

    /// Run a suite reduced to summary-only [`TrialBrief`]s — the common
    /// streaming digest for sweep-level reductions.
    pub fn run_brief(&self, specs: &[TrialSpec]) -> Vec<TrialBrief> {
        self.run_mapped(specs, |_, outcome| TrialBrief::from(outcome))
    }

    /// Streaming fold over a suite: each outcome is digested in its worker
    /// by `map`, handed to the caller's `fold` **as soon as it is ready**,
    /// and merged deterministically in trial-index order (a reorder buffer
    /// holds early-finishing later trials until their predecessors land).
    /// Unlike [`Engine::run_mapped`] this never materializes the digest
    /// vector, so arbitrarily long sweeps reduce in O(workers) memory.
    pub fn fold_suite<A, T: Send>(
        &self,
        specs: &[TrialSpec],
        map: impl Fn(usize, TrialOutcome) -> T + Sync,
        mut acc: A,
        mut fold: impl FnMut(&mut A, usize, T),
    ) -> A {
        match self.mode {
            ExecMode::Serial => {
                for (i, s) in specs.iter().enumerate() {
                    let digest = self.run_digested(i, s, &map);
                    fold(&mut acc, i, digest);
                }
            }
            ExecMode::Parallel => {
                let map = &map;
                let (tx, rx) = mpsc::channel::<(usize, T)>();
                let mut reorder_peak = 0usize;
                std::thread::scope(|scope| {
                    let producer = scope.spawn(move || {
                        self.in_pool(|| {
                            specs
                                .par_iter()
                                .enumerate()
                                .for_each_with(tx, |tx, (i, s)| {
                                    // A send only fails when the fold thread
                                    // panicked; the panic propagates at join.
                                    let _ = tx.send((i, self.run_digested(i, s, map)));
                                });
                        });
                    });
                    // Deterministic merge: fold strictly in trial order,
                    // parking out-of-order arrivals until their turn.
                    let mut parked = BTreeMap::new();
                    let mut next = 0usize;
                    for (i, digest) in &rx {
                        parked.insert(i, digest);
                        reorder_peak = reorder_peak.max(parked.len());
                        while let Some(digest) = parked.remove(&next) {
                            fold(&mut acc, next, digest);
                            next += 1;
                        }
                    }
                    if let Err(panic) = producer.join() {
                        std::panic::resume_unwind(panic);
                    }
                });
                // Scheduling-dependent, hence diagnostic-only.
                self.registry
                    .gauge_max("diag/fold_reorder_peak", reorder_peak as f64);
            }
        }
        acc
    }

    /// Highest number of fully-materialized outcomes simultaneously alive
    /// inside streaming workers since this engine was built. Bounded by
    /// the worker count for [`Engine::run_mapped`]-family calls.
    #[must_use]
    pub fn peak_live_outcomes(&self) -> u64 {
        self.peak_live.load(Ordering::SeqCst)
    }

    /// Aggregated metrics snapshot: engine counters, node counter
    /// roll-ups, the uncore residency histogram, and `diag/` gauges.
    /// Compare snapshots across runs through
    /// [`magus_telemetry::Snapshot::deterministic`], which drops the
    /// wall-clock-derived `diag/` metrics.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.registry.set_gauge(
            "diag/peak_live_outcomes",
            self.peak_live.load(Ordering::SeqCst) as f64,
        );
        self.registry
            .set_gauge("diag/engine_wall_s", self.started.elapsed().as_secs_f64());
        self.registry.set_gauge("diag/jobs", self.jobs() as f64);
        self.registry.snapshot()
    }

    /// Per-trial decision-event streams buffered so far, sorted by label
    /// (content tie-break) so serial and parallel runs export identically.
    #[must_use]
    pub fn trial_events(&self) -> Vec<TrialEvents> {
        let mut events = self.state.lock().expect("engine state").events.clone();
        events.sort_by_cached_key(|t| {
            let body = serde_json::to_string(&t.events).expect("events serialise");
            (t.label.clone(), body)
        });
        events
    }

    /// All buffered decision events as JSON Lines, one event per line:
    /// `{"trial": ..., "t_us": ..., "kind": ..., "fields": {...}}`.
    ///
    /// The rendering is deterministic — trials sort by label, events keep
    /// simulation order, field maps are sorted — so two runs of the same
    /// suite produce byte-identical output regardless of scheduling mode
    /// or sim path. CI's telemetry-regression job diffs exactly this.
    #[must_use]
    pub fn telemetry_jsonl(&self) -> String {
        #[derive(Serialize)]
        struct EventLine<'a> {
            trial: &'a str,
            t_us: u64,
            kind: &'a str,
            fields: &'a BTreeMap<String, FieldValue>,
        }
        let mut out = String::new();
        for trial in self.trial_events() {
            for e in &trial.events {
                let line = EventLine {
                    trial: &trial.label,
                    t_us: e.t_us,
                    kind: &e.kind,
                    fields: &e.fields,
                };
                out.push_str(&serde_json::to_string(&line).expect("event line serialises"));
                out.push('\n');
            }
        }
        out
    }

    /// Write the decision-event stream as JSONL to `path`, plus a
    /// Prometheus-text metrics snapshot beside it (extension `.prom`).
    pub fn write_telemetry(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        fs::write(path, self.telemetry_jsonl())?;
        let prom = path.with_extension("prom");
        fs::write(prom, self.telemetry_snapshot().to_prometheus_text())
    }

    /// Run one trial and digest it in place, tracking how many full
    /// outcomes are alive at once (the O(workers) memory observable).
    fn run_digested<R>(
        &self,
        idx: usize,
        spec: &TrialSpec,
        map: &(impl Fn(usize, TrialOutcome) -> R + Sync),
    ) -> R {
        let outcome = self.run(spec);
        let live = self.live_outcomes.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_live.fetch_max(live, Ordering::SeqCst);
        let digest = map(idx, outcome); // outcome consumed (and dropped) here
        self.live_outcomes.fetch_sub(1, Ordering::SeqCst);
        digest
    }

    /// Execute `f` inside the engine's private pool when one is pinned.
    fn in_pool<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }

    fn cache_load(&self, spec: &TrialSpec, hash: &str) -> Option<CacheEntry> {
        let dir = self.cache_dir.as_ref()?;
        let bytes = fs::read(dir.join(format!("{hash}.json"))).ok()?;
        // A corrupt or foreign file is a miss, never an error.
        let entry: CacheEntry = serde_json::from_slice(&bytes).ok()?;
        (entry.salt == self.salt && entry.spec == *spec).then_some(entry)
    }

    fn cache_store(
        &self,
        spec: &TrialSpec,
        hash: &str,
        result: &TrialResult,
        high_freq_fraction: Option<f64>,
    ) {
        let Some(dir) = self.cache_dir.as_ref() else {
            return;
        };
        let entry = CacheEntry {
            salt: self.salt.clone(),
            spec: spec.clone(),
            high_freq_fraction,
            result: result.clone(),
        };
        let json = match serde_json::to_vec(&entry) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("[engine] cache serialise failed for {hash}: {e}");
                return;
            }
        };
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("[engine] cannot create cache dir {}: {e}", dir.display());
            return;
        }
        // Unique temp name + atomic rename: concurrent writers of the
        // same spec race harmlessly to an identical final file.
        let tmp = dir.join(format!(
            "{hash}.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let final_path = dir.join(format!("{hash}.json"));
        if let Err(e) = fs::write(&tmp, &json).and_then(|()| fs::rename(&tmp, &final_path)) {
            eprintln!("[engine] cache store failed for {hash}: {e}");
            let _ = fs::remove_file(&tmp);
        }
    }

    fn record(&self, spec: &TrialSpec, hash: &str, cached: bool, wall_s: f64) {
        let mut state = self.state.lock().expect("engine state");
        if cached {
            state.hits += 1;
        } else {
            state.misses += 1;
        }
        state.trials.push(ManifestEntry {
            label: spec.label(),
            hash: hash.to_string(),
            cached,
            wall_s,
        });
    }

    /// Snapshot the manifest: every trial so far, hit/miss counts, wall
    /// time. Entries are sorted (label, then hash) so parallel runs emit
    /// stable manifests.
    #[must_use]
    pub fn manifest(&self) -> RunManifest {
        let state = self.state.lock().expect("engine state");
        let mut trials = state.trials.clone();
        trials.sort_by(|a, b| a.label.cmp(&b.label).then_with(|| a.hash.cmp(&b.hash)));
        RunManifest {
            salt: self.salt.clone(),
            mode: match self.mode {
                ExecMode::Serial => "serial".into(),
                ExecMode::Parallel => "parallel".into(),
            },
            trials,
            cache_hits: state.hits,
            cache_misses: state.misses,
            wall_s: self.started.elapsed().as_secs_f64(),
        }
    }

    /// Write the manifest as pretty JSON to `path`.
    pub fn write_manifest(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string_pretty(&self.manifest()).map_err(std::io::Error::other)?;
        fs::write(path, json)
    }

    /// One-line run summary for logs.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let m = self.manifest();
        format!(
            "{} trials: {} cache hits, {} misses ({:.0}% hit rate), {:.1} s wall [{}]",
            m.trials.len(),
            m.cache_hits,
            m.cache_misses,
            m.hit_rate() * 100.0,
            m.wall_s,
            m.mode,
        )
    }

    /// Finish a named run: print the summary to stderr and, when caching
    /// is enabled, write `<cache>/<label>.manifest.json`.
    pub fn finish(&self, label: &str) {
        eprintln!("[engine] {label}: {}", self.summary_line());
        if let Some(dir) = self.cache_dir.as_ref() {
            let path = dir.join(format!("{label}.manifest.json"));
            match self.write_manifest(&path) {
                Ok(()) => eprintln!("[engine] manifest written to {}", path.display()),
                Err(e) => eprintln!("[engine] manifest write failed: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> TrialSpec {
        TrialSpec::new(
            SystemId::IntelA100,
            AppId::Bfs,
            GovernorSpec::magus_default(),
        )
    }

    #[test]
    fn hash_is_stable_across_calls() {
        assert_eq!(base_spec().content_hash(), base_spec().content_hash());
        assert_eq!(base_spec().content_hash().len(), 32);
    }

    #[test]
    fn every_field_change_changes_the_hash() {
        let base = base_spec();
        let variants = vec![
            TrialSpec {
                system: SystemSel::Preset(SystemId::Intel4A100),
                ..base.clone()
            },
            TrialSpec {
                system: SystemSel::AmdEpycMi210,
                ..base.clone()
            },
            TrialSpec {
                workload: WorkloadSel::App(AppId::Srad),
                ..base.clone()
            },
            TrialSpec {
                workload: WorkloadSel::HybridMd,
                ..base.clone()
            },
            TrialSpec {
                workload: WorkloadSel::Idle,
                ..base.clone()
            },
            TrialSpec {
                workload: WorkloadSel::Traffic(magus_workloads::TrafficSpec::default()),
                ..base.clone()
            },
            TrialSpec {
                workload: WorkloadSel::Traffic(
                    magus_workloads::TrafficSpec::builder()
                        .seed(1)
                        .build()
                        .unwrap(),
                ),
                ..base.clone()
            },
            TrialSpec {
                workload: WorkloadSel::Traffic(
                    magus_workloads::TrafficSpec::builder()
                        .zipf_exponent(1.5)
                        .build()
                        .unwrap(),
                ),
                ..base.clone()
            },
            TrialSpec {
                governor: GovernorSpec::Default,
                ..base.clone()
            },
            TrialSpec {
                governor: GovernorSpec::Magus {
                    cfg: MagusConfig::pareto_common(),
                },
                ..base.clone()
            },
            base.clone().recorded(),
            TrialSpec {
                opts: TrialOpts {
                    max_s: 500.0,
                    ..TrialOpts::default()
                },
                ..base.clone()
            },
            TrialSpec {
                opts: TrialOpts {
                    path: crate::harness::SimPath::Reference,
                    ..TrialOpts::default()
                },
                ..base.clone()
            },
            base.clone().replicate(0),
            base.clone().replicate(1),
            TrialSpec {
                power_cap_w: Some(95.0),
                ..base.clone()
            },
            base.clone().monitor_only(),
            base.clone().with_faults(
                magus_hetsim::FaultPlan::builder()
                    .pcm_dropout_every(7)
                    .build()
                    .unwrap(),
            ),
            base.clone().with_faults(
                magus_hetsim::FaultPlan::builder()
                    .seed(1)
                    .pcm_dropout_every(7)
                    .build()
                    .unwrap(),
            ),
        ];
        let base_hash = base.content_hash();
        let mut seen = vec![base_hash];
        for v in variants {
            let h = v.content_hash();
            assert!(!seen.contains(&h), "hash collision for {v:?}");
            seen.push(h);
        }
    }

    #[test]
    fn salt_changes_the_hash() {
        let spec = base_spec();
        assert_ne!(spec_hash(&spec, "salt-a"), spec_hash(&spec, "salt-b"));
        assert_eq!(spec_hash(&spec, ENGINE_SALT), spec.content_hash());
    }

    #[test]
    fn governor_names_match_driver_names() {
        assert_eq!(GovernorSpec::Default.name(), "default");
        assert_eq!(GovernorSpec::Fixed { ghz: 0.8 }.name(), "fixed-0.8GHz");
        assert_eq!(GovernorSpec::magus_default().name(), "MAGUS");
        assert_eq!(GovernorSpec::ups_default().name(), "UPS");
        assert_eq!(GovernorSpec::magus_hsmp_default().name(), "MAGUS/HSMP");
        for g in [
            GovernorSpec::Default,
            GovernorSpec::Fixed { ghz: 0.8 },
            GovernorSpec::magus_default(),
            GovernorSpec::ups_default(),
            GovernorSpec::magus_hsmp_default(),
        ] {
            assert_eq!(g.build_driver().name(), g.name());
        }
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(base_spec().label(), "bfs/Intel+A100/MAGUS");
        assert_eq!(
            TrialSpec::hybrid(GovernorSpec::Default, Some(95.0)).label(),
            "hybrid-md/Intel+A100/default@95W"
        );
        assert_eq!(
            TrialSpec::idle(SystemId::IntelMax1550, GovernorSpec::ups_default(), 10.0)
                .monitor_only()
                .label(),
            "idle/Intel+Max1550/UPS+monitor"
        );
        assert_eq!(base_spec().replicate(3).label(), "bfs/Intel+A100/MAGUS#r3");
        assert_eq!(
            TrialSpec::traffic(
                SystemId::IntelA100,
                magus_workloads::TrafficSpec::builder()
                    .seed(9)
                    .tenants(6)
                    .colocate(3)
                    .build()
                    .unwrap(),
                GovernorSpec::magus_default(),
            )
            .label(),
            "traffic#9x6t3/Intel+A100/MAGUS"
        );
        let faulted = base_spec().with_faults(
            magus_hetsim::FaultPlan::builder()
                .seed(5)
                .pcm_stale_every(4)
                .build()
                .unwrap(),
        );
        assert_eq!(faulted.label(), "bfs/Intel+A100/MAGUS+faults#5");
        // Empty plans normalize away: spec, label, and hash stay clean.
        let clean = base_spec().with_faults(magus_hetsim::FaultPlan::default());
        assert_eq!(clean, base_spec());
        assert_eq!(clean.content_hash(), base_spec().content_hash());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = TrialSpec::hybrid(GovernorSpec::ups_default(), Some(105.0))
            .recorded()
            .replicate(2);
        let json = serde_json::to_string(&spec).unwrap();
        let back: TrialSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.content_hash(), spec.content_hash());
    }

    #[test]
    fn idle_trial_runs_for_its_duration() {
        let engine = Engine::ephemeral();
        let out = engine.run(&TrialSpec::idle(
            SystemId::IntelA100,
            GovernorSpec::Default,
            2.0,
        ));
        assert!(!out.cached);
        assert!((out.result.summary.runtime_s - 2.0).abs() < 0.05);
        assert!(!out.result.summary.completed);
        assert_eq!(out.result.summary.app, "idle");
    }

    #[test]
    fn telemetry_counts_trials_and_diag_is_excluded() {
        let engine = Engine::ephemeral();
        let specs = vec![
            TrialSpec::idle(SystemId::IntelA100, GovernorSpec::Default, 1.0),
            TrialSpec::idle(SystemId::IntelMax1550, GovernorSpec::Default, 1.0),
        ];
        let _ = engine.run_suite(&specs);
        let snap = engine.telemetry_snapshot();
        assert_eq!(snap.counter("engine/trials_total"), Some(2));
        assert_eq!(snap.counter("engine/cache_misses"), Some(2));
        assert!(snap.gauge("diag/jobs").is_some());
        assert!(snap.gauge("diag/engine_wall_s").is_some());
        let det = snap.deterministic();
        assert!(det.gauge("diag/jobs").is_none());
        assert_eq!(det.counter("engine/trials_total"), Some(2));
        let prom = snap.to_prometheus_text();
        assert!(prom.contains("magus_engine_trials_total 2"), "{prom}");
    }

    #[test]
    fn manifest_counts_and_orders_trials() {
        let engine = Engine::ephemeral();
        let specs = vec![
            TrialSpec::idle(SystemId::IntelA100, GovernorSpec::Default, 1.0),
            TrialSpec::idle(SystemId::IntelMax1550, GovernorSpec::Default, 1.0),
        ];
        let outs = engine.run_suite(&specs);
        assert_eq!(outs.len(), 2);
        let m = engine.manifest();
        assert_eq!(m.cache_misses, 2);
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.trials.len(), 2);
        assert!(m.trials.windows(2).all(|w| w[0].label <= w[1].label));
        assert_eq!(m.hit_rate(), 0.0);
    }
}
