//! §6.5 / Table 2: runtime overhead measurement on an idle node.
//!
//! The paper runs each runtime for 10 minutes with no application and
//! measures (a) the relative increase in power consumption and (b) the
//! time per invocation (hardware-counter collection + phase detection).
//! Both fall out of the access-cost accounting here: MAGUS's single PCM
//! measurement vs UPS's per-core MSR sweep.
//!
//! Measurements go through the trial engine as [`WorkloadSel::Idle`]
//! specs (`trace = None`, so the wall-clock budget is the only
//! terminator), which makes them cacheable and schedulable like every
//! other trial.
//!
//! [`WorkloadSel::Idle`]: crate::engine::WorkloadSel::Idle

use serde::{Deserialize, Serialize};

use crate::engine::{Engine, GovernorSpec, TrialOutcome, TrialSpec};
use crate::harness::SystemId;

/// Table 2 row for one runtime on one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// System name.
    pub system: String,
    /// Runtime name.
    pub runtime: String,
    /// Relative power increase over the idle baseline (%).
    pub power_overhead_pct: f64,
    /// Mean invocation time (s).
    pub invocation_s: f64,
    /// Idle baseline power (W), for reference.
    pub idle_power_w: f64,
    /// Power with the runtime attached (W).
    pub loaded_power_w: f64,
}

/// Run an idle node for `duration_s` with no runtime and return its mean
/// CPU-side power (W).
#[must_use]
pub fn idle_power_w(engine: &Engine, system: SystemId, duration_s: f64) -> f64 {
    engine
        .run(&TrialSpec::idle(system, GovernorSpec::Default, duration_s))
        .result
        .summary
        .mean_cpu_w
}

/// Assemble a Table 2 row from an idle-baseline outcome and a
/// monitor-only loaded outcome of the same system and duration.
#[must_use]
pub fn report_from_outcomes(
    system: SystemId,
    idle: &TrialOutcome,
    loaded: &TrialOutcome,
) -> OverheadReport {
    let idle_w = idle.result.summary.mean_cpu_w;
    let loaded_w = loaded.result.summary.mean_cpu_w;
    OverheadReport {
        system: system.name().to_string(),
        runtime: loaded.result.runtime.clone(),
        power_overhead_pct: crate::metrics::pct_change(idle_w, loaded_w),
        invocation_s: loaded.result.mean_invocation_us / 1e6,
        idle_power_w: idle_w,
        loaded_power_w: loaded_w,
    }
}

/// Measure a runtime's idle overhead (the Table 2 protocol).
///
/// The runtime runs in monitor-only mode — Table 2 measures monitoring +
/// phase detection, "excluding uncore scaling" — so the node's uncore
/// state stays identical to the idle baseline and the power delta is pure
/// monitoring cost.
#[must_use]
pub fn measure_overhead(
    engine: &Engine,
    system: SystemId,
    governor: &GovernorSpec,
    duration_s: f64,
) -> OverheadReport {
    let outs = engine.run_suite(&[
        TrialSpec::idle(system, GovernorSpec::Default, duration_s),
        TrialSpec::idle(system, governor.clone(), duration_s).monitor_only(),
    ]);
    report_from_outcomes(system, &outs[0], &outs[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_is_stable_floor() {
        let p = idle_power_w(&Engine::ephemeral(), SystemId::IntelA100, 30.0);
        // 2 sockets × (static 24 + uncore@max ~53 + DRAM 10) ≈ 174 W.
        assert!(p > 120.0 && p < 220.0, "idle = {p}");
    }

    #[test]
    fn magus_overhead_is_small() {
        let engine = Engine::ephemeral();
        let r = measure_overhead(
            &engine,
            SystemId::IntelA100,
            &GovernorSpec::magus_default(),
            60.0,
        );
        assert!(
            r.power_overhead_pct > 0.1 && r.power_overhead_pct < 3.0,
            "overhead = {}%",
            r.power_overhead_pct
        );
        assert!((r.invocation_s - 0.1).abs() < 0.02, "{}", r.invocation_s);
    }

    #[test]
    fn ups_overhead_exceeds_magus() {
        let engine = Engine::ephemeral();
        let magus = measure_overhead(
            &engine,
            SystemId::IntelA100,
            &GovernorSpec::magus_default(),
            60.0,
        );
        let ups = measure_overhead(
            &engine,
            SystemId::IntelA100,
            &GovernorSpec::ups_default(),
            60.0,
        );
        assert!(
            ups.power_overhead_pct > magus.power_overhead_pct * 2.0,
            "ups {}% vs magus {}%",
            ups.power_overhead_pct,
            magus.power_overhead_pct
        );
        assert!(
            ups.invocation_s > 0.25 && ups.invocation_s < 0.4,
            "{}",
            ups.invocation_s
        );
    }
}
