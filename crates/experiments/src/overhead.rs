//! §6.5 / Table 2: runtime overhead measurement on an idle node.
//!
//! The paper runs each runtime for 10 minutes with no application and
//! measures (a) the relative increase in power consumption and (b) the
//! time per invocation (hardware-counter collection + phase detection).
//! Both fall out of the access-cost accounting here: MAGUS's single PCM
//! measurement vs UPS's per-core MSR sweep.

use magus_hetsim::{secs_to_us, Node, Simulation};
use serde::{Deserialize, Serialize};

use crate::drivers::RuntimeDriver;
use crate::harness::SystemId;

/// Table 2 row for one runtime on one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// System name.
    pub system: String,
    /// Runtime name.
    pub runtime: String,
    /// Relative power increase over the idle baseline (%).
    pub power_overhead_pct: f64,
    /// Mean invocation time (s).
    pub invocation_s: f64,
    /// Idle baseline power (W), for reference.
    pub idle_power_w: f64,
    /// Power with the runtime attached (W).
    pub loaded_power_w: f64,
}

/// Run an idle node for `duration_s` with no runtime and return its mean
/// CPU-side power (W).
#[must_use]
pub fn idle_power_w(system: SystemId, duration_s: f64) -> f64 {
    let mut sim = Simulation::new(Node::new(system.node_config()));
    let ticks = secs_to_us(duration_s) / sim.node().config().tick_us;
    for _ in 0..ticks {
        sim.step();
    }
    sim.node().energy().mean_cpu_w()
}

/// Measure a runtime's idle overhead (the Table 2 protocol).
pub fn measure_overhead(
    system: SystemId,
    driver: &mut dyn RuntimeDriver,
    duration_s: f64,
) -> OverheadReport {
    let idle = idle_power_w(system, duration_s);

    let mut sim = Simulation::new(Node::new(system.node_config()));
    // Table 2 measures monitoring + phase detection only, "excluding
    // uncore scaling" — keep the node's uncore state identical to the idle
    // baseline so the delta is pure monitoring cost.
    driver.set_monitor_only(true);
    driver.attach(&mut sim);
    let budget_us = secs_to_us(duration_s);
    let mut next_due_us = 0u64;
    let mut invocations = 0u64;
    let mut total_invocation_us = 0u64;
    while sim.node().time_us() < budget_us {
        if sim.node().time_us() >= next_due_us {
            let latency = driver.on_decision(&mut sim);
            invocations += 1;
            total_invocation_us += latency;
            let rest = driver.rest_interval_us();
            next_due_us = if rest == u64::MAX {
                u64::MAX
            } else {
                sim.node().time_us() + latency + rest
            };
        }
        sim.step();
    }
    let loaded = sim.node().energy().mean_cpu_w();

    OverheadReport {
        system: system.name().to_string(),
        runtime: driver.name().to_string(),
        power_overhead_pct: crate::metrics::pct_change(idle, loaded),
        invocation_s: if invocations == 0 {
            0.0
        } else {
            total_invocation_us as f64 / invocations as f64 / 1e6
        },
        idle_power_w: idle,
        loaded_power_w: loaded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{MagusDriver, UpsDriver};

    #[test]
    fn idle_power_is_stable_floor() {
        let p = idle_power_w(SystemId::IntelA100, 30.0);
        // 2 sockets × (static 24 + uncore@max ~53 + DRAM 10) ≈ 174 W.
        assert!(p > 120.0 && p < 220.0, "idle = {p}");
    }

    #[test]
    fn magus_overhead_is_small() {
        let mut d = MagusDriver::with_defaults();
        let r = measure_overhead(SystemId::IntelA100, &mut d, 60.0);
        assert!(
            r.power_overhead_pct > 0.1 && r.power_overhead_pct < 3.0,
            "overhead = {}%",
            r.power_overhead_pct
        );
        assert!((r.invocation_s - 0.1).abs() < 0.02, "{}", r.invocation_s);
    }

    #[test]
    fn ups_overhead_exceeds_magus() {
        let mut m = MagusDriver::with_defaults();
        let magus = measure_overhead(SystemId::IntelA100, &mut m, 60.0);
        let mut u = UpsDriver::with_defaults();
        let ups = measure_overhead(SystemId::IntelA100, &mut u, 60.0);
        assert!(
            ups.power_overhead_pct > magus.power_overhead_pct * 2.0,
            "ups {}% vs magus {}%",
            ups.power_overhead_pct,
            magus.power_overhead_pct
        );
        assert!(ups.invocation_s > 0.25 && ups.invocation_s < 0.4, "{}", ups.invocation_s);
    }
}
