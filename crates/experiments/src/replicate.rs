//! Replicated trials: the paper's repetition methodology (§6).
//!
//! "Each experiment was repeated at least five times to account for
//! performance variance and outliers ... Outliers were removed, and the
//! average of the remaining results was calculated." The simulator's only
//! run-to-run variance source is its sensor/jitter noise seed, so
//! replication here re-seeds the node and re-jitters the workload —
//! quantifying how sensitive every reported number is to the stochastic
//! parts of the model.
//!
//! Replicates are ordinary engine trials: [`TrialSpec::replicate`]
//! carries the repetition index, and the spec's `node_config()` /
//! `build_trace()` apply the seed perturbations. Each (rep × policy) pair
//! is independently cached and scheduled.

use magus_workloads::AppId;
use serde::{Deserialize, Serialize};

use crate::engine::{Engine, GovernorSpec, TrialSpec};
use crate::harness::SystemId;
use crate::metrics::Comparison;

/// Mean and sample standard deviation of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stat {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two values).
    pub std: f64,
}

impl Stat {
    /// Compute from a slice.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                mean: 0.0,
                std: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        if values.len() < 2 {
            return Self { mean, std: 0.0 };
        }
        let var =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        Self {
            mean,
            std: var.sqrt(),
        }
    }
}

/// Replicated evaluation of MAGUS vs the baseline for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedEval {
    /// Application name.
    pub app: String,
    /// Number of replicates.
    pub replicates: usize,
    /// Performance loss (%), across replicates.
    pub perf_loss_pct: Stat,
    /// CPU power saving (%), across replicates.
    pub power_saving_pct: Stat,
    /// Energy saving (%), across replicates.
    pub energy_saving_pct: Stat,
}

/// Run `replicates` seeded repetitions of (baseline, MAGUS) and aggregate.
///
/// Each replicate perturbs both the node's sensor-noise seed and the
/// workload's jitter seed, mimicking run-to-run variation on hardware.
#[must_use]
pub fn evaluate_replicated(
    engine: &Engine,
    system: SystemId,
    app: AppId,
    replicates: usize,
) -> ReplicatedEval {
    let specs: Vec<TrialSpec> = (0..replicates)
        .flat_map(|rep| {
            [
                TrialSpec::new(system, app, GovernorSpec::Default).replicate(rep as u32),
                TrialSpec::new(system, app, GovernorSpec::magus_default()).replicate(rep as u32),
            ]
        })
        .collect();
    let outs = engine.run_suite(&specs);
    let comparisons: Vec<Comparison> = outs
        .chunks_exact(2)
        .map(|pair| Comparison::against(&pair[0].result.summary, &pair[1].result.summary))
        .collect();

    ReplicatedEval {
        app: app.name().to_string(),
        replicates,
        perf_loss_pct: Stat::of(
            &comparisons
                .iter()
                .map(|c| c.perf_loss_pct)
                .collect::<Vec<_>>(),
        ),
        power_saving_pct: Stat::of(
            &comparisons
                .iter()
                .map(|c| c.power_saving_pct)
                .collect::<Vec<_>>(),
        ),
        energy_saving_pct: Stat::of(
            &comparisons
                .iter()
                .map(|c| c.energy_saving_pct)
                .collect::<Vec<_>>(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_basics() {
        let s = Stat::of(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(Stat::of(&[]).mean, 0.0);
        assert_eq!(Stat::of(&[7.0]).std, 0.0);
    }

    #[test]
    fn replicates_are_stable() {
        // Five seeded repetitions (the paper's protocol): the means must be
        // in the paper band and the spread small — seed noise must not be
        // doing the work in our headline numbers.
        let eval = evaluate_replicated(&Engine::ephemeral(), SystemId::IntelA100, AppId::Bfs, 5);
        assert_eq!(eval.replicates, 5);
        assert!(eval.perf_loss_pct.mean < 5.0, "{:?}", eval.perf_loss_pct);
        assert!(
            eval.energy_saving_pct.mean > 10.0,
            "{:?}",
            eval.energy_saving_pct
        );
        assert!(
            eval.energy_saving_pct.std < 2.0,
            "energy saving unstable across seeds: {:?}",
            eval.energy_saving_pct
        );
        assert!(eval.perf_loss_pct.std < 1.0, "{:?}", eval.perf_loss_pct);
    }
}
