//! Replicated trials: the paper's repetition methodology (§6).
//!
//! "Each experiment was repeated at least five times to account for
//! performance variance and outliers ... Outliers were removed, and the
//! average of the remaining results was calculated." The simulator's only
//! run-to-run variance source is its sensor/jitter noise seed, so
//! replication here re-seeds the node and re-jitters the workload —
//! quantifying how sensitive every reported number is to the stochastic
//! parts of the model.

use magus_workloads::{base_spec, AppId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::drivers::{MagusDriver, NoopDriver};
use crate::harness::{run_custom_trial, SystemId, TrialOpts};
use crate::metrics::Comparison;

/// Mean and sample standard deviation of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stat {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two values).
    pub std: f64,
}

impl Stat {
    /// Compute from a slice.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { mean: 0.0, std: 0.0 };
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        if values.len() < 2 {
            return Self { mean, std: 0.0 };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (values.len() - 1) as f64;
        Self {
            mean,
            std: var.sqrt(),
        }
    }
}

/// Replicated evaluation of MAGUS vs the baseline for one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedEval {
    /// Application name.
    pub app: String,
    /// Number of replicates.
    pub replicates: usize,
    /// Performance loss (%), across replicates.
    pub perf_loss_pct: Stat,
    /// CPU power saving (%), across replicates.
    pub power_saving_pct: Stat,
    /// Energy saving (%), across replicates.
    pub energy_saving_pct: Stat,
}

/// Run `replicates` seeded repetitions of (baseline, MAGUS) and aggregate.
///
/// Each replicate perturbs both the node's sensor-noise seed and the
/// workload's jitter seed, mimicking run-to-run variation on hardware.
#[must_use]
pub fn evaluate_replicated(system: SystemId, app: AppId, replicates: usize) -> ReplicatedEval {
    let comparisons: Vec<Comparison> = (0..replicates)
        .into_par_iter()
        .map(|rep| {
            let mut cfg = system.node_config();
            cfg.seed = cfg.seed.wrapping_add(0x9e37_79b9 * (rep as u64 + 1));
            let mut spec = base_spec(app);
            spec.seed = spec.seed.wrapping_add(rep as u64);
            let mut spec_scaled = spec;
            // Apply the platform's scaling the same way app_trace does by
            // rebuilding through the catalog path for non-A100 systems.
            if system != SystemId::IntelA100 {
                // Replication analysis targets the single-GPU testbed; the
                // scaling path is exercised by the figure suites.
                spec_scaled.util = spec_scaled.util.across_gpus(system.platform().gpu_count());
            }
            let trace = spec_scaled.build();

            let mut base_d = NoopDriver;
            let base = run_custom_trial(cfg.clone(), trace.clone(), &mut base_d, TrialOpts::default());
            let mut magus_d = MagusDriver::with_defaults();
            let run = run_custom_trial(cfg, trace, &mut magus_d, TrialOpts::default());
            Comparison::against(&base.summary, &run.summary)
        })
        .collect();

    ReplicatedEval {
        app: app.name().to_string(),
        replicates,
        perf_loss_pct: Stat::of(&comparisons.iter().map(|c| c.perf_loss_pct).collect::<Vec<_>>()),
        power_saving_pct: Stat::of(
            &comparisons.iter().map(|c| c.power_saving_pct).collect::<Vec<_>>(),
        ),
        energy_saving_pct: Stat::of(
            &comparisons.iter().map(|c| c.energy_saving_pct).collect::<Vec<_>>(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_basics() {
        let s = Stat::of(&[2.0, 4.0, 6.0]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(Stat::of(&[]).mean, 0.0);
        assert_eq!(Stat::of(&[7.0]).std, 0.0);
    }

    #[test]
    fn replicates_are_stable() {
        // Five seeded repetitions (the paper's protocol): the means must be
        // in the paper band and the spread small — seed noise must not be
        // doing the work in our headline numbers.
        let eval = evaluate_replicated(SystemId::IntelA100, AppId::Bfs, 5);
        assert_eq!(eval.replicates, 5);
        assert!(eval.perf_loss_pct.mean < 5.0, "{:?}", eval.perf_loss_pct);
        assert!(eval.energy_saving_pct.mean > 10.0, "{:?}", eval.energy_saving_pct);
        assert!(
            eval.energy_saving_pct.std < 2.0,
            "energy saving unstable across seeds: {:?}",
            eval.energy_saving_pct
        );
        assert!(eval.perf_loss_pct.std < 1.0, "{:?}", eval.perf_loss_pct);
    }
}
