//! One function per paper table/figure (§6). The `magus-bench` binaries
//! print these; integration tests assert their shapes against the paper.
//!
//! Every function describes its work as [`TrialSpec`]s and submits them
//! to the caller's [`Engine`] in one flat batch, so the engine can
//! schedule the whole figure in parallel and serve repeats from its
//! result cache. Trace-plotting figures (1, 2, 5) need the full recorded
//! outcomes and use `run_suite`; sweep-style reductions (fig 4, fig 7,
//! table 1) digest each outcome inside its worker via the streaming
//! `run_brief`/`run_mapped` APIs, so their peak memory stays O(workers).
//! Digests arrive in spec order either way, which keeps the reductions
//! below trivially deterministic.

use magus_runtime::MagusConfig;
use magus_workloads::{fig4a_suite, fig4b_suite, fig4c_suite, table1_suite, AppId};
use serde::{Deserialize, Serialize};

use crate::engine::{Engine, GovernorSpec, TrialBrief, TrialSpec};
use crate::harness::{SystemId, TrialResult};
use crate::metrics::{burst_jaccard, default_burst_threshold, Comparison};
use crate::overhead::{report_from_outcomes, OverheadReport};
use crate::pareto::ParetoPoint;

/// Fig 1: UNet profiled under the stock governor — CPU core frequency and
/// GPU clock move with demand; uncore stays pinned at maximum.
#[must_use]
pub fn fig1_unet_profile(engine: &Engine) -> TrialResult {
    engine
        .run(&TrialSpec::new(SystemId::IntelA100, AppId::Unet, GovernorSpec::Default).recorded())
        .result
}

/// Fig 2 data: UNet under fixed max vs fixed min uncore frequency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Data {
    /// Run with the uncore pinned at maximum (2.2 GHz).
    pub max_uncore: TrialResult,
    /// Run with the uncore pinned at minimum (0.8 GHz).
    pub min_uncore: TrialResult,
}

impl Fig2Data {
    /// CPU package power reduction from max to min (W) — the paper's 82 W.
    #[must_use]
    pub fn pkg_power_drop_w(&self) -> f64 {
        let pkg = |r: &TrialResult| {
            let e = &r.summary.energy;
            e.pkg_j() / e.elapsed_s
        };
        pkg(&self.max_uncore) - pkg(&self.min_uncore)
    }

    /// Runtime increase from max to min (%) — the paper's 21%.
    #[must_use]
    pub fn runtime_increase_pct(&self) -> f64 {
        crate::metrics::pct_change(
            self.max_uncore.summary.runtime_s,
            self.min_uncore.summary.runtime_s,
        )
    }
}

/// Fig 2: UNet power profiles at the uncore extremes.
#[must_use]
pub fn fig2_unet_extremes(engine: &Engine) -> Fig2Data {
    let system = SystemId::IntelA100;
    let uncore = system.node_config().uncore;
    let outs = engine.run_suite(&[
        TrialSpec::new(
            system,
            AppId::Unet,
            GovernorSpec::Fixed {
                ghz: uncore.freq_max_ghz,
            },
        )
        .recorded(),
        TrialSpec::new(
            system,
            AppId::Unet,
            GovernorSpec::Fixed {
                ghz: uncore.freq_min_ghz,
            },
        )
        .recorded(),
    ]);
    let [max_uncore, min_uncore] = <[_; 2]>::try_from(outs).expect("two outcomes");
    Fig2Data {
        max_uncore: max_uncore.result,
        min_uncore: min_uncore.result,
    }
}

/// One application's Fig 4 row: MAGUS and UPS against the stock baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppEval {
    /// Application name.
    pub app: String,
    /// Baseline runtime (s), for reference.
    pub baseline_runtime_s: f64,
    /// Baseline mean CPU power (W), for reference.
    pub baseline_cpu_w: f64,
    /// MAGUS vs baseline.
    pub magus: Comparison,
    /// UPS vs baseline.
    pub ups: Comparison,
}

/// The three policies of every Fig 4 cell, in reduction order.
pub(crate) fn eval_specs(system: SystemId, app: AppId) -> [TrialSpec; 3] {
    [
        TrialSpec::new(system, app, GovernorSpec::Default),
        TrialSpec::new(system, app, GovernorSpec::magus_default()),
        TrialSpec::new(system, app, GovernorSpec::ups_default()),
    ]
}

pub(crate) fn eval_from_briefs(app: AppId, briefs: &[TrialBrief]) -> AppEval {
    let [base, magus, ups] = briefs else {
        unreachable!("three outcomes per app")
    };
    AppEval {
        app: app.name().to_string(),
        baseline_runtime_s: base.summary.runtime_s,
        baseline_cpu_w: base.summary.mean_cpu_w,
        magus: Comparison::against(&base.summary, &magus.summary),
        ups: Comparison::against(&base.summary, &ups.summary),
    }
}

/// Evaluate one app on one system with all three methods.
#[must_use]
pub fn evaluate_app(engine: &Engine, system: SystemId, app: AppId) -> AppEval {
    let briefs = engine.run_brief(&eval_specs(system, app));
    eval_from_briefs(app, &briefs)
}

/// Fig 4 (a/b/c): the end-to-end suite evaluation for a system. The whole
/// suite (3 trials per application) is submitted as one flat batch and
/// reduced from streaming summary digests — full outcomes never
/// accumulate.
#[must_use]
pub fn fig4(engine: &Engine, system: SystemId) -> Vec<AppEval> {
    let suite = match system {
        SystemId::IntelA100 => fig4a_suite(),
        SystemId::IntelMax1550 => fig4b_suite(),
        SystemId::Intel4A100 => fig4c_suite(),
    };
    let specs: Vec<TrialSpec> = suite
        .iter()
        .flat_map(|&app| eval_specs(system, app))
        .collect();
    let briefs = engine.run_brief(&specs);
    suite
        .iter()
        .zip(briefs.chunks_exact(3))
        .map(|(&app, chunk)| eval_from_briefs(app, chunk))
        .collect()
}

/// Fig 5: SRAD memory-throughput traces under four policies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Data {
    /// Uncore pinned at maximum.
    pub max_uncore: TrialResult,
    /// Uncore pinned at minimum.
    pub min_uncore: TrialResult,
    /// MAGUS.
    pub magus: TrialResult,
    /// UPS.
    pub ups: TrialResult,
}

/// Fig 5 / Fig 6: the SRAD case study (§6.2).
#[must_use]
pub fn fig5_srad_case_study(engine: &Engine) -> Fig5Data {
    let system = SystemId::IntelA100;
    let uncore = system.node_config().uncore;
    let spec = |g: GovernorSpec| TrialSpec::new(system, AppId::Srad, g).recorded();
    let outs = engine.run_suite(&[
        spec(GovernorSpec::Fixed {
            ghz: uncore.freq_max_ghz,
        }),
        spec(GovernorSpec::Fixed {
            ghz: uncore.freq_min_ghz,
        }),
        spec(GovernorSpec::magus_default()),
        spec(GovernorSpec::ups_default()),
    ]);
    let [max_uncore, min_uncore, magus, ups] = <[_; 4]>::try_from(outs).expect("four outcomes");
    Fig5Data {
        max_uncore: max_uncore.result,
        min_uncore: min_uncore.result,
        magus: magus.result,
        ups: ups.result,
    }
}

/// Derived §6.2 case-study statistics (the numbers quoted in the text).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SradStats {
    /// MAGUS vs baseline.
    pub magus: Comparison,
    /// UPS vs baseline.
    pub ups: Comparison,
    /// Fraction of MAGUS's post-warm-up decision cycles spent in the
    /// high-frequency locked state.
    pub magus_high_freq_fraction: f64,
}

/// Compute the §6.2 statistics from a fresh case-study run.
#[must_use]
pub fn srad_stats(engine: &Engine) -> SradStats {
    let outs = engine.run_suite(&eval_specs(SystemId::IntelA100, AppId::Srad));
    let [base, magus, ups] = <[_; 3]>::try_from(outs).expect("three outcomes");
    SradStats {
        magus: Comparison::against(&base.result.summary, &magus.result.summary),
        ups: Comparison::against(&base.result.summary, &ups.result.summary),
        magus_high_freq_fraction: magus
            .high_freq_fraction
            .expect("MAGUS reports its high-frequency fraction"),
    }
}

/// Table 1: Jaccard similarity of burst intervals, MAGUS vs the
/// maximum-uncore baseline, per application — 2 × 21 recorded trials in
/// one batch.
#[must_use]
pub fn table1_jaccard(engine: &Engine) -> Vec<(String, f64)> {
    let suite = table1_suite();
    let specs: Vec<TrialSpec> = suite
        .iter()
        .flat_map(|&app| {
            [
                TrialSpec::new(SystemId::IntelA100, app, GovernorSpec::Default).recorded(),
                TrialSpec::new(SystemId::IntelA100, app, GovernorSpec::magus_default()).recorded(),
            ]
        })
        .collect();
    // Samples are the only thing the Jaccard reduction reads: extract them
    // inside the workers and let the rest of each outcome drop there.
    let samples = engine.run_mapped(&specs, |_, out| out.result.samples);
    suite
        .iter()
        .zip(samples.chunks_exact(2))
        .map(|(&app, pair)| {
            let threshold = default_burst_threshold(&pair[0]);
            let score = burst_jaccard(&pair[0], &pair[1], threshold);
            (app.name().to_string(), score)
        })
        .collect()
}

/// One Fig 7 sweep result for an application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Application name.
    pub app: String,
    /// Every threshold combination's outcome.
    pub points: Vec<ParetoPoint>,
    /// The default-threshold configuration's outcome.
    pub default_point: ParetoPoint,
    /// The paper's common-frontier point (inc=300, dec=500, hf=0.4).
    pub common_point: ParetoPoint,
}

/// The §6.4 protocol: fix two thresholds at their defaults and vary the
/// third — 40 combinations, built through the validating builder (the
/// final combination disables the high-frequency lock outright, the
/// ablation sentinel the range check would otherwise reject).
#[must_use]
pub fn sensitivity_combinations() -> Vec<MagusConfig> {
    let built = |b: magus_runtime::MagusConfigBuilder| b.build().expect("sweep configs are valid");
    let mut combos = Vec::with_capacity(40);
    for inc in [
        50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 400.0, 500.0, 700.0, 1000.0, 1500.0, 2000.0,
        3000.0, 5000.0,
    ] {
        combos.push(built(MagusConfig::builder().inc_threshold(inc)));
    }
    for dec in [
        100.0, 200.0, 300.0, 400.0, 500.0, 700.0, 1000.0, 1500.0, 2000.0, 3000.0, 5000.0, 8000.0,
        12000.0, 20000.0,
    ] {
        combos.push(built(MagusConfig::builder().dec_threshold(dec)));
    }
    for hf in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0] {
        combos.push(built(MagusConfig::builder().high_freq_threshold(hf)));
    }
    combos.push(built(MagusConfig::builder().disable_high_freq_lock()));
    combos
}

fn sweep_label(cfg: &MagusConfig) -> String {
    format!(
        "inc={} dec={} hf={}",
        cfg.inc_threshold, cfg.dec_threshold, cfg.high_freq_threshold
    )
}

/// Fig 7: the threshold sensitivity sweep for one application — all 42
/// configurations (40 sweep + default + common) in one batch.
#[must_use]
pub fn fig7_sensitivity(engine: &Engine, app: AppId) -> SweepResult {
    let system = SystemId::IntelA100;
    let mut cfgs = sensitivity_combinations();
    cfgs.push(MagusConfig::default());
    cfgs.push(MagusConfig::pareto_common());
    let labels: Vec<String> = cfgs.iter().map(sweep_label).collect();
    let specs: Vec<TrialSpec> = cfgs
        .into_iter()
        .map(|cfg| TrialSpec::new(system, app, GovernorSpec::Magus { cfg }))
        .collect();
    // 42 configurations reduce to 42 (runtime, energy) points; project
    // each outcome in its worker instead of collecting them all first.
    let mut points: Vec<ParetoPoint> = engine.run_mapped(&specs, |i, out| {
        ParetoPoint::from_outcome(labels[i].as_str(), &out)
    });
    let common_point = points.pop().expect("common point");
    let default_point = points.pop().expect("default point");
    SweepResult {
        app: app.name().to_string(),
        points,
        default_point,
        common_point,
    }
}

/// Table 2: idle overheads of MAGUS and UPS on both single-GPU systems —
/// six idle trials (2 systems × {baseline, MAGUS, UPS}) in one batch.
#[must_use]
pub fn table2_overheads(engine: &Engine, duration_s: f64) -> Vec<OverheadReport> {
    let systems = [SystemId::IntelA100, SystemId::IntelMax1550];
    let specs: Vec<TrialSpec> = systems
        .iter()
        .flat_map(|&system| {
            [
                TrialSpec::idle(system, GovernorSpec::Default, duration_s),
                TrialSpec::idle(system, GovernorSpec::magus_default(), duration_s).monitor_only(),
                TrialSpec::idle(system, GovernorSpec::ups_default(), duration_s).monitor_only(),
            ]
        })
        .collect();
    let outs = engine.run_suite(&specs);
    systems
        .iter()
        .zip(outs.chunks_exact(3))
        .flat_map(|(&system, chunk)| {
            [
                report_from_outcomes(system, &chunk[0], &chunk[1]),
                report_from_outcomes(system, &chunk[0], &chunk[2]),
            ]
        })
        .collect()
}

/// Ablation: MAGUS with and without the high-frequency lock on an
/// oscillating workload (the Algorithm 2 design choice).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HighFreqAblation {
    /// Full MAGUS vs baseline.
    pub with_lock: Comparison,
    /// Trend-prediction-only MAGUS vs baseline.
    pub without_lock: Comparison,
}

/// Run the high-frequency-lock ablation on `app` (SRAD is the interesting
/// subject).
#[must_use]
pub fn ablation_high_freq(engine: &Engine, app: AppId) -> HighFreqAblation {
    let system = SystemId::IntelA100;
    let outs = engine.run_suite(&[
        TrialSpec::new(system, app, GovernorSpec::Default),
        TrialSpec::new(system, app, GovernorSpec::magus_default()),
        TrialSpec::new(
            system,
            app,
            GovernorSpec::Magus {
                cfg: MagusConfig::without_high_freq_lock(),
            },
        ),
    ]);
    let [base, with_run, without_run] = <[_; 3]>::try_from(outs).expect("three outcomes");
    HighFreqAblation {
        with_lock: Comparison::against(&base.result.summary, &with_run.result.summary),
        without_lock: Comparison::against(&base.result.summary, &without_run.result.summary),
    }
}

/// Ablation: monitoring-interval sweep (§6.4's 0.2 s choice).
#[must_use]
pub fn ablation_interval(
    engine: &Engine,
    app: AppId,
    intervals_s: &[f64],
) -> Vec<(f64, Comparison)> {
    let system = SystemId::IntelA100;
    let mut specs = vec![TrialSpec::new(system, app, GovernorSpec::Default)];
    specs.extend(intervals_s.iter().map(|&interval_s| {
        TrialSpec::new(
            system,
            app,
            GovernorSpec::Magus {
                cfg: MagusConfig {
                    monitor_interval_us: (interval_s * 1e6) as u64,
                    ..MagusConfig::default()
                },
            },
        )
    }));
    let outs = engine.run_suite(&specs);
    let base = &outs[0];
    intervals_s
        .iter()
        .zip(&outs[1..])
        .map(|(&interval_s, out)| {
            (
                interval_s,
                Comparison::against(&base.result.summary, &out.result.summary),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_has_40_combinations() {
        assert_eq!(sensitivity_combinations().len(), 40);
    }

    #[test]
    fn evaluate_app_produces_sane_comparison() {
        let eval = evaluate_app(&Engine::ephemeral(), SystemId::IntelA100, AppId::Bfs);
        assert_eq!(eval.app, "bfs");
        assert!(eval.baseline_runtime_s > 10.0);
        // MAGUS on a compute-heavy kernel: meaningful CPU power savings,
        // bounded performance loss.
        assert!(eval.magus.power_saving_pct > 5.0, "{:?}", eval.magus);
        assert!(eval.magus.perf_loss_pct < 8.0, "{:?}", eval.magus);
    }

    #[test]
    fn fig2_reproduces_trade_off_direction() {
        let data = fig2_unet_extremes(&Engine::ephemeral());
        assert!(
            data.pkg_power_drop_w() > 40.0,
            "{}",
            data.pkg_power_drop_w()
        );
        assert!(
            data.runtime_increase_pct() > 8.0,
            "{}",
            data.runtime_increase_pct()
        );
    }

    #[test]
    fn fig1_profile_records_all_series() {
        let r = fig1_unet_profile(&Engine::ephemeral());
        assert!(r.samples.len() > 100);
        // Every plotted series carries live data.
        assert!(r.samples.iter().any(|s| s.gpu_clock_mhz > 1000.0));
        assert!(r.samples.iter().any(|s| s.core_freq_ghz > 1.0));
        assert!(r.samples.iter().all(|s| s.uncore_ghz > 2.19));
    }

    #[test]
    fn fig5_traces_have_expected_relationships() {
        let data = fig5_srad_case_study(&Engine::ephemeral());
        let peak = |r: &crate::harness::TrialResult| {
            r.samples.iter().map(|s| s.mem_gbs).fold(0.0, f64::max)
        };
        // Min uncore cannot reach the max-uncore throughput levels; MAGUS can.
        assert!(peak(&data.min_uncore) < peak(&data.max_uncore) * 0.7);
        assert!(peak(&data.magus) > peak(&data.max_uncore) * 0.9);
        assert!(data.min_uncore.summary.runtime_s > data.max_uncore.summary.runtime_s);
    }

    #[test]
    fn srad_stats_lock_engages() {
        let stats = srad_stats(&Engine::ephemeral());
        assert!(stats.magus_high_freq_fraction > 0.15);
        assert!(stats.magus.perf_loss_pct < stats.ups.perf_loss_pct + 5.0);
    }

    #[test]
    fn sensitivity_combinations_are_one_axis_variations() {
        let default = MagusConfig::default();
        for cfg in sensitivity_combinations() {
            let changed = [
                (cfg.inc_threshold - default.inc_threshold).abs() > 1e-12,
                (cfg.dec_threshold - default.dec_threshold).abs() > 1e-12,
                (cfg.high_freq_threshold - default.high_freq_threshold).abs() > 1e-12,
            ]
            .iter()
            .filter(|&&c| c)
            .count();
            assert!(changed <= 1, "{cfg:?} varies more than one threshold");
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn table1_covers_the_paper_rows() {
        // Structure only (the full sweep runs in the table1 binary): the
        // suite and threshold plumbing must line up with the paper's list.
        let suite = magus_workloads::table1_suite();
        assert_eq!(suite.len(), 21);
    }
}
