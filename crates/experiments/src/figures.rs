//! One function per paper table/figure (§6). The `magus-bench` binaries
//! print these; integration tests assert their shapes against the paper.

use magus_runtime::MagusConfig;
use magus_workloads::{fig4a_suite, fig4b_suite, fig4c_suite, table1_suite, AppId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::drivers::{FixedUncoreDriver, MagusDriver, NoopDriver, UpsDriver};
use crate::harness::{run_trial, SystemId, TrialOpts, TrialResult};
use crate::metrics::{burst_jaccard, default_burst_threshold, Comparison};
use crate::overhead::{measure_overhead, OverheadReport};
use crate::pareto::ParetoPoint;

/// Fig 1: UNet profiled under the stock governor — CPU core frequency and
/// GPU clock move with demand; uncore stays pinned at maximum.
#[must_use]
pub fn fig1_unet_profile() -> TrialResult {
    let mut driver = NoopDriver;
    run_trial(
        SystemId::IntelA100,
        AppId::Unet,
        &mut driver,
        TrialOpts::recorded(),
    )
}

/// Fig 2 data: UNet under fixed max vs fixed min uncore frequency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Data {
    /// Run with the uncore pinned at maximum (2.2 GHz).
    pub max_uncore: TrialResult,
    /// Run with the uncore pinned at minimum (0.8 GHz).
    pub min_uncore: TrialResult,
}

impl Fig2Data {
    /// CPU package power reduction from max to min (W) — the paper's 82 W.
    #[must_use]
    pub fn pkg_power_drop_w(&self) -> f64 {
        let pkg = |r: &TrialResult| {
            let e = &r.summary.energy;
            e.pkg_j() / e.elapsed_s
        };
        pkg(&self.max_uncore) - pkg(&self.min_uncore)
    }

    /// Runtime increase from max to min (%) — the paper's 21%.
    #[must_use]
    pub fn runtime_increase_pct(&self) -> f64 {
        crate::metrics::pct_change(
            self.max_uncore.summary.runtime_s,
            self.min_uncore.summary.runtime_s,
        )
    }
}

/// Fig 2: UNet power profiles at the uncore extremes.
#[must_use]
pub fn fig2_unet_extremes() -> Fig2Data {
    let system = SystemId::IntelA100;
    let opts = TrialOpts::recorded();
    let mut max_driver = FixedUncoreDriver::new(system.node_config().uncore.freq_max_ghz);
    let max_uncore = run_trial(system, AppId::Unet, &mut max_driver, opts);
    let mut min_driver = FixedUncoreDriver::new(system.node_config().uncore.freq_min_ghz);
    let min_uncore = run_trial(system, AppId::Unet, &mut min_driver, opts);
    Fig2Data {
        max_uncore,
        min_uncore,
    }
}

/// One application's Fig 4 row: MAGUS and UPS against the stock baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppEval {
    /// Application name.
    pub app: String,
    /// Baseline runtime (s), for reference.
    pub baseline_runtime_s: f64,
    /// Baseline mean CPU power (W), for reference.
    pub baseline_cpu_w: f64,
    /// MAGUS vs baseline.
    pub magus: Comparison,
    /// UPS vs baseline.
    pub ups: Comparison,
}

/// Evaluate one app on one system with all three methods.
#[must_use]
pub fn evaluate_app(system: SystemId, app: AppId) -> AppEval {
    let opts = TrialOpts::default();
    let mut base_driver = NoopDriver;
    let base = run_trial(system, app, &mut base_driver, opts);
    let mut magus_driver = MagusDriver::with_defaults();
    let magus = run_trial(system, app, &mut magus_driver, opts);
    let mut ups_driver = UpsDriver::with_defaults();
    let ups = run_trial(system, app, &mut ups_driver, opts);
    AppEval {
        app: app.name().to_string(),
        baseline_runtime_s: base.summary.runtime_s,
        baseline_cpu_w: base.summary.mean_cpu_w,
        magus: Comparison::against(&base.summary, &magus.summary),
        ups: Comparison::against(&base.summary, &ups.summary),
    }
}

/// Fig 4 (a/b/c): the end-to-end suite evaluation for a system.
#[must_use]
pub fn fig4(system: SystemId) -> Vec<AppEval> {
    let suite = match system {
        SystemId::IntelA100 => fig4a_suite(),
        SystemId::IntelMax1550 => fig4b_suite(),
        SystemId::Intel4A100 => fig4c_suite(),
    };
    suite
        .into_par_iter()
        .map(|app| evaluate_app(system, app))
        .collect()
}

/// Fig 5: SRAD memory-throughput traces under four policies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Data {
    /// Uncore pinned at maximum.
    pub max_uncore: TrialResult,
    /// Uncore pinned at minimum.
    pub min_uncore: TrialResult,
    /// MAGUS.
    pub magus: TrialResult,
    /// UPS.
    pub ups: TrialResult,
}

/// Fig 5 / Fig 6: the SRAD case study (§6.2).
#[must_use]
pub fn fig5_srad_case_study() -> Fig5Data {
    let system = SystemId::IntelA100;
    let opts = TrialOpts::recorded();
    let cfg = system.node_config();
    let mut max_d = FixedUncoreDriver::new(cfg.uncore.freq_max_ghz);
    let mut min_d = FixedUncoreDriver::new(cfg.uncore.freq_min_ghz);
    let mut magus_d = MagusDriver::with_defaults();
    let mut ups_d = UpsDriver::with_defaults();
    Fig5Data {
        max_uncore: run_trial(system, AppId::Srad, &mut max_d, opts),
        min_uncore: run_trial(system, AppId::Srad, &mut min_d, opts),
        magus: run_trial(system, AppId::Srad, &mut magus_d, opts),
        ups: run_trial(system, AppId::Srad, &mut ups_d, opts),
    }
}

/// Derived §6.2 case-study statistics (the numbers quoted in the text).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SradStats {
    /// MAGUS vs baseline.
    pub magus: Comparison,
    /// UPS vs baseline.
    pub ups: Comparison,
    /// Fraction of MAGUS's post-warm-up decision cycles spent in the
    /// high-frequency locked state.
    pub magus_high_freq_fraction: f64,
}

/// Compute the §6.2 statistics from a fresh case-study run.
#[must_use]
pub fn srad_stats() -> SradStats {
    let system = SystemId::IntelA100;
    let opts = TrialOpts::default();
    let mut base_d = NoopDriver;
    let base = run_trial(system, AppId::Srad, &mut base_d, opts);
    let mut magus_d = MagusDriver::with_defaults();
    let magus = run_trial(system, AppId::Srad, &mut magus_d, opts);
    let mut ups_d = UpsDriver::with_defaults();
    let ups = run_trial(system, AppId::Srad, &mut ups_d, opts);
    SradStats {
        magus: Comparison::against(&base.summary, &magus.summary),
        ups: Comparison::against(&base.summary, &ups.summary),
        magus_high_freq_fraction: magus_d.telemetry().high_freq_fraction(),
    }
}

/// Table 1: Jaccard similarity of burst intervals, MAGUS vs the
/// maximum-uncore baseline, per application.
#[must_use]
pub fn table1_jaccard() -> Vec<(String, f64)> {
    table1_suite()
        .into_par_iter()
        .map(|app| {
            let system = SystemId::IntelA100;
            let opts = TrialOpts::recorded();
            let mut base_d = NoopDriver;
            let base = run_trial(system, app, &mut base_d, opts);
            let mut magus_d = MagusDriver::with_defaults();
            let magus = run_trial(system, app, &mut magus_d, opts);
            let threshold = default_burst_threshold(&base.samples);
            let score = burst_jaccard(&base.samples, &magus.samples, threshold);
            (app.name().to_string(), score)
        })
        .collect()
}

/// One Fig 7 sweep result for an application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Application name.
    pub app: String,
    /// Every threshold combination's outcome.
    pub points: Vec<ParetoPoint>,
    /// The default-threshold configuration's outcome.
    pub default_point: ParetoPoint,
    /// The paper's common-frontier point (inc=300, dec=500, hf=0.4).
    pub common_point: ParetoPoint,
}

/// The §6.4 protocol: fix two thresholds at their defaults and vary the
/// third — 40 combinations.
#[must_use]
pub fn sensitivity_combinations() -> Vec<MagusConfig> {
    let mut combos = Vec::with_capacity(40);
    for inc in [50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 400.0, 500.0, 700.0, 1000.0, 1500.0, 2000.0, 3000.0, 5000.0]
    {
        combos.push(MagusConfig {
            inc_threshold: inc,
            ..MagusConfig::default()
        });
    }
    for dec in [100.0, 200.0, 300.0, 400.0, 500.0, 700.0, 1000.0, 1500.0, 2000.0, 3000.0, 5000.0, 8000.0, 12000.0, 20000.0]
    {
        combos.push(MagusConfig {
            dec_threshold: dec,
            ..MagusConfig::default()
        });
    }
    for hf in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.5] {
        combos.push(MagusConfig {
            high_freq_threshold: hf,
            ..MagusConfig::default()
        });
    }
    combos
}

fn sweep_point(system: SystemId, app: AppId, cfg: MagusConfig) -> ParetoPoint {
    let label = format!(
        "inc={} dec={} hf={}",
        cfg.inc_threshold, cfg.dec_threshold, cfg.high_freq_threshold
    );
    let mut driver = MagusDriver::new(cfg);
    let r = run_trial(system, app, &mut driver, TrialOpts::default());
    ParetoPoint {
        label,
        runtime_s: r.summary.runtime_s,
        energy_j: r.summary.energy.total_j(),
    }
}

/// Fig 7: the threshold sensitivity sweep for one application.
#[must_use]
pub fn fig7_sensitivity(app: AppId) -> SweepResult {
    let system = SystemId::IntelA100;
    let points: Vec<ParetoPoint> = sensitivity_combinations()
        .into_par_iter()
        .map(|cfg| sweep_point(system, app, cfg))
        .collect();
    let default_point = sweep_point(system, app, MagusConfig::default());
    let common_point = sweep_point(system, app, MagusConfig::pareto_common());
    SweepResult {
        app: app.name().to_string(),
        points,
        default_point,
        common_point,
    }
}

/// Table 2: idle overheads of MAGUS and UPS on both single-GPU systems.
#[must_use]
pub fn table2_overheads(duration_s: f64) -> Vec<OverheadReport> {
    let cells: Vec<(SystemId, bool)> = vec![
        (SystemId::IntelA100, true),
        (SystemId::IntelA100, false),
        (SystemId::IntelMax1550, true),
        (SystemId::IntelMax1550, false),
    ];
    cells
        .into_par_iter()
        .map(|(system, is_magus)| {
            if is_magus {
                let mut d = MagusDriver::with_defaults();
                measure_overhead(system, &mut d, duration_s)
            } else {
                let mut d = UpsDriver::with_defaults();
                measure_overhead(system, &mut d, duration_s)
            }
        })
        .collect()
}

/// Ablation: MAGUS with and without the high-frequency lock on an
/// oscillating workload (the Algorithm 2 design choice).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HighFreqAblation {
    /// Full MAGUS vs baseline.
    pub with_lock: Comparison,
    /// Trend-prediction-only MAGUS vs baseline.
    pub without_lock: Comparison,
}

/// Run the high-frequency-lock ablation on `app` (SRAD is the interesting
/// subject).
#[must_use]
pub fn ablation_high_freq(app: AppId) -> HighFreqAblation {
    let system = SystemId::IntelA100;
    let opts = TrialOpts::default();
    let mut base_d = NoopDriver;
    let base = run_trial(system, app, &mut base_d, opts);
    let mut with_d = MagusDriver::with_defaults();
    let with_run = run_trial(system, app, &mut with_d, opts);
    let mut without_d = MagusDriver::new(MagusConfig::without_high_freq_lock());
    let without_run = run_trial(system, app, &mut without_d, opts);
    HighFreqAblation {
        with_lock: Comparison::against(&base.summary, &with_run.summary),
        without_lock: Comparison::against(&base.summary, &without_run.summary),
    }
}

/// Ablation: monitoring-interval sweep (§6.4's 0.2 s choice).
#[must_use]
pub fn ablation_interval(app: AppId, intervals_s: &[f64]) -> Vec<(f64, Comparison)> {
    let system = SystemId::IntelA100;
    let opts = TrialOpts::default();
    let mut base_d = NoopDriver;
    let base = run_trial(system, app, &mut base_d, opts);
    intervals_s
        .par_iter()
        .map(|&interval_s| {
            let cfg = MagusConfig {
                monitor_interval_us: (interval_s * 1e6) as u64,
                ..MagusConfig::default()
            };
            let mut driver = MagusDriver::new(cfg);
            let r = run_trial(system, app, &mut driver, opts);
            (interval_s, Comparison::against(&base.summary, &r.summary))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_has_40_combinations() {
        assert_eq!(sensitivity_combinations().len(), 40);
    }

    #[test]
    fn evaluate_app_produces_sane_comparison() {
        let eval = evaluate_app(SystemId::IntelA100, AppId::Bfs);
        assert_eq!(eval.app, "bfs");
        assert!(eval.baseline_runtime_s > 10.0);
        // MAGUS on a compute-heavy kernel: meaningful CPU power savings,
        // bounded performance loss.
        assert!(eval.magus.power_saving_pct > 5.0, "{:?}", eval.magus);
        assert!(eval.magus.perf_loss_pct < 8.0, "{:?}", eval.magus);
    }

    #[test]
    fn fig2_reproduces_trade_off_direction() {
        let data = fig2_unet_extremes();
        assert!(data.pkg_power_drop_w() > 40.0, "{}", data.pkg_power_drop_w());
        assert!(data.runtime_increase_pct() > 8.0, "{}", data.runtime_increase_pct());
    }

    #[test]
    fn fig1_profile_records_all_series() {
        let r = fig1_unet_profile();
        assert!(r.samples.len() > 100);
        // Every plotted series carries live data.
        assert!(r.samples.iter().any(|s| s.gpu_clock_mhz > 1000.0));
        assert!(r.samples.iter().any(|s| s.core_freq_ghz > 1.0));
        assert!(r.samples.iter().all(|s| s.uncore_ghz > 2.19));
    }

    #[test]
    fn fig5_traces_have_expected_relationships() {
        let data = fig5_srad_case_study();
        let peak = |r: &crate::harness::TrialResult| {
            r.samples.iter().map(|s| s.mem_gbs).fold(0.0, f64::max)
        };
        // Min uncore cannot reach the max-uncore throughput levels; MAGUS can.
        assert!(peak(&data.min_uncore) < peak(&data.max_uncore) * 0.7);
        assert!(peak(&data.magus) > peak(&data.max_uncore) * 0.9);
        assert!(data.min_uncore.summary.runtime_s > data.max_uncore.summary.runtime_s);
    }

    #[test]
    fn srad_stats_lock_engages() {
        let stats = srad_stats();
        assert!(stats.magus_high_freq_fraction > 0.15);
        assert!(stats.magus.perf_loss_pct < stats.ups.perf_loss_pct + 5.0);
    }

    #[test]
    fn sensitivity_combinations_are_one_axis_variations() {
        let default = MagusConfig::default();
        for cfg in sensitivity_combinations() {
            let changed = [
                (cfg.inc_threshold - default.inc_threshold).abs() > 1e-12,
                (cfg.dec_threshold - default.dec_threshold).abs() > 1e-12,
                (cfg.high_freq_threshold - default.high_freq_threshold).abs() > 1e-12,
            ]
            .iter()
            .filter(|&&c| c)
            .count();
            assert!(changed <= 1, "{cfg:?} varies more than one threshold");
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn table1_covers_the_paper_rows() {
        // Structure only (the full sweep runs in the table1 binary): the
        // suite and threshold plumbing must line up with the paper's list.
        let suite = magus_workloads::table1_suite();
        assert_eq!(suite.len(), 21);
    }
}
