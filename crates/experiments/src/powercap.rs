//! Power-budget study: uncore scaling as cap headroom (§6.1's budget
//! argument, quantified).
//!
//! "Reducing instantaneous power consumption helps prevent the aggregate
//! power consumption of all applications from exceeding the system's total
//! power budget if one is in place." Under a RAPL package power limit, the
//! stock governor burns its budget on a pinned-max uncore and must
//! throttle the cores to fit — slowing any workload with a host-sensitive
//! critical path. MAGUS releases that uncore power, leaving the cores
//! their headroom.

use magus_hetsim::AppTrace;
use magus_workloads::spec::{BurstTrainSpec, Segment, UtilSpec, WorkloadSpec};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::drivers::{MagusDriver, NoopDriver, RuntimeDriver};
use crate::harness::{SystemId, TrialOpts, TrialResult};

/// One (cap, policy) cell of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowercapCell {
    /// Per-socket PL1 limit (W); `None` = uncapped.
    pub cap_w: Option<f64>,
    /// Policy name.
    pub policy: String,
    /// Runtime (s).
    pub runtime_s: f64,
    /// Mean CPU-side power (W).
    pub mean_cpu_w: f64,
    /// Total energy (J).
    pub energy_j: f64,
}

/// A hybrid MD-like workload: GPU kernels with a meaningful host loop
/// (`cpu_frac` = 0.35), the kind of code power caps actually hurt.
#[must_use]
pub fn hybrid_workload() -> AppTrace {
    WorkloadSpec {
        name: "hybrid-md".into(),
        total_s: 30.0,
        init: None,
        segments: vec![(
            Segment::Bursts(BurstTrainSpec {
                period_s: 3.0,
                duty: 0.3,
                burst_bw_gbs: 90.0,
                quiet_bw_gbs: 8.0,
                burst_mem_frac: 0.5,
                quiet_mem_frac: 0.1,
                jitter: 0.08,
                ramp_s: 0.5,
            }),
            30.0,
        )],
        util: UtilSpec::single(0.85, 0.75, 0.6, 0.8).with_cpu_frac(0.35),
        seed: 0xCAFE,
    }
    .build()
}

fn run_capped(
    system: SystemId,
    trace: AppTrace,
    cap_w: Option<f64>,
    driver: &mut dyn RuntimeDriver,
) -> TrialResult {
    use magus_hetsim::{Node, Simulation, TraceRecorder};
    let mut sim = Simulation::new(Node::new(system.node_config()));
    sim.set_recorder(TraceRecorder::disabled());
    sim.load(trace);
    if let Some(w) = cap_w {
        sim.node_mut().set_power_limit_w(w).expect("program PL1");
    }
    driver.attach(&mut sim);
    let opts = TrialOpts::default();
    let budget_us = magus_hetsim::secs_to_us(opts.max_s);
    let mut next_due = 0u64;
    let mut invocations = 0u64;
    let mut total_invocation = 0u64;
    while !sim.done() && sim.node().time_us() < budget_us {
        if sim.node().time_us() >= next_due {
            let latency = driver.on_decision(&mut sim);
            invocations += 1;
            total_invocation += latency;
            let rest = driver.rest_interval_us();
            next_due = if rest == u64::MAX {
                u64::MAX
            } else {
                sim.node().time_us() + latency + rest
            };
        }
        sim.step();
    }
    TrialResult {
        runtime: driver.name().to_string(),
        summary: sim.summary(0),
        samples: Vec::new(),
        invocations,
        mean_invocation_us: if invocations == 0 {
            0.0
        } else {
            total_invocation as f64 / invocations as f64
        },
    }
}

/// Run the study: each cap × {default, MAGUS} on the hybrid workload.
#[must_use]
pub fn powercap_study(caps_w: &[Option<f64>]) -> Vec<PowercapCell> {
    let system = SystemId::IntelA100;
    caps_w
        .par_iter()
        .flat_map(|&cap| {
            let mut out = Vec::with_capacity(2);
            let mut base = NoopDriver;
            let b = run_capped(system, hybrid_workload(), cap, &mut base);
            out.push(PowercapCell {
                cap_w: cap,
                policy: "default".into(),
                runtime_s: b.summary.runtime_s,
                mean_cpu_w: b.summary.mean_cpu_w,
                energy_j: b.summary.energy.total_j(),
            });
            let mut magus = MagusDriver::with_defaults();
            let m = run_capped(system, hybrid_workload(), cap, &mut magus);
            out.push(PowercapCell {
                cap_w: cap,
                policy: "MAGUS".into(),
                runtime_s: m.summary.runtime_s,
                mean_cpu_w: m.summary.mean_cpu_w,
                energy_j: m.summary.energy.total_j(),
            });
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_workload_is_host_sensitive() {
        let trace = hybrid_workload();
        assert!(trace.phases.iter().all(|p| p.demand.cpu_frac > 0.3));
        assert!((trace.total_work_s() - 30.0).abs() < 0.1);
    }

    #[test]
    fn uncapped_policies_tie_on_runtime() {
        let cells = powercap_study(&[None]);
        let base = cells.iter().find(|c| c.policy == "default").unwrap();
        let magus = cells.iter().find(|c| c.policy == "MAGUS").unwrap();
        assert!((base.runtime_s - 30.0).abs() < 0.3);
        assert!(magus.runtime_s < base.runtime_s * 1.03);
        assert!(magus.mean_cpu_w < base.mean_cpu_w);
    }

    #[test]
    fn under_tight_cap_magus_preserves_performance() {
        // At 95 W/socket the stock governor must throttle the cores to pay
        // for its pinned-max uncore; MAGUS's uncore savings keep the cores
        // near their natural frequency.
        let cells = powercap_study(&[Some(95.0)]);
        let base = cells.iter().find(|c| c.policy == "default").unwrap();
        let magus = cells.iter().find(|c| c.policy == "MAGUS").unwrap();
        assert!(
            base.runtime_s > magus.runtime_s * 1.04,
            "default {} s vs MAGUS {} s under a 95 W cap",
            base.runtime_s,
            magus.runtime_s
        );
        // Both respect the cap.
        assert!(base.mean_cpu_w < 2.0 * 95.0 + 30.0);
        assert!(magus.mean_cpu_w < 2.0 * 95.0 + 30.0);
    }
}
