//! Power-budget study: uncore scaling as cap headroom (§6.1's budget
//! argument, quantified).
//!
//! "Reducing instantaneous power consumption helps prevent the aggregate
//! power consumption of all applications from exceeding the system's total
//! power budget if one is in place." Under a RAPL package power limit, the
//! stock governor burns its budget on a pinned-max uncore and must
//! throttle the cores to fit — slowing any workload with a host-sensitive
//! critical path. MAGUS releases that uncore power, leaving the cores
//! their headroom.
//!
//! Capped trials are ordinary engine specs — [`TrialSpec::hybrid`] sets
//! `power_cap_w`, and the harness programs PL1 before the driver attaches.

use magus_hetsim::AppTrace;
use magus_workloads::spec::{BurstTrainSpec, Segment, UtilSpec, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::engine::{Engine, GovernorSpec, TrialSpec};

/// One (cap, policy) cell of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowercapCell {
    /// Per-socket PL1 limit (W); `None` = uncapped.
    pub cap_w: Option<f64>,
    /// Policy name.
    pub policy: String,
    /// Runtime (s).
    pub runtime_s: f64,
    /// Mean CPU-side power (W).
    pub mean_cpu_w: f64,
    /// Total energy (J).
    pub energy_j: f64,
}

/// A hybrid MD-like workload: GPU kernels with a meaningful host loop
/// (`cpu_frac` = 0.35), the kind of code power caps actually hurt.
#[must_use]
pub fn hybrid_workload() -> AppTrace {
    WorkloadSpec {
        name: "hybrid-md".into(),
        total_s: 30.0,
        init: None,
        segments: vec![(
            Segment::Bursts(BurstTrainSpec {
                period_s: 3.0,
                duty: 0.3,
                burst_bw_gbs: 90.0,
                quiet_bw_gbs: 8.0,
                burst_mem_frac: 0.5,
                quiet_mem_frac: 0.1,
                jitter: 0.08,
                ramp_s: 0.5,
            }),
            30.0,
        )],
        util: UtilSpec::single(0.85, 0.75, 0.6, 0.8).with_cpu_frac(0.35),
        seed: 0xCAFE,
    }
    .build()
}

/// Run the study: each cap × {default, MAGUS} on the hybrid workload.
#[must_use]
pub fn powercap_study(engine: &Engine, caps_w: &[Option<f64>]) -> Vec<PowercapCell> {
    let specs: Vec<TrialSpec> = caps_w
        .iter()
        .flat_map(|&cap| {
            [
                TrialSpec::hybrid(GovernorSpec::Default, cap),
                TrialSpec::hybrid(GovernorSpec::magus_default(), cap),
            ]
        })
        .collect();
    let outs = engine.run_suite(&specs);
    outs.iter()
        .map(|out| PowercapCell {
            cap_w: out.spec.power_cap_w,
            policy: out.result.runtime.clone(),
            runtime_s: out.result.summary.runtime_s,
            mean_cpu_w: out.result.summary.mean_cpu_w,
            energy_j: out.result.summary.energy.total_j(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_workload_is_host_sensitive() {
        let trace = hybrid_workload();
        assert!(trace.phases.iter().all(|p| p.demand.cpu_frac > 0.3));
        assert!((trace.total_work_s() - 30.0).abs() < 0.1);
    }

    #[test]
    fn uncapped_policies_tie_on_runtime() {
        let cells = powercap_study(&Engine::ephemeral(), &[None]);
        let base = cells.iter().find(|c| c.policy == "default").unwrap();
        let magus = cells.iter().find(|c| c.policy == "MAGUS").unwrap();
        assert!((base.runtime_s - 30.0).abs() < 0.3);
        assert!(magus.runtime_s < base.runtime_s * 1.03);
        assert!(magus.mean_cpu_w < base.mean_cpu_w);
    }

    #[test]
    fn under_tight_cap_magus_preserves_performance() {
        // At 95 W/socket the stock governor must throttle the cores to pay
        // for its pinned-max uncore; MAGUS's uncore savings keep the cores
        // near their natural frequency.
        let cells = powercap_study(&Engine::ephemeral(), &[Some(95.0)]);
        let base = cells.iter().find(|c| c.policy == "default").unwrap();
        let magus = cells.iter().find(|c| c.policy == "MAGUS").unwrap();
        assert!(
            base.runtime_s > magus.runtime_s * 1.04,
            "default {} s vs MAGUS {} s under a 95 W cap",
            base.runtime_s,
            magus.runtime_s
        );
        // Both respect the cap.
        assert!(base.mean_cpu_w < 2.0 * 95.0 + 30.0);
        assert!(magus.mean_cpu_w < 2.0 * 95.0 + 30.0);
    }
}
