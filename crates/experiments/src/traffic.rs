//! Traffic study: governor energy savings under multi-tenant load.
//!
//! The paper evaluates governors one application at a time; this study
//! asks the cluster question instead — what does adaptive uncore scaling
//! save when a fleet serves *traffic*? A ladder of [`TrafficTier`]s, each
//! a fixed seeded [`TrafficSpec`], shapes the load: a lightly loaded
//! fleet, a steady colocated mix, a diurnal swing, and an MMPP-bursty
//! rush. Every tier runs the same N-node fleet under each of {stock
//! default, MAGUS, UPS}; within a tier each governor is compared against
//! the *same-tier* stock baseline, so the deltas isolate the governor's
//! behaviour from the load shape's direct cost. Alongside the energy
//! comparison the traffic layer's deadline accounting reports how many
//! tenant jobs each governor made late — the service-level price of its
//! savings.
//!
//! Reproduce the published table with:
//!
//! ```text
//! cargo run --release -p magus-bench --bin traffic_study > results/traffic.txt
//! ```

use magus_workloads::TrafficSpec;
use serde::{Deserialize, Serialize};

use crate::engine::GovernorSpec;
use crate::fleet::{run_fleet, FleetSpec};

/// One rung of the traffic-shape ladder. Every tier maps to a fixed,
/// seeded [`TrafficSpec`] (see [`TrafficTier::spec`]), so the study is
/// bit-reproducible and each tier's trials hash to distinct cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficTier {
    /// Few tenants, no colocation, long gaps: a mostly idle fleet.
    Light,
    /// Colocated tenants at a steady arrival rate (no modulation).
    Steady,
    /// The steady mix under a strong sinusoidal day/night envelope.
    Diurnal,
    /// The steady mix with an aggressive two-state MMPP burst process.
    Bursty,
}

impl TrafficTier {
    /// All tiers, in sweep order.
    pub const ALL: [TrafficTier; 4] = [
        TrafficTier::Light,
        TrafficTier::Steady,
        TrafficTier::Diurnal,
        TrafficTier::Bursty,
    ];

    /// Human-readable tier name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TrafficTier::Light => "light",
            TrafficTier::Steady => "steady",
            TrafficTier::Diurnal => "diurnal",
            TrafficTier::Bursty => "bursty",
        }
    }

    /// The tier's traffic spec. Each tier draws from a distinct seed, and
    /// all share the same deadline slack, so miss-rate differences between
    /// tiers come from the arrival shape, not the deadline policy.
    #[must_use]
    pub fn spec(self) -> TrafficSpec {
        let builder = TrafficSpec::builder()
            .jobs_per_tenant(3)
            .deadline_slack(1.6);
        match self {
            TrafficTier::Light => builder
                .seed(1001)
                .tenants(4)
                .colocate(1)
                .mean_gap_s(8.0)
                .jobs_per_tenant(2),
            TrafficTier::Steady => builder.seed(1002).tenants(6).colocate(2).mean_gap_s(4.0),
            TrafficTier::Diurnal => builder
                .seed(1003)
                .tenants(6)
                .colocate(2)
                .mean_gap_s(4.0)
                .diurnal(120.0, 0.8),
            TrafficTier::Bursty => builder
                .seed(1004)
                .tenants(6)
                .colocate(2)
                .mean_gap_s(4.0)
                .bursts(8.0, 0.35, 0.25),
        }
        .build()
        .expect("tier specs are valid")
    }
}

/// One governor's numbers under one traffic tier, compared against the
/// same-tier stock baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GovernorRow {
    /// Governor display name.
    pub governor: String,
    /// Fleet total energy (J).
    pub total_j: f64,
    /// Fleet uncore energy (J).
    pub uncore_j: f64,
    /// Fleet makespan (s).
    pub makespan_s: f64,
    /// Tenant jobs carrying deadlines across the fleet.
    pub deadline_jobs: u64,
    /// Tenant jobs that missed their deadline.
    pub deadline_misses: u64,
    /// Total-energy saving vs the same-tier stock baseline (%; the
    /// baseline row itself reads 0).
    pub energy_saving_pct: f64,
    /// Uncore-energy saving vs the same-tier stock baseline (%).
    pub uncore_saving_pct: f64,
    /// Makespan change vs the same-tier stock baseline (%; positive =
    /// the governor slowed the fleet down).
    pub makespan_delta_pct: f64,
}

impl GovernorRow {
    /// Deadline-miss rate in percent (0 when the tier carries no jobs).
    #[must_use]
    pub fn miss_pct(&self) -> f64 {
        if self.deadline_jobs == 0 {
            0.0
        } else {
            100.0 * self.deadline_misses as f64 / self.deadline_jobs as f64
        }
    }
}

/// One tier's evaluation: a row per governor, stock baseline first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficEval {
    /// The traffic tier these rows ran under.
    pub tier: TrafficTier,
    /// Per-governor rows, in {default, MAGUS, UPS} order.
    pub rows: Vec<GovernorRow>,
}

/// Percent change helper: `100 × (value − base) / base`, 0 for a zero base.
fn pct_delta(value: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (value - base) / base
    }
}

/// The traffic study over an explicit tier list: an N-node fleet per
/// (tier × governor), each node running one slot of the tier's traffic
/// expansion. Deterministic end to end — fleet summaries are
/// bit-identical across shard counts and stepping modes, and the specs
/// are seeded — so repeated runs produce identical tables.
#[must_use]
pub fn traffic_study_for_tiers(
    tiers: &[TrafficTier],
    nodes: usize,
    max_s: f64,
) -> Vec<TrafficEval> {
    tiers
        .iter()
        .map(|&tier| {
            let governors = [
                GovernorSpec::Default,
                GovernorSpec::magus_default(),
                GovernorSpec::ups_default(),
            ];
            let runs: Vec<_> = governors
                .into_iter()
                .map(|governor| {
                    let name = governor.name();
                    let run = run_fleet(
                        &FleetSpec {
                            max_s,
                            ..FleetSpec::new(governor, nodes)
                        }
                        .with_traffic(tier.spec()),
                    );
                    (name, run)
                })
                .collect();
            let base = runs[0].1.summary.clone();
            let rows = runs
                .into_iter()
                .map(|(name, run)| {
                    let s = &run.summary;
                    GovernorRow {
                        governor: name,
                        total_j: s.total_j,
                        uncore_j: s.total_uncore_j,
                        makespan_s: s.makespan_s,
                        deadline_jobs: s.deadline_jobs,
                        deadline_misses: s.deadline_misses,
                        energy_saving_pct: -pct_delta(s.total_j, base.total_j),
                        uncore_saving_pct: -pct_delta(s.total_uncore_j, base.total_uncore_j),
                        makespan_delta_pct: pct_delta(s.makespan_s, base.makespan_s),
                    }
                })
                .collect();
            TrafficEval { tier, rows }
        })
        .collect()
}

/// The full traffic study over every [`TrafficTier`].
#[must_use]
pub fn traffic_study(nodes: usize, max_s: f64) -> Vec<TrafficEval> {
    traffic_study_for_tiers(&TrafficTier::ALL, nodes, max_s)
}

/// Render the traffic report: one fixed-width table of
/// (tier × governor) rows with energy savings and deadline misses.
#[must_use]
pub fn render_traffic_report(nodes: usize, evals: &[TrafficEval]) -> String {
    let mut out = format!("== Traffic study: {nodes}-node fleet, {{default, MAGUS, UPS}} ==\n");
    out.push_str(&format!(
        "{:<8} {:<8} | {:>12} {:>8} {:>8} | {:>10} {:>7} {:>7} | {:>10} {:>8}\n",
        "tier",
        "governor",
        "energy J",
        "en-sv%",
        "unc-sv%",
        "makespan",
        "Δmk%",
        "jobs",
        "misses",
        "miss%"
    ));
    for eval in evals {
        for row in &eval.rows {
            out.push_str(&format!(
                "{:<8} {:<8} | {:>12.1} {:>8.2} {:>8.2} | {:>10.2} {:>7.2} {:>7} | {:>10} {:>8.1}\n",
                eval.tier.name(),
                row.governor,
                row.total_j,
                row.energy_saving_pct,
                row.uncore_saving_pct,
                row.makespan_s,
                row.makespan_delta_pct,
                row.deadline_jobs,
                row.deadline_misses,
                row.miss_pct(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_specs_are_valid_and_distinct() {
        let mut seeds = Vec::new();
        for tier in TrafficTier::ALL {
            let spec = tier.spec();
            spec.validate().expect("tier spec validates");
            seeds.push(spec.seed);
        }
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "tiers must use distinct traffic seeds");
        assert!(TrafficTier::Diurnal.spec().diurnal.amplitude > 0.0);
        assert!(TrafficTier::Bursty.spec().bursts.p_enter_burst > 0.0);
    }

    #[test]
    fn study_reports_savings_and_deadlines_per_tier() {
        let evals = traffic_study_for_tiers(&[TrafficTier::Steady], 3, 600.0);
        assert_eq!(evals.len(), 1);
        let rows = &evals[0].rows;
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].governor, "default");
        assert_eq!(
            rows[0].energy_saving_pct, 0.0,
            "baseline compares to itself"
        );
        assert_eq!(rows[0].makespan_delta_pct, 0.0);
        for row in rows {
            assert!(row.total_j > 0.0);
            assert_eq!(
                row.deadline_jobs,
                3 * 2 * 3,
                "3 nodes × 2 colocated tenants × 3 jobs each"
            );
            assert!(row.deadline_misses <= row.deadline_jobs);
        }
        // MAGUS saves uncore energy under traffic — the study's headline.
        assert!(
            rows[1].uncore_saving_pct > 0.0,
            "MAGUS uncore saving: {}",
            rows[1].uncore_saving_pct
        );

        let report = render_traffic_report(3, &evals);
        assert!(report.contains("== Traffic study: 3-node fleet"));
        assert!(report.contains("steady"));
        assert!(report.contains("MAGUS"));

        // Determinism: the same tier re-runs to bit-identical rows.
        let again = traffic_study_for_tiers(&[TrafficTier::Steady], 3, 600.0);
        assert_eq!(render_traffic_report(3, &again), report);
    }
}
