//! Fleet sweep driver: the full workload catalog under each governor
//! across an N-node synthetic fleet.
//!
//! This is the experiments-layer adapter between [`RuntimeDriver`]s and
//! [`magus_hetsim::fleet::FleetSim`]: every node gets its own driver
//! instance (runtimes carry per-node feedback state) and one catalog
//! application, assigned round-robin so any fleet size covers the whole
//! catalog evenly. Traces come from the workload intern table, so a
//! 1024-node fleet holds one `AppTrace` allocation per distinct
//! application, not per node.
//!
//! Each node's trajectory is bit-identical to running it alone through
//! [`crate::harness::run_trial`] with the same governor (asserted by
//! `tests/fleet.rs`): the shared fleet clock only changes where
//! macro-stepping spans split, never what they compute.

use magus_hetsim::fleet::{Decision, FleetSim, FleetSummary};
use magus_hetsim::{Node, Simulation};
use magus_workloads::{app_trace, AppId};
use serde::{Deserialize, Serialize};

use crate::drivers::RuntimeDriver;
use crate::engine::GovernorSpec;
use crate::harness::SystemId;

/// One fleet run, fully specified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Hardware preset every node uses.
    pub system: SystemId,
    /// Governor running on every node.
    pub governor: GovernorSpec,
    /// Fleet size.
    pub nodes: usize,
    /// Per-node wall-clock budget (s).
    pub max_s: f64,
}

impl FleetSpec {
    /// A fleet of `nodes` Intel+A100 nodes under `governor` with the
    /// default trial budget.
    #[must_use]
    pub fn new(governor: GovernorSpec, nodes: usize) -> Self {
        Self {
            system: SystemId::IntelA100,
            governor,
            nodes,
            max_s: 600.0,
        }
    }
}

/// A completed fleet run: the spec that produced it and its summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRun {
    /// The spec that ran.
    pub spec: FleetSpec,
    /// Per-node summaries + fleet aggregates.
    pub summary: FleetSummary,
}

/// The application fleet node `idx` runs: the catalog, round-robin.
#[must_use]
pub fn fleet_app(idx: usize) -> AppId {
    let apps = AppId::all();
    apps[idx % apps.len()]
}

/// Execute one fleet run: build N nodes (round-robin catalog apps on
/// interned traces), attach a fresh driver per node, and advance the whole
/// fleet in lockstep to completion.
#[must_use]
pub fn run_fleet(spec: &FleetSpec) -> FleetRun {
    let mut fleet = FleetSim::new(spec.max_s);
    let mut drivers: Vec<Box<dyn RuntimeDriver>> = Vec::with_capacity(spec.nodes);
    for i in 0..spec.nodes {
        let mut sim = Simulation::new(Node::new(spec.system.node_config()));
        sim.load(app_trace(fleet_app(i), spec.system.platform()));
        let mut driver = spec.governor.build_driver();
        driver.attach(&mut sim);
        fleet.add_sim(sim);
        drivers.push(driver);
    }
    let mut decide = |i: usize, sim: &mut Simulation| {
        let latency_us = drivers[i].on_decision(sim);
        Decision {
            latency_us,
            rest_us: drivers[i].rest_interval_us(),
        }
    };
    let summary = fleet.run(&mut decide);
    FleetRun {
        spec: spec.clone(),
        summary,
    }
}

/// The fleet sweep the bench bin and CI gate run: an N-node fleet of the
/// full catalog under each of {default, MAGUS, UPS}, in that order.
#[must_use]
pub fn fleet_sweep(nodes: usize, max_s: f64) -> Vec<FleetRun> {
    [
        GovernorSpec::Default,
        GovernorSpec::magus_default(),
        GovernorSpec::ups_default(),
    ]
    .into_iter()
    .map(|governor| {
        run_fleet(&FleetSpec {
            max_s,
            ..FleetSpec::new(governor, nodes)
        })
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_the_catalog() {
        let apps = AppId::all();
        assert_eq!(fleet_app(0), apps[0]);
        assert_eq!(fleet_app(apps.len()), apps[0]);
        assert_eq!(fleet_app(apps.len() + 2), apps[2]);
    }

    #[test]
    fn small_fleet_runs_all_governors() {
        let runs = fleet_sweep(3, 600.0);
        assert_eq!(runs.len(), 3);
        for run in &runs {
            assert_eq!(run.summary.nodes.len(), 3);
            assert_eq!(run.summary.completed, 3);
            assert!(run.summary.total_j > 0.0);
            assert!(run.summary.node_steps > 0);
        }
        // MAGUS spends less uncore energy than the stock governor on the
        // same fleet — the paper's core claim, at fleet scale.
        let (default, magus) = (&runs[0].summary, &runs[1].summary);
        assert!(
            magus.total_uncore_j < default.total_uncore_j,
            "MAGUS {} J vs default {} J",
            magus.total_uncore_j,
            default.total_uncore_j
        );
    }

    #[test]
    fn magus_fleet_decisions_scale_with_nodes() {
        let one = run_fleet(&FleetSpec {
            max_s: 60.0,
            ..FleetSpec::new(GovernorSpec::magus_default(), 1)
        });
        let four = run_fleet(&FleetSpec {
            max_s: 60.0,
            ..FleetSpec::new(GovernorSpec::magus_default(), 4)
        });
        assert!(four.summary.decisions > one.summary.decisions);
    }
}
