//! Fleet sweep driver: the full workload catalog under each governor
//! across an N-node synthetic fleet.
//!
//! This is the experiments-layer adapter between [`RuntimeDriver`]s and
//! [`magus_hetsim::fleet::FleetSim`]: every node gets its own driver
//! instance (runtimes carry per-node feedback state) and one catalog
//! application, assigned round-robin so any fleet size covers the whole
//! catalog evenly. Traces come from the workload intern table in one bulk
//! lookup ([`magus_workloads::app_traces`]), so a 100k-node fleet holds one
//! `AppTrace` allocation per distinct application — and takes one lock
//! round-trip, not one per node.
//!
//! Each node's trajectory is bit-identical to running it alone through
//! [`crate::harness::run_trial`] with the same governor (asserted by
//! `tests/fleet.rs`), for every shard count and on both stepping paths:
//! shard clocks only change where macro-stepping spans split, never what
//! they compute.
//!
//! A [`FleetSpec`] can instead carry a [`TrafficSpec`]: nodes then run the
//! slots of a multi-tenant traffic expansion (colocated tenants'
//! Zipf/diurnal/MMPP job queues superposed per node, deadlines and tenant
//! shares attached as summary metadata), with `stagger_us` phasing traffic
//! waves the same way it phases catalog waves — repeated tenant sets share
//! one trace allocation, so trajectory dedup and offset sharing engage
//! unchanged.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU8, Ordering};

use magus_hetsim::fault::FaultPlan;
use magus_hetsim::fleet::{
    Decision, FleetSim, FleetSummary, NodeDecider, RunOpts, ShardStats, StepMode,
};
use magus_hetsim::Simulation;
use magus_hetsim::{JobDeadline, TenantShare};
use magus_workloads::{app_traces, AppId, Platform, TrafficSpec};
use serde::{Deserialize, Serialize};

use crate::drivers::RuntimeDriver;
use crate::engine::GovernorSpec;
use crate::harness::{default_sim_path, SimPath, SystemId};

/// One fleet run, fully specified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Hardware preset every node uses.
    pub system: SystemId,
    /// Governor running on every node.
    pub governor: GovernorSpec,
    /// Fleet size.
    pub nodes: usize,
    /// Per-node wall-clock budget (s).
    pub max_s: f64,
    /// Shard count for the fleet kernel (results are bit-identical for
    /// every value; this only sets the parallelism).
    #[serde(default = "one_shard")]
    pub shards: usize,
    /// Stepping path every node uses.
    #[serde(default)]
    pub path: SimPath,
    /// Fault plan attached to every node (fleet-level schedules select
    /// nodes by global index). `None` runs clean.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultPlan>,
    /// Trajectory deduplication (default on; results are bit-identical
    /// either way — off exists for differential runs and raw-kernel
    /// benchmarks). Non-empty fault plans disable sharing regardless.
    #[serde(default = "dedup_on")]
    pub dedup: bool,
    /// Start-time stagger between catalog waves (µs): nodes `0..catalog`
    /// start at 0, the next wave at `stagger_us`, and so on — the
    /// phase-shifted fleet shape real clusters produce. 0 (the default)
    /// starts every node together.
    #[serde(default)]
    pub stagger_us: u64,
    /// Share trajectories across phase-shifted copies of the same node
    /// ([`magus_hetsim::fleet::FleetBuilder::share_offsets`]); results are
    /// bit-identical either way. Default off (exact-key dedup only).
    #[serde(default)]
    pub share_offsets: bool,
    /// Multi-tenant traffic mix replacing the round-robin catalog: each
    /// node runs one expansion slot of the spec (colocated tenants
    /// superposed; see `magus_workloads::generator`), with `stagger_us`
    /// phasing *traffic waves* (one wave = the spec's distinct profiles)
    /// instead of catalog waves. `None` (the default, and what legacy
    /// specs deserialize to) keeps the catalog fleet.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub traffic: Option<TrafficSpec>,
}

/// Process-wide default for [`FleetSpec::new`]'s `dedup` field: 0 = unset
/// (consult `MAGUS_FLEET_DEDUP`), 1 = on, 2 = off. The CLI's `--no-dedup`
/// flag sets it; the *serde* default for a missing `dedup` field stays
/// `true` unconditionally, so previously serialized specs are unaffected
/// (mirrors `DEFAULT_SIM_PATH` in the harness).
static DEFAULT_FLEET_DEDUP: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide default for fleet trajectory dedup, picked up by
/// every [`FleetSpec::new`]. Used by `--no-dedup` so differential runs and
/// raw-kernel benchmarks can switch the whole process off in one place.
pub fn set_default_fleet_dedup(on: bool) {
    DEFAULT_FLEET_DEDUP.store(if on { 1 } else { 2 }, Ordering::SeqCst);
}

/// The current process-wide fleet-dedup default: the explicit override if
/// one was set, else on unless `MAGUS_FLEET_DEDUP` is `0` or `off` (the
/// same spelling `MAGUS_CACHE` uses).
#[must_use]
pub fn default_fleet_dedup() -> bool {
    match DEFAULT_FLEET_DEDUP.load(Ordering::SeqCst) {
        1 => true,
        2 => false,
        _ => !std::env::var("MAGUS_FLEET_DEDUP").is_ok_and(|v| v == "off" || v == "0"),
    }
}

/// Serde default for [`FleetSpec::shards`]: pre-shard specs ran the whole
/// fleet on one clock.
fn one_shard() -> usize {
    1
}

/// Serde default for [`FleetSpec::dedup`]: sharing is on unless a spec
/// opts out (pre-dedup specs get the bit-identical shared path).
fn dedup_on() -> bool {
    true
}

impl FleetSpec {
    /// A fleet of `nodes` Intel+A100 nodes under `governor` with the
    /// default trial budget, one shard, the process-default sim path, and
    /// the process-default dedup setting.
    #[must_use]
    pub fn new(governor: GovernorSpec, nodes: usize) -> Self {
        Self {
            system: SystemId::IntelA100,
            governor,
            nodes,
            max_s: 600.0,
            shards: 1,
            path: default_sim_path(),
            faults: None,
            dedup: default_fleet_dedup(),
            stagger_us: 0,
            share_offsets: false,
            traffic: None,
        }
    }

    /// Builder: drive the fleet from a multi-tenant traffic mix instead of
    /// the round-robin catalog.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = Some(traffic);
        self
    }

    /// Builder: shard the fleet across `shards` lockstep clocks.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder: stagger catalog waves by `stagger_us` µs.
    #[must_use]
    pub fn with_stagger(mut self, stagger_us: u64) -> Self {
        self.stagger_us = stagger_us;
        self
    }

    /// Builder: share trajectories across phase-shifted copies.
    #[must_use]
    pub fn with_offset_sharing(mut self, on: bool) -> Self {
        self.share_offsets = on;
        self
    }
}

/// A completed fleet run: the spec that produced it and its summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRun {
    /// The spec that ran.
    pub spec: FleetSpec,
    /// Per-node summaries + fleet aggregates (bit-identical across shard
    /// counts).
    pub summary: FleetSummary,
    /// Per-shard lockstep counters (shard-count dependent, so they live
    /// outside the summary).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub shard_stats: Vec<ShardStats>,
}

/// The application fleet node `idx` runs: the catalog, round-robin.
#[must_use]
pub fn fleet_app(idx: usize) -> AppId {
    let apps = AppId::all();
    apps[idx % apps.len()]
}

/// The [`StepMode`] equivalent of a harness [`SimPath`].
#[must_use]
pub fn step_mode(path: SimPath) -> StepMode {
    match path {
        SimPath::Reference => StepMode::Reference,
        SimPath::Fast => StepMode::Fast,
    }
}

/// A [`RuntimeDriver`] adapted to the fleet kernel's [`NodeDecider`]
/// contract: attach on node start, then one `on_decision` +
/// `rest_interval_us` pair per deadline — exactly the solo trial loop.
struct DriverDecider {
    driver: Box<dyn RuntimeDriver>,
}

impl NodeDecider for DriverDecider {
    fn attach(&mut self, sim: &mut Simulation) {
        self.driver.attach(sim);
    }

    fn decide(&mut self, sim: &mut Simulation) -> Decision {
        let latency_us = self.driver.on_decision(sim);
        Decision {
            latency_us,
            rest_us: self.driver.rest_interval_us(),
        }
    }
}

/// Run options giving every fleet node a fresh driver built from
/// `governor` (runtimes carry per-node feedback state, so instances are
/// never shared), stepping on `path`.
///
/// The factory ignores the node index and builds every driver from the
/// same spec, so it is behaviorally index-invariant by construction; it
/// declares that with a decider key (the spec rendering's hash, recorded
/// for provenance), which is what lets the fleet kernel share macro-step
/// work across identical catalog nodes.
#[must_use]
pub fn governor_run_opts(governor: &GovernorSpec, path: SimPath) -> RunOpts {
    let mut hasher = DefaultHasher::new();
    format!("{governor:?}").hash(&mut hasher);
    let key = hasher.finish();
    let governor = governor.clone();
    RunOpts::new(move |_idx| {
        Box::new(DriverDecider {
            driver: governor.build_driver(),
        }) as Box<dyn NodeDecider>
    })
    .with_mode(step_mode(path))
    .with_decider_key(key)
}

/// Execute one fleet run: build N nodes (round-robin catalog apps on
/// bulk-interned traces), give each a fresh driver, and advance the fleet
/// across `spec.shards` lockstep clocks to completion.
///
/// # Panics
///
/// Panics if the spec fails [`magus_hetsim::fleet::FleetBuilder`]
/// validation (zero nodes/shards, non-positive budget, invalid fault plan,
/// a stagger so large a wave's start offset overflows the µs clock).
#[must_use]
pub fn run_fleet(spec: &FleetSpec) -> FleetRun {
    let (run, _fleet) = run_fleet_keeping(spec);
    run
}

/// Build (but do not run) the fleet a spec describes: N nodes with
/// round-robin catalog apps on bulk-interned traces, staggered in catalog
/// waves. This is the exact node sequence the control-plane daemon must
/// reproduce through its roster for daemon-vs-batch bit-identity.
///
/// # Panics
///
/// Panics if the spec fails [`magus_hetsim::fleet::FleetBuilder`]
/// validation, as in [`run_fleet`].
#[must_use]
pub fn build_fleet(spec: &FleetSpec) -> FleetSim {
    let platform = spec.system.platform();
    let mut builder = FleetSim::builder(spec.max_s)
        .shards(spec.shards)
        .dedup(spec.dedup)
        .share_offsets(spec.share_offsets);
    if let Some(traffic) = &spec.traffic {
        // Traffic fleet: node i runs expansion slot i. The expansion hands
        // repeated tenant sets the *same* trace allocation, so dedup (and,
        // staggered, offset sharing) engages exactly as for catalog nodes;
        // one wave = the spec's distinct profiles.
        let wave_len = traffic.distinct_profiles();
        let fleet = traffic.expand(platform, spec.nodes);
        for (i, profile) in fleet.profiles.into_iter().enumerate() {
            let offset_us = ((i / wave_len) as u64).saturating_mul(spec.stagger_us);
            builder = builder
                .node_at(spec.system.node_config(), profile.trace, offset_us)
                .node_traffic(
                    profile
                        .jobs
                        .iter()
                        .map(|j| JobDeadline {
                            work_end_s: j.work_end_s(),
                            due_s: j.due_s,
                        })
                        .collect(),
                    profile
                        .tenant_share
                        .iter()
                        .map(|&(tenant, share)| TenantShare { tenant, share })
                        .collect(),
                );
        }
    } else {
        let keys: Vec<(AppId, Platform)> =
            (0..spec.nodes).map(|i| (fleet_app(i), platform)).collect();
        let catalog = AppId::all().len();
        for (i, trace) in app_traces(&keys).into_iter().enumerate() {
            // Wave w = i / catalog starts at w × stagger_us: nodes sharing
            // an app land in different waves, the phase-shifted shape
            // offset sharing exists for.
            let offset_us = ((i / catalog) as u64).saturating_mul(spec.stagger_us);
            builder = builder.node_at(spec.system.node_config(), trace, offset_us);
        }
    }
    if let Some(plan) = &spec.faults {
        builder = builder.fault_plan(plan);
    }
    builder.build().expect("invalid FleetSpec")
}

/// [`run_fleet`] returning the stepped [`FleetSim`] alongside the result,
/// so callers can drain per-node telemetry afterwards.
#[must_use]
pub fn run_fleet_keeping(spec: &FleetSpec) -> (FleetRun, FleetSim) {
    let mut fleet = build_fleet(spec);
    let summary = fleet.run(&governor_run_opts(&spec.governor, spec.path));
    let run = FleetRun {
        spec: spec.clone(),
        summary,
        shard_stats: fleet.shard_stats().to_vec(),
    };
    (run, fleet)
}

/// Render every node's drained telemetry event stream as one JSONL blob —
/// one line per event, `{"node":N,` prepended to the event's canonical
/// serialization. This byte stream is part of the bit-identity contract
/// (identical across shard counts, stepping modes, and dedup settings) and
/// is exactly what the control-plane daemon streams to subscribers, so the
/// CI system test can `diff` daemon output against a batch run.
#[cfg(feature = "telemetry")]
#[must_use]
pub fn fleet_telemetry_jsonl(fleet: &mut FleetSim) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (node, events) in fleet.take_node_events().into_iter().enumerate() {
        for event in events {
            let json = serde_json::to_string(&event).expect("event serializes");
            writeln!(out, "{{\"node\":{node},{}", &json[1..]).expect("string write");
        }
    }
    out
}

/// [`run_fleet`] plus the fleet's telemetry JSONL rendering (drained after
/// the run), for callers that need both the summary and the byte stream.
#[cfg(feature = "telemetry")]
#[must_use]
pub fn run_fleet_with_telemetry(spec: &FleetSpec) -> (FleetRun, String) {
    let (run, mut fleet) = run_fleet_keeping(spec);
    let jsonl = fleet_telemetry_jsonl(&mut fleet);
    (run, jsonl)
}

/// The fleet sweep the bench bin and CI gate run: an N-node fleet of the
/// full catalog under each of {default, MAGUS, UPS}, in that order.
#[must_use]
pub fn fleet_sweep(nodes: usize, max_s: f64) -> Vec<FleetRun> {
    [
        GovernorSpec::Default,
        GovernorSpec::magus_default(),
        GovernorSpec::ups_default(),
    ]
    .into_iter()
    .map(|governor| {
        run_fleet(&FleetSpec {
            max_s,
            ..FleetSpec::new(governor, nodes)
        })
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_the_catalog() {
        let apps = AppId::all();
        assert_eq!(fleet_app(0), apps[0]);
        assert_eq!(fleet_app(apps.len()), apps[0]);
        assert_eq!(fleet_app(apps.len() + 2), apps[2]);
    }

    #[test]
    fn small_fleet_runs_all_governors() {
        let runs = fleet_sweep(3, 600.0);
        assert_eq!(runs.len(), 3);
        for run in &runs {
            assert_eq!(run.summary.nodes.len(), 3);
            assert_eq!(run.summary.completed, 3);
            assert!(run.summary.total_j > 0.0);
            assert!(run.summary.node_steps > 0);
            assert_eq!(run.shard_stats.len(), 1);
            assert_eq!(run.shard_stats[0].decisions, run.summary.decisions);
        }
        // MAGUS spends less uncore energy than the stock governor on the
        // same fleet — the paper's core claim, at fleet scale.
        let (default, magus) = (&runs[0].summary, &runs[1].summary);
        assert!(
            magus.total_uncore_j < default.total_uncore_j,
            "MAGUS {} J vs default {} J",
            magus.total_uncore_j,
            default.total_uncore_j
        );
    }

    #[test]
    fn magus_fleet_decisions_scale_with_nodes() {
        let one = run_fleet(&FleetSpec {
            max_s: 60.0,
            ..FleetSpec::new(GovernorSpec::magus_default(), 1)
        });
        let four = run_fleet(&FleetSpec {
            max_s: 60.0,
            ..FleetSpec::new(GovernorSpec::magus_default(), 4)
        });
        assert!(four.summary.decisions > one.summary.decisions);
    }

    #[test]
    fn sharded_sweep_matches_single_shard_bit_for_bit() {
        let spec = FleetSpec {
            max_s: 60.0,
            ..FleetSpec::new(GovernorSpec::magus_default(), 5)
        };
        let single = run_fleet(&spec);
        let sharded = run_fleet(&spec.clone().with_shards(3));
        assert_eq!(single.summary, sharded.summary);
        assert_eq!(sharded.shard_stats.len(), 3);
        let sharded_decisions: u64 = sharded.shard_stats.iter().map(|s| s.decisions).sum();
        assert_eq!(sharded_decisions, single.summary.decisions);
    }

    #[test]
    fn spec_serde_defaults_cover_pre_shard_specs() {
        // Pre-shard serialized specs carry neither `shards` nor `path`
        // (nor, later, `dedup`).
        let legacy = r#"{"system":"IntelA100","governor":"Default","nodes":2,"max_s":60.0}"#;
        let spec: FleetSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(spec.shards, 1);
        assert_eq!(spec.path, SimPath::Fast);
        assert!(spec.faults.is_none());
        assert!(
            spec.dedup,
            "legacy specs take the shared (bit-identical) path"
        );
        assert_eq!(spec.stagger_us, 0, "legacy specs start every node at 0");
        assert!(!spec.share_offsets, "legacy specs keep exact-key dedup");
        assert!(spec.traffic.is_none(), "legacy specs keep the catalog");
    }

    #[test]
    fn traffic_fleet_is_bit_identical_across_shards_and_engages_dedup() {
        // 6 tenants / colocate 2 → 3 distinct profiles, so an 8-node fleet
        // repeats each profile at least twice and dedup has real classes.
        let traffic = TrafficSpec::builder()
            .seed(5)
            .tenants(6)
            .colocate(2)
            .jobs_per_tenant(2)
            .mean_gap_s(2.0)
            .build()
            .unwrap();
        let spec = FleetSpec {
            max_s: 600.0,
            dedup: true, // pin: another test may flip the process default
            ..FleetSpec::new(GovernorSpec::magus_default(), 8)
        }
        .with_traffic(traffic);
        let single = run_fleet(&spec);
        let sharded = run_fleet(&spec.clone().with_shards(3));
        assert_eq!(single.summary, sharded.summary);
        assert_eq!(single.summary.deadline_jobs, 8 * 2 * 2);
        assert!(!single.summary.tenant_energy_j.is_empty());
        let tenant_sum: f64 = single.summary.tenant_energy_j.iter().map(|&(_, j)| j).sum();
        assert!(
            (tenant_sum - single.summary.total_j).abs() < 1e-6 * single.summary.total_j,
            "tenant attribution must conserve fleet energy"
        );
        // Expansion slots repeat every 3 nodes, and repeated slots share a
        // trace allocation, so the dedup kernel replays rounds.
        let replayed: u64 = single
            .shard_stats
            .iter()
            .map(|s| s.replayed_node_rounds)
            .sum();
        assert!(replayed > 0, "traffic profiles shared no rounds");
        let off = run_fleet(&FleetSpec {
            dedup: false,
            ..spec.clone()
        });
        assert_eq!(off.summary, single.summary, "dedup changed a traffic fleet");
    }

    #[test]
    fn dedup_off_matches_dedup_on_through_the_driver_stack() {
        // 30 nodes over the 24-app catalog: round-robin wraps, so nodes
        // 0..6 each share a class with nodes 24..30 — real sharing through
        // the full GovernorSpec → RuntimeDriver → DriverDecider stack.
        let spec = FleetSpec {
            max_s: 60.0,
            dedup: true, // pin: another test may flip the process default
            ..FleetSpec::new(GovernorSpec::magus_default(), 30)
        };
        let on = run_fleet(&spec);
        let off = run_fleet(&FleetSpec {
            dedup: false,
            ..spec.clone()
        });
        assert_eq!(on.summary, off.summary, "dedup changed a governor fleet");
        let replayed = |r: &FleetRun| {
            r.shard_stats
                .iter()
                .map(|s| s.replayed_node_rounds)
                .sum::<u64>()
        };
        let evicted = |r: &FleetRun| r.shard_stats.iter().map(|s| s.class_evictions).sum::<u64>();
        assert!(replayed(&on) > 0, "catalog wrap produced no sharing");
        assert_eq!(replayed(&off), 0);
        // MAGUS drivers are deterministic functions of feedback state:
        // identical nodes never diverge, so nothing is evicted.
        assert_eq!(evicted(&on), 0);
    }

    #[test]
    fn staggered_offset_sharing_matches_exact_dedup_through_the_driver_stack() {
        // 30 nodes = wave 0 (24 catalog apps) + wave 1 (6 repeats) with a
        // 0.8 s stagger. Exact-key dedup sees 30 distinct (app, offset)
        // pairs; offset sharing collapses the 6 repeats onto wave 0's
        // representatives — bit-identically, driver stack and all.
        let spec = FleetSpec {
            max_s: 60.0,
            dedup: true, // pin: another test may flip the process default
            stagger_us: 800_000,
            ..FleetSpec::new(GovernorSpec::magus_default(), 30)
        };
        let exact = run_fleet(&spec);
        let shared = run_fleet(&spec.clone().with_offset_sharing(true));
        assert_eq!(
            exact.summary, shared.summary,
            "offset sharing changed a staggered governor fleet"
        );
        let offset_replayed = |r: &FleetRun| {
            r.shard_stats
                .iter()
                .map(|s| s.offset_replayed_rounds)
                .sum::<u64>()
        };
        let offset_classes =
            |r: &FleetRun| r.shard_stats.iter().map(|s| s.offset_classes).sum::<u64>();
        assert_eq!(
            offset_classes(&exact),
            0,
            "offsets must partition exact classes"
        );
        assert_eq!(offset_replayed(&exact), 0);
        assert_eq!(offset_classes(&shared), 6);
        assert!(offset_replayed(&shared) > 0, "wave 1 shared no rounds");
        // The stagger shows up only on the fleet clock: makespan grows by
        // the wave-1 offset, while per-node summaries are unchanged from
        // the unstaggered fleet.
        let unstaggered = run_fleet(&FleetSpec {
            stagger_us: 0,
            ..spec
        });
        assert_eq!(unstaggered.summary.nodes, exact.summary.nodes);
        let catalog = AppId::all().len();
        let expected_makespan = exact
            .summary
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (i / catalog) as f64 * 0.8 + n.runtime_s)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((exact.summary.makespan_s - expected_makespan).abs() < 1e-9);
    }

    #[test]
    fn process_default_dedup_is_consulted_by_new_specs() {
        // The override is process-global; bit-identity (asserted above)
        // makes a concurrent reader harmless, and the pinned `dedup: true`
        // specs in the counter tests keep their counters deterministic.
        set_default_fleet_dedup(false);
        assert!(!FleetSpec::new(GovernorSpec::Default, 1).dedup);
        set_default_fleet_dedup(true);
        assert!(FleetSpec::new(GovernorSpec::Default, 1).dedup);
        assert!(default_fleet_dedup());
    }
}
