//! Trial execution: one (system × application × runtime) run.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use magus_hetsim::{
    secs_to_us, AppTrace, FastForward, FaultCounters, FaultPlan, Node, NodeConfig, RunSummary,
    Simulation, TraceRecorder, TraceSample,
};
use magus_telemetry::{Event, NodeCounters};
use magus_workloads::{app_trace, AppId, Platform};
use serde::{Deserialize, Serialize};

use crate::drivers::RuntimeDriver;

/// The paper's three testbeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemId {
    /// 2× Xeon 8380 + 1× A100-40GB.
    IntelA100,
    /// 2× Xeon 8380 + 4× A100-80GB.
    Intel4A100,
    /// 2× Xeon Max 9462 + Max 1550.
    IntelMax1550,
}

impl SystemId {
    /// The node configuration preset.
    #[must_use]
    pub fn node_config(&self) -> NodeConfig {
        match self {
            SystemId::IntelA100 => NodeConfig::intel_a100(),
            SystemId::Intel4A100 => NodeConfig::intel_4a100(),
            SystemId::IntelMax1550 => NodeConfig::intel_max1550(),
        }
    }

    /// The matching workload platform.
    #[must_use]
    pub fn platform(&self) -> Platform {
        match self {
            SystemId::IntelA100 => Platform::IntelA100,
            SystemId::Intel4A100 => Platform::Intel4A100,
            SystemId::IntelMax1550 => Platform::IntelMax1550,
        }
    }

    /// Display name as in the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SystemId::IntelA100 => "Intel+A100",
            SystemId::Intel4A100 => "Intel+4A100",
            SystemId::IntelMax1550 => "Intel+Max1550",
        }
    }
}

/// Which simulation stepping path a trial uses.
///
/// Both paths produce bit-identical results (enforced by the differential
/// tests in `tests/fastpath.rs`); `Fast` macro-steps frozen inter-event
/// spans and is an order of magnitude quicker on steady workloads. The
/// reference path remains available for differential testing and as the
/// ground truth the fast path is audited against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SimPath {
    /// Per-tick reference stepping (`Simulation::step`).
    Reference,
    /// Event-horizon macro-stepping (`Simulation::advance_until`).
    #[default]
    Fast,
}

/// Process-wide default stepping path consulted by [`TrialOpts::default`]
/// (1 = fast). The CLI's `--sim-path` flag sets it; the *serde* default for
/// a missing `path` field stays `Fast` unconditionally, so previously
/// serialized specs are unaffected.
static DEFAULT_SIM_PATH: AtomicU8 = AtomicU8::new(1);

/// Set the process-wide default stepping path picked up by every
/// `TrialOpts::default()` (and thus every spec built without an explicit
/// path). Used by `magus --sim-path` so whole-suite runs can be forced
/// onto the reference path for differential audits.
pub fn set_default_sim_path(path: SimPath) {
    let raw = match path {
        SimPath::Reference => 0,
        SimPath::Fast => 1,
    };
    DEFAULT_SIM_PATH.store(raw, Ordering::SeqCst);
}

/// The current process-wide default stepping path.
#[must_use]
pub fn default_sim_path() -> SimPath {
    if DEFAULT_SIM_PATH.load(Ordering::SeqCst) == 0 {
        SimPath::Reference
    } else {
        SimPath::Fast
    }
}

/// Process-wide default fault plan stamped into every `TrialSpec` built
/// after it is set (mirrors [`DEFAULT_SIM_PATH`]). The CLI's `--faults`
/// flag sets it; `None` (the default) leaves every trial clean.
static DEFAULT_FAULTS: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Set the process-wide default fault plan. Empty plans normalize to
/// `None`, so a `--faults` file full of zeros is indistinguishable from no
/// flag at all — the empty-plan = clean-run contract holds end to end.
pub fn set_default_fault_plan(plan: Option<FaultPlan>) {
    *DEFAULT_FAULTS.lock().expect("fault plan lock") = plan.filter(|p| !p.is_empty());
}

/// The current process-wide default fault plan.
#[must_use]
pub fn default_fault_plan() -> Option<FaultPlan> {
    *DEFAULT_FAULTS.lock().expect("fault plan lock")
}

/// Trial options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOpts {
    /// Trace-recorder sampling interval (µs); 0 disables recording.
    pub record_interval_us: u64,
    /// Wall-clock budget (s); runs that exceed it are marked incomplete.
    pub max_s: f64,
    /// Stepping path (fast by default; reference for differential audits).
    #[serde(default)]
    pub path: SimPath,
}

impl Default for TrialOpts {
    fn default() -> Self {
        Self {
            record_interval_us: 0,
            max_s: 600.0,
            path: default_sim_path(),
        }
    }
}

impl TrialOpts {
    /// Options with recording at the paper's 0.1 s plot resolution.
    #[must_use]
    pub fn recorded() -> Self {
        Self {
            record_interval_us: 100_000,
            ..Self::default()
        }
    }

    /// Builder: select the stepping path.
    #[must_use]
    pub fn with_path(mut self, path: SimPath) -> Self {
        self.path = path;
        self
    }
}

/// Result of one trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialResult {
    /// Runtime name used.
    pub runtime: String,
    /// Run summary (runtime, energy, mean powers, counters).
    pub summary: RunSummary,
    /// Recorded time series (empty unless requested).
    pub samples: Vec<TraceSample>,
    /// Number of runtime decision invocations during the run.
    pub invocations: u64,
    /// Mean invocation latency (µs) across the run.
    pub mean_invocation_us: f64,
    /// Governor decision / actuation event stream in simulation order
    /// (empty when the suite is built without the `telemetry` feature).
    /// Byte-identical between the fast and reference stepping paths.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub events: Vec<Event>,
    /// Deterministic per-node instrumentation counters (`None` without
    /// the `telemetry` feature).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub node_telemetry: Option<NodeCounters>,
    /// Counts of injected faults during the run, per kind. All zero on
    /// clean runs (and omitted from serialized results).
    #[serde(default, skip_serializing_if = "fault_counters_zero")]
    pub fault_counters: FaultCounters,
}

/// Serde helper: omit all-zero fault counters from serialized results.
fn fault_counters_zero(c: &FaultCounters) -> bool {
    *c == FaultCounters::default()
}

/// One (node × workload × runtime) trial, built up with typed options —
/// the single non-deprecated construction path for every experiment run.
///
/// Start from a paper testbed ([`TrialBuilder::on`]) or an explicit node
/// configuration ([`TrialBuilder::custom`]); add a workload (or none, for
/// the Table 2 idle-overhead protocol), options, an optional RAPL PL1 cap,
/// an optional fault plan; then [`TrialBuilder::run`] a driver through it:
///
/// ```
/// use magus_experiments::drivers::NoopDriver;
/// use magus_experiments::{SystemId, TrialBuilder};
/// use magus_workloads::AppId;
///
/// let result = TrialBuilder::on(SystemId::IntelA100)
///     .app(AppId::Bfs)
///     .run(&mut NoopDriver);
/// assert!(result.summary.completed);
/// ```
#[derive(Debug, Clone)]
pub struct TrialBuilder {
    config: NodeConfig,
    platform: Option<Platform>,
    trace: Option<Arc<AppTrace>>,
    opts: TrialOpts,
    power_cap_w: Option<f64>,
    faults: Option<FaultPlan>,
}

impl TrialBuilder {
    /// A trial on one of the paper's testbeds (the platform is remembered,
    /// so [`TrialBuilder::app`] can resolve catalog workloads).
    #[must_use]
    pub fn on(system: SystemId) -> Self {
        Self {
            config: system.node_config(),
            platform: Some(system.platform()),
            trace: None,
            opts: TrialOpts::default(),
            power_cap_w: None,
            faults: None,
        }
    }

    /// A trial on an explicit node configuration (custom hardware: the AMD
    /// preset, modified power models, ...). Catalog apps are unavailable —
    /// supply workloads through [`TrialBuilder::trace`].
    #[must_use]
    pub fn custom(config: NodeConfig) -> Self {
        Self {
            config,
            platform: None,
            trace: None,
            opts: TrialOpts::default(),
            power_cap_w: None,
            faults: None,
        }
    }

    /// Run catalog application `app` (interned trace for this system's
    /// platform).
    ///
    /// # Panics
    ///
    /// Panics on a [`TrialBuilder::custom`] trial — a bare `NodeConfig` has
    /// no workload platform; pass an explicit [`TrialBuilder::trace`].
    #[must_use]
    pub fn app(mut self, app: AppId) -> Self {
        let platform = self
            .platform
            .expect("TrialBuilder::app needs a testbed platform; custom configs take trace()");
        self.trace = Some(app_trace(app, platform));
        self
    }

    /// Run an explicit trace (owned, or a shared `Arc` from the intern
    /// table). Without a trace the node idles for the full budget.
    #[must_use]
    pub fn trace(mut self, trace: impl Into<Arc<AppTrace>>) -> Self {
        self.trace = Some(trace.into());
        self
    }

    /// Replace the trial options (recording interval, budget, sim path).
    #[must_use]
    pub fn opts(mut self, opts: TrialOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Select the stepping path (shorthand for editing [`TrialOpts::path`]).
    #[must_use]
    pub fn path(mut self, path: SimPath) -> Self {
        self.opts.path = path;
        self
    }

    /// Program a per-socket RAPL PL1 limit (W) before the driver attaches
    /// (the §6.1 power-budget study).
    #[must_use]
    pub fn power_cap_w(mut self, w: f64) -> Self {
        self.power_cap_w = Some(w);
        self
    }

    /// Attach a fault plan before the driver attaches (the robustness-study
    /// path). An empty plan normalizes to no plan: the run stays
    /// bit-identical to a clean one.
    #[must_use]
    pub fn faults(mut self, plan: &FaultPlan) -> Self {
        self.faults = (!plan.is_empty()).then_some(*plan);
        self
    }

    /// Execute the trial under `driver`.
    #[must_use]
    pub fn run(self, driver: &mut dyn RuntimeDriver) -> TrialResult {
        execute(
            self.config,
            self.trace,
            driver,
            self.opts,
            self.power_cap_w,
            self.faults.as_ref(),
        )
    }
}

/// Run `app` on `system` under `driver` — the ubiquitous shorthand for
/// `TrialBuilder::on(system).app(app).opts(opts).run(driver)`.
pub fn run_trial(
    system: SystemId,
    app: AppId,
    driver: &mut dyn RuntimeDriver,
    opts: TrialOpts,
) -> TrialResult {
    TrialBuilder::on(system).app(app).opts(opts).run(driver)
}

/// Run an explicit trace (used by sweeps that modify workloads).
#[deprecated(note = "use `TrialBuilder::on(system).trace(trace)` instead")]
pub fn run_trace_trial(
    system: SystemId,
    trace: impl Into<Arc<AppTrace>>,
    driver: &mut dyn RuntimeDriver,
    opts: TrialOpts,
) -> TrialResult {
    execute(
        system.node_config(),
        Some(trace.into()),
        driver,
        opts,
        None,
        None,
    )
}

/// Run an explicit trace on an explicit node configuration.
#[deprecated(note = "use `TrialBuilder::custom(config).trace(trace)` instead")]
pub fn run_custom_trial(
    config: NodeConfig,
    trace: impl Into<Arc<AppTrace>>,
    driver: &mut dyn RuntimeDriver,
    opts: TrialOpts,
) -> TrialResult {
    execute(config, Some(trace.into()), driver, opts, None, None)
}

/// Fully positional trial executor (pre-[`TrialBuilder`] surface).
#[deprecated(note = "use `TrialBuilder::custom(config)` with typed options instead")]
pub fn run_custom_trial_capped(
    config: NodeConfig,
    trace: Option<Arc<AppTrace>>,
    driver: &mut dyn RuntimeDriver,
    opts: TrialOpts,
    power_cap_w: Option<f64>,
) -> TrialResult {
    execute(config, trace, driver, opts, power_cap_w, None)
}

/// Fully positional trial executor with a fault plan (pre-[`TrialBuilder`]
/// surface).
#[deprecated(note = "use `TrialBuilder::custom(config)` with typed options instead")]
pub fn run_faulted_trial_capped(
    config: NodeConfig,
    trace: Option<Arc<AppTrace>>,
    driver: &mut dyn RuntimeDriver,
    opts: TrialOpts,
    power_cap_w: Option<f64>,
    faults: Option<&FaultPlan>,
) -> TrialResult {
    execute(config, trace, driver, opts, power_cap_w, faults)
}

/// The one trial executor behind [`TrialBuilder`] and every wrapper.
///
/// * `trace = None` runs an idle node for `opts.max_s` (the Table 2
///   overhead protocol) — an idle simulation is never "done", so the
///   budget is the only terminator.
/// * `power_cap_w` programs a per-socket RAPL PL1 limit before the driver
///   attaches (the §6.1 power-budget study).
/// * `faults` threads a fault plan into the node before the driver attaches
///   (the robustness-study path). `None` — or an empty plan — attaches
///   nothing: the run is bit-identical to a clean one.
fn execute(
    config: NodeConfig,
    trace: Option<Arc<AppTrace>>,
    driver: &mut dyn RuntimeDriver,
    opts: TrialOpts,
    power_cap_w: Option<f64>,
    faults: Option<&FaultPlan>,
) -> TrialResult {
    let mut sim = Simulation::new(Node::new(config));
    sim.set_recorder(TraceRecorder::new(opts.record_interval_us));
    if let Some(trace) = trace {
        sim.load(trace);
    }
    if let Some(plan) = faults {
        sim.node_mut().set_fault_plan(*plan);
    }
    if let Some(w) = power_cap_w {
        sim.node_mut().set_power_limit_w(w).expect("program PL1");
    }
    driver.attach(&mut sim);

    let start_us = sim.node().time_us();
    let budget_us = secs_to_us(opts.max_s);
    let mut next_due_us = start_us; // first decision immediately
    let mut invocations = 0u64;
    let mut total_invocation_us = 0u64;

    match opts.path {
        SimPath::Reference => {
            while !sim.done() && sim.node().time_us() - start_us < budget_us {
                if sim.node().time_us() >= next_due_us {
                    let latency = driver.on_decision(&mut sim);
                    invocations += 1;
                    total_invocation_us += latency;
                    let rest = driver.rest_interval_us();
                    next_due_us = if rest == u64::MAX {
                        u64::MAX
                    } else {
                        sim.node().time_us() + latency + rest
                    };
                }
                sim.step();
            }
        }
        SimPath::Fast => {
            // Identical event schedule to the reference loop: decisions can
            // only become due at the instants computed below, and the node's
            // feedback state between them evolves under constant demand, so
            // macro-stepping each inter-decision span with `advance_until`
            // visits exactly the tick sequence the reference loop does — it
            // merely replays the frozen interior ticks instead of
            // re-deriving them.
            let mut ff = FastForward::new();
            while !sim.done() && sim.node().time_us() - start_us < budget_us {
                if sim.node().time_us() >= next_due_us {
                    let latency = driver.on_decision(&mut sim);
                    invocations += 1;
                    total_invocation_us += latency;
                    let rest = driver.rest_interval_us();
                    next_due_us = if rest == u64::MAX {
                        u64::MAX
                    } else {
                        sim.node().time_us() + latency + rest
                    };
                }
                // Always make at least one tick of progress (mirrors the
                // reference loop's unconditional `sim.step()`), even if a
                // zero-rest driver leaves `next_due_us` at the current time.
                let horizon = next_due_us
                    .min(start_us.saturating_add(budget_us))
                    .max(sim.node().time_us() + 1);
                sim.advance_until(horizon, &mut ff);
            }
        }
    }

    let summary = sim.summary(start_us);
    let fault_counters = sim.node().fault_counters();
    let samples = sim.recorder_mut().take_samples();
    #[cfg(feature = "telemetry")]
    let (events, node_telemetry) = {
        let telemetry = sim.node_mut().telemetry_mut();
        let events = telemetry.take_events();
        (events, Some(telemetry.counters()))
    };
    #[cfg(not(feature = "telemetry"))]
    let (events, node_telemetry) = (Vec::new(), None);
    TrialResult {
        runtime: driver.name().to_string(),
        summary,
        samples,
        invocations,
        mean_invocation_us: if invocations == 0 {
            0.0
        } else {
            total_invocation_us as f64 / invocations as f64
        },
        events,
        node_telemetry,
        fault_counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{FixedUncoreDriver, MagusDriver, NoopDriver, UpsDriver};

    #[test]
    fn baseline_trial_completes_at_work_content() {
        let mut driver = NoopDriver;
        let r = run_trial(
            SystemId::IntelA100,
            AppId::Bfs,
            &mut driver,
            TrialOpts::default(),
        );
        assert!(r.summary.completed);
        // Baseline (uncore pinned at max) meets every demand: runtime ==
        // work content (32 s for bfs).
        assert!(
            (r.summary.runtime_s - 32.0).abs() < 0.5,
            "{}",
            r.summary.runtime_s
        );
        assert_eq!(r.invocations, 1); // the immediate first call only
    }

    #[test]
    fn min_uncore_stretches_runtime() {
        let mut base = NoopDriver;
        let b = run_trial(
            SystemId::IntelA100,
            AppId::Unet,
            &mut base,
            TrialOpts::default(),
        );
        let mut fixed = FixedUncoreDriver::new(0.8);
        let f = run_trial(
            SystemId::IntelA100,
            AppId::Unet,
            &mut fixed,
            TrialOpts::default(),
        );
        assert!(f.summary.runtime_s > b.summary.runtime_s * 1.1);
        assert!(f.summary.mean_cpu_w < b.summary.mean_cpu_w);
    }

    #[test]
    fn magus_trial_invokes_on_cadence() {
        let mut driver = MagusDriver::with_defaults();
        let r = run_trial(
            SystemId::IntelA100,
            AppId::Bfs,
            &mut driver,
            TrialOpts::default(),
        );
        assert!(r.summary.completed);
        // ~0.3 s decision period over a ~32 s run: ≈ 105 invocations.
        let expected = r.summary.runtime_s / 0.3;
        assert!(
            (r.invocations as f64 - expected).abs() < expected * 0.15,
            "invocations = {}, expected ≈ {expected}",
            r.invocations
        );
        assert!((r.mean_invocation_us - 100_500.0).abs() < 3_000.0);
    }

    #[test]
    fn ups_trial_runs_slower_cadence() {
        let mut driver = UpsDriver::with_defaults();
        let r = run_trial(
            SystemId::IntelA100,
            AppId::Bfs,
            &mut driver,
            TrialOpts::default(),
        );
        assert!(r.summary.completed);
        // ~0.5 s decision period.
        let expected = r.summary.runtime_s / 0.5;
        assert!(
            (r.invocations as f64 - expected).abs() < expected * 0.2,
            "invocations = {}",
            r.invocations
        );
    }

    #[test]
    fn recording_produces_samples() {
        let mut driver = NoopDriver;
        let r = run_trial(
            SystemId::IntelA100,
            AppId::Srad,
            &mut driver,
            TrialOpts::recorded(),
        );
        assert!(r.samples.len() > 100, "{}", r.samples.len());
    }

    #[test]
    fn trials_are_deterministic() {
        let run = || {
            let mut driver = MagusDriver::with_defaults();
            run_trial(
                SystemId::IntelA100,
                AppId::Srad,
                &mut driver,
                TrialOpts::default(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.summary.runtime_s, b.summary.runtime_s);
        assert_eq!(a.summary.energy.total_j(), b.summary.energy.total_j());
        assert_eq!(a.invocations, b.invocations);
    }

    #[test]
    fn fast_path_trial_matches_reference_exactly() {
        let run = |path: SimPath| {
            let mut driver = MagusDriver::with_defaults();
            run_trial(
                SystemId::IntelA100,
                AppId::Bfs,
                &mut driver,
                TrialOpts::recorded().with_path(path),
            )
        };
        let r = run(SimPath::Reference);
        let f = run(SimPath::Fast);
        assert_eq!(r.summary, f.summary);
        assert_eq!(r.samples, f.samples);
        assert_eq!(r.invocations, f.invocations);
        assert_eq!(r.mean_invocation_us, f.mean_invocation_us);
        // Decision events and residency are part of the bit-identity
        // contract; only the fast-path span counters may differ.
        assert_eq!(r.events, f.events);
        if let (Some(rc), Some(fc)) = (&r.node_telemetry, &f.node_telemetry) {
            assert_eq!(rc.residency_us, fc.residency_us);
            assert_eq!(rc.uncore_msr_writes, fc.uncore_msr_writes);
            assert_eq!(rc.events_dropped, fc.events_dropped);
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn magus_trials_carry_decision_events() {
        let mut driver = MagusDriver::with_defaults();
        let r = run_trial(
            SystemId::IntelA100,
            AppId::Bfs,
            &mut driver,
            TrialOpts::default(),
        );
        let decisions = r
            .events
            .iter()
            .filter(|e| e.kind == "magus_decision")
            .count() as u64;
        // Every post-warm-up invocation logs exactly one decision event.
        assert!(decisions > 0 && decisions <= r.invocations, "{decisions}");
        assert!(r.events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        let nc = r.node_telemetry.expect("telemetry enabled");
        assert!(nc.uncore_msr_writes >= 1);
        assert_eq!(nc.events_dropped, 0);
        // Two sockets accumulate residency for every simulated µs.
        assert_eq!(nc.residency_total_us(), secs_to_us(r.summary.runtime_s) * 2);
    }

    #[test]
    fn builder_matches_positional_wrappers_bit_for_bit() {
        let opts = TrialOpts::default();
        let built = TrialBuilder::on(SystemId::IntelA100)
            .app(AppId::Bfs)
            .opts(opts)
            .run(&mut NoopDriver);
        let classic = run_trial(SystemId::IntelA100, AppId::Bfs, &mut NoopDriver, opts);
        assert_eq!(built.summary, classic.summary);
        // The deprecated positional surface must keep producing identical
        // results until external callers migrate.
        #[allow(deprecated)]
        {
            let trace = app_trace(AppId::Bfs, Platform::IntelA100);
            let t = run_trace_trial(
                SystemId::IntelA100,
                Arc::clone(&trace),
                &mut NoopDriver,
                opts,
            );
            assert_eq!(t.summary, built.summary);
            let c = run_custom_trial(
                NodeConfig::intel_a100(),
                Arc::clone(&trace),
                &mut NoopDriver,
                opts,
            );
            assert_eq!(c.summary, built.summary);
            let capped = run_custom_trial_capped(
                NodeConfig::intel_a100(),
                Some(Arc::clone(&trace)),
                &mut NoopDriver,
                opts,
                None,
            );
            assert_eq!(capped.summary, built.summary);
            let faulted = run_faulted_trial_capped(
                NodeConfig::intel_a100(),
                Some(trace),
                &mut NoopDriver,
                opts,
                None,
                None,
            );
            assert_eq!(faulted.summary, built.summary);
        }
    }

    #[test]
    fn builder_normalizes_empty_fault_plans() {
        let clean = TrialBuilder::on(SystemId::IntelA100)
            .app(AppId::Srad)
            .run(&mut NoopDriver);
        let armed = TrialBuilder::on(SystemId::IntelA100)
            .app(AppId::Srad)
            .faults(&FaultPlan::default())
            .run(&mut NoopDriver);
        assert_eq!(clean.summary, armed.summary);
        assert_eq!(armed.fault_counters, FaultCounters::default());
    }

    #[test]
    fn builder_idle_trial_runs_out_the_budget() {
        // No trace = the Table 2 idle-overhead protocol: the budget is the
        // only terminator.
        let r = TrialBuilder::on(SystemId::IntelA100)
            .opts(TrialOpts {
                max_s: 2.0,
                ..TrialOpts::default()
            })
            .run(&mut NoopDriver);
        assert!(!r.summary.completed);
        assert!((r.summary.runtime_s - 2.0).abs() < 0.05);
    }

    #[test]
    fn sim_path_serde_defaults_to_fast() {
        // Old serialized specs carry no `path` field; they must keep
        // deserializing and pick up the fast path.
        let legacy = r#"{"record_interval_us":0,"max_s":600.0}"#;
        let opts: TrialOpts = serde_json::from_str(legacy).unwrap();
        assert_eq!(opts.path, SimPath::Fast);
        let json =
            serde_json::to_string(&TrialOpts::default().with_path(SimPath::Reference)).unwrap();
        assert!(json.contains("\"reference\""), "{json}");
    }

    #[test]
    fn system_ids_map_to_configs() {
        assert_eq!(SystemId::IntelA100.node_config().gpus.len(), 1);
        assert_eq!(SystemId::Intel4A100.node_config().gpus.len(), 4);
        assert_eq!(SystemId::IntelMax1550.name(), "Intel+Max1550");
    }
}
