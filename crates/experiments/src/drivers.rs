//! Runtime drivers: scheduling wrappers binding decision cores to the node.
//!
//! A driver is invoked by the harness whenever its decision is due. One
//! invocation performs the runtime's *measurement sweep* against the node
//! (charging the real access costs), feeds the decision core, actuates, and
//! reports how long the invocation occupied the monitoring daemon — the
//! harness schedules the next invocation `invocation + rest_interval`
//! later, reproducing the 0.3 s (MAGUS) vs 0.5 s (UPS) decision periods of
//! §6.5.

use magus_hetsim::governor::UncoreSetter;
use magus_hetsim::Simulation;
use magus_msr::MsrError;
use magus_pcm::{NodeThroughputProbe, ThroughputSource};
use magus_runtime::{MagusAction, MagusConfig, MagusCore, Telemetry, UncoreLevel};
use magus_ups::{UpsConfig, UpsCore, UpsSampler};

/// Stable wire name for a [`magus_runtime::Trend`] in decision events.
#[cfg(feature = "telemetry")]
pub(crate) fn trend_name(trend: magus_runtime::Trend) -> &'static str {
    match trend {
        magus_runtime::Trend::Increase => "increase",
        magus_runtime::Trend::Decrease => "decrease",
        magus_runtime::Trend::Stable => "stable",
    }
}

/// Stable wire name for a [`MagusAction`] in decision events.
#[cfg(feature = "telemetry")]
pub(crate) fn action_name(action: MagusAction) -> &'static str {
    match action {
        MagusAction::SetUpper => "set_upper",
        MagusAction::SetLower => "set_lower",
        MagusAction::Hold => "hold",
    }
}

/// A schedulable uncore runtime.
pub trait RuntimeDriver {
    /// Short name for reports ("MAGUS", "UPS", "default", ...).
    fn name(&self) -> &str;

    /// Called once before the application starts.
    fn attach(&mut self, sim: &mut Simulation);

    /// One decision invocation. Returns the invocation latency in µs (how
    /// long the measurement sweep occupied the daemon).
    fn on_decision(&mut self, sim: &mut Simulation) -> u64;

    /// Rest interval between the end of one invocation and the next (µs).
    fn rest_interval_us(&self) -> u64;

    /// Monitor-only mode: decisions are computed but *not* actuated. Used
    /// by the Table 2 overhead measurement, which the paper defines as
    /// "hardware counter monitoring and phase detection, while excluding
    /// uncore scaling" (§6.5). Default: ignored.
    fn set_monitor_only(&mut self, _on: bool) {}

    /// Fraction of post-warm-up decision cycles spent in the
    /// high-frequency locked state (§6.2), for runtimes that track it.
    /// `None` for runtimes without an Algorithm 2 detector.
    fn high_freq_fraction(&self) -> Option<f64> {
        None
    }
}

/// Measure an invocation's latency from the cost ledger: the latency of
/// every monitoring access charged during `f`.
fn with_invocation_latency(sim: &mut Simulation, f: impl FnOnce(&mut Simulation)) -> u64 {
    // Drain whatever cost is pending so we only see this invocation's.
    let _ = sim.node_mut().ledger_mut().drain();
    f(sim);
    sim.node_mut().ledger_mut().drain().latency_us.round() as u64
}

/// Uncore-limit writes survive this many injected transient faults per
/// actuation before the driver gives up and holds the previous limit.
const UNCORE_WRITE_RETRIES: u32 = 3;

/// Write the uncore max limit with bounded retry. Injected transient MSR
/// faults (`magus_hetsim::fault::MsrFaults`) fail whole attempts; each
/// attempt — failed or not — charges its access cost, so retries show up
/// in the invocation latency. Returns `false` when every attempt failed
/// (the caller degrades: hold the previous limit and report it).
fn set_max_with_retry(setter: &mut UncoreSetter, sim: &mut Simulation, ghz: f64) -> bool {
    for _ in 0..UNCORE_WRITE_RETRIES {
        match setter.set_max(sim.node_mut(), ghz) {
            Ok(_) => return true,
            Err(MsrError::TransientFault) => continue,
            Err(e) => panic!("uncore actuation: {e}"),
        }
    }
    false
}

/// The stock baseline: no runtime attached; the node's TDP-coupled governor
/// is all there is.
#[derive(Debug, Default)]
pub struct NoopDriver;

impl RuntimeDriver for NoopDriver {
    fn name(&self) -> &str {
        "default"
    }

    fn attach(&mut self, _sim: &mut Simulation) {}

    fn on_decision(&mut self, _sim: &mut Simulation) -> u64 {
        0
    }

    fn rest_interval_us(&self) -> u64 {
        u64::MAX // never due again
    }
}

/// Fixed uncore frequency (the max/min settings of Figs 2 and 5a).
#[derive(Debug)]
pub struct FixedUncoreDriver {
    ghz: f64,
    label: String,
}

impl FixedUncoreDriver {
    /// Pin the uncore (min and max limits) to `ghz`.
    #[must_use]
    pub fn new(ghz: f64) -> Self {
        Self {
            ghz,
            label: format!("fixed-{ghz:.1}GHz"),
        }
    }
}

impl RuntimeDriver for FixedUncoreDriver {
    fn name(&self) -> &str {
        &self.label
    }

    fn attach(&mut self, sim: &mut Simulation) {
        magus_hetsim::governor::set_fixed_uncore(sim.node_mut(), self.ghz)
            .expect("fixed uncore write");
    }

    fn on_decision(&mut self, _sim: &mut Simulation) -> u64 {
        0
    }

    fn rest_interval_us(&self) -> u64 {
        u64::MAX
    }
}

/// MAGUS bound to the simulated node.
#[derive(Debug)]
pub struct MagusDriver {
    core: MagusCore,
    setter: UncoreSetter,
    monitor_only: bool,
    degraded: u64,
}

impl MagusDriver {
    /// Driver with the given configuration.
    #[must_use]
    pub fn new(cfg: MagusConfig) -> Self {
        Self {
            core: MagusCore::with_log(cfg),
            setter: UncoreSetter::new(),
            monitor_only: false,
            degraded: 0,
        }
    }

    /// Driver with the paper's default thresholds.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(MagusConfig::default())
    }

    /// Decision telemetry accumulated so far.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        self.core.telemetry()
    }

    /// The decision core.
    #[must_use]
    pub fn core(&self) -> &MagusCore {
        &self.core
    }

    /// Decision cycles degraded by injected faults: the sample failed (the
    /// previous decision was held) or every actuation retry failed.
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.degraded
    }

    fn apply(&mut self, sim: &mut Simulation, action: MagusAction) {
        if self.monitor_only {
            return;
        }
        let range = sim.node().config().uncore;
        let target = match action.target() {
            Some(UncoreLevel::Upper) => range.freq_max_ghz,
            Some(UncoreLevel::Lower) => range.freq_min_ghz,
            None => return,
        };
        if !set_max_with_retry(&mut self.setter, sim, target) {
            // Degrade: keep the previous limit; the next cycle retries.
            self.degraded += 1;
            #[cfg(feature = "telemetry")]
            {
                let t_us = sim.node().time_us();
                sim.node_mut().telemetry_mut().push_event(
                    magus_telemetry::Event::new(t_us, "magus_degraded")
                        .with("reason", "actuation")
                        .with("target_ghz", target),
                );
            }
        }
    }
}

impl RuntimeDriver for MagusDriver {
    fn name(&self) -> &str {
        "MAGUS"
    }

    fn attach(&mut self, sim: &mut Simulation) {
        // Deployment state at job arrival (§4): the node idles with its
        // uncore parked at minimum to conserve power; MAGUS takes no tuning
        // actions until its warm-up completes.
        if !self.monitor_only {
            let min = sim.node().config().uncore.freq_min_ghz;
            // A failed attach leaves the governor default in place; the
            // first decision cycle re-actuates.
            let _ = set_max_with_retry(&mut self.setter, sim, min);
        }
    }

    fn on_decision(&mut self, sim: &mut Simulation) -> u64 {
        with_invocation_latency(sim, |sim| {
            let sample = {
                let mut probe = NodeThroughputProbe::new(sim.node_mut());
                probe.sample_mbs()
            };
            let sample = match sample {
                Ok(mbs) => mbs,
                Err(_) => {
                    // Injected PCM dropout: hold the previous decision —
                    // don't feed the phase detector a fabricated sample.
                    self.degraded += 1;
                    #[cfg(feature = "telemetry")]
                    {
                        let t_us = sim.node().time_us();
                        sim.node_mut().telemetry_mut().push_event(
                            magus_telemetry::Event::new(t_us, "magus_degraded")
                                .with("reason", "sample"),
                        );
                    }
                    return;
                }
            };
            #[cfg(feature = "telemetry")]
            let log_len_before = self.core.telemetry().log.len();
            let action = self.core.on_sample(sample);
            self.apply(sim, action);
            // One structured event per *logged* decision (warm-up cycles may
            // not log). Pushed after actuation so the event never perturbs
            // the decision itself; `push_event` leaves frozen fast-forward
            // spans intact.
            #[cfg(feature = "telemetry")]
            if let Some(rec) = self.core.telemetry().log.last().copied() {
                if self.core.telemetry().log.len() > log_len_before {
                    let t_us = sim.node().time_us();
                    sim.node_mut().telemetry_mut().push_event(
                        magus_telemetry::Event::new(t_us, "magus_decision")
                            .with("cycle", rec.cycle)
                            .with("sample_mbs", rec.sample_mbs)
                            .with("trend", trend_name(rec.trend))
                            .with("tune_event", rec.tune_event)
                            .with("high_freq", rec.high_freq)
                            .with("action", action_name(rec.action)),
                    );
                }
            }
        })
    }

    fn rest_interval_us(&self) -> u64 {
        self.core.config().monitor_interval_us
    }

    fn set_monitor_only(&mut self, on: bool) {
        self.monitor_only = on;
    }

    fn high_freq_fraction(&self) -> Option<f64> {
        Some(self.core.telemetry().high_freq_fraction())
    }
}

/// UPS bound to the simulated node.
#[derive(Debug)]
pub struct UpsDriver {
    cfg: UpsConfig,
    core: Option<UpsCore>,
    sampler: Option<UpsSampler>,
    setter: UncoreSetter,
    /// (sim time µs, target GHz) decision log for Fig 6.
    decisions: Vec<(u64, f64)>,
    monitor_only: bool,
    degraded: u64,
}

impl UpsDriver {
    /// Driver with the given configuration.
    #[must_use]
    pub fn new(cfg: UpsConfig) -> Self {
        Self {
            cfg,
            core: None,
            sampler: None,
            setter: UncoreSetter::new(),
            decisions: Vec::new(),
            monitor_only: false,
            degraded: 0,
        }
    }

    /// Driver with default UPS parameters.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(UpsConfig::default())
    }

    /// Decision log: (sim time µs, uncore target GHz).
    #[must_use]
    pub fn decisions(&self) -> &[(u64, f64)] {
        &self.decisions
    }

    /// The decision core (after attach).
    #[must_use]
    pub fn core(&self) -> Option<&UpsCore> {
        self.core.as_ref()
    }

    /// Decision cycles degraded by injected faults (failed counter sweep or
    /// exhausted actuation retries).
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.degraded
    }
}

impl RuntimeDriver for UpsDriver {
    fn name(&self) -> &str {
        "UPS"
    }

    fn attach(&mut self, sim: &mut Simulation) {
        let uncore = sim.node().config().uncore;
        self.core = Some(UpsCore::new(
            self.cfg.clone(),
            uncore.freq_min_ghz,
            uncore.freq_max_ghz,
        ));
        self.sampler = Some(UpsSampler::new(sim.node_mut()).expect("UPS sampler"));
        let _ = set_max_with_retry(&mut self.setter, sim, uncore.freq_max_ghz);
    }

    fn on_decision(&mut self, sim: &mut Simulation) -> u64 {
        with_invocation_latency(sim, |sim| {
            let (Some(core), Some(sampler)) = (self.core.as_mut(), self.sampler.as_mut()) else {
                return;
            };
            let sample = match sampler.sample(sim.node_mut()) {
                Ok(Some(sample)) => sample,
                Ok(None) => return, // warm-up baseline, not a fault
                Err(_) => {
                    // Injected counter-read fault: skip this cycle, keep the
                    // current limit.
                    self.degraded += 1;
                    #[cfg(feature = "telemetry")]
                    {
                        let t_us = sim.node().time_us();
                        sim.node_mut().telemetry_mut().push_event(
                            magus_telemetry::Event::new(t_us, "ups_degraded")
                                .with("reason", "sample"),
                        );
                    }
                    return;
                }
            };
            let decision = core.decide(sample.mean_ipc, sample.dram_w);
            if !self.monitor_only && !set_max_with_retry(&mut self.setter, sim, decision.target_ghz)
            {
                self.degraded += 1;
                #[cfg(feature = "telemetry")]
                {
                    let t_us = sim.node().time_us();
                    sim.node_mut().telemetry_mut().push_event(
                        magus_telemetry::Event::new(t_us, "ups_degraded")
                            .with("reason", "actuation")
                            .with("target_ghz", decision.target_ghz),
                    );
                }
            }
            self.decisions
                .push((sim.node().time_us(), decision.target_ghz));
            #[cfg(feature = "telemetry")]
            {
                let t_us = sim.node().time_us();
                sim.node_mut().telemetry_mut().push_event(
                    magus_telemetry::Event::new(t_us, "ups_decision")
                        .with("target_ghz", decision.target_ghz)
                        .with("mean_ipc", sample.mean_ipc)
                        .with("dram_w", sample.dram_w)
                        .with("phase_change", decision.phase_change)
                        .with("backed_off", decision.backed_off),
                );
            }
        })
    }

    fn rest_interval_us(&self) -> u64 {
        self.cfg.rest_interval_us
    }

    fn set_monitor_only(&mut self, on: bool) {
        self.monitor_only = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_hetsim::{Node, NodeConfig};

    fn sim() -> Simulation {
        Simulation::new(Node::new(NodeConfig::intel_a100()))
    }

    #[test]
    fn noop_driver_never_reschedules() {
        let mut d = NoopDriver;
        let mut s = sim();
        d.attach(&mut s);
        assert_eq!(d.on_decision(&mut s), 0);
        assert_eq!(d.rest_interval_us(), u64::MAX);
        assert_eq!(d.name(), "default");
    }

    #[test]
    fn fixed_driver_pins_at_attach() {
        let mut d = FixedUncoreDriver::new(0.8);
        let mut s = sim();
        d.attach(&mut s);
        for _ in 0..100 {
            s.step();
        }
        assert!((s.node().sockets()[0].uncore.freq_ghz() - 0.8).abs() < 1e-9);
        assert_eq!(d.name(), "fixed-0.8GHz");
    }

    #[test]
    fn magus_invocation_latency_is_pcm_window() {
        let mut d = MagusDriver::with_defaults();
        let mut s = sim();
        d.attach(&mut s);
        for _ in 0..10 {
            s.step();
        }
        let latency = d.on_decision(&mut s);
        // One PCM measurement (100 ms) dominates; the occasional MSR
        // read/write adds sub-ms.
        assert!((100_000..103_000).contains(&latency), "latency = {latency}");
    }

    #[test]
    fn ups_invocation_latency_reflects_core_sweep() {
        let mut d = UpsDriver::with_defaults();
        let mut s = sim();
        d.attach(&mut s);
        for _ in 0..10 {
            s.step();
        }
        let latency = d.on_decision(&mut s);
        // 160 core reads at 1.8 ms each ≈ 288 ms, plus package reads.
        assert!((250_000..350_000).contains(&latency), "latency = {latency}");
    }

    #[test]
    fn ups_records_decisions() {
        let mut d = UpsDriver::with_defaults();
        let mut s = sim();
        d.attach(&mut s);
        for _ in 0..10 {
            s.step();
        }
        d.on_decision(&mut s);
        for _ in 0..10 {
            s.step();
        }
        d.on_decision(&mut s);
        assert!(!d.decisions().is_empty());
    }

    #[test]
    fn rest_intervals_match_paper_cadence() {
        assert_eq!(MagusDriver::with_defaults().rest_interval_us(), 200_000);
        assert_eq!(UpsDriver::with_defaults().rest_interval_us(), 200_000);
    }

    #[test]
    fn magus_holds_decision_on_injected_pcm_dropout() {
        let plan = magus_hetsim::FaultPlan::builder()
            .pcm_dropout_every(2)
            .build()
            .unwrap();
        let mut d = MagusDriver::with_defaults();
        let mut s = sim();
        s.node_mut().set_fault_plan(plan);
        d.attach(&mut s);
        for _ in 0..10 {
            s.step();
        }
        // One PCM read per invocation: read 1 lands, read 2 drops out.
        d.on_decision(&mut s);
        assert_eq!(d.degraded(), 0);
        d.on_decision(&mut s);
        assert_eq!(d.degraded(), 1);
    }

    #[test]
    fn actuation_retries_survive_injected_write_faults() {
        let plan = magus_hetsim::FaultPlan::builder()
            .uncore_write_fail_every(3)
            .build()
            .unwrap();
        let mut s = sim();
        s.node_mut().set_fault_plan(plan);
        let mut setter = UncoreSetter::new();
        // Two sockets, so each actuation issues two writes. The first
        // actuation lands (writes 1–2); the second trips the fault on write
        // 3 and the bounded retry's writes 4–5 land. Both actuations
        // succeed, and the failed attempt still shows up in the ledger.
        let before = s.node().ledger().writes();
        assert!(set_max_with_retry(&mut setter, &mut s, 0.8));
        assert!(set_max_with_retry(&mut setter, &mut s, 1.0));
        assert_eq!(s.node().ledger().writes() - before, 5);
    }
}
