//! Plain-text report formatting shared by the `magus-bench` binaries.

use crate::figures::AppEval;
use crate::overhead::OverheadReport;
use magus_hetsim::TraceSample;

/// Render a Fig 4-style table: per-app perf loss / power saving / energy
/// saving for MAGUS and UPS.
#[must_use]
pub fn render_fig4_table(title: &str, rows: &[AppEval]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<22} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}\n",
        "app", "loss%", "loss%", "pwr-sv%", "pwr-sv%", "en-sv%", "en-sv%"
    ));
    out.push_str(&format!(
        "{:<22} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}\n",
        "", "MAGUS", "UPS", "MAGUS", "UPS", "MAGUS", "UPS"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<22} {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2}\n",
            row.app,
            row.magus.perf_loss_pct,
            row.ups.perf_loss_pct,
            row.magus.power_saving_pct,
            row.ups.power_saving_pct,
            row.magus.energy_saving_pct,
            row.ups.energy_saving_pct,
        ));
    }
    out
}

/// Render the Table 2 overhead matrix.
#[must_use]
pub fn render_table2(rows: &[OverheadReport]) -> String {
    let mut out = String::new();
    out.push_str("== Table 2: runtime overheads ==\n");
    out.push_str(&format!(
        "{:<16} {:<8} {:>16} {:>18}\n",
        "system", "method", "power overhead %", "invocation (s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:<8} {:>16.2} {:>18.2}\n",
            r.system, r.runtime, r.power_overhead_pct, r.invocation_s
        ));
    }
    out
}

/// Render a time series as a sparse text plot (one row per sample bucket).
#[must_use]
pub fn render_series(
    title: &str,
    samples: &[TraceSample],
    project: impl Fn(&TraceSample) -> f64,
    unit: &str,
    max_rows: usize,
) -> String {
    let mut out = format!("-- {title} ({unit}) --\n");
    if samples.is_empty() {
        out.push_str("(no samples)\n");
        return out;
    }
    let stride = (samples.len() / max_rows.max(1)).max(1);
    let values: Vec<f64> = samples.iter().map(&project).collect();
    let peak = values.iter().fold(0.0f64, |a, &b| a.max(b.abs())).max(1e-9);
    for (i, sample) in samples.iter().enumerate().step_by(stride) {
        let v = values[i];
        let bars = ((v.abs() / peak) * 50.0).round() as usize;
        out.push_str(&format!(
            "{:>7.2}s {:>10.2} {}\n",
            sample.t_s,
            v,
            "#".repeat(bars)
        ));
    }
    out
}

/// Render a name/value listing (Table 1 style).
#[must_use]
pub fn render_pairs(title: &str, rows: &[(String, f64)], fmt: &str) -> String {
    let mut out = format!("== {title} ==\n");
    for (name, value) in rows {
        match fmt {
            "pct" => out.push_str(&format!("{name:<24} {value:>8.2}%\n")),
            _ => out.push_str(&format!("{name:<24} {value:>8.3}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Comparison;

    fn eval() -> AppEval {
        AppEval {
            app: "bfs".into(),
            baseline_runtime_s: 32.0,
            baseline_cpu_w: 180.0,
            magus: Comparison {
                perf_loss_pct: 1.2,
                power_saving_pct: 25.0,
                energy_saving_pct: 15.0,
            },
            ups: Comparison {
                perf_loss_pct: 3.0,
                power_saving_pct: 20.0,
                energy_saving_pct: 8.0,
            },
        }
    }

    #[test]
    fn fig4_table_contains_all_rows() {
        let s = render_fig4_table("Fig 4a", &[eval()]);
        assert!(s.contains("Fig 4a"));
        assert!(s.contains("bfs"));
        assert!(s.contains("25.00"));
    }

    #[test]
    fn series_renders_buckets() {
        let samples: Vec<TraceSample> = (0..100)
            .map(|i| TraceSample {
                t_s: f64::from(i) * 0.1,
                progress_s: f64::from(i) * 0.1,
                mem_gbs: f64::from(i % 10) * 10.0,
                demand_gbs: 0.0,
                uncore_ghz: 2.2,
                core_freq_ghz: 2.0,
                gpu_clock_mhz: 1000.0,
                pkg_w: 100.0,
                dram_w: 10.0,
                gpu_w: 200.0,
                overhead_w: 0.0,
            })
            .collect();
        let s = render_series("throughput", &samples, |x| x.mem_gbs, "GB/s", 20);
        assert!(s.contains("throughput"));
        assert!(s.lines().count() <= 22);
    }

    #[test]
    fn empty_series_handled() {
        let s = render_series("empty", &[], |x| x.mem_gbs, "GB/s", 10);
        assert!(s.contains("no samples"));
    }

    #[test]
    fn pairs_render_both_formats() {
        let rows = vec![("bfs".to_string(), 0.99)];
        assert!(render_pairs("Table 1", &rows, "raw").contains("0.990"));
        assert!(render_pairs("x", &rows, "pct").contains('%'));
    }
}
