//! Differential equivalence: the macro-stepping fast path must be
//! bit-for-bit identical to per-tick reference stepping.
//!
//! Two layers of evidence:
//!
//! 1. An exhaustive sweep of the entire workload catalog × every governor
//!    × every testbed, comparing `RunSummary`, recorded samples, and
//!    invocation counts between `SimPath::Reference` and `SimPath::Fast`.
//! 2. A property test over randomized phase traces with governor and MSR
//!    writes injected at arbitrary instants, driving the two paths through
//!    the same event script.
//!
//! Equality is asserted with `==` on `f64`-bearing structs deliberately:
//! the fast path replays the exact per-tick increments the reference path
//! computes, so anything short of bitwise identity is a bug.

use magus_experiments::{
    run_trial, FixedUncoreDriver, MagusDriver, NoopDriver, RuntimeDriver, SimPath, SystemId,
    TrialOpts, TrialResult, UpsDriver,
};
use magus_hetsim::governor::set_fixed_uncore;
use magus_hetsim::workload::PhaseKind;
use magus_hetsim::{
    secs_to_us, AppTrace, Demand, FastForward, GpuUtilVec, Node, NodeConfig, Phase, RunSummary,
    Simulation, TraceRecorder, TraceSample,
};
use magus_workloads::AppId;
use proptest::prelude::*;

const SYSTEMS: [SystemId; 3] = [
    SystemId::IntelA100,
    SystemId::Intel4A100,
    SystemId::IntelMax1550,
];

/// Every governor the paper evaluates, freshly constructed per trial so
/// driver-internal state never leaks between the two paths.
fn make_driver(which: usize) -> Box<dyn RuntimeDriver> {
    match which {
        0 => Box::new(NoopDriver),
        1 => Box::new(FixedUncoreDriver::new(0.8)),
        2 => Box::new(MagusDriver::with_defaults()),
        3 => Box::new(UpsDriver::with_defaults()),
        _ => unreachable!(),
    }
}

const GOVERNOR_NAMES: [&str; 4] = ["default", "fixed-uncore", "MAGUS", "UPS"];

fn run_path(system: SystemId, app: AppId, which: usize, path: SimPath) -> TrialResult {
    let mut driver = make_driver(which);
    let opts = TrialOpts {
        record_interval_us: 100_000,
        max_s: 150.0,
        path,
    };
    run_trial(system, app, driver.as_mut(), opts)
}

#[test]
fn fast_path_matches_reference_on_full_catalog() {
    for system in SYSTEMS {
        for &app in AppId::all() {
            for which in 0..GOVERNOR_NAMES.len() {
                let ctx = format!("{} / {app:?} / {}", system.name(), GOVERNOR_NAMES[which]);
                let r = run_path(system, app, which, SimPath::Reference);
                let f = run_path(system, app, which, SimPath::Fast);
                assert_eq!(r.summary, f.summary, "summary diverged: {ctx}");
                assert_eq!(r.samples, f.samples, "samples diverged: {ctx}");
                assert_eq!(r.invocations, f.invocations, "invocations diverged: {ctx}");
                assert_eq!(
                    r.mean_invocation_us, f.mean_invocation_us,
                    "latency diverged: {ctx}"
                );
            }
        }
    }
}

/// An intervention injected at an arbitrary instant — the event kinds the
/// fast path must re-detect a frozen span after.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// `MSR 0x620` write narrowing the uncore band.
    FixUncore(f64),
    /// RAPL PL1 reprogramming.
    PowerLimit(f64),
    /// PCM bandwidth read (charges monitoring overhead).
    PcmRead,
}

fn apply_event(sim: &mut Simulation, ev: Event, pcm_log: &mut Vec<u64>) {
    match ev {
        Event::FixUncore(ghz) => set_fixed_uncore(sim.node_mut(), ghz).expect("uncore MSR write"),
        Event::PowerLimit(w) => sim.node_mut().set_power_limit_w(w).expect("PL1 write"),
        Event::PcmRead => pcm_log.push(sim.node_mut().pcm_read_gbs().to_bits()),
    }
}

/// Drive a trace through the given event script on either path; return
/// everything observable.
fn run_script(
    trace: &AppTrace,
    events: &[(u64, Event)],
    fast: bool,
) -> (RunSummary, Vec<TraceSample>, Vec<u64>) {
    let mut sim = Simulation::new(Node::new(NodeConfig::intel_a100()));
    sim.set_recorder(TraceRecorder::new(50_000));
    sim.load(trace.clone());
    let mut ff = FastForward::new();
    let mut pcm_log = Vec::new();
    let mut idx = 0;
    let budget_us = secs_to_us(30.0);
    while !sim.done() && sim.node().time_us() < budget_us {
        while idx < events.len() && sim.node().time_us() >= events[idx].0 {
            apply_event(&mut sim, events[idx].1, &mut pcm_log);
            idx += 1;
        }
        if fast {
            let next_event_us = events.get(idx).map_or(u64::MAX, |e| e.0);
            let horizon = next_event_us.min(budget_us).max(sim.node().time_us() + 1);
            sim.advance_until(horizon, &mut ff);
        } else {
            sim.step();
        }
    }
    let summary = sim.summary(0);
    let samples = sim.recorder_mut().take_samples();
    (summary, samples, pcm_log)
}

/// `bw_history` bounded-ring wraparound: the PCM window covers the last
/// `pcm_window_us / tick_us` ticks through a fixed-capacity ring. A run
/// longer than the window must report identical window means on both paths
/// right at the wrap boundary, well past it, and after an uncore change
/// invalidates any frozen span mid-window.
#[test]
fn pcm_window_means_match_across_ring_wraparound() {
    // intel_a100: tick 10 ms, pcm window 100 ms → the ring wraps after 10
    // ticks (100_000 µs). A steady 3 s phase runs ~300 ticks: dozens of
    // complete wraps.
    let trace = AppTrace::new(
        "wrap",
        vec![Phase::new(
            PhaseKind::Compute,
            3.0,
            Demand::new(40.0, 0.4, 0.3, 0.8),
        )],
    );
    let mut events = vec![
        // Straddle the first wrap boundary (window fills at 100 ms)...
        (90_000, Event::PcmRead),
        (100_000, Event::PcmRead),
        (110_000, Event::PcmRead),
        (120_000, Event::PcmRead),
        (130_000, Event::PcmRead),
        // ...then sample deep into steady wrapping.
        (250_000, Event::PcmRead),
        (1_000_000, Event::PcmRead),
        // Perturb the uncore mid-window so the ring holds a mix of pre-
        // and post-transition samples, then read through the next wraps.
        (1_600_000, Event::FixUncore(1.2)),
        (1_650_000, Event::PcmRead),
        (1_700_000, Event::PcmRead),
        (2_500_000, Event::PcmRead),
    ];
    events.sort_by_key(|e| e.0);
    let (rs, rsam, rpcm) = run_script(&trace, &events, false);
    let (fs, fsam, fpcm) = run_script(&trace, &events, true);
    assert_eq!(rpcm, fpcm, "PCM window means diverged at the wrap boundary");
    assert_eq!(rs, fs);
    assert_eq!(rsam, fsam);
    assert_eq!(rpcm.len(), 10, "every scripted PcmRead must have fired");
}

fn phase_strategy() -> impl Strategy<Value = Phase> {
    (
        0..4usize,
        0.05f64..2.0,
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..180.0,
        proptest::collection::vec(0.0f64..1.0, 0..3),
    )
        .prop_map(|(kind, work_s, mem_frac, cpu_util, mem_gbs, gpu)| {
            let kind = [
                PhaseKind::Init,
                PhaseKind::Burst,
                PhaseKind::Compute,
                PhaseKind::Idle,
            ][kind];
            let demand = Demand {
                mem_gbs,
                mem_frac,
                cpu_frac: 0.0,
                cpu_util,
                gpu_util: GpuUtilVec::from_slice(&gpu),
            };
            Phase::new(kind, work_s, demand)
        })
}

fn event_strategy() -> impl Strategy<Value = (u64, Event)> {
    (
        0u64..secs_to_us(8.0),
        prop_oneof![
            (0.8f64..2.4).prop_map(Event::FixUncore),
            (60.0f64..160.0).prop_map(Event::PowerLimit),
            Just(Event::PcmRead),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_path_matches_reference_on_random_traces(
        phases in proptest::collection::vec(phase_strategy(), 1..5),
        mut events in proptest::collection::vec(event_strategy(), 0..6),
    ) {
        events.sort_by_key(|e| e.0);
        let trace = AppTrace::new("prop", phases);
        let (rs, rsam, rpcm) = run_script(&trace, &events, false);
        let (fs, fsam, fpcm) = run_script(&trace, &events, true);
        prop_assert_eq!(rs, fs);
        prop_assert_eq!(rsam, fsam);
        prop_assert_eq!(rpcm, fpcm);
    }
}
