//! AMD adaptation layer — the paper's §6.6 portability claim, implemented.
//!
//! > "AMD processors (EPYC/Ryzen) include uncore-like components such as
//! > the Infinity Fabric, memory controller, and SoC domain. With tools
//! > like amd_hsmp, it can be used to monitor and, in some cases, adjust
//! > SoC/fabric frequencies."
//!
//! This crate ports the MAGUS control path to that interface:
//!
//! * [`msg`] — the HSMP (Host System Management Port) mailbox protocol:
//!   message IDs and argument encodings matching the `amd_hsmp` kernel
//!   driver's ABI for the messages MAGUS needs (fabric P-state control and
//!   fabric/memory clock queries).
//! * [`pstate`] — Infinity Fabric P-state tables: where Intel exposes a
//!   continuous 100 MHz uncore ratio, AMD exposes a small set of discrete
//!   FCLK/UCLK operating points. MAGUS is a two-level (min/max) controller,
//!   so the port is exact: `Upper` ↦ P0, `Lower` ↦ the deepest P-state.
//! * [`mailbox`] — [`mailbox::transact`]: executes a mailbox message
//!   against the simulated node, actuating its fabric (uncore) domain and
//!   charging realistic mailbox access costs.
//! * [`preset`] — an `AMD EPYC + MI210` node preset, fitted with the same
//!   methodology as the Intel testbeds.

pub mod mailbox;
pub mod msg;
pub mod preset;
pub mod pstate;

pub use mailbox::{transact, HsmpError, HsmpResponse};
pub use msg::HsmpMessage;
pub use preset::amd_epyc_mi210;
pub use pstate::FabricPstateTable;
