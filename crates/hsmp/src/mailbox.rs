//! Mailbox execution against the simulated node.
//!
//! On hardware, an HSMP transaction is: write arguments → write message ID
//! (rings the doorbell) → poll the response register. That round-trip costs
//! a few hundred microseconds through the SMU firmware — cheaper than a
//! cross-tile MSR sweep, pricier than a local register read. We charge that
//! cost against the node exactly like the Intel paths do, so an AMD port's
//! Table 2 row would be *measured* the same way.
//!
//! Fabric P-state control maps onto the node's uncore domain: the
//! simulator models "the clock domain that bounds memory bandwidth and
//! burns standby power", which is the Infinity Fabric's role on EPYC.

use magus_hetsim::Node;
use magus_msr::{AccessCost, MsrScope, UncoreRatioLimit, MSR_UNCORE_RATIO_LIMIT};
use serde::{Deserialize, Serialize};

use crate::msg::HsmpMessage;
use crate::pstate::FabricPstateTable;

/// One mailbox round-trip's cost (doorbell write + SMU service + poll).
const MAILBOX_COST: AccessCost = AccessCost {
    latency_us: 350.0,
    energy_uj: 400.0,
};

/// Successful mailbox responses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HsmpResponse {
    /// Acknowledged, no payload.
    Ack,
    /// SMU firmware version word.
    SmuVersion(u32),
    /// Fabric and memory clocks (MHz).
    FclkMclk {
        /// Fabric clock (MHz).
        fclk_mhz: u32,
        /// Memory clock (MHz).
        mclk_mhz: u32,
    },
    /// Socket power (mW).
    SocketPowerMw(u32),
}

/// Mailbox errors (mirroring the driver's status codes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HsmpError {
    /// The requested P-state does not exist on this part.
    InvalidArgument,
    /// The socket index does not exist.
    BadSocket(u32),
}

impl core::fmt::Display for HsmpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HsmpError::InvalidArgument => write!(f, "HSMP: invalid message argument"),
            HsmpError::BadSocket(s) => write!(f, "HSMP: no such socket {s}"),
        }
    }
}

impl std::error::Error for HsmpError {}

/// Execute one mailbox transaction against `socket` of the node.
pub fn transact(
    node: &mut Node,
    table: &FabricPstateTable,
    socket: u32,
    msg: HsmpMessage,
) -> Result<HsmpResponse, HsmpError> {
    if socket >= node.config().sockets {
        return Err(HsmpError::BadSocket(socket));
    }
    node.charge_monitoring(MAILBOX_COST, matches!(msg, HsmpMessage::SetDfPstate(_)));
    match msg {
        HsmpMessage::GetSmuVersion => Ok(HsmpResponse::SmuVersion(0x00_45_5A_00)),
        HsmpMessage::SetDfPstate(p) => {
            if p == 0xFF {
                // Re-enable automatic selection = release to the range.
                return release_fabric(node, table, socket);
            }
            let Some(fclk) = table.fclk_of(p) else {
                return Err(HsmpError::InvalidArgument);
            };
            // Pinning a DF P-state fixes the fabric clock: min = max = FCLK.
            let raw = UncoreRatioLimit::from_ghz(fclk, fclk).encode();
            node.msr_write(MsrScope::Package(socket), MSR_UNCORE_RATIO_LIMIT, raw)
                .map_err(|_| HsmpError::BadSocket(socket))?;
            Ok(HsmpResponse::Ack)
        }
        HsmpMessage::AutoDfPstate => release_fabric(node, table, socket),
        HsmpMessage::GetFclkMclk => {
            let fclk = node.sockets()[socket as usize].uncore.freq_ghz();
            Ok(HsmpResponse::FclkMclk {
                fclk_mhz: (fclk * 1000.0).round() as u32,
                // UCLK tracks FCLK 1:1 in the coupled regime.
                mclk_mhz: (fclk * 1000.0).round() as u32,
            })
        }
        HsmpMessage::GetSocketPower => {
            let per_socket = node.last_power().pkg_w() / f64::from(node.config().sockets);
            Ok(HsmpResponse::SocketPowerMw(
                (per_socket * 1000.0).round() as u32
            ))
        }
    }
}

fn release_fabric(
    node: &mut Node,
    table: &FabricPstateTable,
    socket: u32,
) -> Result<HsmpResponse, HsmpError> {
    let raw = UncoreRatioLimit::from_ghz(table.slowest_ghz(), table.fastest_ghz()).encode();
    node.msr_write(MsrScope::Package(socket), MSR_UNCORE_RATIO_LIMIT, raw)
        .map_err(|_| HsmpError::BadSocket(socket))?;
    Ok(HsmpResponse::Ack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preset::amd_epyc_mi210;
    use magus_hetsim::Demand;

    fn setup() -> (Node, FabricPstateTable) {
        (
            Node::new(amd_epyc_mi210()),
            FabricPstateTable::epyc_default(),
        )
    }

    #[test]
    fn set_pstate_pins_fabric_clock() {
        let (mut node, table) = setup();
        for socket in 0..2 {
            assert_eq!(
                transact(&mut node, &table, socket, HsmpMessage::SetDfPstate(3)),
                Ok(HsmpResponse::Ack)
            );
        }
        for _ in 0..100 {
            node.step(10_000, &Demand::idle());
        }
        for socket in node.sockets() {
            assert!((socket.uncore.freq_ghz() - 0.8).abs() < 1e-9);
        }
    }

    #[test]
    fn get_fclk_reports_current_clock() {
        let (mut node, table) = setup();
        transact(&mut node, &table, 0, HsmpMessage::SetDfPstate(1)).unwrap();
        for _ in 0..100 {
            node.step(10_000, &Demand::idle());
        }
        let resp = transact(&mut node, &table, 0, HsmpMessage::GetFclkMclk).unwrap();
        match resp {
            HsmpResponse::FclkMclk { fclk_mhz, .. } => {
                assert!((i64::from(fclk_mhz) - 1333).abs() <= 34, "fclk {fclk_mhz}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn auto_pstate_releases_the_range() {
        let (mut node, table) = setup();
        transact(&mut node, &table, 0, HsmpMessage::SetDfPstate(3)).unwrap();
        transact(&mut node, &table, 0, HsmpMessage::AutoDfPstate).unwrap();
        let (min, max) = node.sockets()[0].uncore.msr_limits();
        assert!((min - 0.8).abs() < 1e-9);
        assert!((max - 1.6).abs() < 1e-9);
    }

    #[test]
    fn ff_argument_also_releases() {
        let (mut node, table) = setup();
        transact(&mut node, &table, 0, HsmpMessage::SetDfPstate(0xFF)).unwrap();
        let (min, max) = node.sockets()[0].uncore.msr_limits();
        assert!(max > min);
    }

    #[test]
    fn invalid_pstate_and_socket_rejected() {
        let (mut node, table) = setup();
        assert_eq!(
            transact(&mut node, &table, 0, HsmpMessage::SetDfPstate(9)),
            Err(HsmpError::InvalidArgument)
        );
        assert_eq!(
            transact(&mut node, &table, 7, HsmpMessage::GetFclkMclk),
            Err(HsmpError::BadSocket(7))
        );
    }

    #[test]
    fn socket_power_query_is_plausible() {
        let (mut node, table) = setup();
        for _ in 0..50 {
            node.step(10_000, &Demand::new(20.0, 0.3, 0.4, 0.7));
        }
        match transact(&mut node, &table, 0, HsmpMessage::GetSocketPower).unwrap() {
            HsmpResponse::SocketPowerMw(mw) => {
                assert!((20_000..400_000).contains(&mw), "{mw} mW")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn transactions_charge_mailbox_costs() {
        let (mut node, table) = setup();
        let before = node.ledger().reads() + node.ledger().writes();
        transact(&mut node, &table, 0, HsmpMessage::GetFclkMclk).unwrap();
        transact(&mut node, &table, 0, HsmpMessage::SetDfPstate(0)).unwrap();
        let after = node.ledger().reads() + node.ledger().writes();
        assert!(after > before);
    }
}
