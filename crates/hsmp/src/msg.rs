//! HSMP mailbox message encoding.
//!
//! The Host System Management Port is a doorbell/mailbox interface to the
//! SMU: software writes a message ID and up to eight 32-bit arguments,
//! rings the doorbell, and reads back a status word plus response
//! arguments. The IDs below follow the `amd_hsmp` driver's enumeration for
//! the subset MAGUS needs; everything else in the protocol is untouched.

use serde::{Deserialize, Serialize};

/// Messages used by the MAGUS port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HsmpMessage {
    /// `HSMP_GET_SMU_VER` (0x02): firmware version handshake.
    GetSmuVersion,
    /// `HSMP_SET_XGMI_LINK_WIDTH`-adjacent family; here:
    /// `HSMP_SET_DF_PSTATE` (0x0B) — pin the data-fabric P-state
    /// (0 = fastest). An argument of `0xFF` re-enables automatic selection.
    SetDfPstate(u8),
    /// `HSMP_AUTO_DF_PSTATE` (0x0C): return fabric P-state control to
    /// firmware.
    AutoDfPstate,
    /// `HSMP_GET_FCLK_MCLK` (0x0D): read the current fabric and memory
    /// clocks (MHz).
    GetFclkMclk,
    /// `HSMP_GET_SOCKET_POWER` (0x04): socket power in mW.
    GetSocketPower,
}

/// A message marshalled into mailbox words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MailboxWords {
    /// Message ID register value.
    pub id: u32,
    /// First argument register value.
    pub arg0: u32,
}

impl HsmpMessage {
    /// Marshal into mailbox register words.
    #[must_use]
    pub fn encode(&self) -> MailboxWords {
        match *self {
            HsmpMessage::GetSmuVersion => MailboxWords { id: 0x02, arg0: 0 },
            HsmpMessage::SetDfPstate(p) => MailboxWords {
                id: 0x0B,
                arg0: u32::from(p),
            },
            HsmpMessage::AutoDfPstate => MailboxWords { id: 0x0C, arg0: 0 },
            HsmpMessage::GetFclkMclk => MailboxWords { id: 0x0D, arg0: 0 },
            HsmpMessage::GetSocketPower => MailboxWords { id: 0x04, arg0: 0 },
        }
    }

    /// Unmarshal from mailbox register words.
    #[must_use]
    pub fn decode(words: MailboxWords) -> Option<HsmpMessage> {
        match words.id {
            0x02 => Some(HsmpMessage::GetSmuVersion),
            0x0B => u8::try_from(words.arg0).ok().map(HsmpMessage::SetDfPstate),
            0x0C => Some(HsmpMessage::AutoDfPstate),
            0x0D => Some(HsmpMessage::GetFclkMclk),
            0x04 => Some(HsmpMessage::GetSocketPower),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for msg in [
            HsmpMessage::GetSmuVersion,
            HsmpMessage::SetDfPstate(0),
            HsmpMessage::SetDfPstate(3),
            HsmpMessage::SetDfPstate(0xFF),
            HsmpMessage::AutoDfPstate,
            HsmpMessage::GetFclkMclk,
            HsmpMessage::GetSocketPower,
        ] {
            assert_eq!(HsmpMessage::decode(msg.encode()), Some(msg));
        }
    }

    #[test]
    fn unknown_ids_decode_to_none() {
        assert_eq!(
            HsmpMessage::decode(MailboxWords { id: 0x7F, arg0: 0 }),
            None
        );
    }

    #[test]
    fn pstate_argument_survives_marshalling() {
        let words = HsmpMessage::SetDfPstate(2).encode();
        assert_eq!(words.id, 0x0B);
        assert_eq!(words.arg0, 2);
    }

    #[test]
    fn oversized_pstate_arg_rejected_on_decode() {
        assert_eq!(
            HsmpMessage::decode(MailboxWords {
                id: 0x0B,
                arg0: 0x1_00
            }),
            None
        );
    }
}
