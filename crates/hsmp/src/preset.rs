//! An AMD EPYC + MI210 node preset.
//!
//! Fitted with the same methodology as the Intel presets (DESIGN.md §7):
//! dual EPYC 7763 (64 cores, Infinity Fabric 0.8–1.6 GHz, TDP 280 W) with
//! one MI210 accelerator. The fabric/SoC domain on Zen parts draws a
//! *larger* share of package power than Intel's uncore — the known "fabric
//! floor" — which makes uncore-style scaling at least as attractive there,
//! exactly the §6.6 argument for porting MAGUS.

use magus_hetsim::config::TdpGovernorConfig;
use magus_hetsim::{CpuConfig, GpuConfig, MemoryConfig, NodeConfig, UncoreConfig};

/// 2× EPYC 7763 + 1× Instinct MI210.
#[must_use]
pub fn amd_epyc_mi210() -> NodeConfig {
    NodeConfig {
        name: "AMD+MI210".to_string(),
        sockets: 2,
        cpu: CpuConfig {
            cores: 64,
            core_freq_min_ghz: 1.5,
            core_freq_base_ghz: 2.45,
            core_freq_max_ghz: 3.5,
            static_power_w: 30.0,
            dyn_power_max_w: 180.0,
            dyn_freq_exp: 2.2,
            dvfs_alpha: 0.5,
            base_ipc: 1.8,
            ipc_stall_coupling: 0.14,
            tdp_w: 280.0,
        },
        uncore: UncoreConfig {
            freq_min_ghz: 0.8,
            freq_max_ghz: 1.6,
            power_min_w: 18.0,
            power_span_w: 55.0,
            power_exp: 1.35,
            dyn_static_frac: 0.8,
            slew_ghz_per_s: 20.0,
        },
        mem: MemoryConfig {
            peak_bw_gbs: 100.0,
            floor_frac: 0.42,
            bw_exp: 1.0,
            dram_base_w: 12.0,
            dram_w_per_gbs: 0.09,
        },
        gpus: vec![GpuConfig {
            idle_power_w: 40.0,
            max_power_w: 300.0,
            sm_clock_min_mhz: 500.0,
            sm_clock_max_mhz: 1700.0,
            clock_alpha: 0.6,
        }],
        tdp_governor: TdpGovernorConfig::default(),
        tick_us: 10_000,
        seed: 0x414d_4431, // "AMD1"
        // HSMP mailbox transactions replace core MSR sweeps; per-core MSR
        // reads (if a UPS-style tool insisted) cost about what Zen's
        // SMN-routed accesses do.
        core_msr_read_energy_uj: 20_000.0,
        core_msr_read_latency_us: 1_500.0,
        pcm_window_us: 100_000,
        pcm_daemon_power_w: 4.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_well_formed() {
        let cfg = amd_epyc_mi210();
        assert_eq!(cfg.sockets, 2);
        assert_eq!(cfg.total_cores(), 128);
        assert!(cfg.uncore.freq_min_ghz < cfg.uncore.freq_max_ghz);
        assert_eq!(cfg.uncore.freq_max_ghz, 1.6);
        assert!(!cfg.gpus.is_empty());
    }

    #[test]
    fn fabric_range_matches_pstate_table() {
        let cfg = amd_epyc_mi210();
        let table = crate::pstate::FabricPstateTable::epyc_default();
        assert!((cfg.uncore.freq_max_ghz - table.fastest_ghz()).abs() < 1e-9);
        assert!((cfg.uncore.freq_min_ghz - table.slowest_ghz()).abs() < 1e-9);
    }
}
