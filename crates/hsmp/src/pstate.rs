//! Infinity Fabric P-state tables.
//!
//! AMD's fabric clock (FCLK) runs at one of a few discrete operating
//! points rather than Intel's quasi-continuous 100 MHz uncore ratios.
//! MAGUS is a two-level controller — it only ever requests the hardware
//! maximum or minimum — so discreteness costs it nothing: `Upper` maps to
//! P0 and `Lower` to the deepest P-state. The full table matters for
//! diagnostics and for any future policy that uses intermediate points.

use serde::{Deserialize, Serialize};

/// A fabric P-state table, fastest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricPstateTable {
    /// FCLK of each P-state (GHz), strictly decreasing from P0.
    pub fclk_ghz: Vec<f64>,
}

impl FabricPstateTable {
    /// The Milan/Genoa-era four-point table: 1.6 / 1.33 / 1.067 / 0.8 GHz.
    #[must_use]
    pub fn epyc_default() -> Self {
        Self {
            fclk_ghz: vec![1.6, 1.333, 1.067, 0.8],
        }
    }

    /// Number of P-states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fclk_ghz.len()
    }

    /// True when the table is empty (invalid for control use).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fclk_ghz.is_empty()
    }

    /// FCLK of P-state `p`, if it exists.
    #[must_use]
    pub fn fclk_of(&self, p: u8) -> Option<f64> {
        self.fclk_ghz.get(p as usize).copied()
    }

    /// The fastest operating point (P0).
    #[must_use]
    pub fn fastest_ghz(&self) -> f64 {
        self.fclk_ghz.first().copied().unwrap_or(0.0)
    }

    /// The deepest (slowest) operating point.
    #[must_use]
    pub fn slowest_ghz(&self) -> f64 {
        self.fclk_ghz.last().copied().unwrap_or(0.0)
    }

    /// The P-state whose FCLK is closest to `ghz` (ties resolve to the
    /// faster state, i.e. conservatively for performance).
    #[must_use]
    pub fn nearest_pstate(&self, ghz: f64) -> u8 {
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, &f) in self.fclk_ghz.iter().enumerate() {
            let d = (f - ghz).abs();
            if d < best_dist {
                best_dist = d;
                best = i;
            }
        }
        best as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_is_ordered() {
        let t = FabricPstateTable::epyc_default();
        assert_eq!(t.len(), 4);
        assert!(t.fclk_ghz.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(t.fastest_ghz(), 1.6);
        assert_eq!(t.slowest_ghz(), 0.8);
    }

    #[test]
    fn fclk_lookup() {
        let t = FabricPstateTable::epyc_default();
        assert_eq!(t.fclk_of(0), Some(1.6));
        assert_eq!(t.fclk_of(3), Some(0.8));
        assert_eq!(t.fclk_of(4), None);
    }

    #[test]
    fn nearest_pstate_quantises() {
        let t = FabricPstateTable::epyc_default();
        assert_eq!(t.nearest_pstate(1.6), 0);
        assert_eq!(t.nearest_pstate(1.5), 0);
        assert_eq!(t.nearest_pstate(1.2), 1);
        assert_eq!(t.nearest_pstate(0.9), 3);
        assert_eq!(t.nearest_pstate(0.0), 3);
        assert_eq!(t.nearest_pstate(9.9), 0);
    }

    #[test]
    fn ties_resolve_to_faster_state() {
        // Exactly between P2 (1.067) and P3 (0.8): 0.9335.
        let t = FabricPstateTable::epyc_default();
        assert_eq!(t.nearest_pstate(0.9335), 2);
    }
}
