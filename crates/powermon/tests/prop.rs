//! Property-based tests: the monitoring stack must agree with the
//! simulator's ground-truth energy accounting under arbitrary load.

use magus_hetsim::{Demand, Node, NodeConfig};
use magus_powermon::{EnergyMeter, GpuMonitor, RaplReader};
use proptest::prelude::*;

fn arb_demands() -> impl Strategy<Value = Vec<Demand>> {
    proptest::collection::vec(
        (0.0f64..150.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0)
            .prop_map(|(m, f, c, g)| Demand::new(m, f, c, g)),
        5..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RAPL-differentiated power approximates the model's mean power over
    /// the same interval, for any demand sequence.
    #[test]
    fn rapl_tracks_model(demands in arb_demands()) {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut rapl = RaplReader::new(&mut node).unwrap();
        node.step(10_000, &Demand::idle());
        rapl.sample(&mut node).unwrap();
        let e0 = node.energy().pkg_j();
        let t0 = node.time_s();
        for d in &demands {
            for _ in 0..10 {
                node.step(10_000, d);
            }
        }
        let sample = rapl.sample(&mut node).unwrap().unwrap();
        let model_mean = (node.energy().pkg_j() - e0) / (node.time_s() - t0);
        // RAPL counters quantise to 1/16384 J and the read itself charges
        // overhead energy into the window; a few watts of slack.
        prop_assert!((sample.pkg_w - model_mean).abs() < 6.0,
            "rapl {} vs model {}", sample.pkg_w, model_mean);
        prop_assert!(sample.pkg_w > 0.0);
        prop_assert!(sample.dram_w >= 0.0);
    }

    /// GPU queries always report power within configured bounds and
    /// monotone cumulative energy.
    #[test]
    fn gpu_monitor_bounded_and_monotone(demands in arb_demands()) {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut mon = GpuMonitor::new();
        let mut prev_energy = 0.0;
        for d in &demands {
            for _ in 0..5 {
                node.step(10_000, d);
            }
            let s = mon.sample(&mut node);
            let cfg = &node.config().gpus[0];
            prop_assert!(s.power_w[0] >= cfg.idle_power_w - 1e-9);
            prop_assert!(s.power_w[0] <= cfg.max_power_w + 1e-9);
            prop_assert!(s.energy_j[0] >= prev_energy);
            prev_energy = s.energy_j[0];
        }
    }

    /// The combined meter's total stays within a few percent of the
    /// node's ground truth for any load, any polling cadence.
    #[test]
    fn meter_matches_ground_truth(demands in arb_demands(), poll_every in 3usize..30) {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut meter = EnergyMeter::start(&mut node).unwrap();
        let e0 = node.energy().total_j();
        let mut tick = 0usize;
        for d in &demands {
            for _ in 0..10 {
                node.step(10_000, d);
                tick += 1;
                if tick % poll_every == 0 {
                    meter.poll(&mut node).unwrap();
                }
            }
        }
        meter.poll(&mut node).unwrap();
        let truth = node.energy().total_j() - e0;
        let measured = meter.report().total_j();
        prop_assert!((measured - truth).abs() / truth.max(1.0) < 0.05,
            "meter {measured} vs truth {truth}");
    }
}
