//! Whole-node energy metering for experiment accounting.
//!
//! Combines RAPL (CPU package + DRAM) and NVML-style (GPU board) sampling
//! into the paper's energy-to-solution quantity: *"CPU package, DRAM, and
//! GPU board energy"* (§5). Polls at a fixed cadence and integrates.

use magus_hetsim::fault::MeterFaults;
use magus_hetsim::Node;
use magus_msr::MsrError;
use serde::{Deserialize, Serialize};

use crate::nvml::GpuMonitor;
use crate::rapl::RaplReader;

/// Integrated energy report.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Integrated CPU package energy (J).
    pub pkg_j: f64,
    /// Integrated DRAM energy (J).
    pub dram_j: f64,
    /// GPU board energy over the metering window (J).
    pub gpu_j: f64,
    /// Metering window length (s).
    pub elapsed_s: f64,
}

impl EnergyReport {
    /// Total energy-to-solution (J).
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.pkg_j + self.dram_j + self.gpu_j
    }

    /// Mean CPU-side power over the window (W).
    #[must_use]
    pub fn mean_cpu_w(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            (self.pkg_j + self.dram_j) / self.elapsed_s
        }
    }
}

/// Polling energy meter over a node.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    rapl: RaplReader,
    gpu: GpuMonitor,
    gpu_energy_start_j: f64,
    start_s: f64,
    report: EnergyReport,
}

impl EnergyMeter {
    /// Start metering at the node's current time.
    pub fn start(node: &mut Node) -> Result<Self, MsrError> {
        Self::start_with_faults(node, &MeterFaults::default())
    }

    /// Start metering with a fault plan's meter models injected: RAPL
    /// energy counters floor-quantized to `faults.rapl_quantum_j` and GPU
    /// power readings to `faults.gpu_power_quantum_w` (a zero quantum
    /// leaves that reader exact). The baseline samples are taken through
    /// the faulted readers, so quantization applies to the whole window.
    pub fn start_with_faults(node: &mut Node, faults: &MeterFaults) -> Result<Self, MsrError> {
        let mut rapl = RaplReader::new(node)?;
        if faults.rapl_quantum_j > 0.0 {
            rapl = rapl.with_quantum_j(faults.rapl_quantum_j);
        }
        let _ = rapl.sample(node)?; // establish the baseline
        let mut gpu = GpuMonitor::new();
        if faults.gpu_power_quantum_w > 0.0 {
            gpu = gpu.with_power_quantum_w(faults.gpu_power_quantum_w);
        }
        let gpu_energy_start_j = gpu.sample(node).total_energy_j();
        Ok(Self {
            rapl,
            gpu,
            gpu_energy_start_j,
            start_s: node.time_s(),
            report: EnergyReport::default(),
        })
    }

    /// Poll the counters; call at a fixed cadence (e.g. every 0.5 s of sim
    /// time) and once at the end of the run.
    pub fn poll(&mut self, node: &mut Node) -> Result<(), MsrError> {
        if let Some(sample) = self.rapl.sample(node)? {
            self.report.pkg_j += sample.pkg_w * sample.interval_s;
            self.report.dram_j += sample.dram_w * sample.interval_s;
        }
        self.report.gpu_j = self.gpu.sample(node).total_energy_j() - self.gpu_energy_start_j;
        self.report.elapsed_s = node.time_s() - self.start_s;
        Ok(())
    }

    /// The report so far.
    #[must_use]
    pub fn report(&self) -> EnergyReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_hetsim::{Demand, NodeConfig};

    #[test]
    fn meter_tracks_model_energy() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut meter = EnergyMeter::start(&mut node).unwrap();
        let demand = Demand::new(15.0, 0.3, 0.3, 0.8);
        let model_start = node.energy().total_j();
        for i in 0..500 {
            node.step(10_000, &demand);
            if i % 50 == 49 {
                meter.poll(&mut node).unwrap();
            }
        }
        meter.poll(&mut node).unwrap();
        let report = meter.report();
        let model = node.energy().total_j() - model_start;
        let rel_err = (report.total_j() - model).abs() / model;
        assert!(
            rel_err < 0.03,
            "meter {} vs model {model}",
            report.total_j()
        );
        assert!((report.elapsed_s - 5.0).abs() < 0.05);
        assert!(report.mean_cpu_w() > 0.0);
    }

    #[test]
    fn empty_report_zeroes() {
        let r = EnergyReport::default();
        assert_eq!(r.total_j(), 0.0);
        assert_eq!(r.mean_cpu_w(), 0.0);
    }
}
