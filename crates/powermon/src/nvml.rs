//! NVML/oneAPI-style GPU board power and energy queries.
//!
//! NVML exposes instantaneous board power (`nvmlDeviceGetPowerUsage`) and
//! cumulative energy (`nvmlDeviceGetTotalEnergyConsumption`); Intel's oneAPI
//! Level Zero sysman offers equivalents for the Max 1550. The simulated GPU
//! devices expose the same quantities; queries are driver calls rather than
//! MSR pokes, so they carry a small fixed cost.

use magus_hetsim::Node;
use magus_msr::AccessCost;
use serde::{Deserialize, Serialize};

/// One GPU power/energy sample across all boards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSample {
    /// Per-board power (W).
    pub power_w: Vec<f64>,
    /// Per-board cumulative energy (J).
    pub energy_j: Vec<f64>,
    /// Per-board SM clock (MHz).
    pub sm_clock_mhz: Vec<f64>,
    /// Per-board utilisation (0..1).
    pub util: Vec<f64>,
}

impl GpuSample {
    /// Total board power across devices (W).
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.power_w.iter().sum()
    }

    /// Total cumulative board energy across devices (J).
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.energy_j.iter().sum()
    }

    /// Number of boards sampled.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.power_w.len()
    }
}

/// NVML-style monitor over the simulated node's GPUs.
#[derive(Debug, Clone, Default)]
pub struct GpuMonitor {
    queries: u64,
    /// Injected meter fault: quantize board-power readings to multiples of
    /// this step (0 = off). See `magus_hetsim::fault::MeterFaults`.
    power_quantum_w: f64,
}

/// Cost of one whole-node GPU query batch (driver ioctls, not MSRs).
const GPU_QUERY_COST: AccessCost = AccessCost {
    latency_us: 400.0,
    energy_uj: 500.0,
};

impl GpuMonitor {
    /// New monitor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantize board-power readings to multiples of `quantum_w`
    /// (truncating, like the driver's milliwatt→watt rounding). 0 disables.
    /// Fault injection for robustness studies — see
    /// `magus_hetsim::fault::MeterFaults`.
    #[must_use]
    pub fn with_power_quantum_w(mut self, quantum_w: f64) -> Self {
        self.power_quantum_w = quantum_w.max(0.0);
        self
    }

    /// Query all boards.
    pub fn sample(&mut self, node: &mut Node) -> GpuSample {
        node.charge_monitoring(GPU_QUERY_COST, false);
        self.queries += 1;
        let q = self.power_quantum_w;
        let quantize = move |w: f64| if q > 0.0 { (w / q).floor() * q } else { w };
        let gpus = node.gpus();
        GpuSample {
            power_w: gpus.iter().map(|g| quantize(g.power_w())).collect(),
            energy_j: gpus.iter().map(|g| g.energy_j()).collect(),
            sm_clock_mhz: gpus.iter().map(|g| g.sm_clock_mhz()).collect(),
            util: gpus.iter().map(|g| g.util()).collect(),
        }
    }

    /// Number of query batches issued.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_hetsim::{Demand, NodeConfig};

    #[test]
    fn sample_reflects_device_count() {
        let mut node = Node::new(NodeConfig::intel_4a100());
        let mut mon = GpuMonitor::new();
        let s = mon.sample(&mut node);
        assert_eq!(s.device_count(), 4);
        assert_eq!(mon.queries(), 1);
    }

    #[test]
    fn idle_boards_report_idle_floor() {
        let mut node = Node::new(NodeConfig::intel_4a100());
        for _ in 0..10 {
            node.step(10_000, &Demand::idle());
        }
        let mut mon = GpuMonitor::new();
        let s = mon.sample(&mut node);
        assert!(
            (s.total_power_w() - 200.0).abs() < 1.0,
            "{}",
            s.total_power_w()
        );
    }

    #[test]
    fn busy_board_reports_load_power_and_energy() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let demand = Demand::new(5.0, 0.2, 0.2, 1.0);
        for _ in 0..200 {
            node.step(10_000, &demand);
        }
        let mut mon = GpuMonitor::new();
        let s = mon.sample(&mut node);
        assert!(s.power_w[0] > 200.0);
        assert!(s.energy_j[0] > 0.0);
        assert!(s.sm_clock_mhz[0] > 1300.0);
        assert!((s.util[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantized_power_reads_are_step_multiples() {
        let mut node = Node::new(NodeConfig::intel_4a100());
        for _ in 0..10 {
            node.step(10_000, &Demand::idle());
        }
        let mut mon = GpuMonitor::new().with_power_quantum_w(5.0);
        let s = mon.sample(&mut node);
        for &w in &s.power_w {
            let steps = w / 5.0;
            assert!((steps - steps.round()).abs() < 1e-9, "w = {w}");
        }
        // ~50 W idle floor per board truncates to a multiple of 5 <= 50.
        assert!(s.total_power_w() <= 200.0 + 1e-9);
    }

    #[test]
    fn queries_charge_monitoring_cost() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut mon = GpuMonitor::new();
        let before = node.ledger().reads();
        mon.sample(&mut node);
        assert_eq!(node.ledger().reads() - before, 1);
    }
}
