//! Power and energy monitoring — the RAPL + NVML analogue.
//!
//! The paper measures CPU package and DRAM power through Intel RAPL and GPU
//! board power through NVIDIA NVML / Intel oneAPI (§5). This crate
//! reproduces those surfaces over the simulated node:
//!
//! * [`RaplReader`] — samples the package and DRAM energy-status MSRs
//!   (wrapping 32-bit counters, real RAPL semantics) and differentiates
//!   them into power. Reads go through [`Node::msr_read`], so RAPL polling
//!   carries the same package-scoped access costs it does on metal — this
//!   is part of UPS's measured overhead.
//! * [`GpuMonitor`] — NVML-style board power and energy queries.
//! * [`EnergyMeter`] — convenience integrator combining both for
//!   experiment-level energy-to-solution accounting.
//!
//! Both readers accept injected meter faults for robustness studies:
//! [`RaplReader::with_quantum_j`] and [`GpuMonitor::with_power_quantum_w`]
//! quantize readings the way coarse counter units and driver rounding do
//! (see `magus_hetsim::fault::MeterFaults`).
//!
//! [`Node::msr_read`]: magus_hetsim::Node::msr_read

pub mod meter;
pub mod nvml;
pub mod rapl;

pub use meter::EnergyMeter;
pub use nvml::{GpuMonitor, GpuSample};
pub use rapl::{RaplReader, RaplSample};
