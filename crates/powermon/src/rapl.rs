//! RAPL-style CPU power sampling from wrapping energy-status MSRs.

use magus_hetsim::Node;
use magus_msr::regs::energy_counter_delta;
use magus_msr::{
    MsrError, MsrScope, RaplPowerUnit, MSR_DRAM_ENERGY_STATUS, MSR_PKG_ENERGY_STATUS,
    MSR_RAPL_POWER_UNIT,
};
use serde::{Deserialize, Serialize};

/// One differentiated power sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaplSample {
    /// Package power summed over sockets (W).
    pub pkg_w: f64,
    /// DRAM power summed over sockets (W).
    pub dram_w: f64,
    /// Interval the sample covers (s).
    pub interval_s: f64,
}

impl RaplSample {
    /// CPU-side power (package + DRAM), W.
    #[must_use]
    pub fn cpu_w(&self) -> f64 {
        self.pkg_w + self.dram_w
    }
}

#[derive(Debug, Clone, Copy)]
struct SocketState {
    pkg_counts: u64,
    dram_counts: u64,
}

/// Differentiating reader over the per-socket RAPL energy-status MSRs.
///
/// Mirrors real RAPL usage: read `MSR_RAPL_POWER_UNIT` once at start-up,
/// then poll the 32-bit wrapping energy counters and divide deltas by the
/// elapsed time. The first call to [`RaplReader::sample`] establishes the
/// baseline and returns `None`.
#[derive(Debug, Clone)]
pub struct RaplReader {
    unit: RaplPowerUnit,
    last: Option<(f64, Vec<SocketState>)>,
    /// Injected meter fault: quantize joule deltas to multiples of this
    /// step (0 = off). See `magus_hetsim::fault::MeterFaults`.
    quantum_j: f64,
}

impl RaplReader {
    /// Create a reader, fetching the RAPL unit register from the node.
    pub fn new(node: &mut Node) -> Result<Self, MsrError> {
        let raw = node.msr_read(MsrScope::Package(0), MSR_RAPL_POWER_UNIT)?;
        Ok(Self {
            unit: RaplPowerUnit::decode(raw),
            last: None,
            quantum_j: 0.0,
        })
    }

    /// Quantize measured joule deltas to multiples of `quantum_j` (truncating,
    /// like a coarse energy-counter unit). 0 disables. Fault injection for
    /// robustness studies — see `magus_hetsim::fault::MeterFaults`.
    #[must_use]
    pub fn with_quantum_j(mut self, quantum_j: f64) -> Self {
        self.quantum_j = quantum_j.max(0.0);
        self
    }

    /// Poll the energy counters at node time `t_s`; returns the power over
    /// the interval since the previous poll (`None` on the first poll or
    /// when no time has elapsed).
    pub fn sample(&mut self, node: &mut Node) -> Result<Option<RaplSample>, MsrError> {
        let t_s = node.time_s();
        let sockets = node.config().sockets;
        let mut states = Vec::with_capacity(sockets as usize);
        for pkg in 0..sockets {
            let scope = MsrScope::Package(pkg);
            let pkg_counts = node.msr_read(scope, MSR_PKG_ENERGY_STATUS)?;
            let dram_counts = node.msr_read(scope, MSR_DRAM_ENERGY_STATUS)?;
            states.push(SocketState {
                pkg_counts,
                dram_counts,
            });
        }
        let result = match &self.last {
            Some((t0, prev)) if t_s > *t0 => {
                let dt = t_s - t0;
                let mut pkg_j = 0.0;
                let mut dram_j = 0.0;
                for (now, before) in states.iter().zip(prev.iter()) {
                    pkg_j += self
                        .unit
                        .counts_to_joules(energy_counter_delta(before.pkg_counts, now.pkg_counts));
                    dram_j += self.unit.counts_to_joules(energy_counter_delta(
                        before.dram_counts,
                        now.dram_counts,
                    ));
                }
                if self.quantum_j > 0.0 {
                    pkg_j = (pkg_j / self.quantum_j).floor() * self.quantum_j;
                    dram_j = (dram_j / self.quantum_j).floor() * self.quantum_j;
                }
                Some(RaplSample {
                    pkg_w: pkg_j / dt,
                    dram_w: dram_j / dt,
                    interval_s: dt,
                })
            }
            _ => None,
        };
        self.last = Some((t_s, states));
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magus_hetsim::{Demand, NodeConfig};

    #[test]
    fn first_sample_is_baseline() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut rapl = RaplReader::new(&mut node).unwrap();
        node.step(10_000, &Demand::idle());
        assert!(rapl.sample(&mut node).unwrap().is_none());
    }

    #[test]
    fn differentiated_power_matches_model() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut rapl = RaplReader::new(&mut node).unwrap();
        let demand = Demand::new(20.0, 0.4, 0.3, 0.7);
        node.step(10_000, &demand);
        rapl.sample(&mut node).unwrap();
        for _ in 0..100 {
            node.step(10_000, &demand);
        }
        let s = rapl.sample(&mut node).unwrap().unwrap();
        // Modelled power over the same window (RAPL includes the overhead
        // energy the reads themselves charge, so allow a few watts).
        let model = node.last_power();
        assert!(
            (s.pkg_w - model.pkg_w()).abs() < 8.0,
            "{} vs {}",
            s.pkg_w,
            model.pkg_w()
        );
        assert!((s.dram_w - model.dram_w).abs() < 3.0);
        assert!((s.interval_s - 1.0).abs() < 0.02);
        assert!(s.cpu_w() > s.pkg_w);
    }

    #[test]
    fn sampling_charges_package_read_costs() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut rapl = RaplReader::new(&mut node).unwrap();
        let before = node.ledger().reads();
        node.step(10_000, &Demand::idle());
        rapl.sample(&mut node).unwrap();
        // Two registers per socket, two sockets.
        assert_eq!(node.ledger().reads() - before, 4);
    }

    #[test]
    fn quantized_reader_reports_joule_multiples() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let quantum = 2.0;
        let mut clean = RaplReader::new(&mut node).unwrap();
        let mut coarse = clean.clone().with_quantum_j(quantum);
        let demand = Demand::new(20.0, 0.4, 0.3, 0.7);
        node.step(10_000, &demand);
        clean.sample(&mut node).unwrap();
        coarse.sample(&mut node).unwrap();
        for _ in 0..100 {
            node.step(10_000, &demand);
        }
        let fine = clean.sample(&mut node).unwrap().unwrap();
        let s = coarse.sample(&mut node).unwrap().unwrap();
        // Quantized joules over the interval are exact multiples of the step.
        let pkg_j = s.pkg_w * s.interval_s;
        let steps = pkg_j / quantum;
        assert!((steps - steps.round()).abs() < 1e-6, "pkg_j = {pkg_j}");
        // Truncation only ever under-reports, by less than one quantum.
        let fine_j = fine.pkg_w * fine.interval_s;
        assert!(pkg_j <= fine_j + 1e-9 && fine_j - pkg_j < quantum);
    }

    #[test]
    fn zero_elapsed_time_gives_none() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut rapl = RaplReader::new(&mut node).unwrap();
        node.step(10_000, &Demand::idle());
        let _ = rapl.sample(&mut node).unwrap();
        // No step in between: same timestamp.
        assert!(rapl.sample(&mut node).unwrap().is_none());
    }
}
