//! Trace-interning guarantees: pointer-equal sharing under concurrency,
//! bit-identical contents vs fresh synthesis, and exactly one synthesis
//! per `(AppId, Platform)` key across the whole catalog.

use std::sync::Arc;

use magus_workloads::{
    app_trace, app_trace_owned, interned_trace_count, synthesis_count, synthesize_trace, AppId,
    Platform,
};

const PLATFORMS: [Platform; 3] = [
    Platform::IntelA100,
    Platform::Intel4A100,
    Platform::IntelMax1550,
];

#[test]
fn concurrent_calls_for_one_key_are_pointer_equal() {
    let handles: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(|| app_trace(AppId::Srad, Platform::IntelA100)))
        .collect();
    let traces: Vec<Arc<_>> = handles
        .into_iter()
        .map(|h| h.join().expect("intern thread"))
        .collect();
    for t in &traces[1..] {
        assert!(
            Arc::ptr_eq(&traces[0], t),
            "concurrent app_trace calls must share one allocation"
        );
    }
}

#[test]
fn interned_contents_are_bit_identical_to_fresh_synthesis() {
    for platform in PLATFORMS {
        for &app in AppId::all() {
            let interned = app_trace(app, platform);
            let fresh = synthesize_trace(app, platform);
            assert_eq!(
                *interned, fresh,
                "{app:?}/{platform:?}: interned trace differs from fresh synthesis"
            );
            assert_eq!(*interned, app_trace_owned(app, platform));
        }
    }
}

#[test]
fn full_catalog_synthesizes_each_key_exactly_once() {
    // Warm every key (other tests in this process may have warmed some
    // already — interning is process-global, so this is idempotent).
    for platform in PLATFORMS {
        for &app in AppId::all() {
            let _ = app_trace(app, platform);
        }
    }
    let full = (AppId::all().len() * PLATFORMS.len()) as u64;
    assert_eq!(interned_trace_count() as u64, full);
    assert_eq!(
        synthesis_count(),
        full,
        "warm catalog must have synthesized each (app, platform) exactly once"
    );
    // A second warm sweep synthesizes nothing.
    for platform in PLATFORMS {
        for &app in AppId::all() {
            let _ = app_trace(app, platform);
        }
    }
    assert_eq!(synthesis_count(), full);
}
