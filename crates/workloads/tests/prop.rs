//! Property-based tests over the workload generators.

use magus_hetsim::workload::PhaseKind;
use magus_workloads::spec::{BurstTrainSpec, FluctuationSpec, Segment, UtilSpec, WorkloadSpec};
use magus_workloads::{app_trace, AppId, Platform};
use proptest::prelude::*;

fn arb_burst_spec() -> impl Strategy<Value = BurstTrainSpec> {
    (
        0.5f64..8.0,    // period
        0.05f64..0.6,   // duty
        20.0f64..150.0, // burst bw
        0.0f64..10.0,   // quiet bw
        0.1f64..0.9,    // burst mem frac
        0.0f64..0.3,    // jitter
        0.0f64..1.0,    // ramp
    )
        .prop_map(
            |(period_s, duty, burst_bw, quiet_bw, frac, jitter, ramp_s)| BurstTrainSpec {
                period_s,
                duty,
                burst_bw_gbs: burst_bw,
                quiet_bw_gbs: quiet_bw,
                burst_mem_frac: frac,
                quiet_mem_frac: 0.08,
                jitter,
                ramp_s,
            },
        )
}

fn arb_fluct_spec() -> impl Strategy<Value = FluctuationSpec> {
    (
        0.05f64..2.0,
        20.0f64..150.0,
        0.0f64..10.0,
        0.1f64..0.95,
        0.0f64..0.4,
        0.0f64..0.5,
    )
        .prop_map(
            |(dwell_s, high, low, frac, jitter, ramp_s)| FluctuationSpec {
                dwell_s,
                high_bw_gbs: high,
                low_bw_gbs: low,
                mem_frac: frac,
                jitter,
                ramp_s,
            },
        )
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        5.0f64..60.0,
        proptest::collection::vec(
            prop_oneof![
                arb_burst_spec().prop_map(Segment::Bursts),
                arb_fluct_spec().prop_map(Segment::Fluctuation),
                (1.0f64..50.0, 0.0f64..0.9).prop_map(|(bw, f)| Segment::Steady(bw, f)),
            ]
            .prop_flat_map(|seg| (Just(seg), 1.0f64..20.0)),
            1..4,
        ),
        any::<u64>(),
    )
        .prop_map(|(total_s, segments, seed)| WorkloadSpec {
            name: "prop".into(),
            total_s,
            init: None,
            segments,
            util: UtilSpec::single(0.3, 0.1, 0.5, 0.8),
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated traces always carry exactly the requested work content
    /// (within a phase-granularity epsilon) and every phase is valid.
    #[test]
    fn traces_conserve_work_and_are_valid(spec in arb_spec()) {
        let trace = spec.build();
        prop_assert!((trace.total_work_s() - spec.total_s).abs() < 0.25,
            "work {} vs requested {}", trace.total_work_s(), spec.total_s);
        for phase in &trace.phases {
            prop_assert!(phase.work_s >= 0.0);
            prop_assert!(phase.demand.mem_gbs >= 0.0);
            prop_assert!((0.0..=1.0).contains(&phase.demand.mem_frac));
            prop_assert!((0.0..=1.0).contains(&phase.demand.cpu_util));
            for &u in &phase.demand.gpu_util {
                prop_assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    /// Building the same spec twice yields identical traces.
    #[test]
    fn determinism_per_seed(spec in arb_spec()) {
        prop_assert_eq!(spec.build(), spec.build());
    }

    /// Distinct seeds perturb a jittered multi-burst spec.
    #[test]
    fn seeds_perturb_jittered_specs(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        prop_assume!(seed_a != seed_b);
        let mk = |seed| WorkloadSpec {
            name: "seeded".into(),
            total_s: 30.0,
            init: None,
            segments: vec![(
                Segment::Bursts(BurstTrainSpec {
                    period_s: 3.0,
                    duty: 0.3,
                    burst_bw_gbs: 80.0,
                    quiet_bw_gbs: 3.0,
                    burst_mem_frac: 0.5,
                    quiet_mem_frac: 0.05,
                    jitter: 0.15,
                    ramp_s: 0.4,
                }),
                30.0,
            )],
            util: UtilSpec::single(0.3, 0.1, 0.5, 0.8),
            seed,
        };
        prop_assert_ne!(mk(seed_a).build(), mk(seed_b).build());
    }

    /// Platform scaling: demand scales by the platform factor; GPU vectors
    /// match the platform's device count.
    #[test]
    fn platform_scaling_consistent(app_idx in 0usize..24) {
        let app = AppId::all()[app_idx];
        let base = app_trace(app, Platform::IntelA100);
        for platform in [Platform::Intel4A100, Platform::IntelMax1550] {
            let scaled = app_trace(app, platform);
            // The MD codes get multi-GPU-specific exchange segments on the
            // 4-GPU node, so only the structural (GPU-count) invariant
            // applies there.
            let md_override = platform == Platform::Intel4A100
                && matches!(app, AppId::Gromacs | AppId::Lammps);
            if !md_override {
                let expect = base.peak_mem_demand_gbs() * platform.bw_scale();
                prop_assert!((scaled.peak_mem_demand_gbs() - expect).abs() < 1e-6);
            }
            for phase in &scaled.phases {
                prop_assert_eq!(phase.demand.gpu_util.len(), platform.gpu_count());
            }
        }
    }

    /// Ramps are monotone non-decreasing in demand within each burst's
    /// rising edge.
    #[test]
    fn ramps_rise_monotonically(seed in any::<u64>()) {
        let spec = WorkloadSpec {
            name: "ramp".into(),
            total_s: 20.0,
            init: None,
            segments: vec![(
                Segment::Bursts(BurstTrainSpec {
                    period_s: 4.0,
                    duty: 0.3,
                    burst_bw_gbs: 100.0,
                    quiet_bw_gbs: 2.0,
                    burst_mem_frac: 0.5,
                    quiet_mem_frac: 0.05,
                    jitter: 0.0,
                    ramp_s: 0.6,
                }),
                20.0,
            )],
            util: UtilSpec::single(0.3, 0.1, 0.5, 0.8),
            seed,
        };
        let trace = spec.build();
        let mut prev_was_burst = false;
        let mut prev_bw = 0.0;
        for phase in &trace.phases {
            let is_burst = phase.kind == PhaseKind::Burst;
            if is_burst && prev_was_burst {
                prop_assert!(phase.demand.mem_gbs >= prev_bw - 1e-9,
                    "burst demand fell mid-rise: {} -> {}", prev_bw, phase.demand.mem_gbs);
            }
            prev_was_burst = is_burst;
            prev_bw = phase.demand.mem_gbs;
        }
    }
}
