//! Workload models: the paper's evaluation suite as phase traces.
//!
//! The paper evaluates MAGUS on real applications — the Altis GPU benchmark
//! suite (Levels 1–2), ECP proxy applications (miniGAN, CRADL, Laghos,
//! SW4lite), molecular-dynamics codes (GROMACS, LAMMPS), and MLPerf
//! training workloads (UNet, ResNet50, BERT). MAGUS never inspects
//! application internals: it only observes the *memory-throughput time
//! series* the application induces, and pays for wrong decisions through
//! the bandwidth-stall model. A workload model therefore needs to reproduce
//! each application's *memory dynamics* — burst cadence, amplitude,
//! fluctuation frequency, memory-boundedness — not its arithmetic.
//!
//! [`spec`] provides parameterised generators (periodic burst trains,
//! high-frequency fluctuation segments, initialisation bursts) with seeded
//! jitter; [`catalog`] instantiates one profile per paper application,
//! tuned to the qualitative character the paper reports for it (e.g. SRAD
//! fluctuates at high frequency, fdtd2d has brief init bursts that MAGUS's
//! warm-up misses, GEMM/BFS/Pathfinder are compute-heavy with long quiet
//! intervals); [`suites`] groups them into the exact sets each figure uses;
//! [`io`] persists traces and specifications as validated JSON, so traces
//! extracted from real PCM captures can be replayed through the harness;
//! [`generator`] synthesizes *multi-tenant traffic* over the catalog — a
//! seeded [`generator::TrafficSpec`] draws Zipf-popular apps through
//! diurnal/bursty arrival processes into per-tenant deadline queues and
//! superposes colocated tenants into per-node phase traces.

#![warn(missing_docs)]

pub mod catalog;
pub mod generator;
pub mod intern;
pub mod io;
pub mod spec;
pub mod suites;

pub use catalog::{base_spec, synthesize_trace, AppId, Platform};
pub use generator::{
    DiurnalSpec, MmppSpec, NodeProfile, QueueSpec, TenantJob, TrafficFleet, TrafficSpec,
    TrafficSpecBuilder, TrafficSpecError,
};
pub use intern::{app_trace, app_trace_owned, app_traces, interned_trace_count, synthesis_count};
pub use spec::{BurstTrainSpec, FluctuationSpec, InitSpec, WorkloadSpec};
pub use suites::{fig4a_suite, fig4b_suite, fig4c_suite, table1_suite};
