//! Stochastic multi-tenant traffic generator: seeded distributions over
//! the application catalog, expanded into per-node colocated phase traces.
//!
//! The paper evaluates MAGUS one application at a time; the cluster
//! question — *what does uncore scaling save under real traffic?* — needs
//! the workload shape of many users sharing a heterogeneous fleet. A
//! [`TrafficSpec`] describes that shape with a handful of parameters:
//!
//! * **Zipf-skewed app popularity.** Tenants draw applications from the
//!   24-app catalog with probability ∝ `1/rank^s`; the rank order is a
//!   seed-determined permutation of the catalog, so different seeds make
//!   different apps "hot" while the skew stays controlled by
//!   [`TrafficSpec::zipf_exponent`].
//! * **Diurnal arrivals.** Job inter-arrival gaps are exponential with
//!   mean [`TrafficSpec::mean_gap_s`], thinned by a sinusoidal rate
//!   envelope `1 + amplitude·sin(2πt/period)` ([`DiurnalSpec`]) — the
//!   day/night swing, compressed to simulation scale.
//! * **Bursty arrivals.** A two-state Markov-modulated Poisson process
//!   ([`MmppSpec`]) multiplies the arrival rate by `burst_rate_mult`
//!   while in the burst state; state flips are drawn per job from
//!   `p_enter_burst` / `p_exit_burst`.
//! * **Job queues with deadlines.** Each tenant runs its jobs through a
//!   busy-server queue (a job starts at `max(arrival, previous end)`);
//!   every job carries a deadline `arrival + work × deadline_slack`
//!   ([`QueueSpec`]), the metric surface for deadline-miss reporting.
//! * **Colocation.** [`TrafficSpec::colocate`] tenants share each node;
//!   their timelines superpose through the [`Demand`] model (bandwidth
//!   demands add, boundedness fractions combine demand-weighted), so
//!   colocated bursts contend for memory bandwidth exactly as the
//!   simulator's `MemoryChannel` resolves contention.
//!
//! # Determinism rules
//!
//! Expansion is bit-reproducible by construction, under the same four
//! rules the fault layer uses (see `magus_hetsim::fault`):
//!
//! 1. **Counted draws.** Every job consumes exactly three RNG draws
//!    (app, gap, burst-state) regardless of the values drawn, and the
//!    popularity permutation consumes a fixed count at spec scope — no
//!    draw is conditional on simulated state, so serial/parallel and
//!    fast/reference runs see identical traffic.
//! 2. **Per-tenant sub-seeds.** Each tenant's stream comes from its own
//!    `SmallRng` seeded by a splitmix64 mix of [`TrafficSpec::seed`] and
//!    the tenant id — a tenant's jobs do not depend on which node hosts
//!    it or who it is colocated with.
//! 3. **Params, never the trace.** Cache keys (trial-spec hashes) cover
//!    the `TrafficSpec` fields only; the expanded trace is recomputed on
//!    demand and never hashed or persisted, so sweeps over traffic mixes
//!    cache on the generator parameters.
//! 4. **Shared expansion.** Nodes with the same tenant set receive the
//!    *same* `Arc<AppTrace>` allocation from [`TrafficSpec::expand`], so
//!    the fleet kernel's trajectory dedup and phase-shifted offset
//!    sharing engage across traffic nodes exactly as they do for catalog
//!    nodes.
//!
//! Specs are built through the validating [`TrafficSpecBuilder`]:
//!
//! ```
//! use magus_workloads::generator::TrafficSpec;
//! use magus_workloads::Platform;
//!
//! let spec = TrafficSpec::builder()
//!     .seed(7)
//!     .tenants(4)
//!     .colocate(2)
//!     .zipf_exponent(1.1)
//!     .jobs_per_tenant(2)
//!     .build()
//!     .unwrap();
//!
//! // Same seed → bit-identical expansion, and nodes with the same
//! // tenant set share one trace allocation.
//! let a = spec.expand(Platform::IntelA100, 3);
//! let b = spec.expand(Platform::IntelA100, 3);
//! assert_eq!(a.profiles.len(), 3);
//! for (x, y) in a.profiles.iter().zip(&b.profiles) {
//!     assert_eq!(x.trace, y.trace);
//!     assert_eq!(x.jobs, y.jobs);
//! }
//! assert!(std::sync::Arc::ptr_eq(
//!     &a.profiles[0].trace,
//!     &a.profiles[spec.distinct_profiles()].trace,
//! ));
//!
//! // Malformed specs are rejected with a typed error.
//! assert!(TrafficSpec::builder().tenants(0).build().is_err());
//! assert!(TrafficSpec::builder().zipf_exponent(0.0).build().is_err());
//! assert!(TrafficSpec::builder().deadline_slack(0.5).build().is_err());
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use magus_hetsim::workload::PhaseKind;
use magus_hetsim::{AppTrace, Demand, GpuUtilVec, Phase};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::catalog::{AppId, Platform};
use crate::intern::app_trace;

/// Sinusoidal arrival-rate envelope: `rate × (1 + amplitude·sin(2πt/T))`.
/// The day/night swing of interactive traffic, compressed to simulation
/// scale (the default period is 240 s, not 24 h).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct DiurnalSpec {
    /// Envelope period (s); must be positive and finite.
    pub period_s: f64,
    /// Relative swing in `[0, 1]`: 0 = flat arrivals, 1 = rate varies
    /// between ~0 and 2× the mean.
    pub amplitude: f64,
}

impl Default for DiurnalSpec {
    fn default() -> Self {
        Self {
            period_s: 240.0,
            amplitude: 0.0,
        }
    }
}

/// Two-state Markov-modulated Poisson process on arrivals: while in the
/// burst state the arrival rate is multiplied by `burst_rate_mult`. State
/// transitions are drawn once per job (a counted draw), so the schedule
/// is independent of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct MmppSpec {
    /// Arrival-rate multiplier while bursting (≥ 1; 1 = no effect).
    pub burst_rate_mult: f64,
    /// Per-job probability of entering the burst state from normal.
    pub p_enter_burst: f64,
    /// Per-job probability of leaving the burst state.
    pub p_exit_burst: f64,
}

impl Default for MmppSpec {
    fn default() -> Self {
        Self {
            burst_rate_mult: 1.0,
            p_enter_burst: 0.0,
            p_exit_burst: 1.0,
        }
    }
}

/// Per-tenant job-queue shape: how many jobs, how big, and how tight the
/// deadlines are.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct QueueSpec {
    /// Jobs each tenant submits.
    pub jobs_per_tenant: u32,
    /// Job work content as a fraction of the drawn application's full
    /// catalog trace (0 < scale; 0.2 ≈ a few seconds per job).
    pub job_scale: f64,
    /// Deadline slack factor: a job due at `arrival + work × slack`.
    /// Must be ≥ 1 — a slack below 1 makes every deadline unmeetable
    /// even on an idle node, which the builder rejects.
    pub deadline_slack: f64,
}

impl Default for QueueSpec {
    fn default() -> Self {
        Self {
            jobs_per_tenant: 3,
            job_scale: 0.2,
            deadline_slack: 2.5,
        }
    }
}

/// A complete, serializable description of one traffic mix. All fields are
/// scalar (the struct is `Copy`), so the spec embeds in trial specs and
/// wire messages the same way a `FaultPlan` does, and its serde encoding
/// is the *only* thing cache hashes ever see (rule 3 above).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct TrafficSpec {
    /// Master seed: the popularity permutation and every per-tenant
    /// sub-seed derive from it.
    pub seed: u64,
    /// Number of tenants generating traffic (> 0).
    pub tenants: u32,
    /// Tenants colocated per node (> 0, ≤ `tenants`). Node `n` hosts
    /// tenants `(n·colocate + k) mod tenants` for `k < colocate`.
    pub colocate: u32,
    /// Zipf skew exponent `s` over app popularity ranks (> 0; larger =
    /// more traffic concentrated on the hottest apps).
    pub zipf_exponent: f64,
    /// Mean exponential inter-arrival gap between a tenant's jobs (s).
    pub mean_gap_s: f64,
    /// Diurnal arrival-rate envelope.
    pub diurnal: DiurnalSpec,
    /// Bursty (MMPP) arrival modulation.
    pub bursts: MmppSpec,
    /// Job-queue and deadline shape.
    pub queue: QueueSpec,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            tenants: 4,
            colocate: 2,
            zipf_exponent: 1.1,
            mean_gap_s: 6.0,
            diurnal: DiurnalSpec::default(),
            bursts: MmppSpec::default(),
            queue: QueueSpec::default(),
        }
    }
}

/// Validation failure for a [`TrafficSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficSpecError {
    /// `tenants` was zero — no one to generate traffic.
    ZeroTenants,
    /// `colocate` was zero or exceeded the tenant count.
    BadColocation {
        /// The rejected colocation factor.
        colocate: u32,
        /// The spec's tenant count.
        tenants: u32,
    },
    /// The Zipf exponent was non-positive or non-finite.
    NonPositiveZipfExponent {
        /// The rejected exponent.
        value: f64,
    },
    /// `jobs_per_tenant` was zero — tenants with no jobs have no trace.
    ZeroJobs,
    /// `deadline_slack` was below 1 (or non-finite): the deadline would
    /// precede the job's own length even on an idle node.
    DeadlineTooTight {
        /// The rejected slack factor.
        slack: f64,
    },
    /// A probability field fell outside `[0, 1]`.
    BadProbability {
        /// Which field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A numeric field was non-finite or outside its documented range.
    BadField {
        /// Which field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl core::fmt::Display for TrafficSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ZeroTenants => write!(f, "traffic spec needs at least one tenant"),
            Self::BadColocation { colocate, tenants } => write!(
                f,
                "colocate must be in 1..={tenants} (the tenant count), got {colocate}"
            ),
            Self::NonPositiveZipfExponent { value } => {
                write!(f, "zipf exponent must be positive and finite, got {value}")
            }
            Self::ZeroJobs => write!(f, "jobs_per_tenant must be at least 1"),
            Self::DeadlineTooTight { slack } => write!(
                f,
                "deadline_slack must be ≥ 1 (deadline at least one job length away), got {slack}"
            ),
            Self::BadProbability { field, value } => {
                write!(f, "{field} must be a probability in [0, 1], got {value}")
            }
            Self::BadField { field, value } => {
                write!(f, "{field} is out of range: {value}")
            }
        }
    }
}

impl std::error::Error for TrafficSpecError {}

/// Validating builder for [`TrafficSpec`], seeded with the defaults.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrafficSpecBuilder {
    spec: TrafficSpec,
}

impl TrafficSpecBuilder {
    /// Master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Number of tenants.
    #[must_use]
    pub fn tenants(mut self, tenants: u32) -> Self {
        self.spec.tenants = tenants;
        self
    }

    /// Tenants colocated per node.
    #[must_use]
    pub fn colocate(mut self, colocate: u32) -> Self {
        self.spec.colocate = colocate;
        self
    }

    /// Zipf skew exponent over app popularity.
    #[must_use]
    pub fn zipf_exponent(mut self, s: f64) -> Self {
        self.spec.zipf_exponent = s;
        self
    }

    /// Mean exponential inter-arrival gap (s).
    #[must_use]
    pub fn mean_gap_s(mut self, gap: f64) -> Self {
        self.spec.mean_gap_s = gap;
        self
    }

    /// Diurnal envelope: period (s) and relative amplitude.
    #[must_use]
    pub fn diurnal(mut self, period_s: f64, amplitude: f64) -> Self {
        self.spec.diurnal = DiurnalSpec {
            period_s,
            amplitude,
        };
        self
    }

    /// MMPP burst modulation: rate multiplier and transition probabilities.
    #[must_use]
    pub fn bursts(mut self, burst_rate_mult: f64, p_enter: f64, p_exit: f64) -> Self {
        self.spec.bursts = MmppSpec {
            burst_rate_mult,
            p_enter_burst: p_enter,
            p_exit_burst: p_exit,
        };
        self
    }

    /// Jobs each tenant submits.
    #[must_use]
    pub fn jobs_per_tenant(mut self, jobs: u32) -> Self {
        self.spec.queue.jobs_per_tenant = jobs;
        self
    }

    /// Job work as a fraction of the drawn app's full trace.
    #[must_use]
    pub fn job_scale(mut self, scale: f64) -> Self {
        self.spec.queue.job_scale = scale;
        self
    }

    /// Deadline slack factor (≥ 1).
    #[must_use]
    pub fn deadline_slack(mut self, slack: f64) -> Self {
        self.spec.queue.deadline_slack = slack;
        self
    }

    /// Validate and produce the spec.
    ///
    /// # Errors
    ///
    /// Returns the first [`TrafficSpecError`] the configured spec violates.
    pub fn build(self) -> Result<TrafficSpec, TrafficSpecError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// One generated job in a tenant's queue, in ideal-timeline terms (the
/// time axis of the superposed node trace, where demand is always met).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantJob {
    /// Submitting tenant.
    pub tenant: u32,
    /// Application drawn from the Zipf popularity distribution.
    pub app: AppId,
    /// Arrival time (s).
    pub arrival_s: f64,
    /// Queue start time: `max(arrival, previous job's end)`.
    pub start_s: f64,
    /// Work content (s).
    pub work_s: f64,
    /// Deadline: `arrival + work × deadline_slack`.
    pub due_s: f64,
}

impl TenantJob {
    /// The job's end position on the ideal timeline — the node-trace work
    /// coordinate a deadline check compares against progress.
    #[must_use]
    pub fn work_end_s(&self) -> f64 {
        self.start_s + self.work_s
    }
}

/// One node's expanded workload: the superposed colocated trace plus the
/// job/tenant metadata the fleet layer turns into deadline-miss and
/// per-tenant energy metrics.
#[derive(Debug, Clone)]
pub struct NodeProfile {
    /// Superposed phase trace. Nodes with the same tenant set share this
    /// exact allocation (determinism rule 4), so fleet trajectory dedup
    /// engages across them.
    pub trace: Arc<AppTrace>,
    /// Every colocated tenant's jobs, in (tenant, arrival) order.
    pub jobs: Vec<TenantJob>,
    /// Each tenant's share of the node's job work content, `(tenant,
    /// fraction)`, summing to 1 (equal split when the node has no work).
    pub tenant_share: Vec<(u64, f64)>,
}

/// A full fleet expansion: one [`NodeProfile`] per node, with repeated
/// tenant sets sharing trace allocations.
#[derive(Debug, Clone)]
pub struct TrafficFleet {
    /// Per-node profiles, node-index order.
    pub profiles: Vec<NodeProfile>,
}

/// splitmix64 — the standard 64-bit mixer, used to derive independent
/// sub-seeds (per tenant, and for the popularity permutation) from the
/// master seed without any stream overlap.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Stream tag for the popularity permutation (distinct from any tenant id).
const POPULARITY_STREAM: u64 = 0x504f_5055_4c41_5221;

impl TrafficSpec {
    /// Validating builder, seeded with the defaults.
    #[must_use]
    pub fn builder() -> TrafficSpecBuilder {
        TrafficSpecBuilder::default()
    }

    /// Re-check the builder invariants on an already-constructed spec
    /// (e.g. one deserialized from a `--traffic` JSON file, which bypasses
    /// the builder).
    ///
    /// # Errors
    ///
    /// Returns the first [`TrafficSpecError`] the spec violates.
    pub fn validate(&self) -> Result<(), TrafficSpecError> {
        fn probability(field: &'static str, v: f64) -> Result<(), TrafficSpecError> {
            if v.is_finite() && (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(TrafficSpecError::BadProbability { field, value: v })
            }
        }
        if self.tenants == 0 {
            return Err(TrafficSpecError::ZeroTenants);
        }
        if self.colocate == 0 || self.colocate > self.tenants {
            return Err(TrafficSpecError::BadColocation {
                colocate: self.colocate,
                tenants: self.tenants,
            });
        }
        if !(self.zipf_exponent.is_finite() && self.zipf_exponent > 0.0) {
            return Err(TrafficSpecError::NonPositiveZipfExponent {
                value: self.zipf_exponent,
            });
        }
        if !(self.mean_gap_s.is_finite() && self.mean_gap_s >= 0.0) {
            return Err(TrafficSpecError::BadField {
                field: "mean_gap_s",
                value: self.mean_gap_s,
            });
        }
        if !(self.diurnal.period_s.is_finite() && self.diurnal.period_s > 0.0) {
            return Err(TrafficSpecError::BadField {
                field: "diurnal.period_s",
                value: self.diurnal.period_s,
            });
        }
        if !(self.diurnal.amplitude.is_finite() && (0.0..=1.0).contains(&self.diurnal.amplitude)) {
            return Err(TrafficSpecError::BadField {
                field: "diurnal.amplitude",
                value: self.diurnal.amplitude,
            });
        }
        if !(self.bursts.burst_rate_mult.is_finite() && self.bursts.burst_rate_mult >= 1.0) {
            return Err(TrafficSpecError::BadField {
                field: "bursts.burst_rate_mult",
                value: self.bursts.burst_rate_mult,
            });
        }
        probability("bursts.p_enter_burst", self.bursts.p_enter_burst)?;
        probability("bursts.p_exit_burst", self.bursts.p_exit_burst)?;
        if self.queue.jobs_per_tenant == 0 {
            return Err(TrafficSpecError::ZeroJobs);
        }
        if !(self.queue.job_scale.is_finite() && self.queue.job_scale > 0.0) {
            return Err(TrafficSpecError::BadField {
                field: "queue.job_scale",
                value: self.queue.job_scale,
            });
        }
        if !(self.queue.deadline_slack.is_finite() && self.queue.deadline_slack >= 1.0) {
            return Err(TrafficSpecError::DeadlineTooTight {
                slack: self.queue.deadline_slack,
            });
        }
        Ok(())
    }

    /// The spec with a perturbed master seed — the replication hook (the
    /// engine's `replicate` index re-seeds traffic the same way it
    /// re-jitters catalog workloads).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of distinct node profiles the round-robin tenant placement
    /// produces: node `n` and node `n + distinct_profiles()` host the same
    /// tenant set (and share one trace allocation in an expansion).
    #[must_use]
    pub fn distinct_profiles(&self) -> usize {
        let t = u64::from(self.tenants);
        let c = u64::from(self.colocate);
        (t / gcd(t, c)) as usize
    }

    /// The tenants node `node` hosts: `(node·colocate + k) mod tenants`.
    #[must_use]
    pub fn node_tenants(&self, node: usize) -> Vec<u32> {
        let t = u64::from(self.tenants);
        let start = (node as u64).wrapping_mul(u64::from(self.colocate)) % t;
        (0..u64::from(self.colocate))
            .map(|k| ((start + k) % t) as u32)
            .collect()
    }

    /// Seed-determined popularity order: a Fisher–Yates permutation of the
    /// catalog (fixed draw count — determinism rule 1) drawn from its own
    /// sub-seed stream (rule 2).
    fn popularity(&self) -> Vec<AppId> {
        let mut apps: Vec<AppId> = AppId::all().to_vec();
        let mut rng = SmallRng::seed_from_u64(splitmix64(self.seed ^ POPULARITY_STREAM));
        for i in (1..apps.len()).rev() {
            let j = rng.gen_range(0..=i);
            apps.swap(i, j);
        }
        apps
    }

    /// Cumulative Zipf distribution over `n` popularity ranks.
    fn zipf_cdf(&self, n: usize) -> Vec<f64> {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(self.zipf_exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        cdf
    }

    /// Generate one tenant's job queue and its ideal-timeline phase list
    /// (idle gaps between jobs included).
    fn tenant_timeline(
        &self,
        tenant: u32,
        platform: Platform,
        popularity: &[AppId],
        cdf: &[f64],
    ) -> (Vec<TenantJob>, Vec<Phase>) {
        let mut rng = SmallRng::seed_from_u64(splitmix64(self.seed ^ (u64::from(tenant) + 1)));
        let mut jobs = Vec::with_capacity(self.queue.jobs_per_tenant as usize);
        let mut phases = Vec::new();
        let mut arrival = 0.0_f64;
        let mut cursor = 0.0_f64; // end of the previously queued job
        let mut bursting = false;
        for _ in 0..self.queue.jobs_per_tenant {
            // Exactly three draws per job, in a fixed order (rule 1).
            let u_app: f64 = rng.gen();
            let u_gap: f64 = rng.gen();
            let u_state: f64 = rng.gen();
            let rank = cdf.partition_point(|&c| c < u_app).min(cdf.len() - 1);
            let app = popularity[rank];
            bursting = if bursting {
                u_state >= self.bursts.p_exit_burst
            } else {
                u_state < self.bursts.p_enter_burst
            };
            // Exponential gap, thinned by the diurnal envelope at the
            // previous arrival and sped up while the MMPP bursts.
            let base_gap = -self.mean_gap_s * (1.0 - u_gap.min(0.999_999)).ln();
            let envelope = (1.0
                + self.diurnal.amplitude
                    * (std::f64::consts::TAU * arrival / self.diurnal.period_s).sin())
            .max(0.05);
            let rate_mult = if bursting {
                self.bursts.burst_rate_mult
            } else {
                1.0
            };
            arrival += base_gap / (envelope * rate_mult);
            let app_full = app_trace(app, platform);
            let work_s = app_full.total_work_s() * self.queue.job_scale;
            let start = arrival.max(cursor);
            if start > cursor + 1e-9 {
                phases.push(Phase::new(
                    PhaseKind::Compute,
                    start - cursor,
                    Demand::idle(),
                ));
            }
            append_job_phases(&mut phases, &app_full, work_s);
            jobs.push(TenantJob {
                tenant,
                app,
                arrival_s: arrival,
                start_s: start,
                work_s,
                due_s: arrival + work_s * self.queue.deadline_slack,
            });
            cursor = start + work_s;
        }
        (jobs, phases)
    }

    /// Expand the profile of one node: generate its colocated tenants'
    /// timelines and superpose them into a single phase trace. Prefer
    /// [`TrafficSpec::expand`] for whole fleets — it shares trace
    /// allocations across nodes with the same tenant set; this is the
    /// ground truth for a single node (the control-plane daemon's
    /// per-node submission path).
    #[must_use]
    pub fn node_profile(&self, platform: Platform, node: usize) -> NodeProfile {
        let popularity = self.popularity();
        let cdf = self.zipf_cdf(popularity.len());
        let mut jobs = Vec::new();
        let mut timelines = Vec::with_capacity(self.colocate as usize);
        for tenant in self.node_tenants(node) {
            let (tenant_jobs, timeline) = self.tenant_timeline(tenant, platform, &popularity, &cdf);
            jobs.extend(tenant_jobs);
            timelines.push(timeline);
        }
        let phases = superpose(&timelines);
        let start = self.node_tenants(node)[0];
        let trace = Arc::new(AppTrace::new(
            format!("traffic@t{start}+{}", self.colocate),
            phases,
        ));
        let mut share: HashMap<u64, f64> = HashMap::new();
        let total: f64 = jobs.iter().map(|j| j.work_s).sum();
        for job in &jobs {
            *share.entry(u64::from(job.tenant)).or_insert(0.0) += job.work_s;
        }
        let mut tenant_share: Vec<(u64, f64)> = if total > 0.0 {
            share.into_iter().map(|(t, w)| (t, w / total)).collect()
        } else {
            let n = self.colocate as f64;
            self.node_tenants(node)
                .into_iter()
                .map(|t| (u64::from(t), 1.0 / n))
                .collect()
        };
        tenant_share.sort_by_key(|&(t, _)| t);
        NodeProfile {
            trace,
            jobs,
            tenant_share,
        }
    }

    /// Expand a whole fleet: one profile per node, with nodes that host
    /// the same tenant set sharing a single `Arc<AppTrace>` allocation
    /// (determinism rule 4 — this is what lets fleet trajectory dedup and
    /// offset sharing engage across traffic nodes).
    #[must_use]
    pub fn expand(&self, platform: Platform, nodes: usize) -> TrafficFleet {
        let mut by_class: HashMap<usize, NodeProfile> = HashMap::new();
        let distinct = self.distinct_profiles();
        let profiles = (0..nodes)
            .map(|node| {
                by_class
                    .entry(node % distinct)
                    .or_insert_with(|| self.node_profile(platform, node))
                    .clone()
            })
            .collect();
        TrafficFleet { profiles }
    }
}

/// Greatest common divisor (Euclid).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// Append `work_s` seconds of `app`'s phase pattern to `phases`, cycling
/// the catalog trace and truncating the final phase — a job is a scaled
/// slice of the application's real memory dynamics, not a constant block.
fn append_job_phases(phases: &mut Vec<Phase>, full: &AppTrace, work_s: f64) {
    let mut remaining = work_s;
    'outer: loop {
        for phase in &full.phases {
            if remaining <= 1e-9 {
                break 'outer;
            }
            let len = phase.work_s.min(remaining);
            phases.push(Phase::new(phase.kind, len, phase.demand));
            remaining -= len;
        }
        if full.phases.is_empty() {
            break;
        }
    }
}

/// Superpose per-tenant timelines into one node phase list: at every
/// boundary the active demands combine — bandwidth and utilisation add,
/// boundedness fractions average weighted by each contributor's demand —
/// then clamp through the [`Demand`] model, so colocated bursts contend
/// for memory bandwidth exactly as a single over-demanding phase would.
fn superpose(timelines: &[Vec<Phase>]) -> Vec<Phase> {
    // Per-timeline phase windows [(start, end, index)].
    let mut windows: Vec<Vec<(f64, f64)>> = Vec::with_capacity(timelines.len());
    let mut boundaries: Vec<f64> = vec![0.0];
    for timeline in timelines {
        let mut t = 0.0;
        let mut spans = Vec::with_capacity(timeline.len());
        for phase in timeline {
            let end = t + phase.work_s;
            spans.push((t, end));
            boundaries.push(end);
            t = end;
        }
        windows.push(spans);
    }
    boundaries.sort_by(f64::total_cmp);
    boundaries.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let mut cursors = vec![0usize; timelines.len()];
    let mut out: Vec<Phase> = Vec::new();
    for pair in boundaries.windows(2) {
        let (t0, t1) = (pair[0], pair[1]);
        if t1 - t0 < 1e-9 {
            continue;
        }
        let mid = (t0 + t1) * 0.5;
        let mut mem_gbs = 0.0;
        let mut cpu_util = 0.0;
        let mut mem_frac_w = 0.0;
        let mut mem_frac_max = 0.0_f64;
        let mut cpu_frac_w = 0.0;
        let mut cpu_frac_max = 0.0_f64;
        let mut gpu: Vec<f64> = Vec::new();
        let mut any_burst = false;
        let mut any_init = false;
        for (ti, timeline) in timelines.iter().enumerate() {
            let spans = &windows[ti];
            while cursors[ti] < spans.len() && spans[cursors[ti]].1 <= mid {
                cursors[ti] += 1;
            }
            let Some(&(start, end)) = spans.get(cursors[ti]) else {
                continue; // timeline already ended: idle
            };
            if !(start <= mid && mid < end) {
                continue;
            }
            let d = &timeline[cursors[ti]].demand;
            mem_gbs += d.mem_gbs;
            cpu_util += d.cpu_util;
            mem_frac_w += d.mem_frac * d.mem_gbs;
            mem_frac_max = mem_frac_max.max(d.mem_frac);
            cpu_frac_w += d.cpu_frac * d.cpu_util;
            cpu_frac_max = cpu_frac_max.max(d.cpu_frac);
            for (g, &u) in d.gpu_util.iter().enumerate() {
                if g >= gpu.len() {
                    gpu.resize(g + 1, 0.0);
                }
                gpu[g] += u;
            }
            match timeline[cursors[ti]].kind {
                PhaseKind::Burst => any_burst = true,
                PhaseKind::Init => any_init = true,
                PhaseKind::Compute | PhaseKind::Idle => {}
            }
        }
        let kind = if any_burst {
            PhaseKind::Burst
        } else if any_init {
            PhaseKind::Init
        } else {
            PhaseKind::Compute
        };
        let demand = Demand {
            mem_gbs,
            mem_frac: if mem_gbs > 0.0 {
                mem_frac_w / mem_gbs
            } else {
                mem_frac_max
            },
            cpu_frac: if cpu_util > 0.0 {
                cpu_frac_w / cpu_util
            } else {
                cpu_frac_max
            },
            cpu_util,
            gpu_util: GpuUtilVec::from_slice(&gpu),
        }
        .clamped();
        out.push(Phase::new(kind, t1 - t0, demand));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> TrafficSpec {
        TrafficSpec::builder()
            .seed(42)
            .tenants(6)
            .colocate(2)
            .jobs_per_tenant(2)
            .mean_gap_s(3.0)
            .build()
            .unwrap()
    }

    #[test]
    fn default_spec_is_valid() {
        TrafficSpec::default().validate().unwrap();
    }

    #[test]
    fn builder_rejects_malformed_specs() {
        assert_eq!(
            TrafficSpec::builder().tenants(0).build().unwrap_err(),
            TrafficSpecError::ZeroTenants
        );
        assert!(matches!(
            TrafficSpec::builder().tenants(2).colocate(3).build(),
            Err(TrafficSpecError::BadColocation { .. })
        ));
        assert!(matches!(
            TrafficSpec::builder().zipf_exponent(-1.0).build(),
            Err(TrafficSpecError::NonPositiveZipfExponent { .. })
        ));
        assert!(matches!(
            TrafficSpec::builder().deadline_slack(0.9).build(),
            Err(TrafficSpecError::DeadlineTooTight { .. })
        ));
        assert!(matches!(
            TrafficSpec::builder().jobs_per_tenant(0).build(),
            Err(TrafficSpecError::ZeroJobs)
        ));
        assert!(matches!(
            TrafficSpec::builder().bursts(2.0, 1.5, 0.5).build(),
            Err(TrafficSpecError::BadProbability { .. })
        ));
        assert!(matches!(
            TrafficSpec::builder().diurnal(0.0, 0.5).build(),
            Err(TrafficSpecError::BadField { .. })
        ));
        // Deserialized specs re-validate the same way.
        let mut bad = TrafficSpec::default();
        bad.queue.job_scale = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn expansion_is_bit_identical_per_seed() {
        let spec = small_spec();
        let a = spec.expand(Platform::IntelA100, 5);
        let b = spec.expand(Platform::IntelA100, 5);
        for (x, y) in a.profiles.iter().zip(&b.profiles) {
            assert_eq!(*x.trace, *y.trace);
            assert_eq!(x.jobs, y.jobs);
            assert_eq!(x.tenant_share, y.tenant_share);
        }
        let other = spec.with_seed(43).expand(Platform::IntelA100, 5);
        assert_ne!(*a.profiles[0].trace, *other.profiles[0].trace);
    }

    #[test]
    fn repeated_tenant_sets_share_one_allocation() {
        let spec = small_spec(); // 6 tenants, colocate 2 → 3 distinct
        assert_eq!(spec.distinct_profiles(), 3);
        let fleet = spec.expand(Platform::IntelA100, 7);
        assert!(Arc::ptr_eq(
            &fleet.profiles[0].trace,
            &fleet.profiles[3].trace
        ));
        assert!(Arc::ptr_eq(
            &fleet.profiles[1].trace,
            &fleet.profiles[4].trace
        ));
        assert!(!Arc::ptr_eq(
            &fleet.profiles[0].trace,
            &fleet.profiles[1].trace
        ));
        // The shared profile matches the single-node ground truth.
        let solo = spec.node_profile(Platform::IntelA100, 3);
        assert_eq!(*solo.trace, *fleet.profiles[3].trace);
        assert_eq!(solo.jobs, fleet.profiles[3].jobs);
    }

    #[test]
    fn colocation_superposes_bandwidth() {
        let spec = small_spec();
        let profile = spec.node_profile(Platform::IntelA100, 0);
        // The bandwidth integral of the superposed trace equals the sum of
        // the tenants' job demands (superposition conserves traffic).
        let node_gb: f64 = profile
            .trace
            .phases
            .iter()
            .map(|p| p.demand.mem_gbs * p.work_s)
            .sum();
        assert!(node_gb > 0.0);
        let work: f64 = profile.jobs.iter().map(|j| j.work_s).sum();
        assert!(profile.trace.total_work_s() >= work / spec.colocate as f64);
        crate::io::validate_trace(&profile.trace).unwrap();
    }

    #[test]
    fn deadlines_and_queueing_are_consistent() {
        let spec = small_spec();
        for profile in spec.expand(Platform::IntelA100, 4).profiles {
            let mut prev_end: HashMap<u32, f64> = HashMap::new();
            for job in &profile.jobs {
                assert!(job.start_s >= job.arrival_s);
                assert!(job.due_s >= job.arrival_s + job.work_s - 1e-9);
                assert!(job.work_s > 0.0);
                let cursor = prev_end.entry(job.tenant).or_insert(0.0);
                assert!(
                    job.start_s >= *cursor - 1e-9,
                    "busy-server queue: jobs never overlap within a tenant"
                );
                *cursor = job.work_end_s();
            }
            let share_sum: f64 = profile.tenant_share.iter().map(|&(_, s)| s).sum();
            assert!((share_sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_skew_concentrates_draws() {
        let spec = TrafficSpec::builder()
            .tenants(8)
            .colocate(1)
            .jobs_per_tenant(16)
            .zipf_exponent(3.0)
            .build()
            .unwrap();
        let fleet = spec.expand(Platform::IntelA100, 8);
        let hottest = spec.popularity()[0];
        let draws: Vec<AppId> = fleet
            .profiles
            .iter()
            .flat_map(|p| p.jobs.iter().map(|j| j.app))
            .collect();
        let hot = draws.iter().filter(|&&a| a == hottest).count();
        assert!(
            hot * 2 > draws.len(),
            "exponent 3 should give the hottest app a majority, got {hot}/{}",
            draws.len()
        );
    }

    #[test]
    fn arrival_modulation_changes_expansion() {
        let base = small_spec();
        let mut diurnal = base;
        diurnal.diurnal.amplitude = 0.9;
        let mut bursty = base;
        bursty.bursts = MmppSpec {
            burst_rate_mult: 6.0,
            p_enter_burst: 0.5,
            p_exit_burst: 0.3,
        };
        let t0 = base.node_profile(Platform::IntelA100, 0);
        let t1 = diurnal.node_profile(Platform::IntelA100, 0);
        let t2 = bursty.node_profile(Platform::IntelA100, 0);
        assert_ne!(t0.jobs, t1.jobs, "diurnal envelope must shift arrivals");
        assert_ne!(t0.jobs, t2.jobs, "MMPP bursts must shift arrivals");
        // Burstier arrivals never slow the stream down on average.
        let last = |p: &NodeProfile| p.jobs.iter().map(|j| j.arrival_s).fold(0.0, f64::max);
        assert!(last(&t2) <= last(&t0) + 1e-9);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = small_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: TrafficSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Old/partial encodings fill defaults and still validate.
        let sparse: TrafficSpec = serde_json::from_str(r#"{"seed":9,"tenants":3}"#).unwrap();
        assert_eq!(sparse.seed, 9);
        assert_eq!(sparse.tenants, 3);
        sparse.validate().unwrap();
    }
}
