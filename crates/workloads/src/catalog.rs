//! The application catalog: one profile per paper application.
//!
//! Parameters are tuned to reproduce each application's *reported
//! behaviour*, not its internals: burst cadence and amplitude set the
//! memory dynamics MAGUS reacts to; duty cycle and memory-boundedness set
//! how much performance is at stake when the uncore throttles; quiet-phase
//! demand sets how much uncore power is recoverable. The comments on each
//! entry cite the paper observation the tuning targets.

use magus_hetsim::AppTrace;
use serde::{Deserialize, Serialize};

use crate::spec::{BurstTrainSpec, FluctuationSpec, InitSpec, Segment, UtilSpec, WorkloadSpec};

/// Target platform for a workload instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// 2× Xeon 8380 + 1× A100-40GB (CUDA).
    IntelA100,
    /// 2× Xeon 8380 + 4× A100-80GB (CUDA, PCIe).
    Intel4A100,
    /// 2× Xeon Max 9462 + Max 1550 (SYCL).
    IntelMax1550,
}

impl Platform {
    /// GPUs available on the platform.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        match self {
            Platform::Intel4A100 => 4,
            _ => 1,
        }
    }

    /// Memory-demand scale relative to the Intel+A100 baseline: the HBM
    /// host on Intel+Max1550 moves more data per burst; the 4-GPU node
    /// stages data for four devices.
    #[must_use]
    pub fn bw_scale(&self) -> f64 {
        match self {
            Platform::IntelA100 => 1.0,
            Platform::Intel4A100 => 1.9,
            Platform::IntelMax1550 => 1.3,
        }
    }
}

/// Identifier for every application in the evaluation (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AppId {
    // Altis levels 1-2 (CUDA / SYCL ports).
    Bfs,
    Pathfinder,
    Cfd,
    CfdDouble,
    Fdtd2d,
    Gemm,
    Kmeans,
    Lavamd,
    Nw,
    ParticlefilterFloat,
    ParticlefilterNaive,
    Raytracing,
    Sort,
    Srad,
    Where,
    // ECP proxy applications.
    MiniGan,
    Cradl,
    Laghos,
    Sw4lite,
    // AI-enabled MD applications.
    Gromacs,
    Lammps,
    // MLPerf training workloads.
    Unet,
    Resnet50,
    BertLarge,
}

impl AppId {
    /// All applications in catalog order.
    #[must_use]
    pub fn all() -> &'static [AppId] {
        use AppId::*;
        &[
            Bfs,
            Pathfinder,
            Cfd,
            CfdDouble,
            Fdtd2d,
            Gemm,
            Kmeans,
            Lavamd,
            Nw,
            ParticlefilterFloat,
            ParticlefilterNaive,
            Raytracing,
            Sort,
            Srad,
            Where,
            MiniGan,
            Cradl,
            Laghos,
            Sw4lite,
            Gromacs,
            Lammps,
            Unet,
            Resnet50,
            BertLarge,
        ]
    }

    /// The name used in the paper's tables and figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AppId::Bfs => "bfs",
            AppId::Pathfinder => "pathfinder",
            AppId::Cfd => "cfd",
            AppId::CfdDouble => "cfd_double",
            AppId::Fdtd2d => "fdtd2d",
            AppId::Gemm => "gemm",
            AppId::Kmeans => "kmeans",
            AppId::Lavamd => "lavamd",
            AppId::Nw => "nw",
            AppId::ParticlefilterFloat => "particlefilter_float",
            AppId::ParticlefilterNaive => "particlefilter_naive",
            AppId::Raytracing => "raytracing",
            AppId::Sort => "sort",
            AppId::Srad => "srad",
            AppId::Where => "where",
            AppId::MiniGan => "miniGAN",
            AppId::Cradl => "CRADL",
            AppId::Laghos => "Laghos",
            AppId::Sw4lite => "sw4lite",
            AppId::Gromacs => "gromacs",
            AppId::Lammps => "lammps",
            AppId::Unet => "UNet",
            AppId::Resnet50 => "Resnet50",
            AppId::BertLarge => "bert_large",
        }
    }

    /// Look an application up by its paper name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<AppId> {
        AppId::all().iter().copied().find(|a| a.name() == name)
    }
}

impl core::fmt::Display for AppId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shorthand for a standard periodic-burst profile.
#[allow(clippy::too_many_arguments)]
fn periodic(
    app: AppId,
    total_s: f64,
    init: Option<InitSpec>,
    period_s: f64,
    duty: f64,
    burst_bw: f64,
    quiet_bw: f64,
    burst_frac: f64,
    util: UtilSpec,
) -> WorkloadSpec {
    WorkloadSpec {
        name: app.name().to_string(),
        total_s,
        init,
        segments: vec![(
            Segment::Bursts(BurstTrainSpec {
                period_s,
                duty,
                burst_bw_gbs: burst_bw,
                quiet_bw_gbs: quiet_bw,
                burst_mem_frac: burst_frac,
                quiet_mem_frac: 0.08,
                jitter: 0.07,
                ramp_s: 0.6,
            }),
            total_s,
        )],
        util,
        seed: seed_for(app),
    }
}

fn init_bursts(duration_s: f64, bursts: u32, bw: f64) -> Option<InitSpec> {
    Some(InitSpec {
        duration_s,
        bursts,
        burst_bw_gbs: bw,
        mem_frac: 0.6,
    })
}

/// Deterministic per-app seed so every app's jitter is stable but distinct.
fn seed_for(app: AppId) -> u64 {
    0x4d41_4755_5300 + app as u64
}

/// Build the workload specification for `app` on the Intel+A100 baseline
/// scale (1 GPU, bw scale 1.0). [`app_trace`] applies platform scaling.
#[must_use]
pub fn base_spec(app: AppId) -> WorkloadSpec {
    use AppId::*;
    // Graph/search kernels are latency-bound: modest GPU occupancy.
    let u_lat = UtilSpec::single(0.30, 0.12, 0.30, 0.32);
    // Dense kernels keep the GPU busier.
    let u = UtilSpec::single(0.30, 0.12, 0.55, 0.75);
    match app {
        // --- Compute-heavy Altis kernels: long quiet GPU phases, brief
        // staging bursts. The paper singles these out for the largest CPU
        // power savings ("BFS, GEMM, and Pathfinder ... higher CPU package
        // power savings", §6.1).
        Bfs => periodic(
            app,
            32.0,
            init_bursts(0.8, 1, 42.0),
            5.4,
            0.28,
            108.0,
            2.0,
            0.45,
            u_lat,
        ),
        Pathfinder => periodic(
            app,
            30.0,
            init_bursts(0.8, 1, 40.0),
            5.0,
            0.28,
            104.0,
            2.5,
            0.45,
            u_lat,
        ),
        Gemm => {
            // Jaccard 0.71: several brief init bursts land in the warm-up.
            periodic(
                app,
                26.0,
                init_bursts(2.3, 5, 75.0),
                5.2,
                0.2,
                110.0,
                2.0,
                0.4,
                u,
            )
        }
        Kmeans => periodic(
            app,
            30.0,
            init_bursts(1.0, 2, 45.0),
            5.0,
            0.28,
            106.0,
            3.0,
            0.45,
            u,
        ),
        Sort => periodic(
            app,
            28.0,
            init_bursts(0.9, 2, 45.0),
            4.6,
            0.28,
            108.0,
            3.5,
            0.5,
            u,
        ),
        Where => periodic(
            app,
            26.0,
            init_bursts(0.7, 1, 40.0),
            5.0,
            0.28,
            102.0,
            2.5,
            0.45,
            u_lat,
        ),
        Nw => periodic(
            app,
            30.0,
            init_bursts(0.8, 1, 42.0),
            4.8,
            0.28,
            105.0,
            3.0,
            0.5,
            u,
        ),
        Raytracing => periodic(
            app,
            34.0,
            init_bursts(1.2, 2, 60.0),
            4.8,
            0.2,
            100.0,
            4.0,
            0.5,
            u,
        ),

        // --- Moderately memory-active kernels.
        Cfd => periodic(
            app,
            32.0,
            init_bursts(1.0, 2, 70.0),
            3.8,
            0.28,
            106.0,
            5.0,
            0.55,
            u,
        ),
        CfdDouble => {
            // Jaccard 0.63: init bursts inside warm-up.
            periodic(
                app,
                22.0,
                init_bursts(2.6, 6, 80.0),
                4.2,
                0.22,
                112.0,
                5.0,
                0.58,
                u,
            )
        }
        Lavamd => periodic(
            app,
            30.0,
            init_bursts(1.0, 2, 60.0),
            3.6,
            0.3,
            104.0,
            6.0,
            0.55,
            u,
        ),
        Fdtd2d => {
            // Jaccard 0.40: "multiple brief bursts during the initialization
            // phase ... before MAGUS starts uncore scaling" — the densest
            // init-burst pattern in the suite, with a ~3% perf loss.
            periodic(
                app,
                16.0,
                init_bursts(3.9, 9, 85.0),
                4.5,
                0.14,
                108.0,
                5.0,
                0.55,
                u,
            )
        }

        // --- Memory-intensive kernels: least downscaling headroom; the
        // paper names particlefilter_naive and srad as the low-savings end.
        ParticlefilterFloat => periodic(
            app,
            24.0,
            init_bursts(2.4, 6, 85.0),
            2.8,
            0.40,
            110.0,
            10.0,
            0.62,
            u,
        ),
        ParticlefilterNaive => periodic(
            app,
            30.0,
            init_bursts(1.0, 2, 85.0),
            2.2,
            0.55,
            112.0,
            14.0,
            0.65,
            u,
        ),
        Srad => srad_spec(),

        // --- ECP proxy applications.
        MiniGan => periodic(
            app,
            40.0,
            init_bursts(1.5, 2, 45.0),
            4.4,
            0.27,
            85.0,
            5.0,
            0.55,
            UtilSpec::single(0.35, 0.15, 0.6, 0.95),
        ),
        Cradl => periodic(
            app,
            38.0,
            init_bursts(1.2, 2, 65.0),
            4.2,
            0.22,
            78.0,
            4.0,
            0.5,
            UtilSpec::single(0.32, 0.14, 0.55, 0.9),
        ),
        Laghos => periodic(
            app,
            42.0,
            init_bursts(1.0, 1, 42.0),
            5.0,
            0.24,
            80.0,
            4.0,
            0.5,
            UtilSpec::single(0.35, 0.18, 0.5, 0.88),
        ),
        Sw4lite => {
            // Jaccard 0.87: mildly irregular bursts.
            let mut spec = periodic(
                app,
                40.0,
                init_bursts(1.2, 2, 70.0),
                3.8,
                0.3,
                90.0,
                6.0,
                0.55,
                UtilSpec::single(0.35, 0.16, 0.55, 0.9),
            );
            if let Segment::Bursts(b) = &mut spec.segments[0].0 {
                b.jitter = 0.2;
            }
            spec
        }

        // --- Molecular-dynamics applications: frequent small host↔device
        // exchanges every few steps, moderate CPU activity.
        Gromacs => periodic(
            app,
            45.0,
            init_bursts(1.5, 2, 44.0),
            2.8,
            0.4,
            92.0,
            9.0,
            0.6,
            UtilSpec::single(0.45, 0.25, 0.6, 0.85),
        ),
        Lammps => periodic(
            app,
            45.0,
            init_bursts(1.2, 2, 42.0),
            3.2,
            0.33,
            85.0,
            7.0,
            0.55,
            UtilSpec::single(0.42, 0.22, 0.6, 0.85),
        ),

        // --- MLPerf training workloads.
        Unet => {
            // Calibration anchor (Figs 1-2): ≈47 s at max uncore, ≈+21% at
            // min uncore, ≈200 W package at max with ≈82 W uncore headroom.
            periodic(
                app,
                47.0,
                init_bursts(1.6, 2, 46.0),
                4.7,
                0.37,
                113.0,
                6.0,
                0.79,
                UtilSpec::single(0.42, 0.3, 0.55, 0.97),
            )
        }
        Resnet50 => periodic(
            app,
            50.0,
            init_bursts(1.5, 2, 48.0),
            4.0,
            0.3,
            100.0,
            7.0,
            0.58,
            UtilSpec::single(0.4, 0.28, 0.55, 0.96),
        ),
        BertLarge => {
            // Jaccard 0.84: training with occasional fluctuating
            // data-pipeline intervals.
            WorkloadSpec {
                name: app.name().to_string(),
                total_s: 52.0,
                init: init_bursts(1.8, 3, 80.0),
                segments: vec![
                    (
                        Segment::Bursts(BurstTrainSpec {
                            period_s: 4.0,
                            duty: 0.28,
                            burst_bw_gbs: 95.0,
                            quiet_bw_gbs: 8.0,
                            burst_mem_frac: 0.58,
                            quiet_mem_frac: 0.1,
                            jitter: 0.1,
                            ramp_s: 0.6,
                        }),
                        13.5,
                    ),
                    (
                        Segment::Fluctuation(FluctuationSpec {
                            dwell_s: 0.45,
                            high_bw_gbs: 70.0,
                            low_bw_gbs: 8.0,
                            mem_frac: 0.5,
                            jitter: 0.25,
                            ramp_s: 0.0,
                        }),
                        2.5,
                    ),
                ],
                util: UtilSpec::single(0.45, 0.3, 0.6, 0.96),
                seed: seed_for(app),
            }
        }
    }
}

/// SRAD, the §6.2 case study: alternating calm and *high-frequency
/// fluctuation* intervals. Fig 6 shows MAGUS locking the uncore at maximum
/// during roughly seconds 10–12.5 and after second 15; the segment layout
/// mirrors that timeline.
fn srad_spec() -> WorkloadSpec {
    let hf = |dwell: f64| {
        Segment::Fluctuation(FluctuationSpec {
            dwell_s: dwell,
            high_bw_gbs: 120.0,
            low_bw_gbs: 6.0,
            mem_frac: 0.92,
            jitter: 0.35,
            ramp_s: if dwell >= 0.8 { 0.35 } else { 0.0 },
        })
    };
    WorkloadSpec {
        name: AppId::Srad.name().to_string(),
        total_s: 20.0,
        init: init_bursts(1.0, 2, 70.0),
        segments: vec![
            // Ordinary iteration bursts.
            (
                Segment::Bursts(BurstTrainSpec {
                    period_s: 3.0,
                    duty: 0.3,
                    burst_bw_gbs: 88.0,
                    quiet_bw_gbs: 6.0,
                    burst_mem_frac: 0.6,
                    quiet_mem_frac: 0.1,
                    jitter: 0.08,
                    ramp_s: 0.4,
                }),
                3.5,
            ),
            // Slower alternation (trend prediction's home turf).
            (hf(1.0), 3.5),
            // High-frequency fluctuation, dwell comparable to the decision
            // period (lock expected).
            (hf(0.4), 2.5),
            // Calm compute.
            (Segment::Steady(5.0, 0.1), 6.5),
            // High-frequency fluctuation again.
            (hf(0.4), 3.0),
        ],
        util: UtilSpec::single(0.35, 0.15, 0.6, 0.9),
        seed: seed_for(AppId::Srad),
    }
}

/// Multi-GPU overrides: on the 4-GPU node the MD codes add fine-grained
/// inter-GPU halo-exchange phases (per-step alternation the single-GPU
/// runs don't have). These are what make the paper's Fig 4c GROMACS and
/// LAMMPS lose ~7% / ~5% under MAGUS despite its strong CPU power savings:
/// the exchanges alternate at the edge of the 0.3 s decision period.
fn multi_gpu_md_overrides(app: AppId, spec: &mut WorkloadSpec) {
    let exchange = |dwell: f64, high: f64, frac: f64| {
        Segment::Fluctuation(FluctuationSpec {
            dwell_s: dwell,
            // Values are pre-platform-scaling (the 4-GPU node multiplies by
            // 1.9): the exchanges saturate most of the system bandwidth.
            high_bw_gbs: high,
            low_bw_gbs: 5.0,
            mem_frac: frac,
            jitter: 0.3,
            ramp_s: 0.0,
        })
    };
    match app {
        AppId::Gromacs => {
            // Slow-ish alternation MAGUS tracks (and mistimes): big savings
            // on the low dwells, a lag penalty entering every high dwell.
            spec.segments = vec![
                (spec.segments[0].0, 11.0),
                (exchange(1.1, 78.0, 0.95), 14.0),
            ];
        }
        AppId::Lammps => {
            // Faster alternation: the high-frequency lock engages for much
            // of it, trading savings for stability.
            spec.segments = vec![
                (spec.segments[0].0, 13.0),
                (exchange(0.65, 74.0, 0.9), 10.0),
            ];
        }
        _ => {}
    }
}

/// Synthesize `app` for `platform` from scratch: scales memory demand,
/// replicates GPU utilisation across devices, and stretches multi-GPU work
/// slightly (the paper's multi-GPU runs are the same problems at larger
/// scale).
///
/// This always rebuilds the trace. Prefer [`crate::app_trace`], which
/// serves a shared `Arc` from the process-wide intern table and synthesizes
/// each `(AppId, Platform)` key exactly once; this function remains public
/// as the uninterned ground truth the interning tests compare against.
#[must_use]
pub fn synthesize_trace(app: AppId, platform: Platform) -> AppTrace {
    let mut spec = base_spec(app);
    if platform == Platform::Intel4A100 {
        multi_gpu_md_overrides(app, &mut spec);
    }
    let scale = platform.bw_scale();
    if (scale - 1.0).abs() > 1e-12 {
        if let Some(init) = &mut spec.init {
            init.burst_bw_gbs *= scale;
        }
        for (segment, _) in &mut spec.segments {
            match segment {
                Segment::Bursts(b) => {
                    b.burst_bw_gbs *= scale;
                    b.quiet_bw_gbs *= scale;
                }
                Segment::Fluctuation(f) => {
                    f.high_bw_gbs *= scale;
                    f.low_bw_gbs *= scale;
                }
                Segment::Steady(bw, _) => *bw *= scale,
            }
        }
    }
    spec.util = spec.util.across_gpus(platform.gpu_count());
    spec.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::app_trace;

    #[test]
    fn catalog_is_complete_and_names_unique() {
        let all = AppId::all();
        assert_eq!(all.len(), 24);
        let mut names: Vec<&str> = all.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
        for &app in all {
            assert_eq!(AppId::from_name(app.name()), Some(app));
        }
        assert_eq!(AppId::from_name("nonexistent"), None);
    }

    #[test]
    fn every_app_builds_nonempty_traces() {
        for &app in AppId::all() {
            let trace = app_trace(app, Platform::IntelA100);
            assert!(!trace.is_empty(), "{app}");
            assert!(trace.total_work_s() > 10.0, "{app}");
            assert_eq!(trace.name, app.name());
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for &app in AppId::all() {
            assert_eq!(
                app_trace(app, Platform::IntelA100),
                app_trace(app, Platform::IntelA100),
                "{app}"
            );
        }
    }

    #[test]
    fn platform_scaling_raises_demand_and_gpus() {
        let single = app_trace(AppId::Gromacs, Platform::IntelA100);
        let multi = app_trace(AppId::Gromacs, Platform::Intel4A100);
        assert!(multi.peak_mem_demand_gbs() > single.peak_mem_demand_gbs() * 1.5);
        let multi_gpu_util = &multi.phases[0].demand.gpu_util;
        assert_eq!(multi_gpu_util.len(), 4);
    }

    #[test]
    fn srad_has_high_frequency_segments() {
        let trace = app_trace(AppId::Srad, Platform::IntelA100);
        // Count sub-0.25 s phases carrying heavy demand: the hf segments.
        let hf_phases = trace
            .phases
            .iter()
            .filter(|p| p.work_s < 0.55 && p.demand.mem_gbs > 50.0)
            .count();
        assert!(hf_phases > 15, "hf_phases = {hf_phases}");
    }

    #[test]
    fn fdtd2d_init_is_dense() {
        let trace = app_trace(AppId::Fdtd2d, Platform::IntelA100);
        let init_bursts = trace
            .phases
            .iter()
            .filter(|p| {
                p.kind == magus_hetsim::workload::PhaseKind::Init && p.demand.mem_gbs > 50.0
            })
            .count();
        assert!(init_bursts >= 5, "init_bursts = {init_bursts}");
    }

    #[test]
    fn unet_total_work_matches_fig2_runtime() {
        let trace = app_trace(AppId::Unet, Platform::IntelA100);
        assert!((trace.total_work_s() - 47.0).abs() < 0.5);
    }

    #[test]
    fn compute_heavy_apps_have_low_mean_demand() {
        let bfs = app_trace(AppId::Bfs, Platform::IntelA100);
        let pf = app_trace(AppId::ParticlefilterNaive, Platform::IntelA100);
        assert!(bfs.mean_mem_demand_gbs() < pf.mean_mem_demand_gbs() * 0.6);
    }
}
