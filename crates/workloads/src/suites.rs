//! The application sets each figure/table evaluates (paper §5–6).

use crate::catalog::AppId;

/// Fig 4a — Intel+A100: the 14 Altis L1+L2 benchmarks (plus srad and
/// particlefilter_naive, which the §6.1 text discusses) and the
/// single-GPU ECP proxies.
#[must_use]
pub fn fig4a_suite() -> Vec<AppId> {
    use AppId::*;
    vec![
        Bfs,
        Pathfinder,
        Cfd,
        CfdDouble,
        Fdtd2d,
        Gemm,
        Kmeans,
        Lavamd,
        Nw,
        ParticlefilterFloat,
        ParticlefilterNaive,
        Raytracing,
        Sort,
        Srad,
        Where,
        MiniGan,
        Cradl,
        Laghos,
        Sw4lite,
    ]
}

/// Fig 4b — Intel+Max1550: the 11 Altis-SYCL benchmarks that compile for
/// Ponte Vecchio (the paper excludes the rest of the suite).
#[must_use]
pub fn fig4b_suite() -> Vec<AppId> {
    use AppId::*;
    vec![
        Bfs, Pathfinder, Cfd, CfdDouble, Fdtd2d, Gemm, Kmeans, Lavamd, Nw, Sort, Srad,
    ]
}

/// Fig 4c — Intel+4A100: AI-enabled applications and MLPerf benchmarks
/// that effectively utilise multiple GPUs.
#[must_use]
pub fn fig4c_suite() -> Vec<AppId> {
    use AppId::*;
    vec![Gromacs, Lammps, Unet, Resnet50, BertLarge]
}

/// Table 1 — the 21 applications with reported Jaccard scores.
#[must_use]
pub fn table1_suite() -> Vec<AppId> {
    use AppId::*;
    vec![
        Bfs,
        Gemm,
        Pathfinder,
        Sort,
        Cfd,
        CfdDouble,
        Fdtd2d,
        Kmeans,
        Lavamd,
        Nw,
        ParticlefilterFloat,
        Raytracing,
        Where,
        Laghos,
        MiniGan,
        Sw4lite,
        Unet,
        Resnet50,
        BertLarge,
        Lammps,
        Gromacs,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(fig4b_suite().len(), 11, "11 Altis-SYCL apps");
        assert_eq!(fig4c_suite().len(), 5, "5 multi-GPU apps");
        assert_eq!(table1_suite().len(), 21, "21 Jaccard rows");
        assert!(fig4a_suite().len() >= 16);
    }

    #[test]
    fn suites_have_no_duplicates() {
        for suite in [fig4a_suite(), fig4b_suite(), fig4c_suite(), table1_suite()] {
            let mut s = suite.clone();
            s.sort();
            s.dedup();
            assert_eq!(s.len(), suite.len());
        }
    }

    #[test]
    fn fig4b_is_subset_of_altis() {
        use AppId::*;
        let altis = [
            Bfs,
            Pathfinder,
            Cfd,
            CfdDouble,
            Fdtd2d,
            Gemm,
            Kmeans,
            Lavamd,
            Nw,
            ParticlefilterFloat,
            ParticlefilterNaive,
            Raytracing,
            Sort,
            Srad,
            Where,
        ];
        for app in fig4b_suite() {
            assert!(altis.contains(&app), "{app}");
        }
    }

    #[test]
    fn fig4c_apps_are_multi_gpu_capable() {
        // MD codes and ML training only — no Altis kernels.
        for app in fig4c_suite() {
            assert!(
                matches!(
                    app,
                    AppId::Gromacs
                        | AppId::Lammps
                        | AppId::Unet
                        | AppId::Resnet50
                        | AppId::BertLarge
                ),
                "{app}"
            );
        }
    }
}
