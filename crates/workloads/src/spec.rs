//! Parameterised workload generators.
//!
//! All generators are deterministic given a seed: jitter comes from a
//! `SmallRng` seeded from the spec, so every experiment run sees an
//! identical trace (the paper averages five repetitions on real hardware;
//! we get exact repeatability instead and vary seeds explicitly where
//! variance matters).

use magus_hetsim::workload::PhaseKind;
use magus_hetsim::{AppTrace, Demand, GpuUtilVec, Phase};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Initialisation segment: a few brief memory bursts (input loading,
/// allocation, JIT warm-up) before steady-state iteration begins.
///
/// These bursts land inside MAGUS's 2 s warm-up window, which is exactly
/// why fdtd2d / cfd_double / gemm / particlefilter_float score low Jaccard
/// burst-overlap in Table 1 despite small performance loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InitSpec {
    /// Total initialisation length (s).
    pub duration_s: f64,
    /// Number of brief bursts within it.
    pub bursts: u32,
    /// Burst throughput demand (GB/s).
    pub burst_bw_gbs: f64,
    /// Memory-boundedness of the init bursts.
    pub mem_frac: f64,
}

/// A periodic burst train: the steady-state iteration structure of most
/// GPU applications (host↔device staging then kernel execution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstTrainSpec {
    /// Iteration period (s).
    pub period_s: f64,
    /// Fraction of each period spent in the memory burst (0..1).
    pub duty: f64,
    /// Burst throughput demand (GB/s).
    pub burst_bw_gbs: f64,
    /// Quiet-interval throughput demand (GB/s).
    pub quiet_bw_gbs: f64,
    /// Memory-boundedness during bursts.
    pub burst_mem_frac: f64,
    /// Memory-boundedness during quiet intervals.
    pub quiet_mem_frac: f64,
    /// Relative jitter on period and amplitude (0 = clockwork).
    pub jitter: f64,
    /// Ramp-up time at the start of each burst (s). Real transfers build
    /// up over pipeline-fill/batching intervals rather than stepping; the
    /// rising edge is precisely the signal MAGUS's first-derivative
    /// prediction keys on to raise the uncore *before* the plateau (§3.1).
    pub ramp_s: f64,
}

/// A high-frequency fluctuation segment: throughput flips between high and
/// low at sub-second scale — the §6.2 SRAD behaviour that defeats
/// reactive-only governors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluctuationSpec {
    /// Mean dwell time at each level (s); actual dwells jitter around it.
    pub dwell_s: f64,
    /// High-level throughput (GB/s).
    pub high_bw_gbs: f64,
    /// Low-level throughput (GB/s).
    pub low_bw_gbs: f64,
    /// Memory-boundedness at the high level.
    pub mem_frac: f64,
    /// Relative dwell jitter.
    pub jitter: f64,
    /// Ramp-up time entering each high dwell (s). Slow alternation ramps
    /// (predictable); fast fluctuation steps (unpredictable — the case the
    /// high-frequency lock exists for).
    pub ramp_s: f64,
}

/// Utilisation profile shared by all segments of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilSpec {
    /// CPU utilisation during memory bursts.
    pub cpu_burst: f64,
    /// CPU utilisation during quiet/compute intervals.
    pub cpu_quiet: f64,
    /// Throttle-sensitive host fraction of the critical path (see
    /// [`Demand::cpu_frac`](magus_hetsim::Demand)); 0 for GPU-dominant
    /// applications, positive for hybrid codes whose host loops matter.
    pub cpu_frac: f64,
    /// Per-GPU utilisation during bursts.
    pub gpu_burst: Vec<f64>,
    /// Per-GPU utilisation during quiet/compute intervals.
    pub gpu_quiet: Vec<f64>,
}

impl UtilSpec {
    /// Single-GPU utilisation profile.
    #[must_use]
    pub fn single(cpu_burst: f64, cpu_quiet: f64, gpu_burst: f64, gpu_quiet: f64) -> Self {
        Self {
            cpu_burst,
            cpu_quiet,
            cpu_frac: 0.0,
            gpu_burst: vec![gpu_burst],
            gpu_quiet: vec![gpu_quiet],
        }
    }

    /// Builder: mark a throttle-sensitive host fraction (hybrid codes).
    #[must_use]
    pub fn with_cpu_frac(mut self, cpu_frac: f64) -> Self {
        self.cpu_frac = cpu_frac.clamp(0.0, 1.0);
        self
    }

    /// Replicate the single-GPU profile across `n` devices.
    #[must_use]
    pub fn across_gpus(&self, n: usize) -> Self {
        let spread = |v: &[f64]| -> Vec<f64> {
            let base = v.first().copied().unwrap_or(0.0);
            vec![base; n]
        };
        Self {
            cpu_burst: self.cpu_burst,
            cpu_quiet: self.cpu_quiet,
            cpu_frac: self.cpu_frac,
            gpu_burst: spread(&self.gpu_burst),
            gpu_quiet: spread(&self.gpu_quiet),
        }
    }
}

/// Complete workload specification: optional init, then a sequence of
/// steady segments until `total_s` of work content is emitted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Application name.
    pub name: String,
    /// Total work content (s), including init.
    pub total_s: f64,
    /// Optional initialisation segment.
    pub init: Option<InitSpec>,
    /// Steady-state segments, cycled in order until `total_s` is filled.
    /// Each entry is (segment, segment length in seconds).
    pub segments: Vec<(Segment, f64)>,
    /// Utilisation profile.
    pub util: UtilSpec,
    /// Jitter seed.
    pub seed: u64,
}

/// One steady-state segment flavour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Segment {
    /// Periodic burst train.
    Bursts(BurstTrainSpec),
    /// High-frequency fluctuation.
    Fluctuation(FluctuationSpec),
    /// Constant demand (GB/s, mem_frac).
    Steady(f64, f64),
}

impl WorkloadSpec {
    /// Generate the phase trace.
    #[must_use]
    pub fn build(&self) -> AppTrace {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut phases = Vec::new();
        let mut emitted_s = 0.0;

        if let Some(init) = &self.init {
            emit_init(&mut phases, init, &self.util, &mut rng);
            emitted_s += init.duration_s;
        }

        if self.segments.is_empty() || self.total_s <= emitted_s {
            return AppTrace::new(self.name.clone(), phases);
        }

        'outer: loop {
            for (segment, seg_len) in &self.segments {
                let remaining = self.total_s - emitted_s;
                if remaining <= 1e-9 {
                    break 'outer;
                }
                let len = seg_len.min(remaining);
                match segment {
                    Segment::Bursts(spec) => {
                        emit_bursts(&mut phases, spec, &self.util, len, &mut rng);
                    }
                    Segment::Fluctuation(spec) => {
                        emit_fluctuation(&mut phases, spec, &self.util, len, &mut rng);
                    }
                    Segment::Steady(bw, frac) => {
                        phases.push(Phase::new(
                            PhaseKind::Compute,
                            len,
                            demand(*bw, *frac, &self.util, false),
                        ));
                    }
                }
                emitted_s += len;
            }
        }

        AppTrace::new(self.name.clone(), phases)
    }
}

fn demand(bw_gbs: f64, mem_frac: f64, util: &UtilSpec, burst: bool) -> Demand {
    Demand {
        mem_gbs: bw_gbs,
        mem_frac,
        cpu_frac: util.cpu_frac,
        cpu_util: if burst {
            util.cpu_burst
        } else {
            util.cpu_quiet
        },
        gpu_util: if burst {
            GpuUtilVec::from_slice(&util.gpu_burst)
        } else {
            GpuUtilVec::from_slice(&util.gpu_quiet)
        },
    }
    .clamped()
}

fn jittered(rng: &mut SmallRng, value: f64, rel: f64) -> f64 {
    if rel <= 0.0 {
        return value;
    }
    value * (1.0 + rng.gen_range(-rel..rel))
}

fn emit_init(phases: &mut Vec<Phase>, init: &InitSpec, util: &UtilSpec, rng: &mut SmallRng) {
    let bursts = init.bursts.max(1);
    let slot = init.duration_s / f64::from(bursts);
    for _ in 0..bursts {
        // Each slot: a brief burst followed by setup compute.
        let burst_len = (slot * rng.gen_range(0.25..0.45)).max(0.01);
        phases.push(Phase::new(
            PhaseKind::Init,
            burst_len,
            demand(init.burst_bw_gbs, init.mem_frac, util, true),
        ));
        phases.push(Phase::new(
            PhaseKind::Init,
            (slot - burst_len).max(0.01),
            demand(init.burst_bw_gbs * 0.05, 0.1, util, false),
        ));
    }
}

/// Emit a rising edge from `from_bw` to `to_bw` over `ramp_s` seconds as a
/// staircase of short phases. Memory-boundedness scales with the demand so
/// the early ramp is cheap to serve even at a low uncore frequency.
fn emit_ramp(
    phases: &mut Vec<Phase>,
    from_bw: f64,
    to_bw: f64,
    mem_frac: f64,
    ramp_s: f64,
    util: &UtilSpec,
) {
    const STEPS: u32 = 4;
    if ramp_s <= 0.0 || to_bw <= from_bw {
        return;
    }
    let step_len = ramp_s / f64::from(STEPS);
    for i in 1..=STEPS {
        let frac = f64::from(i) / f64::from(STEPS + 1);
        let bw = from_bw + (to_bw - from_bw) * frac;
        phases.push(Phase::new(
            PhaseKind::Burst,
            step_len,
            demand(bw, mem_frac * frac, util, true),
        ));
    }
}

fn emit_bursts(
    phases: &mut Vec<Phase>,
    spec: &BurstTrainSpec,
    util: &UtilSpec,
    len_s: f64,
    rng: &mut SmallRng,
) {
    // Each period leads with the quiet (compute/setup) interval and ends
    // with the staging burst — iterations do work before they exchange
    // data, so the first burst of a run lands after the governor's warm-up
    // rather than inside it.
    let mut t = 0.0;
    while t < len_s {
        let period = jittered(rng, spec.period_s, spec.jitter).max(0.02);
        let burst_len = (period * spec.duty).max(0.01);
        let quiet_len = (period - burst_len).max(0.01);
        let burst_bw = jittered(rng, spec.burst_bw_gbs, spec.jitter).max(0.0);
        phases.push(Phase::new(
            PhaseKind::Compute,
            quiet_len.min(len_s - t),
            demand(spec.quiet_bw_gbs, spec.quiet_mem_frac, util, false),
        ));
        t += quiet_len;
        if t >= len_s {
            break;
        }
        let ramp = spec.ramp_s.min(burst_len * 0.6);
        // Ramps are only emitted for bursts that fit inside the segment;
        // a truncated trailing burst keeps its full work in the plateau.
        let ramp_emitted = t + burst_len <= len_s && ramp > 0.0;
        if ramp_emitted {
            emit_ramp(
                phases,
                spec.quiet_bw_gbs,
                burst_bw,
                spec.burst_mem_frac,
                ramp,
                util,
            );
        }
        let plateau = if ramp_emitted {
            burst_len - ramp
        } else {
            burst_len
        };
        phases.push(Phase::new(
            PhaseKind::Burst,
            plateau.min(len_s - t).max(0.01),
            demand(burst_bw, spec.burst_mem_frac, util, true),
        ));
        t += burst_len;
    }
}

fn emit_fluctuation(
    phases: &mut Vec<Phase>,
    spec: &FluctuationSpec,
    util: &UtilSpec,
    len_s: f64,
    rng: &mut SmallRng,
) {
    let mut t = 0.0;
    let mut high = true;
    while t < len_s {
        let dwell = jittered(rng, spec.dwell_s, spec.jitter).max(0.02);
        let (bw, frac, kind) = if high {
            (spec.high_bw_gbs, spec.mem_frac, PhaseKind::Burst)
        } else {
            (spec.low_bw_gbs, 0.15, PhaseKind::Compute)
        };
        let ramp = if high {
            spec.ramp_s.min(dwell * 0.5)
        } else {
            0.0
        };
        let ramp_emitted = high && t + dwell <= len_s && ramp > 0.0;
        if ramp_emitted {
            emit_ramp(phases, spec.low_bw_gbs, bw, frac, ramp, util);
        }
        let body = if ramp_emitted { dwell - ramp } else { dwell };
        phases.push(Phase::new(
            kind,
            body.min(len_s - t).max(0.01),
            demand(bw, frac, util, high),
        ));
        t += dwell;
        high = !high;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "synthetic".into(),
            total_s: 20.0,
            init: Some(InitSpec {
                duration_s: 1.0,
                bursts: 3,
                burst_bw_gbs: 60.0,
                mem_frac: 0.6,
            }),
            segments: vec![(
                Segment::Bursts(BurstTrainSpec {
                    period_s: 2.0,
                    duty: 0.3,
                    burst_bw_gbs: 80.0,
                    quiet_bw_gbs: 4.0,
                    burst_mem_frac: 0.55,
                    quiet_mem_frac: 0.1,
                    jitter: 0.05,
                    ramp_s: 0.4,
                }),
                10.0,
            )],
            util: UtilSpec::single(0.4, 0.15, 0.6, 0.95),
            seed: 7,
        }
    }

    #[test]
    fn total_work_matches_spec() {
        let trace = base_spec().build();
        assert!(
            (trace.total_work_s() - 20.0).abs() < 0.1,
            "{}",
            trace.total_work_s()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(base_spec().build(), base_spec().build());
        let mut other = base_spec();
        other.seed = 8;
        assert_ne!(other.build(), base_spec().build());
    }

    #[test]
    fn init_phases_lead_the_trace() {
        let trace = base_spec().build();
        assert_eq!(trace.phases[0].kind, PhaseKind::Init);
        let init_work: f64 = trace
            .phases
            .iter()
            .filter(|p| p.kind == PhaseKind::Init)
            .map(|p| p.work_s)
            .sum();
        assert!((init_work - 1.0).abs() < 0.05);
    }

    #[test]
    fn bursts_alternate_with_compute() {
        let trace = base_spec().build();
        let kinds: Vec<_> = trace
            .phases
            .iter()
            .skip_while(|p| p.kind == PhaseKind::Init)
            .map(|p| p.kind)
            .collect();
        assert!(kinds.contains(&PhaseKind::Burst));
        assert!(kinds.contains(&PhaseKind::Compute));
        // Bursts carry the high demand.
        let burst_demand = trace
            .phases
            .iter()
            .filter(|p| p.kind == PhaseKind::Burst)
            .map(|p| p.demand.mem_gbs)
            .fold(0.0, f64::max);
        assert!(burst_demand > 70.0);
    }

    #[test]
    fn fluctuation_segment_flips_levels() {
        let spec = WorkloadSpec {
            name: "hf".into(),
            total_s: 5.0,
            init: None,
            segments: vec![(
                Segment::Fluctuation(FluctuationSpec {
                    dwell_s: 0.2,
                    high_bw_gbs: 70.0,
                    low_bw_gbs: 3.0,
                    mem_frac: 0.6,
                    jitter: 0.1,
                    ramp_s: 0.0,
                }),
                5.0,
            )],
            util: UtilSpec::single(0.3, 0.1, 0.5, 0.9),
            seed: 1,
        };
        let trace = spec.build();
        // ~25 dwells of each level in 5 s at 0.2 s mean dwell.
        assert!(trace.len() > 15, "{}", trace.len());
        let highs = trace
            .phases
            .iter()
            .filter(|p| p.demand.mem_gbs > 50.0)
            .count();
        let lows = trace
            .phases
            .iter()
            .filter(|p| p.demand.mem_gbs < 10.0)
            .count();
        assert!(highs >= 8 && lows >= 8, "highs {highs} lows {lows}");
    }

    #[test]
    fn steady_segment_is_single_phase() {
        let spec = WorkloadSpec {
            name: "steady".into(),
            total_s: 3.0,
            init: None,
            segments: vec![(Segment::Steady(10.0, 0.3), 3.0)],
            util: UtilSpec::single(0.2, 0.2, 0.8, 0.8),
            seed: 1,
        };
        let trace = spec.build();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.phases[0].demand.mem_gbs, 10.0);
    }

    #[test]
    fn multi_gpu_util_replicates() {
        let util = UtilSpec::single(0.4, 0.1, 0.7, 0.9).across_gpus(4);
        assert_eq!(util.gpu_burst.len(), 4);
        assert_eq!(util.gpu_quiet, vec![0.9; 4]);
    }

    #[test]
    fn segments_cycle_until_total() {
        let mut spec = base_spec();
        spec.total_s = 40.0; // one 10 s segment must cycle 4x (minus init)
        let trace = spec.build();
        assert!((trace.total_work_s() - 40.0).abs() < 0.1);
    }

    #[test]
    fn empty_segments_yields_init_only() {
        let mut spec = base_spec();
        spec.segments.clear();
        let trace = spec.build();
        assert!(trace.phases.iter().all(|p| p.kind == PhaseKind::Init));
    }
}
