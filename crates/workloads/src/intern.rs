//! Process-wide trace interning: synthesize each catalog workload once.
//!
//! Sweeps and fleet simulations run the same `(AppId, Platform)` workload
//! thousands of times; re-synthesizing the phase trace per trial is pure
//! waste (the generators are deterministic, so every rebuild is
//! bit-identical). [`app_trace`] memoizes synthesis in a lazily-populated
//! global table keyed by `(AppId, Platform)` and hands out shared
//! `Arc<AppTrace>` handles, so a 1024-node fleet running the 24-app catalog
//! holds 24 trace allocations, not 1024.
//!
//! The table only ever grows to the catalog size (24 apps × 3 platforms)
//! and traces are immutable once built, so entries are never evicted.
//! Sweeps that need to *mutate* a trace use [`app_trace_owned`] (or build
//! from [`crate::base_spec`] directly) as the escape hatch.
//!
//! Pointer equality of the handles is load-bearing beyond memory savings:
//! the fleet's trajectory deduplication keys its equivalence classes on
//! the trace *allocation identity* (`Arc::as_ptr`), so two nodes share a
//! class — and one representative steps for both — only when their traces
//! came from this table (or the same cloned `Arc`). Owned copies from
//! [`app_trace_owned`] are distinct allocations by design and therefore
//! never dedup against interned siblings, even when bit-identical.
//!
//! [`synthesis_count`] exposes how many traces have actually been built —
//! the test-only observability hook behind the "exactly one synthesis per
//! key" CI gate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use magus_hetsim::AppTrace;

use crate::catalog::{synthesize_trace, AppId, Platform};

type InternTable = Mutex<HashMap<(AppId, Platform), Arc<AppTrace>>>;

static TABLE: OnceLock<InternTable> = OnceLock::new();

/// Number of traces synthesized from scratch by [`app_trace`] since
/// process start. Incremented under the table lock, so it counts unique
/// key insertions exactly — a warm table never bumps it.
static SYNTHESES: AtomicU64 = AtomicU64::new(0);

/// Instantiate `app` for `platform`, served from the process-wide intern
/// table: the first call for a key synthesizes the trace (see
/// [`synthesize_trace`]); every later call — from any thread — returns a
/// pointer-equal clone of the same `Arc`.
#[must_use]
pub fn app_trace(app: AppId, platform: Platform) -> Arc<AppTrace> {
    let table = TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = table.lock().expect("trace intern table poisoned");
    // Synthesis happens under the lock: concurrent first calls for one key
    // agree on a single allocation instead of racing to build duplicates.
    Arc::clone(map.entry((app, platform)).or_insert_with(|| {
        SYNTHESES.fetch_add(1, Ordering::Relaxed);
        Arc::new(synthesize_trace(app, platform))
    }))
}

/// Bulk-instantiate one trace handle per requested `(app, platform)` key,
/// in order, under a **single** table-lock acquisition. This is the
/// fleet-construction fast path: building a 100k-node fleet through
/// [`app_trace`] would take 100k lock round-trips to hand out at most
/// catalog-size distinct traces; this takes one. Synthesis still happens
/// at most once per distinct key, and the returned `Arc`s are
/// pointer-equal to what [`app_trace`] serves.
#[must_use]
pub fn app_traces(keys: &[(AppId, Platform)]) -> Vec<Arc<AppTrace>> {
    let table = TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = table.lock().expect("trace intern table poisoned");
    keys.iter()
        .map(|&(app, platform)| {
            Arc::clone(map.entry((app, platform)).or_insert_with(|| {
                SYNTHESES.fetch_add(1, Ordering::Relaxed);
                Arc::new(synthesize_trace(app, platform))
            }))
        })
        .collect()
}

/// Owned copy of an interned trace — the escape hatch for sweeps that
/// mutate the trace (e.g. [`AppTrace::extend_with`]) and must not touch
/// the shared allocation.
#[must_use]
pub fn app_trace_owned(app: AppId, platform: Platform) -> AppTrace {
    (*app_trace(app, platform)).clone()
}

/// Total from-scratch trace syntheses performed by [`app_trace`] in this
/// process. Bounded by the catalog size (apps × platforms): a warm
/// full-suite run adds zero.
#[must_use]
pub fn synthesis_count() -> u64 {
    SYNTHESES.load(Ordering::Relaxed)
}

/// Number of distinct `(AppId, Platform)` keys currently interned.
#[must_use]
pub fn interned_trace_count() -> usize {
    TABLE
        .get()
        .map_or(0, |t| t.lock().expect("trace intern table poisoned").len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_calls_are_pointer_equal() {
        let a = app_trace(AppId::Bfs, Platform::IntelA100);
        let b = app_trace(AppId::Bfs, Platform::IntelA100);
        assert!(Arc::ptr_eq(&a, &b));
        let c = app_trace(AppId::Bfs, Platform::IntelMax1550);
        assert!(!Arc::ptr_eq(&a, &c), "distinct keys get distinct traces");
    }

    #[test]
    fn owned_copy_detaches_from_the_table() {
        let shared = app_trace(AppId::Srad, Platform::IntelA100);
        let mut owned = app_trace_owned(AppId::Srad, Platform::IntelA100);
        assert_eq!(*shared, owned);
        owned.phases.truncate(1);
        assert_ne!(*shared, owned, "mutating the copy must not alias");
        assert_eq!(*app_trace(AppId::Srad, Platform::IntelA100), *shared);
    }

    #[test]
    fn bulk_interning_matches_single_key_interning() {
        let keys = [
            (AppId::Bfs, Platform::IntelA100),
            (AppId::Srad, Platform::IntelA100),
            (AppId::Bfs, Platform::IntelA100), // duplicate key, same Arc
        ];
        let bulk = app_traces(&keys);
        assert_eq!(bulk.len(), 3);
        assert!(Arc::ptr_eq(&bulk[0], &bulk[2]));
        for (trace, &(app, platform)) in bulk.iter().zip(&keys) {
            assert!(Arc::ptr_eq(trace, &app_trace(app, platform)));
        }
        // A warm bulk call synthesizes nothing.
        let count = synthesis_count();
        let again = app_traces(&keys);
        assert_eq!(synthesis_count(), count);
        assert!(Arc::ptr_eq(&again[1], &bulk[1]));
    }

    #[test]
    fn synthesis_counter_tracks_interned_keys() {
        // Warm a key twice: the counter and table size must agree, and the
        // second call must not synthesize again.
        app_trace(AppId::Gemm, Platform::IntelA100);
        let count = synthesis_count();
        let interned = interned_trace_count() as u64;
        app_trace(AppId::Gemm, Platform::IntelA100);
        assert_eq!(synthesis_count(), count, "warm hit must not synthesize");
        assert_eq!(interned_trace_count() as u64, interned);
        assert_eq!(count, interned, "one synthesis per interned key");
    }
}
