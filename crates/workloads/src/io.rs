//! Workload persistence: save and replay traces and specifications.
//!
//! Two interchange forms, both JSON via serde:
//!
//! * A [`WorkloadSpec`] — the compact parametric description; building it
//!   regenerates the exact trace (generators are seed-deterministic).
//! * A raw [`AppTrace`] — the fully expanded phase list, for traces that
//!   came from measurements rather than generators (e.g. phases extracted
//!   from a PCM capture of a real application).
//!
//! Loaded traces are validated: negative work, NaN demand, or empty traces
//! are rejected with a description instead of propagating into the
//! simulator.

use std::fs;
use std::path::Path;

use magus_hetsim::AppTrace;

use crate::generator::TrafficSpec;
use crate::spec::WorkloadSpec;

/// Errors loading workload files.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON parse failure.
    Parse(serde_json::Error),
    /// Structurally valid JSON describing an invalid workload.
    Invalid(String),
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "workload I/O failed: {e}"),
            LoadError::Parse(e) => write!(f, "workload JSON invalid: {e}"),
            LoadError::Invalid(msg) => write!(f, "workload rejected: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<serde_json::Error> for LoadError {
    fn from(e: serde_json::Error) -> Self {
        LoadError::Parse(e)
    }
}

/// Validate an expanded trace.
pub fn validate_trace(trace: &AppTrace) -> Result<(), LoadError> {
    if trace.is_empty() {
        return Err(LoadError::Invalid("trace has no phases".into()));
    }
    if trace.name.trim().is_empty() {
        return Err(LoadError::Invalid("trace has no name".into()));
    }
    for (i, phase) in trace.phases.iter().enumerate() {
        let d = &phase.demand;
        let finite = phase.work_s.is_finite()
            && d.mem_gbs.is_finite()
            && d.mem_frac.is_finite()
            && d.cpu_frac.is_finite()
            && d.cpu_util.is_finite()
            && d.gpu_util.iter().all(|u| u.is_finite());
        if !finite {
            return Err(LoadError::Invalid(format!("phase {i}: non-finite field")));
        }
        if phase.work_s < 0.0 || d.mem_gbs < 0.0 {
            return Err(LoadError::Invalid(format!("phase {i}: negative value")));
        }
        if !(0.0..=1.0).contains(&d.mem_frac)
            || !(0.0..=1.0).contains(&d.cpu_frac)
            || !(0.0..=1.0).contains(&d.cpu_util)
            || d.gpu_util.iter().any(|u| !(0.0..=1.0).contains(u))
        {
            return Err(LoadError::Invalid(format!(
                "phase {i}: fraction outside [0, 1]"
            )));
        }
    }
    if trace.total_work_s() <= 0.0 {
        return Err(LoadError::Invalid("trace has zero work content".into()));
    }
    Ok(())
}

/// Save an expanded trace as JSON.
pub fn save_trace(trace: &AppTrace, path: &Path) -> Result<(), LoadError> {
    validate_trace(trace)?;
    fs::write(path, serde_json::to_string_pretty(trace)?)?;
    Ok(())
}

/// Load and validate an expanded trace from JSON.
pub fn load_trace(path: &Path) -> Result<AppTrace, LoadError> {
    let trace: AppTrace = serde_json::from_str(&fs::read_to_string(path)?)?;
    validate_trace(&trace)?;
    Ok(trace)
}

/// Save a parametric specification as JSON.
pub fn save_spec(spec: &WorkloadSpec, path: &Path) -> Result<(), LoadError> {
    fs::write(path, serde_json::to_string_pretty(spec)?)?;
    Ok(())
}

/// Load a parametric specification and build (and validate) its trace.
pub fn load_spec(path: &Path) -> Result<(WorkloadSpec, AppTrace), LoadError> {
    let spec: WorkloadSpec = serde_json::from_str(&fs::read_to_string(path)?)?;
    let trace = spec.build();
    validate_trace(&trace)?;
    Ok((spec, trace))
}

/// Save a validated traffic specification as JSON (the `--traffic` file
/// format of `magus fleet` and `magus ctl submit`).
pub fn save_traffic_spec(spec: &TrafficSpec, path: &Path) -> Result<(), LoadError> {
    spec.validate()
        .map_err(|e| LoadError::Invalid(e.to_string()))?;
    fs::write(path, serde_json::to_string_pretty(spec)?)?;
    Ok(())
}

/// Load and re-validate a traffic specification from JSON. Fields absent
/// from the file take their documented defaults (the spec is
/// `#[serde(default)]`), and builder invariants are re-checked so a
/// hand-written file cannot smuggle in a malformed spec.
pub fn load_traffic_spec(path: &Path) -> Result<TrafficSpec, LoadError> {
    let spec: TrafficSpec = serde_json::from_str(&fs::read_to_string(path)?)?;
    spec.validate()
        .map_err(|e| LoadError::Invalid(e.to_string()))?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{app_trace, base_spec, AppId, Platform};
    use magus_hetsim::workload::PhaseKind;
    use magus_hetsim::{Demand, Phase};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("magus-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn trace_round_trips_through_json() {
        let trace = app_trace(AppId::Bfs, Platform::IntelA100);
        let path = tmp("trace.json");
        save_trace(&trace, &path).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(*trace, loaded);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn spec_round_trips_and_rebuilds_identically() {
        let spec = base_spec(AppId::Srad);
        let path = tmp("spec.json");
        save_spec(&spec, &path).unwrap();
        let (loaded_spec, trace) = load_spec(&path).unwrap();
        assert_eq!(spec, loaded_spec);
        assert_eq!(trace, spec.build());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn invalid_traces_rejected() {
        let empty = AppTrace::new("x", vec![]);
        assert!(matches!(validate_trace(&empty), Err(LoadError::Invalid(_))));

        let mut bad = AppTrace::new(
            "bad",
            vec![Phase::new(
                PhaseKind::Compute,
                1.0,
                Demand::new(5.0, 0.2, 0.2, 0.5),
            )],
        );
        bad.phases[0].demand.mem_gbs = f64::NAN;
        assert!(matches!(validate_trace(&bad), Err(LoadError::Invalid(_))));

        let mut frac = AppTrace::new(
            "frac",
            vec![Phase::new(
                PhaseKind::Compute,
                1.0,
                Demand::new(5.0, 0.2, 0.2, 0.5),
            )],
        );
        frac.phases[0].demand.mem_frac = 1.5;
        assert!(matches!(validate_trace(&frac), Err(LoadError::Invalid(_))));
    }

    #[test]
    fn traffic_spec_round_trips_and_rejects_invalid() {
        let spec = TrafficSpec::builder().seed(11).tenants(3).build().unwrap();
        let path = tmp("traffic.json");
        save_traffic_spec(&spec, &path).unwrap();
        assert_eq!(load_traffic_spec(&path).unwrap(), spec);

        // A hand-written malformed spec is rejected on load.
        std::fs::write(&path, r#"{"tenants":0}"#).unwrap();
        assert!(matches!(
            load_traffic_spec(&path),
            Err(LoadError::Invalid(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_trace(Path::new("/definitely/not/here.json")),
            Err(LoadError::Io(_))
        ));
    }

    #[test]
    fn garbage_json_is_parse_error() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(load_trace(&path), Err(LoadError::Parse(_))));
        std::fs::remove_file(path).ok();
    }
}
