//! Uncore frequency domain: MSR-bounded target, finite slew, power model.
//!
//! On Intel parts the uncore clock floats between the min/max ratios in
//! `UNCORE_RATIO_LIMIT` (`0x620`); the stock policy keeps it pinned at the
//! max limit unless package power nears TDP (§2). Runtimes like MAGUS steer
//! the domain by *moving the max limit*. We reproduce that control path: the
//! domain's target is `min(msr_max_limit, tdp_cap)` and the physical clock
//! slews towards the target at a finite rate, so rapid flip-flopping has a
//! real cost — the phenomenon MAGUS's high-frequency detector exists to
//! avoid (§3.2).

use crate::config::UncoreConfig;
use serde::{Deserialize, Serialize};

/// State of one socket's uncore domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UncoreDomain {
    cfg: UncoreConfig,
    /// Physical clock right now (GHz).
    freq_ghz: f64,
    /// Max limit requested through MSR 0x620 (GHz).
    msr_max_ghz: f64,
    /// Min limit requested through MSR 0x620 (GHz).
    msr_min_ghz: f64,
    /// Additional cap imposed by the TDP-coupled stock governor (GHz).
    tdp_cap_ghz: f64,
    /// Count of target changes (for diagnostics / thrash metrics).
    transitions: u64,
    last_target: f64,
}

impl UncoreDomain {
    /// New domain running at its maximum frequency (the stock idle-to-busy
    /// default the paper observes in Fig 1c).
    #[must_use]
    pub fn new(cfg: UncoreConfig) -> Self {
        let max = cfg.freq_max_ghz;
        let min = cfg.freq_min_ghz;
        Self {
            cfg,
            freq_ghz: max,
            msr_max_ghz: max,
            msr_min_ghz: min,
            tdp_cap_ghz: max,
            transitions: 0,
            last_target: max,
        }
    }

    /// Apply MSR 0x620 limits (GHz). Values are clamped to the hardware
    /// range and `min ≤ max` is enforced the way hardware does (max wins).
    pub fn set_msr_limits(&mut self, min_ghz: f64, max_ghz: f64) {
        let lo = self.cfg.freq_min_ghz;
        let hi = self.cfg.freq_max_ghz;
        self.msr_max_ghz = max_ghz.clamp(lo, hi);
        self.msr_min_ghz = min_ghz.clamp(lo, self.msr_max_ghz);
    }

    /// Current MSR limits (min, max) in GHz.
    #[must_use]
    pub fn msr_limits(&self) -> (f64, f64) {
        (self.msr_min_ghz, self.msr_max_ghz)
    }

    /// Set the TDP-coupled cap (GHz); `freq_max_ghz` disables it.
    pub fn set_tdp_cap(&mut self, cap_ghz: f64) {
        self.tdp_cap_ghz = cap_ghz.clamp(self.cfg.freq_min_ghz, self.cfg.freq_max_ghz);
    }

    /// The frequency the hardware is currently steering towards.
    #[must_use]
    pub fn target_ghz(&self) -> f64 {
        self.msr_max_ghz.min(self.tdp_cap_ghz).max(self.msr_min_ghz)
    }

    /// Advance one tick: slew the physical clock towards the target.
    pub fn step(&mut self, dt_s: f64) {
        let target = self.target_ghz();
        if (target - self.last_target).abs() > 1e-9 {
            self.transitions += 1;
            self.last_target = target;
        }
        let max_delta = self.cfg.slew_ghz_per_s * dt_s;
        let delta = (target - self.freq_ghz).clamp(-max_delta, max_delta);
        self.freq_ghz += delta;
    }

    /// Physical uncore clock right now (GHz).
    #[must_use]
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Current TDP-coupled cap (GHz) — feedback state for the frozen fast
    /// path's fixed-point snapshot.
    pub(crate) fn tdp_cap_ghz(&self) -> f64 {
        self.tdp_cap_ghz
    }

    /// Last observed target (GHz) — feedback state for the frozen fast
    /// path's fixed-point snapshot (gates the transition counter).
    pub(crate) fn last_target_ghz(&self) -> f64 {
        self.last_target
    }

    /// Normalised position of the clock within the hardware range (0..1).
    #[must_use]
    pub fn norm_freq(&self) -> f64 {
        let span = self.cfg.freq_max_ghz - self.cfg.freq_min_ghz;
        if span <= 0.0 {
            return 1.0;
        }
        ((self.freq_ghz - self.cfg.freq_min_ghz) / span).clamp(0.0, 1.0)
    }

    /// Uncore power (W) for this socket.
    ///
    /// `P = P_min + span · norm^exp · (s + (1-s)·activity)` where `activity`
    /// is the memory subsystem's utilisation of its current bandwidth cap.
    /// The `s = dyn_static_frac` share is clock-tree power burned at a given
    /// frequency regardless of traffic — which is exactly why a pinned-max
    /// uncore wastes power on GPU-dominant workloads (Fig 2).
    #[must_use]
    pub fn power_w(&self, activity: f64) -> f64 {
        let act = activity.clamp(0.0, 1.0);
        let dynamic = self.cfg.power_span_w
            * self.norm_freq().powf(self.cfg.power_exp)
            * (self.cfg.dyn_static_frac + (1.0 - self.cfg.dyn_static_frac) * act);
        self.cfg.power_min_w + dynamic
    }

    /// Total target transitions since construction.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The configuration this domain was built with.
    #[must_use]
    pub fn config(&self) -> &UncoreConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;

    fn dom() -> UncoreDomain {
        UncoreDomain::new(NodeConfig::intel_a100().uncore)
    }

    #[test]
    fn starts_at_max() {
        let d = dom();
        assert!((d.freq_ghz() - 2.2).abs() < 1e-12);
        assert!((d.norm_freq() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slews_toward_lowered_limit() {
        let mut d = dom();
        d.set_msr_limits(0.8, 0.8);
        d.step(0.01);
        // One 10 ms tick at 28 GHz/s moves at most 0.28 GHz.
        assert!(d.freq_ghz() > 1.9 && d.freq_ghz() < 2.2);
        for _ in 0..100 {
            d.step(0.01);
        }
        assert!((d.freq_ghz() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn limits_clamp_to_hardware_range() {
        let mut d = dom();
        d.set_msr_limits(0.1, 9.9);
        let (lo, hi) = d.msr_limits();
        assert!((lo - 0.8).abs() < 1e-12);
        assert!((hi - 2.2).abs() < 1e-12);
    }

    #[test]
    fn min_limit_cannot_exceed_max_limit() {
        let mut d = dom();
        d.set_msr_limits(2.0, 1.5);
        let (lo, hi) = d.msr_limits();
        assert!(lo <= hi);
        assert!((hi - 1.5).abs() < 1e-12);
    }

    #[test]
    fn tdp_cap_bounds_target() {
        let mut d = dom();
        d.set_tdp_cap(1.2);
        assert!((d.target_ghz() - 1.2).abs() < 1e-12);
        d.set_msr_limits(0.8, 1.0);
        assert!((d.target_ghz() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_monotone_in_frequency_and_activity() {
        let mut hi = dom();
        let mut lo = dom();
        lo.set_msr_limits(0.8, 0.8);
        for _ in 0..200 {
            hi.step(0.01);
            lo.step(0.01);
        }
        assert!(hi.power_w(0.5) > lo.power_w(0.5));
        assert!(hi.power_w(0.9) > hi.power_w(0.1));
        assert!(lo.power_w(0.0) >= lo.config().power_min_w);
    }

    #[test]
    fn transition_counter_counts_target_changes() {
        let mut d = dom();
        d.step(0.01);
        assert_eq!(d.transitions(), 0);
        d.set_msr_limits(0.8, 1.0);
        d.step(0.01);
        d.step(0.01);
        assert_eq!(d.transitions(), 1);
        d.set_msr_limits(0.8, 2.2);
        d.step(0.01);
        assert_eq!(d.transitions(), 2);
    }

    #[test]
    fn uncore_delta_matches_fig2_scale() {
        // The Fig 2 calibration target: moving one socket's uncore from max
        // to min under moderate activity should shed roughly 40 W (≈82 W
        // across two sockets).
        let mut hi = dom();
        let mut lo = dom();
        lo.set_msr_limits(0.8, 0.8);
        for _ in 0..300 {
            hi.step(0.01);
            lo.step(0.01);
        }
        let delta = hi.power_w(0.5) - lo.power_w(0.5);
        assert!(delta > 33.0 && delta < 50.0, "delta = {delta}");
    }
}
