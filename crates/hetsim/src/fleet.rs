//! Batched multi-node fleet simulation over a shared clock.
//!
//! The paper's target is cluster-wide power waste: MAGUS is meant to run on
//! every node of a GPU-dominant fleet, and the interesting quantities
//! (aggregate uncore energy, the distribution of per-node waste, fleet
//! makespan) only exist across many nodes. [`FleetSim`] steps N independent
//! nodes in lockstep over one shared clock:
//!
//! * Per-node *feedback* state lives in structure-of-arrays form — parallel
//!   vectors for the macro-stepping [`FastForward`] carry-over, the next
//!   decision deadline, and the active flag — so the per-round control scan
//!   touches a few dense arrays instead of hopping through N node structs.
//! * Each round fires the decisions that are due, picks the earliest next
//!   event across the fleet (a decision deadline or the budget), and
//!   macro-steps every active node to that shared horizon with
//!   [`Simulation::advance_until`]. Splitting a node's timeline at foreign
//!   nodes' event times is bit-identical to stepping it alone: the frozen
//!   span state persists in its `FastForward`, so each node produces exactly
//!   the trajectory a single-node trial of the same workload would.
//! * Decision logic stays outside this crate: the caller supplies a
//!   `decide(node_idx, &mut Simulation) -> Decision` callback (the
//!   experiments layer adapts its `RuntimeDriver`s to this), mirroring the
//!   single-node harness contract — first decision immediately, then
//!   `now + latency + rest` scheduling, `rest == u64::MAX` meaning never
//!   again.
//!
//! Traces are shared `Arc`s (see `magus_workloads::intern`), so a
//! 1024-node fleet running the catalog holds one trace allocation per
//! distinct workload, not per node.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::fault::{FaultPlan, FleetFaults};
use crate::node::FastForward;
use crate::sim::{RunSummary, Simulation};
use crate::workload::AppTrace;
use crate::{Node, NodeConfig};

/// One runtime decision's scheduling outcome, as reported by the caller's
/// decide callback (the fleet equivalent of `RuntimeDriver::on_decision` +
/// `rest_interval_us`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Time the decision itself consumed (µs); added to the deadline.
    pub latency_us: u64,
    /// Rest until the next decision (µs); `u64::MAX` = never decide again.
    pub rest_us: u64,
}

impl Decision {
    /// Compute the next decision deadline from `now`, saturating so a
    /// `u64::MAX` rest (one-shot drivers) never wraps.
    #[must_use]
    fn next_due(self, now_us: u64) -> u64 {
        now_us
            .saturating_add(self.latency_us)
            .saturating_add(self.rest_us)
    }
}

/// Summary statistics over one per-node quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (lower of the two central values for even counts).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Distribution {
    /// Summarize `values` (empty input yields all zeros).
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                mean: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| sorted[((sorted.len() as f64 * q).ceil() as usize).max(1) - 1];
        Self {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: rank(0.50),
            p95: rank(0.95),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Fleet-level result: per-node run summaries plus the aggregates the
/// paper's cluster argument is about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Per-node summaries, in node-index order.
    pub nodes: Vec<RunSummary>,
    /// Nodes whose application completed within the budget.
    pub completed: usize,
    /// Σ per-node CPU-side energy (core + DRAM), J.
    pub total_cpu_j: f64,
    /// Σ per-node uncore energy, J.
    pub total_uncore_j: f64,
    /// Σ per-node total energy (all domains), J.
    pub total_j: f64,
    /// Distribution of per-node mean uncore power (uncore_j / elapsed_s, W)
    /// — the quantity MAGUS exists to minimize.
    pub uncore_power_w: Distribution,
    /// Wall-clock time (s) until the last node finished (or the budget).
    pub makespan_s: f64,
    /// Total runtime decisions fired across the fleet.
    pub decisions: u64,
    /// Total simulator ticks advanced across all nodes (throughput unit for
    /// node-steps/sec benchmarks).
    pub node_steps: u64,
    /// Lockstep rounds executed (one shared horizon per round).
    #[serde(default)]
    pub lockstep_rounds: u64,
    /// Node-rounds where an active node was already at or past the shared
    /// horizon and advanced zero ticks — it idled while the rest of the
    /// fleet caught up. High stall counts mean the shared clock is being
    /// dominated by a few busy nodes.
    #[serde(default)]
    pub lockstep_stalls: u64,
    /// Per-node application progress (s of trace work completed) at the end
    /// of the run, node-index order.
    #[serde(default)]
    pub node_progress_s: Vec<f64>,
    /// Nodes retired by an injected crash fault (see
    /// [`FleetSim::apply_fault_plan`]); always 0 without a fault plan.
    #[serde(default)]
    pub crashed: usize,
}

/// N independent nodes advanced in lockstep over a shared clock.
#[derive(Debug)]
pub struct FleetSim {
    sims: Vec<Simulation>,
    // --- per-node feedback state, structure-of-arrays ---
    /// Macro-stepping carry-over (frozen-span state) per node.
    ff: Vec<FastForward>,
    /// Next decision deadline per node (µs); `u64::MAX` = no more decisions.
    next_due_us: Vec<u64>,
    /// Still stepping (not done, budget not exhausted).
    active: Vec<bool>,
    /// Retired by an injected crash fault.
    crashed: Vec<bool>,
    budget_us: u64,
    /// Fleet-level fault schedules (node stall/crash), armed by
    /// [`FleetSim::apply_fault_plan`]. `None` = clean run, zero cost.
    fleet_faults: Option<FleetFaults>,
}

impl FleetSim {
    /// Empty fleet with a per-node wall-clock budget (s).
    #[must_use]
    pub fn new(budget_s: f64) -> Self {
        Self {
            sims: Vec::new(),
            ff: Vec::new(),
            next_due_us: Vec::new(),
            active: Vec::new(),
            crashed: Vec::new(),
            budget_us: crate::secs_to_us(budget_s),
            fleet_faults: None,
        }
    }

    /// Add a node running `trace`; returns its index.
    pub fn add_node(&mut self, config: NodeConfig, trace: impl Into<Arc<AppTrace>>) -> usize {
        let mut sim = Simulation::new(Node::new(config));
        sim.load(trace);
        self.add_sim(sim)
    }

    /// Add a pre-built simulation (custom recorder, pre-programmed power
    /// limit, ...); returns its index.
    pub fn add_sim(&mut self, sim: Simulation) -> usize {
        debug_assert_eq!(
            sim.node().time_us(),
            0,
            "fleet nodes share one clock and must start at t=0"
        );
        self.sims.push(sim);
        self.ff.push(FastForward::new());
        self.next_due_us.push(0); // first decision immediately
        self.active.push(true);
        self.crashed.push(false);
        self.sims.len() - 1
    }

    /// Arm fault injection for the whole fleet: every node added so far gets
    /// the node-level portion of `plan` (sensor/actuator/meter faults, same
    /// seed on every node — deterministic), and the fleet loop gets the
    /// fleet-level schedules. Nodes are selected by 1-based index: with
    /// `crash_every = Some(k)`, nodes k, 2k, ... crash at `crash_at_us`;
    /// with `stall_every = Some(k)`, those nodes' decision deadlines slip by
    /// `stall_us` after every decision (a hung runtime daemon). An empty
    /// plan arms nothing.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for sim in &mut self.sims {
            sim.node_mut().set_fault_plan(*plan);
        }
        self.fleet_faults = (!plan.fleet.is_empty()).then_some(plan.fleet);
    }

    /// True when 1-based node index `idx + 1` is a multiple of `every`.
    fn scheduled(idx: usize, every: Option<u64>) -> bool {
        every.is_some_and(|k| (idx as u64 + 1).is_multiple_of(k))
    }

    /// Number of nodes in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// True when the fleet has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// A node's simulation (read-only).
    #[must_use]
    pub fn sim(&self, idx: usize) -> &Simulation {
        &self.sims[idx]
    }

    /// Run every node to completion (or its budget), firing `decide` per
    /// node exactly as the single-node trial loop would: immediately at
    /// start, then at each `now + latency + rest` deadline.
    ///
    /// Each node's trajectory is bit-identical to running it alone with the
    /// same decision schedule; the shared clock only changes where the
    /// macro-stepping spans are split, never what they compute.
    pub fn run(
        &mut self,
        decide: &mut dyn FnMut(usize, &mut Simulation) -> Decision,
    ) -> FleetSummary {
        let mut decisions = 0u64;
        let mut node_steps = 0u64;
        let mut lockstep_rounds = 0u64;
        let mut lockstep_stalls = 0u64;
        loop {
            // Retire nodes that finished or ran out of budget; fire the
            // decisions that are due. This mirrors the single-node loop
            // head: the budget/done check guards the decision.
            let mut fleet_horizon = u64::MAX;
            for i in 0..self.sims.len() {
                if !self.active[i] {
                    continue;
                }
                let now = self.sims[i].node().time_us();
                if let Some(ff) = self.fleet_faults {
                    if Self::scheduled(i, ff.crash_every) && now >= ff.crash_at_us {
                        // Injected node crash: retire it mid-run.
                        self.crashed[i] = true;
                        self.active[i] = false;
                        continue;
                    }
                }
                if self.sims[i].done() || now >= self.budget_us {
                    self.active[i] = false;
                    continue;
                }
                if now >= self.next_due_us[i] {
                    let d = decide(i, &mut self.sims[i]);
                    decisions += 1;
                    let mut due = d.next_due(self.sims[i].node().time_us());
                    if let Some(ff) = self.fleet_faults {
                        if Self::scheduled(i, ff.stall_every) {
                            // Injected stall: the runtime daemon hangs for
                            // stall_us after every decision it fires.
                            due = due.saturating_add(ff.stall_us);
                        }
                    }
                    self.next_due_us[i] = due;
                }
                // The node's own next event: its decision deadline or the
                // budget, but always at least one tick of progress (exactly
                // the single-node fast-path horizon rule).
                let target = self.next_due_us[i].min(self.budget_us).max(now + 1);
                fleet_horizon = fleet_horizon.min(target);
            }
            if fleet_horizon == u64::MAX {
                break; // no active nodes left
            }
            lockstep_rounds += 1;
            // Lockstep: advance every active node to the shared horizon.
            for i in 0..self.sims.len() {
                if !self.active[i] {
                    continue;
                }
                let before = self.sims[i].node().time_us();
                self.sims[i].advance_until(fleet_horizon, &mut self.ff[i]);
                let after = self.sims[i].node().time_us();
                if after == before {
                    // Already at/past the horizon: this node idled while the
                    // fleet caught up.
                    lockstep_stalls += 1;
                }
                let tick = self.sims[i].node().config().tick_us;
                node_steps += (after - before) / tick;
            }
        }
        self.summarize(decisions, node_steps, lockstep_rounds, lockstep_stalls)
    }

    /// Build the fleet summary from the current node states.
    fn summarize(
        &self,
        decisions: u64,
        node_steps: u64,
        lockstep_rounds: u64,
        lockstep_stalls: u64,
    ) -> FleetSummary {
        let nodes: Vec<RunSummary> = self.sims.iter().map(|s| s.summary(0)).collect();
        let mut total_cpu_j = 0.0;
        let mut total_uncore_j = 0.0;
        let mut total_j = 0.0;
        let mut makespan_s: f64 = 0.0;
        let mut uncore_w = Vec::with_capacity(nodes.len());
        for n in &nodes {
            total_cpu_j += n.energy.core_j + n.energy.dram_j;
            total_uncore_j += n.energy.uncore_j;
            total_j += n.energy.total_j();
            makespan_s = makespan_s.max(n.runtime_s);
            if n.energy.elapsed_s > 0.0 {
                uncore_w.push(n.energy.uncore_j / n.energy.elapsed_s);
            }
        }
        FleetSummary {
            completed: nodes.iter().filter(|n| n.completed).count(),
            total_cpu_j,
            total_uncore_j,
            total_j,
            uncore_power_w: Distribution::from_values(&uncore_w),
            makespan_s,
            decisions,
            node_steps,
            lockstep_rounds,
            lockstep_stalls,
            node_progress_s: self.sims.iter().map(Simulation::progress_s).collect(),
            crashed: self.crashed.iter().filter(|&&c| c).count(),
            nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::demand::Demand;
    use crate::workload::{Phase, PhaseKind};

    fn trace(work_s: f64, gbs: f64) -> AppTrace {
        AppTrace::new(
            "fleet-test",
            vec![Phase::new(
                PhaseKind::Compute,
                work_s,
                Demand::new(gbs, 0.2, 0.2, 0.8),
            )],
        )
    }

    /// No-op governor: one immediate decision, then never again.
    fn noop(_: usize, _: &mut Simulation) -> Decision {
        Decision {
            latency_us: 0,
            rest_us: u64::MAX,
        }
    }

    #[test]
    fn fleet_node_matches_isolated_run() {
        let shared: Arc<AppTrace> = Arc::new(trace(3.0, 5.0));
        let mut alone = Simulation::new(Node::new(NodeConfig::intel_a100()));
        alone.load(Arc::clone(&shared));
        let solo = alone.run_to_completion(60.0);

        let mut fleet = FleetSim::new(60.0);
        for _ in 0..4 {
            fleet.add_node(NodeConfig::intel_a100(), Arc::clone(&shared));
        }
        let summary = fleet.run(&mut noop);
        assert_eq!(summary.nodes.len(), 4);
        assert_eq!(summary.completed, 4);
        for n in &summary.nodes {
            // Same workload, same hardware, no runtime: bit-identical to
            // the single-node run (the shared clock must not perturb it).
            assert_eq!(n, &solo);
        }
        assert_eq!(summary.decisions, 4);
        assert!(summary.node_steps > 0);
    }

    #[test]
    fn heterogeneous_finish_times_retire_independently() {
        let mut fleet = FleetSim::new(60.0);
        fleet.add_node(NodeConfig::intel_a100(), trace(1.0, 5.0));
        fleet.add_node(NodeConfig::intel_a100(), trace(5.0, 5.0));
        let summary = fleet.run(&mut noop);
        assert_eq!(summary.completed, 2);
        assert!(summary.nodes[0].runtime_s < summary.nodes[1].runtime_s);
        assert!((summary.makespan_s - summary.nodes[1].runtime_s).abs() < 1e-12);
    }

    #[test]
    fn budget_truncates_fleet() {
        let mut fleet = FleetSim::new(2.0);
        fleet.add_node(NodeConfig::intel_a100(), trace(100.0, 5.0));
        let summary = fleet.run(&mut noop);
        assert_eq!(summary.completed, 0);
        assert!((summary.makespan_s - 2.0).abs() < 0.05);
    }

    #[test]
    fn periodic_decisions_fire_on_cadence() {
        let mut fleet = FleetSim::new(60.0);
        fleet.add_node(NodeConfig::intel_a100(), trace(4.0, 5.0));
        // 0.5 s cadence over a ~4 s run: first decision at t=0, then every
        // 500 ms → 8–9 invocations.
        let mut decide = |_: usize, _: &mut Simulation| Decision {
            latency_us: 0,
            rest_us: 500_000,
        };
        let summary = fleet.run(&mut decide);
        assert!(
            (7..=10).contains(&summary.decisions),
            "decisions = {}",
            summary.decisions
        );
    }

    #[test]
    fn aggregates_are_consistent() {
        let mut fleet = FleetSim::new(60.0);
        for _ in 0..3 {
            fleet.add_node(NodeConfig::intel_a100(), trace(2.0, 5.0));
        }
        let s = fleet.run(&mut noop);
        let sum: f64 = s.nodes.iter().map(|n| n.energy.total_j()).sum();
        assert!((s.total_j - sum).abs() < 1e-9);
        assert!(s.total_uncore_j > 0.0);
        assert!(s.total_cpu_j > 0.0);
        assert!(s.uncore_power_w.min <= s.uncore_power_w.p50);
        assert!(s.uncore_power_w.p50 <= s.uncore_power_w.p95);
        assert!(s.uncore_power_w.p95 <= s.uncore_power_w.max);
    }

    #[test]
    fn lockstep_rounds_and_stalls_are_counted() {
        // A coarse-tick node paired with a fine-tick, fast-deciding node:
        // the coarse node overshoots the shared horizon, so later horizons
        // driven by the fine node's deadlines land behind it and it idles
        // (stalls) while the fleet catches up.
        let mut coarse = NodeConfig::intel_a100();
        coarse.tick_us = 70_000;
        let mut fleet = FleetSim::new(2.0);
        fleet.add_node(coarse, trace(100.0, 5.0));
        fleet.add_node(NodeConfig::intel_a100(), trace(100.0, 5.0));
        let mut decide = |i: usize, _: &mut Simulation| Decision {
            latency_us: 0,
            rest_us: if i == 0 { 1_000_000 } else { 5_000 },
        };
        let s = fleet.run(&mut decide);
        assert!(s.lockstep_rounds > 0);
        assert!(s.lockstep_stalls > 0, "coarse node never stalled");
        assert_eq!(s.node_progress_s.len(), 2);
        assert!(s.node_progress_s.iter().all(|&p| p > 0.0));

        // A homogeneous fleet shares every clock edge and never stalls.
        let mut fleet = FleetSim::new(2.0);
        for _ in 0..3 {
            fleet.add_node(NodeConfig::intel_a100(), trace(100.0, 5.0));
        }
        let s = fleet.run(&mut noop);
        assert!(s.lockstep_rounds > 0);
        assert_eq!(s.lockstep_stalls, 0);
    }

    #[test]
    fn empty_fault_plan_leaves_fleet_bit_identical() {
        let shared: Arc<AppTrace> = Arc::new(trace(2.0, 5.0));
        let mut clean = FleetSim::new(60.0);
        clean.add_node(NodeConfig::intel_a100(), Arc::clone(&shared));
        let clean_summary = clean.run(&mut noop);

        let mut armed = FleetSim::new(60.0);
        armed.add_node(NodeConfig::intel_a100(), Arc::clone(&shared));
        armed.apply_fault_plan(&FaultPlan::default());
        let summary = armed.run(&mut noop);
        assert_eq!(summary, clean_summary);
        assert_eq!(summary.crashed, 0);
    }

    #[test]
    fn fleet_faults_crash_and_stall_scheduled_nodes() {
        let plan = FaultPlan::builder()
            .fleet_crash(4, 500_000) // every 4th node dies at t = 0.5 s
            .fleet_stall(3, 300_000) // every 3rd node's daemon hangs 0.3 s
            .build()
            .unwrap();
        let shared: Arc<AppTrace> = Arc::new(trace(3.0, 5.0));
        let mut fleet = FleetSim::new(60.0);
        for _ in 0..4 {
            fleet.add_node(NodeConfig::intel_a100(), Arc::clone(&shared));
        }
        fleet.apply_fault_plan(&plan);
        let mut decide = |_: usize, _: &mut Simulation| Decision {
            latency_us: 0,
            rest_us: 500_000,
        };
        let s = fleet.run(&mut decide);
        // Node 4 (index 3) crashed at 0.5 s; the other three finished.
        assert_eq!(s.crashed, 1);
        assert_eq!(s.completed, 3);
        assert!(!s.nodes[3].completed);
        assert!(s.nodes[3].runtime_s < s.nodes[0].runtime_s);
        assert!((s.nodes[3].runtime_s - 0.5).abs() < 0.1);
    }

    #[test]
    fn distribution_percentiles() {
        let vals: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = Distribution::from_values(&vals);
        assert!((d.mean - 50.5).abs() < 1e-9);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p95, 95.0);
        assert_eq!(d.max, 100.0);
        let empty = Distribution::from_values(&[]);
        assert_eq!(empty.max, 0.0);
    }
}
