//! Sharded, structure-of-arrays fleet simulation over lockstep shard clocks.
//!
//! The paper's target is cluster-wide power waste: MAGUS is meant to run on
//! every node of a GPU-dominant fleet, and the interesting quantities
//! (aggregate uncore energy, the distribution of per-node waste, fleet
//! makespan) only exist across many nodes. [`FleetSim`] steps N independent
//! nodes to completion; at the 100k-node scale the roadmap targets, the
//! kernel is organized around three ideas:
//!
//! * **SoA decision state.** All per-node feedback state the per-round
//!   control scan touches lives in flat lanes — `next_due_us`, `now_us`,
//!   `target_us` (`Vec<u64>`), a `status` byte lane, and the progress lane —
//!   so the fixed-point scans stream over dense arrays instead of hopping
//!   through N `Simulation` structs. The only per-node indirection left on
//!   the hot path is the macro-step itself ([`Simulation::advance_until`]),
//!   which is where the actual physics lives.
//! * **Batched fixed-point scans.** The per-round horizon reduction and the
//!   makespan scan run over the lanes with explicit AVX2 vectors on x86-64
//!   (`core::arch` behind `is_x86_feature_detected!`), falling back to the
//!   portable 8-wide `chunks_exact` accumulator loops everywhere else — and
//!   whenever `MAGUS_FLEET_SCALAR=1` forces the scalar path for differential
//!   testing. Both backends reduce min/max, which are associative, with the
//!   same lane grouping, so they are bit-identical by construction.
//!   Reductions that are *not* reorder-safe — the fleet's f64 energy sums —
//!   deliberately stay in node-index order: f64 addition is non-associative,
//!   and the summary fold order is part of the bit-identity contract (the
//!   pre-SoA reference fold order asserted by `tests/fleet.rs`).
//! * **Shard-local clocks.** Nodes are partitioned into contiguous index
//!   ranges, one per shard, executed on a work-stealing rayon pool. Fleet
//!   nodes never interact, so each shard advances its own lockstep clock and
//!   synchronizes with nothing: shard clocks only share *decision
//!   boundaries* (each round's horizon is the min over that shard's
//!   per-node decision deadlines). Splitting a node's timeline at foreign
//!   nodes' event times never changes what it computes — the frozen span
//!   state persists in its [`FastForward`] — so every node is bit-identical
//!   to a solo run regardless of shard count, on both stepping paths, with
//!   fault plans attached.
//! * **Trajectory deduplication.** A catalog fleet built round-robin
//!   contains thousands of *bit-identical* nodes: same config, same
//!   interned trace `Arc`, same governor. Identical deterministic nodes
//!   provably produce identical trajectories, so [`FleetBuilder::build`]
//!   groups `.node()` nodes into equivalence classes (keyed on the config
//!   rendering + the trace allocation's identity) and, when the decider
//!   factory declares itself index-invariant
//!   ([`RunOpts::with_decider_key`]), each shard steps **one
//!   representative per class** live while followers mirror its per-round
//!   clock delta instead of recomputing it. Every member's decider still
//!   fires every round (on state synced from the representative), and a
//!   follower is permanently evicted to live stepping the moment anything
//!   perturbs it — a divergent `Decision`, an extra MSR/PCM access (state
//!   epoch, ledger), or any feedback-snapshot mismatch — so the
//!   bit-identity contract holds with dedup on or off. Non-empty fault
//!   plans force singleton classes (stall/crash schedules select by global
//!   index, and fault RNG advances per node), as do `.sim()` nodes and
//!   undeclared decider factories. Catalog sweeps cost
//!   O(classes × rounds) instead of O(nodes × rounds) in stepping work.
//! * **Phase-shifted sharing.** Real fleets stagger copies of the same job
//!   in time, which makes exact-key dedup degenerate: nodes added with
//!   [`FleetBuilder::node_at`] carry a start offset that partitions exact
//!   classes. Opting in with [`FleetBuilder::share_offsets`] quotients the
//!   class key by the offset instead: every node's lanes stay in its own
//!   *local* clock (offsets are applied only where local deadlines meet the
//!   shard clock), so a phase-shifted follower mirrors its representative's
//!   local trajectory verbatim and the per-round verification — clocks,
//!   ledger, feedback snapshots, all in the local frame — is exactly the
//!   delta-translated comparison. Divergence still evicts to live stepping,
//!   and summaries stay bit-identical with sharing on or off.
//!
//! Construction goes through the validating [`FleetBuilder`]; execution is
//! a single [`FleetSim::run`] taking [`RunOpts`] (stepping mode + a
//! [`NodeDecider`] factory). Traces are shared `Arc`s (see
//! `magus_workloads::intern`), so a 100k-node fleet running the catalog
//! holds one trace allocation per distinct workload, not per node — and
//! pointer-equal trace handles are what make dedup class keys content keys.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::fault::{FaultCounters, FaultPlan, FaultPlanError, FleetFaults};
use crate::node::FastForward;
use crate::sim::{RunSummary, Simulation};
use crate::workload::AppTrace;
use crate::{Node, NodeConfig};

/// One runtime decision's scheduling outcome, as reported by a
/// [`NodeDecider`] (the fleet equivalent of `RuntimeDriver::on_decision` +
/// `rest_interval_us`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Time the decision itself consumed (µs); added to the deadline.
    pub latency_us: u64,
    /// Rest until the next decision (µs); `u64::MAX` = never decide again.
    pub rest_us: u64,
}

impl Decision {
    /// Compute the next decision deadline from `now`, saturating so a
    /// `u64::MAX` rest (one-shot drivers) never wraps.
    #[must_use]
    fn next_due(self, now_us: u64) -> u64 {
        now_us
            .saturating_add(self.latency_us)
            .saturating_add(self.rest_us)
    }
}

/// Per-node decision logic for a fleet run.
///
/// One decider is created per node (by the [`RunOpts`] factory) inside the
/// node's shard task, so implementations need no `Send` bound of their own:
/// they are created, used, and dropped on one thread. The contract mirrors
/// the single-node trial loop exactly — [`NodeDecider::attach`] before the
/// first tick, then [`NodeDecider::decide`] immediately at t=0 and again at
/// each `now + latency + rest` deadline.
pub trait NodeDecider {
    /// One-time hook before the node starts stepping (attach a driver,
    /// program a power cap, ...). Default: nothing.
    fn attach(&mut self, _sim: &mut Simulation) {}

    /// Fire one runtime decision and report its scheduling outcome.
    fn decide(&mut self, sim: &mut Simulation) -> Decision;
}

/// Which stepping path fleet nodes use (the fleet-level mirror of the
/// harness's `SimPath`). Both are bit-identical; `Fast` macro-steps frozen
/// inter-event spans, `Reference` steps tick by tick for differential
/// audits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StepMode {
    /// Per-tick reference stepping (`Simulation::step`).
    Reference,
    /// Event-horizon macro-stepping (`Simulation::advance_until`).
    #[default]
    Fast,
}

/// Factory producing one boxed [`NodeDecider`] per global node index.
pub type DeciderFactory = Arc<dyn Fn(usize) -> Box<dyn NodeDecider> + Send + Sync>;

/// Options for one [`FleetSim::run`]: the stepping mode and the per-node
/// decider factory. The factory is called with each node's *global* index
/// from inside that node's shard task.
#[derive(Clone)]
pub struct RunOpts {
    mode: StepMode,
    deciders: DeciderFactory,
    /// `Some` declares the factory behaviorally index-invariant (see
    /// [`RunOpts::with_decider_key`]) and opts the run into trajectory
    /// deduplication; `None` steps every node live.
    decider_key: Option<u64>,
}

impl RunOpts {
    /// Run options with a per-node decider factory (fast path by default).
    #[must_use]
    pub fn new(factory: impl Fn(usize) -> Box<dyn NodeDecider> + Send + Sync + 'static) -> Self {
        Self {
            mode: StepMode::default(),
            deciders: Arc::new(factory),
            decider_key: None,
        }
    }

    /// Run options adapting one stateless closure as every node's decider:
    /// `f(global_index, sim) -> Decision`.
    #[must_use]
    pub fn from_fn(f: impl Fn(usize, &mut Simulation) -> Decision + Send + Sync + 'static) -> Self {
        struct FnDecider {
            idx: usize,
            f: Arc<dyn Fn(usize, &mut Simulation) -> Decision + Send + Sync>,
        }
        impl NodeDecider for FnDecider {
            fn decide(&mut self, sim: &mut Simulation) -> Decision {
                (self.f)(self.idx, sim)
            }
        }
        let f: Arc<dyn Fn(usize, &mut Simulation) -> Decision + Send + Sync> = Arc::new(f);
        Self::new(move |idx| {
            Box::new(FnDecider {
                idx,
                f: Arc::clone(&f),
            })
        })
    }

    /// No-op governor: one immediate decision per node, then never again.
    /// Trivially index-invariant, so it carries a decider key and dedup
    /// engages wherever the builder produced shared classes.
    #[must_use]
    pub fn noop() -> Self {
        Self::from_fn(|_, _| Decision {
            latency_us: 0,
            rest_us: u64::MAX,
        })
        .with_decider_key(0)
    }

    /// Builder: select the stepping mode.
    #[must_use]
    pub fn with_mode(mut self, mode: StepMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: declare the decider factory **behaviorally
    /// index-invariant** — for any node index, the produced decider makes
    /// the same observations and actuations given a bit-identical
    /// simulation state — which is the run-time half of the
    /// trajectory-dedup opt-in (the build-time half is
    /// [`FleetBuilder::node`] class keys). `key` records the declared
    /// decider spec's content hash for provenance; its value never
    /// partitions classes within a run, because one factory serves the
    /// whole fleet. A wrong declaration does not break bit-identity — a
    /// diverging follower is detected (decision / epoch / ledger /
    /// feedback-snapshot comparison after every decision) and evicted to
    /// live stepping — it only costs the shared-stepping win. The one
    /// blind spot: divergence *only* in telemetry event payloads, with
    /// bit-identical simulation effects, is not detectable.
    #[must_use]
    pub fn with_decider_key(mut self, key: u64) -> Self {
        self.decider_key = Some(key);
        self
    }

    /// The stepping mode these options select.
    #[must_use]
    pub fn mode(&self) -> StepMode {
        self.mode
    }

    /// The declared decider-spec key, if the factory opted into dedup.
    #[must_use]
    pub fn decider_key(&self) -> Option<u64> {
        self.decider_key
    }
}

impl core::fmt::Debug for RunOpts {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RunOpts")
            .field("mode", &self.mode)
            .field("decider_key", &self.decider_key)
            .finish_non_exhaustive()
    }
}

/// Validation errors from [`FleetBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum FleetBuildError {
    /// The fleet has no nodes.
    EmptyFleet,
    /// The per-node budget is not a positive finite number of seconds.
    BadBudget(f64),
    /// The shard count is zero.
    ZeroShards,
    /// A pre-built simulation was added with its clock already advanced;
    /// fleet nodes must start at t=0.
    NodeClockNonzero {
        /// Node index within the builder.
        index: usize,
        /// The node's clock at build time (µs).
        time_us: u64,
    },
    /// The attached fault plan fails [`FaultPlan::validate`].
    InvalidFaultPlan(FaultPlanError),
    /// A node's start offset plus the per-node budget does not fit in the
    /// µs clock (`u64`), so its shard-clock targets would saturate into the
    /// retired-lane sentinel.
    StartOffsetOverflow {
        /// Node index within the builder.
        index: usize,
        /// The offending start offset (µs).
        offset_us: u64,
    },
}

impl core::fmt::Display for FleetBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::EmptyFleet => write!(f, "fleet has no nodes"),
            Self::BadBudget(b) => write!(f, "budget must be positive and finite, got {b}"),
            Self::ZeroShards => write!(f, "shard count must be at least 1"),
            Self::NodeClockNonzero { index, time_us } => write!(
                f,
                "node {index} starts at t={time_us}µs; fleet nodes must start at t=0"
            ),
            Self::InvalidFaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            Self::StartOffsetOverflow { index, offset_us } => write!(
                f,
                "node {index} start offset {offset_us}µs plus the budget overflows the µs clock"
            ),
        }
    }
}

impl std::error::Error for FleetBuildError {}

impl From<FaultPlanError> for FleetBuildError {
    fn from(e: FaultPlanError) -> Self {
        Self::InvalidFaultPlan(e)
    }
}

/// Validating constructor for [`FleetSim`] — the only way to build a
/// fleet. Collects nodes (from config + trace, or pre-built simulations),
/// the shard count, the per-node budget, and an optional fault plan, then
/// checks the lot in [`FleetBuilder::build`].
#[derive(Debug)]
pub struct FleetBuilder {
    budget_s: f64,
    shards: usize,
    sims: Vec<Simulation>,
    faults: Option<FaultPlan>,
    /// Trajectory-dedup master switch (default on); see
    /// [`FleetBuilder::dedup`].
    dedup: bool,
    /// Quotient the dedup class key by the start offset (default off); see
    /// [`FleetBuilder::share_offsets`].
    share_offsets: bool,
    /// Build-time *exact* equivalence class per node — the offset-quotient
    /// class further partitioned by start offset: `Some(id)` for `.node()`
    /// / `.node_at()` nodes, `None` for `.sim()` nodes, whose customization
    /// is opaque and forces a singleton.
    class_of: Vec<Option<u32>>,
    /// Build-time offset-*quotient* class per node (config rendering +
    /// trace identity, start offset ignored); selected by
    /// [`FleetBuilder::share_offsets`].
    quotient_of: Vec<Option<u32>>,
    /// Per-node start offset (µs) on the fleet clock; 0 for `node()` and
    /// `.sim()` nodes.
    offsets: Vec<u64>,
    /// Interning map from quotient class key to quotient id. The key's
    /// trace component is the `Arc` allocation address — stable for the
    /// builder's lifetime because each added simulation keeps its trace
    /// alive, and a *content* key whenever traces come from the workload
    /// intern table (one `Arc` per distinct workload).
    class_index: HashMap<(String, usize), u32>,
    /// Interning map from `(quotient id, start offset)` to exact class id.
    exact_index: HashMap<(u32, u64), u32>,
    /// Per-node job deadlines (traffic metadata; empty for non-traffic
    /// nodes). Summary-only: deadlines never influence stepping, so they
    /// cannot perturb dedup or bit-identity.
    deadlines: Vec<Vec<JobDeadline>>,
    /// Per-node tenant energy shares (traffic metadata; empty for
    /// non-traffic nodes).
    tenant_shares: Vec<Vec<TenantShare>>,
}

impl FleetBuilder {
    /// Start a fleet with a per-node wall-clock budget (s) and one shard.
    #[must_use]
    pub fn new(budget_s: f64) -> Self {
        Self {
            budget_s,
            shards: 1,
            sims: Vec::new(),
            faults: None,
            dedup: true,
            share_offsets: false,
            class_of: Vec::new(),
            quotient_of: Vec::new(),
            offsets: Vec::new(),
            class_index: HashMap::new(),
            exact_index: HashMap::new(),
            deadlines: Vec::new(),
            tenant_shares: Vec::new(),
        }
    }

    /// Partition the fleet into `shards` contiguous index ranges stepped in
    /// parallel (clamped to the node count at run time). Results are
    /// bit-identical for every shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Add a node running `trace` (an owned trace or a shared `Arc` from
    /// the workload intern table). Nodes added here are grouped into
    /// trajectory-dedup equivalence classes: two nodes share a class iff
    /// their configs render identically (derived `Debug` prints
    /// shortest-roundtrip floats, so this is exact) and their traces are
    /// the *same allocation* — interned traces share classes, owned traces
    /// never do. Equivalent to [`FleetBuilder::node_at`] with offset 0.
    #[must_use]
    pub fn node(self, config: NodeConfig, trace: impl Into<Arc<AppTrace>>) -> Self {
        self.node_at(config, trace, 0)
    }

    /// Add a node running `trace` whose work starts `start_offset_us`
    /// microseconds into the fleet run (a staggered copy of the same job).
    /// The offset shifts the node on the *fleet* clock only: its own
    /// trajectory — clock, decisions, telemetry, summary — is in local
    /// time and bit-identical to a solo run, while the fleet makespan
    /// counts `start offset + runtime`. Offsets partition exact dedup
    /// classes; [`FleetBuilder::share_offsets`] quotients them back out so
    /// phase-shifted copies share one representative trajectory.
    #[must_use]
    pub fn node_at(
        mut self,
        config: NodeConfig,
        trace: impl Into<Arc<AppTrace>>,
        start_offset_us: u64,
    ) -> Self {
        let trace = trace.into();
        let key = (format!("{config:?}"), Arc::as_ptr(&trace) as usize);
        let next = self.class_index.len() as u32;
        let quotient = match self.class_index.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => *e.insert(next),
        };
        let next = self.exact_index.len() as u32;
        let exact = match self.exact_index.entry((quotient, start_offset_us)) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => *e.insert(next),
        };
        self.quotient_of.push(Some(quotient));
        self.class_of.push(Some(exact));
        self.offsets.push(start_offset_us);
        self.deadlines.push(Vec::new());
        self.tenant_shares.push(Vec::new());
        let mut sim = Simulation::new(Node::new(config));
        sim.load(trace);
        self.sims.push(sim);
        self
    }

    /// Attach traffic metadata — job deadlines and per-tenant energy
    /// shares — to the most recently added node. The metadata is
    /// summary-only: it never influences stepping, so traffic nodes dedup
    /// and share offsets exactly like catalog nodes; it only feeds the
    /// `deadline_*` and `tenant_energy_j` fields of [`FleetSummary`].
    /// A call before any node was added is ignored.
    #[must_use]
    pub fn node_traffic(
        mut self,
        deadlines: Vec<JobDeadline>,
        tenant_shares: Vec<TenantShare>,
    ) -> Self {
        if let (Some(d), Some(t)) = (self.deadlines.last_mut(), self.tenant_shares.last_mut()) {
            *d = deadlines;
            *t = tenant_shares;
        }
        self
    }

    /// Add a pre-built simulation (custom recorder, pre-programmed power
    /// limit, ...). It must still be at t=0. The customization is opaque
    /// to the builder, so the node always gets a singleton dedup class
    /// (and a zero start offset).
    #[must_use]
    pub fn sim(mut self, sim: Simulation) -> Self {
        self.class_of.push(None);
        self.quotient_of.push(None);
        self.offsets.push(0);
        self.deadlines.push(Vec::new());
        self.tenant_shares.push(Vec::new());
        self.sims.push(sim);
        self
    }

    /// Master switch for trajectory deduplication (default **on**). With
    /// dedup off every node steps live even when the builder found shared
    /// classes and the decider factory declared a key — the knob exists
    /// for differential testing (dedup-on vs dedup-off bit-identity) and
    /// for benchmarking the raw kernel.
    #[must_use]
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Quotient the trajectory-dedup class key by the start offset
    /// (default **off**), so nodes added via [`FleetBuilder::node_at`]
    /// with the same config + interned trace but *different* offsets share
    /// one representative trajectory. This is the build-time half of the
    /// phase-shifted-sharing opt-in, mirroring how
    /// [`RunOpts::with_decider_key`] is the run-time half: both must be
    /// set for offset classes to engage. Results are bit-identical either
    /// way; off keeps PR 7 semantics (offsets partition classes).
    #[must_use]
    pub fn share_offsets(mut self, on: bool) -> Self {
        self.share_offsets = on;
        self
    }

    /// Arm fault injection for the whole fleet: every node gets the
    /// node-level portion of the plan (sensor/actuator/meter faults, same
    /// seed on every node — deterministic), and the fleet loop gets the
    /// fleet-level schedules. Nodes are selected by 1-based *global* index:
    /// with `crash_every = Some(k)`, nodes k, 2k, ... crash at
    /// `crash_at_us`; with `stall_every = Some(k)`, those nodes' decision
    /// deadlines slip by `stall_us` after every decision (a hung runtime
    /// daemon). An empty plan arms nothing. All schedules fire on each
    /// node's *local* clock: start offsets shift a node on the fleet
    /// clock, never its faults.
    #[must_use]
    pub fn fault_plan(mut self, plan: &FaultPlan) -> Self {
        self.faults = Some(*plan);
        self
    }

    /// Validate and build the fleet.
    ///
    /// # Errors
    ///
    /// Returns a [`FleetBuildError`] if the fleet is empty, the budget is
    /// not positive and finite, the shard count is zero, any node's clock
    /// is already advanced, any start offset plus the budget overflows the
    /// µs clock, or the fault plan fails validation.
    pub fn build(self) -> Result<FleetSim, FleetBuildError> {
        if !(self.budget_s.is_finite() && self.budget_s > 0.0) {
            return Err(FleetBuildError::BadBudget(self.budget_s));
        }
        if self.shards == 0 {
            return Err(FleetBuildError::ZeroShards);
        }
        if self.sims.is_empty() {
            return Err(FleetBuildError::EmptyFleet);
        }
        for (index, sim) in self.sims.iter().enumerate() {
            let time_us = sim.node().time_us();
            if time_us != 0 {
                return Err(FleetBuildError::NodeClockNonzero { index, time_us });
            }
        }
        let budget_us = crate::secs_to_us(self.budget_s);
        for (index, &offset_us) in self.offsets.iter().enumerate() {
            // Shard-clock targets are `local target + offset` with local
            // targets up to the budget; `u64::MAX` itself is the retired
            // sentinel, so the sum must stay strictly below it.
            match offset_us.checked_add(budget_us) {
                Some(end) if end < u64::MAX => {}
                _ => return Err(FleetBuildError::StartOffsetOverflow { index, offset_us }),
            }
        }
        let mut sims = self.sims;
        let mut fleet_faults = None;
        let mut faulted = false;
        if let Some(plan) = self.faults {
            plan.validate()?;
            if !plan.is_empty() {
                faulted = true;
                for sim in &mut sims {
                    sim.node_mut().set_fault_plan(plan);
                }
                fleet_faults = (!plan.fleet.is_empty()).then_some(plan.fleet);
            }
        }
        let n = sims.len();
        // Non-empty fault plans force singleton classes: crash/stall
        // schedules select nodes by 1-based *global* index, and the fault
        // RNG advances on each node's own access stream, so otherwise
        // identical nodes legitimately diverge. Masking here (rather than
        // per-node at run time) also guarantees a follower can never be
        // chained to a representative that crashes out from under it.
        let class_of = if self.dedup && !faulted {
            if self.share_offsets {
                self.quotient_of
            } else {
                self.class_of
            }
        } else {
            vec![None; n]
        };
        Ok(FleetSim {
            sims,
            class_of,
            start_offset_us: self.offsets,
            ff: (0..n).map(|_| FastForward::new()).collect(),
            next_due_us: vec![0; n], // first decision immediately
            now_us: vec![0; n],
            target_us: vec![0; n],
            status: vec![ACTIVE; n],
            budget_us,
            shards: self.shards,
            fleet_faults,
            shard_stats: Vec::new(),
            deadlines: self.deadlines,
            tenant_shares: self.tenant_shares,
        })
    }
}

/// Node status lane values.
const ACTIVE: u8 = 0;
/// Finished its trace or exhausted its budget.
const RETIRED: u8 = 1;
/// Retired by an injected crash fault.
const CRASHED: u8 = 2;

/// Per-shard lockstep counters from one [`FleetSim::run`]. Rounds and
/// stalls are properties of a shard's *clock*, not of any node's
/// trajectory, so they live here rather than in [`FleetSummary`] — the
/// summary must be bit-identical across shard counts, and these are not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// First global node index in this shard's contiguous range.
    pub base: usize,
    /// Nodes in this shard.
    pub nodes: usize,
    /// Lockstep rounds executed (one shared shard horizon per round).
    pub rounds: u64,
    /// Node-rounds where an active node was already at or past the shard
    /// horizon and advanced zero ticks — it idled while the rest of the
    /// shard caught up. High stall counts mean the shard clock is being
    /// dominated by a few busy nodes.
    pub stalls: u64,
    /// Runtime decisions fired by this shard's nodes.
    pub decisions: u64,
    /// Simulator ticks advanced by this shard's nodes.
    pub node_steps: u64,
    /// Live-stepping trajectories in this shard at round 0: distinct dedup
    /// classes plus singleton nodes. Equals `nodes` when dedup is off (or
    /// every class is a singleton); the gap to `nodes` is the shared work.
    #[serde(default)]
    pub classes: u64,
    /// Node-rounds stepped live (pass 3) by representatives and singleton
    /// nodes. With dedup off this counts every active node-round.
    #[serde(default)]
    pub rep_node_rounds: u64,
    /// Node-rounds where a follower mirrored its representative's clock
    /// delta instead of recomputing it — the stepping work dedup saved.
    #[serde(default)]
    pub replayed_node_rounds: u64,
    /// Followers permanently evicted to live stepping after a divergence
    /// (decision mismatch, extra MSR/PCM access, feedback-snapshot delta).
    #[serde(default)]
    pub class_evictions: u64,
    /// Shared classes in this shard whose members span more than one start
    /// offset — the classes only [`FleetBuilder::share_offsets`] can form.
    /// A subset of the shared portion of `classes`.
    #[serde(default)]
    pub offset_classes: u64,
    /// The subset of `replayed_node_rounds` where the follower's start
    /// offset differs from its representative's — the stepping work
    /// *phase-shifted* sharing saved on top of exact-key dedup.
    #[serde(default)]
    pub offset_replayed_rounds: u64,
    /// The subset of `class_evictions` where the evicted follower's start
    /// offset differs from its representative's.
    #[serde(default)]
    pub offset_evictions: u64,
}

/// One job deadline on a node's *ideal* (work) timeline, attached by the
/// traffic layer through [`FleetBuilder::node_traffic`]. The generator
/// plans jobs assuming demand is always met; the simulator stretches
/// phases under bandwidth contention, so a deadline check maps the job's
/// work coordinate back onto the stretched wall clock (see
/// [`deadline_missed`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobDeadline {
    /// Where the job ends on the ideal timeline: trace work (s) that must
    /// complete for the job to finish.
    pub work_end_s: f64,
    /// Wall-clock deadline (s, node-local clock).
    pub due_s: f64,
}

/// One tenant's share of a node, attached by the traffic layer through
/// [`FleetBuilder::node_traffic`]; the summary multiplies node energy by
/// these shares to attribute Joules per tenant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantShare {
    /// Tenant identifier (traffic-layer tenant id).
    pub tenant: u64,
    /// Fraction of the node's work content this tenant submitted, in
    /// `[0, 1]`; a node's shares sum to 1.
    pub share: f64,
}

/// Decide whether a job missed its deadline given the node's final state:
/// `runtime_s` wall-clock seconds elapsed to complete `progress_s` seconds
/// of trace work. A job whose work never completed is a miss; otherwise
/// its finish time is estimated by mapping the work coordinate through the
/// node's mean stretch factor (`runtime / progress`) — exact for uniform
/// contention, and deterministic either way since both inputs are part of
/// the fleet's bit-identity contract.
#[must_use]
pub fn deadline_missed(runtime_s: f64, progress_s: f64, deadline: &JobDeadline) -> bool {
    if progress_s + 1e-9 < deadline.work_end_s || progress_s <= 0.0 {
        return true;
    }
    let finish_s = runtime_s * (deadline.work_end_s / progress_s);
    finish_s > deadline.due_s + 1e-9
}

/// Fleet-level result: per-node run summaries plus the aggregates the
/// paper's cluster argument is about. Every field is bit-identical across
/// shard counts and stepping modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Per-node summaries, in node-index order.
    pub nodes: Vec<RunSummary>,
    /// Nodes whose application completed within the budget.
    pub completed: usize,
    /// Σ per-node CPU-side energy (core + DRAM), J.
    pub total_cpu_j: f64,
    /// Σ per-node uncore energy, J.
    pub total_uncore_j: f64,
    /// Σ per-node total energy (all domains), J.
    pub total_j: f64,
    /// Distribution of per-node mean uncore power (uncore_j / elapsed_s, W)
    /// — the quantity MAGUS exists to minimize.
    pub uncore_power_w: Distribution,
    /// Wall-clock time (s) on the fleet clock until the last node finished
    /// (or hit its budget): the max over nodes of start offset + runtime.
    pub makespan_s: f64,
    /// Total runtime decisions fired across the fleet.
    pub decisions: u64,
    /// Total simulator ticks advanced across all nodes (throughput unit for
    /// node-steps/sec benchmarks).
    pub node_steps: u64,
    /// Per-node application progress (s of trace work completed) at the end
    /// of the run, node-index order.
    #[serde(default)]
    pub node_progress_s: Vec<f64>,
    /// Nodes retired by an injected crash fault (see
    /// [`FleetBuilder::fault_plan`]); always 0 without a fault plan.
    #[serde(default)]
    pub crashed: usize,
    /// Per-node injected-fault tallies, node-index order (all zero — and
    /// omitted from serialized summaries — on clean runs).
    #[serde(default, skip_serializing_if = "fault_counters_all_zero")]
    pub node_fault_counters: Vec<FaultCounters>,
    /// Jobs carrying deadlines across the fleet (0 unless the traffic
    /// layer attached [`JobDeadline`]s via [`FleetBuilder::node_traffic`]).
    #[serde(default)]
    pub deadline_jobs: u64,
    /// Jobs that missed their deadline (see [`deadline_missed`]).
    #[serde(default)]
    pub deadline_misses: u64,
    /// Per-node missed-deadline counts, node-index order; empty (and
    /// omitted from serialized summaries) when no node carries deadlines.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub node_deadline_misses: Vec<u32>,
    /// Energy attributed per tenant, `(tenant id, J)` sorted by tenant:
    /// each node's total energy split by its [`TenantShare`]s, accumulated
    /// in node-index order (part of the bit-identity contract). Empty (and
    /// omitted) without traffic metadata.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tenant_energy_j: Vec<(u64, f64)>,
}

/// Serde helper: omit the per-node fault tallies when nothing was injected.
fn fault_counters_all_zero(counters: &[FaultCounters]) -> bool {
    counters.iter().all(|c| *c == FaultCounters::default())
}

/// Summary statistics over one per-node quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (lower of the two central values for even counts).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Distribution {
    /// Summarize `values` (empty input yields all zeros).
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                mean: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| sorted[((sorted.len() as f64 * q).ceil() as usize).max(1) - 1];
        Self {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: rank(0.50),
            p95: rank(0.95),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// True when 1-based global node index `idx + 1` is a multiple of `every`.
/// Fault schedules key on *global* indices so the set of crashed/stalled
/// nodes is independent of the shard partition.
fn fault_scheduled(idx: usize, every: Option<u64>) -> bool {
    every.is_some_and(|k| (idx as u64 + 1).is_multiple_of(k))
}

/// Which implementation the horizon/makespan lane scans use for one run.
/// Selected once per [`FleetSim::run`] by [`scan_backend`]; both backends
/// reduce min/max — associative, and over NaN-free non-negative `f64`
/// lanes — with the same 8-lane grouping, so they are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanBackend {
    /// Portable 8-lane `chunks_exact` accumulator loops (also the
    /// `MAGUS_FLEET_SCALAR=1` forced path for differential testing).
    Scalar,
    /// Explicit 256-bit AVX2 vectors, two registers per 8-lane step.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

/// Pick the scan backend for one run: scalar when `MAGUS_FLEET_SCALAR` is
/// set non-empty and not `0` (the differential-testing override), AVX2 on
/// x86-64 with runtime-detected support, scalar everywhere else. Read per
/// run — never cached — so in-process differential tests can flip the
/// environment between runs.
fn scan_backend() -> ScanBackend {
    if std::env::var("MAGUS_FLEET_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0") {
        return ScanBackend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::is_x86_feature_detected!("avx2") {
        return ScanBackend::Avx2;
    }
    ScanBackend::Scalar
}

/// Min over a `u64` lane (the per-round horizon reduction). Min is
/// associative, so lane order is free.
fn min_lane(values: &[u64], backend: ScanBackend) -> u64 {
    match backend {
        ScanBackend::Scalar => min_lane_scalar(values),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only ever constructed by `scan_backend` after
        // `is_x86_feature_detected!("avx2")` succeeded.
        ScanBackend::Avx2 => unsafe { min_lane_avx2(values) },
    }
}

/// Max over an `f64` lane (the makespan scan). Max is associative and
/// these lanes are NaN-free, so lane order is free — unlike the energy
/// sums, which stay in node order.
fn max_lane(values: &[f64], backend: ScanBackend) -> f64 {
    match backend {
        ScanBackend::Scalar => max_lane_scalar(values),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only ever constructed by `scan_backend` after
        // `is_x86_feature_detected!("avx2")` succeeded.
        ScanBackend::Avx2 => unsafe { max_lane_avx2(values) },
    }
}

/// 8-lane `chunks_exact` min over a `u64` lane: the portable fallback and
/// the `MAGUS_FLEET_SCALAR=1` reference the AVX2 path must match bit for
/// bit (lane j accumulates elements `i*8 + j`, then a sequential fold).
fn min_lane_scalar(values: &[u64]) -> u64 {
    let mut lanes = [u64::MAX; 8];
    let chunks = values.chunks_exact(8);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (lane, &v) in lanes.iter_mut().zip(chunk) {
            *lane = (*lane).min(v);
        }
    }
    tail.iter()
        .copied()
        .fold(lanes.into_iter().fold(u64::MAX, u64::min), u64::min)
}

/// 8-lane `chunks_exact` max over an `f64` lane (portable fallback; same
/// lane grouping as the AVX2 path).
fn max_lane_scalar(values: &[f64]) -> f64 {
    let mut lanes = [f64::NEG_INFINITY; 8];
    let chunks = values.chunks_exact(8);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (lane, &v) in lanes.iter_mut().zip(chunk) {
            *lane = lane.max(v);
        }
    }
    tail.iter().copied().fold(
        lanes.into_iter().fold(f64::NEG_INFINITY, f64::max),
        f64::max,
    )
}

/// AVX2 min over a `u64` lane: two 4-lane registers cover the same 8-lane
/// grouping as the scalar loop. AVX2 has no unsigned 64-bit min
/// (`_mm256_min_epu64` is AVX-512), so the compare goes through a
/// sign-bias XOR and a signed greater-than; the bytewise blend is
/// lane-safe because the compare mask is all-ones or all-zeros per 64-bit
/// lane. Min is exact, so the result equals [`min_lane_scalar`] bit for
/// bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn min_lane_avx2(values: &[u64]) -> u64 {
    use core::arch::x86_64::{
        _mm256_blendv_epi8, _mm256_cmpgt_epi64, _mm256_loadu_si256, _mm256_set1_epi64x,
        _mm256_storeu_si256, _mm256_xor_si256,
    };
    let bias = _mm256_set1_epi64x(i64::MIN);
    let mut acc0 = _mm256_set1_epi64x(-1); // u64::MAX in every lane
    let mut acc1 = _mm256_set1_epi64x(-1);
    let chunks = values.chunks_exact(8);
    let tail = chunks.remainder();
    for chunk in chunks {
        let v0 = _mm256_loadu_si256(chunk.as_ptr().cast());
        let v1 = _mm256_loadu_si256(chunk.as_ptr().add(4).cast());
        let gt0 = _mm256_cmpgt_epi64(_mm256_xor_si256(acc0, bias), _mm256_xor_si256(v0, bias));
        let gt1 = _mm256_cmpgt_epi64(_mm256_xor_si256(acc1, bias), _mm256_xor_si256(v1, bias));
        acc0 = _mm256_blendv_epi8(acc0, v0, gt0);
        acc1 = _mm256_blendv_epi8(acc1, v1, gt1);
    }
    let mut lanes = [u64::MAX; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc0);
    _mm256_storeu_si256(lanes.as_mut_ptr().add(4).cast(), acc1);
    tail.iter()
        .copied()
        .fold(lanes.into_iter().fold(u64::MAX, u64::min), u64::min)
}

/// AVX2 max over an `f64` lane, same 8-lane grouping as the scalar loop.
/// `_mm256_max_pd` differs from `f64::max` only on NaNs and ±0.0 ties;
/// these lanes are NaN-free and non-negative (runtimes and offsets), so
/// the result equals [`max_lane_scalar`] bit for bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn max_lane_avx2(values: &[f64]) -> f64 {
    use core::arch::x86_64::{_mm256_loadu_pd, _mm256_max_pd, _mm256_set1_pd, _mm256_storeu_pd};
    let mut acc0 = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut acc1 = _mm256_set1_pd(f64::NEG_INFINITY);
    let chunks = values.chunks_exact(8);
    let tail = chunks.remainder();
    for chunk in chunks {
        acc0 = _mm256_max_pd(acc0, _mm256_loadu_pd(chunk.as_ptr()));
        acc1 = _mm256_max_pd(acc1, _mm256_loadu_pd(chunk.as_ptr().add(4)));
    }
    let mut lanes = [f64::NEG_INFINITY; 8];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc0);
    _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc1);
    tail.iter().copied().fold(
        lanes.into_iter().fold(f64::NEG_INFINITY, f64::max),
        f64::max,
    )
}

/// A node's trajectory-dedup role within its shard for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Steps live every round: singleton class, `.sim()` node, dedup off,
    /// or a follower after eviction.
    Live,
    /// First member of a shared class in shard index order; steps live and
    /// its followers mirror its per-round clock delta.
    Rep,
    /// Mirrors the representative at `rep` (a shard-local index, always
    /// smaller than the follower's own) instead of stepping.
    Follower {
        /// Shard-local index of this node's representative.
        rep: usize,
    },
}

/// Assign shard-local dedup roles from the build-time class ids: the first
/// occurrence of each class in shard index order is the representative,
/// later occurrences are its followers. Returns the roles plus each node's
/// initial follower list (non-empty only for representatives; entries must
/// be re-checked against the current role at use time, since followers are
/// evicted dynamically).
fn dedup_roles(class_of: &[Option<u32>]) -> (Vec<Role>, Vec<Vec<usize>>) {
    let n = class_of.len();
    let mut roles = vec![Role::Live; n];
    let mut followers_of = vec![Vec::new(); n];
    let mut rep_of_class: HashMap<u32, usize> = HashMap::new();
    for (i, class) in class_of.iter().enumerate() {
        let Some(class) = class else { continue };
        match rep_of_class.entry(*class) {
            Entry::Occupied(e) => {
                let rep = *e.get();
                roles[i] = Role::Follower { rep };
                followers_of[rep].push(i);
            }
            Entry::Vacant(e) => {
                e.insert(i);
                roles[i] = Role::Rep;
            }
        }
    }
    (roles, followers_of)
}

/// Bitwise agreement check between a follower's and its representative's
/// post-decision states: clock, externally-visible-mutation epoch, MSR/PCM
/// access counts, application progress bits, then the full feedback
/// snapshot ([`Node::write_feedback_snapshot`] — the same bit-exact
/// signature `FastForward` keys frozen spans on). `sig_a`/`sig_b` are
/// caller-owned scratch to keep the hot loop allocation-free.
fn sims_agree(a: &Simulation, b: &Simulation, sig_a: &mut Vec<u64>, sig_b: &mut Vec<u64>) -> bool {
    let (na, nb) = (a.node(), b.node());
    if na.time_us() != nb.time_us()
        || na.state_epoch() != nb.state_epoch()
        || na.ledger().reads() != nb.ledger().reads()
        || na.ledger().writes() != nb.ledger().writes()
        || a.progress_s().to_bits() != b.progress_s().to_bits()
    {
        return false;
    }
    na.write_feedback_snapshot(sig_a);
    nb.write_feedback_snapshot(sig_b);
    sig_a == sig_b
}

/// One shard's mutable window over the fleet lanes: a contiguous range of
/// nodes starting at global index `base`, plus the shared run parameters.
struct ShardView<'a> {
    shard: usize,
    base: usize,
    budget_us: u64,
    /// Lane-scan implementation for this run (see [`scan_backend`]).
    backend: ScanBackend,
    fleet_faults: Option<FleetFaults>,
    class_of: &'a [Option<u32>],
    /// Per-node start offset (µs) on the fleet clock. Lanes stay in each
    /// node's *local* time; offsets apply only where local deadlines meet
    /// the shard clock (pass 2 adds them, pass 3 subtracts them).
    offsets: &'a [u64],
    sims: &'a mut [Simulation],
    ff: &'a mut [FastForward],
    next_due_us: &'a mut [u64],
    now_us: &'a mut [u64],
    target_us: &'a mut [u64],
    status: &'a mut [u8],
}

/// Step one shard's nodes to completion under its own lockstep clock.
/// Bit-identity argument: every per-node quantity depends only on that
/// node's own decision deadlines and the budget; the shard horizon merely
/// splits macro-spans, and [`Simulation::advance_until`] is split-invariant.
/// Trajectory dedup preserves it by induction: a follower's lanes always
/// equal its representative's, its own decider fires on state bit-equal to
/// its solo state at every decision round, and any detected divergence
/// evicts it to live stepping *from that same bit-exact state*. Start
/// offsets preserve it too: lanes are node-local, offsets only translate
/// where a local deadline lands on the shard clock, and a translated
/// horizon split is still just a split. With offset sharing the follower's
/// local lanes mirror the representative's local lanes, so the
/// local-frame [`sims_agree`] check *is* the delta-shifted verification.
fn run_shard(v: &mut ShardView<'_>, opts: &RunOpts) -> ShardStats {
    let n = v.sims.len();
    // Dedup engages only when the decider factory declared itself
    // index-invariant ([`RunOpts::with_decider_key`]); otherwise every
    // node steps live and the kernel is byte-for-byte the PR 6 one.
    let (mut roles, followers_of) = if opts.decider_key().is_some() {
        dedup_roles(v.class_of)
    } else {
        (vec![Role::Live; n], vec![Vec::new(); n])
    };
    debug_assert!(
        v.fleet_faults.is_none() || roles.iter().all(|r| *r == Role::Live),
        "fault plans must force singleton classes at build time"
    );
    let mut stats = ShardStats {
        shard: v.shard,
        base: v.base,
        nodes: n,
        classes: roles
            .iter()
            .filter(|r| !matches!(r, Role::Follower { .. }))
            .count() as u64,
        ..ShardStats::default()
    };
    // Classes that only offset-quotienting can form: a representative with
    // at least one follower at a different start offset.
    for (i, role) in roles.iter().enumerate() {
        if matches!(role, Role::Rep)
            && followers_of[i]
                .iter()
                .any(|&f| v.offsets[f] != v.offsets[i])
        {
            stats.offset_classes += 1;
        }
    }
    // Scratch for the divergence check and for followers evicted mid-pass
    // (they already decided inside their representative's branch this
    // round, so pass 1 must not touch them again until the next round).
    let (mut sig_r, mut sig_f) = (Vec::new(), Vec::new());
    let mut fresh_evictions: Vec<usize> = Vec::new();
    // Whether a representative has decided at least once: its round-0
    // followers decide on their *own* attached sims (catching attach-time
    // divergence); later rounds decide on state synced from the
    // representative's pre-decision snapshot.
    let mut decided = vec![false; n];
    // Deciders are created and attached inside the shard task, in global
    // node-index order, exactly as the solo harness attaches its driver
    // after fault plan / power cap programming.
    let mut deciders: Vec<Box<dyn NodeDecider>> =
        (0..n).map(|i| (opts.deciders)(v.base + i)).collect();
    for (decider, sim) in deciders.iter_mut().zip(v.sims.iter_mut()) {
        decider.attach(sim);
    }
    loop {
        fresh_evictions.clear();
        // Pass 1 (branchy): retire finished/budget-exhausted nodes, crash
        // fault-scheduled ones, fire the decisions that are due. Followers
        // are handled inside their representative's branches.
        for i in 0..n {
            if v.status[i] != ACTIVE
                || matches!(roles[i], Role::Follower { .. })
                || fresh_evictions.contains(&i)
            {
                continue;
            }
            let now = v.now_us[i];
            if let Some(ff) = v.fleet_faults {
                if fault_scheduled(v.base + i, ff.crash_every) && now >= ff.crash_at_us {
                    // Injected node crash: retire it mid-run.
                    v.status[i] = CRASHED;
                    continue;
                }
            }
            if v.sims[i].done() || now >= v.budget_us {
                v.status[i] = RETIRED;
                // A retiring representative's live followers share its
                // trajectory bit-for-bit: sync their (stale) sims to its
                // final state and retire them at the same instant.
                let (head, tail) = v.sims.split_at_mut(i + 1);
                for &f in &followers_of[i] {
                    if roles[f] != (Role::Follower { rep: i }) {
                        continue;
                    }
                    tail[f - i - 1].clone_from(&head[i]);
                    v.status[f] = RETIRED;
                    v.now_us[f] = now;
                }
                continue;
            }
            if now >= v.next_due_us[i] {
                // Clone the pre-decision state for followers still chained
                // to this representative (none for Live nodes: their
                // follower lists are empty).
                let snap = (decided[i]
                    && followers_of[i]
                        .iter()
                        .any(|&f| roles[f] == (Role::Follower { rep: i })))
                .then(|| v.sims[i].clone());
                let d = deciders[i].decide(&mut v.sims[i]);
                stats.decisions += 1;
                // Re-read the clock: the decide hook owns the simulation
                // while it runs, exactly like the solo loop.
                v.now_us[i] = v.sims[i].node().time_us();
                let mut due = d.next_due(v.now_us[i]);
                if let Some(ff) = v.fleet_faults {
                    if fault_scheduled(v.base + i, ff.stall_every) {
                        // Injected stall: the runtime daemon hangs for
                        // stall_us after every decision it fires.
                        due = due.saturating_add(ff.stall_us);
                    }
                }
                v.next_due_us[i] = due;
                // Every follower's own decider fires every decision round
                // — decisions and telemetry must be exactly the solo
                // stream — on state synced from the representative's
                // pre-decision snapshot (round 0: its own attached sim).
                // Agreement keeps it mirroring; any divergence evicts it
                // to live stepping from its own bit-exact state.
                for &f in &followers_of[i] {
                    if roles[f] != (Role::Follower { rep: i }) {
                        continue;
                    }
                    let (head, tail) = v.sims.split_at_mut(f);
                    let fsim = &mut tail[0];
                    if let Some(s) = &snap {
                        fsim.clone_from(s);
                    }
                    let df = deciders[f].decide(fsim);
                    stats.decisions += 1;
                    if df == d && sims_agree(&head[i], fsim, &mut sig_r, &mut sig_f) {
                        v.now_us[f] = v.now_us[i];
                        v.next_due_us[f] = v.next_due_us[i];
                    } else {
                        roles[f] = Role::Live;
                        stats.class_evictions += 1;
                        if v.offsets[f] != v.offsets[i] {
                            stats.offset_evictions += 1;
                        }
                        fresh_evictions.push(f);
                        // Fresh macro-step carry-over: FastForward is a
                        // pure perf cache, so starting cold is bit-exact.
                        v.ff[f] = FastForward::new();
                        v.now_us[f] = fsim.node().time_us();
                        v.next_due_us[f] = df.next_due(v.now_us[f]);
                    }
                }
                decided[i] = true;
            }
        }
        // Pass 2 (dense): each node's next event on the *shard* clock —
        // its local decision deadline or the budget, but always at least
        // one tick of progress (exactly the single-node fast-path horizon
        // rule), translated by its start offset — then the min scan.
        // Followers never constrain the horizon: their lanes mirror the
        // representative's local clock already, and with offset sharing a
        // follower starting *earlier* than its representative would
        // otherwise pin the horizon below the representative's reachable
        // time forever (a livelocked round loop).
        let budget = v.budget_us;
        for i in 0..n {
            v.target_us[i] = if v.status[i] == ACTIVE && !matches!(roles[i], Role::Follower { .. })
            {
                v.next_due_us[i]
                    .min(budget)
                    .max(v.now_us[i].saturating_add(1))
                    .saturating_add(v.offsets[i])
            } else {
                u64::MAX
            };
        }
        let horizon = min_lane(v.target_us, v.backend);
        if horizon == u64::MAX {
            break; // no active nodes left in this shard
        }
        stats.rounds += 1;
        // Pass 3: advance every active node to the shard horizon.
        // Followers mirror their representative's clock delta instead of
        // recomputing it — this is the work dedup saves.
        for i in 0..n {
            if v.status[i] != ACTIVE {
                continue;
            }
            let before = v.now_us[i];
            if let Role::Follower { rep } = roles[i] {
                // The representative (always a smaller shard index) has
                // already advanced this round; its delta is this node's
                // delta, tick for tick.
                let after = v.now_us[rep];
                v.now_us[i] = after;
                if after == before {
                    stats.stalls += 1;
                }
                let tick = v.sims[i].node().config().tick_us;
                stats.node_steps += (after - before) / tick;
                stats.replayed_node_rounds += 1;
                if v.offsets[i] != v.offsets[rep] {
                    stats.offset_replayed_rounds += 1;
                }
                continue;
            }
            // The shard horizon is on the fleet clock; this node steps on
            // its own. A horizon at or before the node's start offset
            // leaves a zero-tick goal: the node idles (stalls) until the
            // shard clock reaches its phase.
            let goal = horizon.saturating_sub(v.offsets[i]);
            match opts.mode {
                StepMode::Fast => v.sims[i].advance_until(goal, &mut v.ff[i]),
                StepMode::Reference => {
                    while !v.sims[i].done() && v.sims[i].node().time_us() < goal {
                        v.sims[i].step();
                    }
                }
            }
            let after = v.sims[i].node().time_us();
            v.now_us[i] = after;
            if after == before {
                // Already at/past the horizon: this node idled while the
                // shard caught up.
                stats.stalls += 1;
            }
            let tick = v.sims[i].node().config().tick_us;
            stats.node_steps += (after - before) / tick;
            stats.rep_node_rounds += 1;
        }
    }
    stats
}

/// N independent nodes stepped to completion across sharded lockstep
/// clocks. Build with [`FleetBuilder`]; run with [`FleetSim::run`].
#[derive(Debug)]
pub struct FleetSim {
    sims: Vec<Simulation>,
    /// Build-time trajectory-dedup class per node (`None` = singleton);
    /// all-`None` when dedup is off or a fault plan is armed. Offset
    /// quotient classes when the builder opted into
    /// [`FleetBuilder::share_offsets`], exact classes otherwise.
    class_of: Vec<Option<u32>>,
    /// Per-node start offset (µs) on the fleet clock; see
    /// [`FleetBuilder::node_at`].
    start_offset_us: Vec<u64>,
    // --- per-node decision state, structure-of-arrays lanes ---
    /// Macro-stepping carry-over (frozen-span state) per node.
    ff: Vec<FastForward>,
    /// Next decision deadline per node (µs); `u64::MAX` = no more decisions.
    next_due_us: Vec<u64>,
    /// Each node's clock (µs), mirrored from its simulation after every
    /// macro-step so the control scans never touch the `Simulation` structs.
    now_us: Vec<u64>,
    /// Per-round scratch: each node's next-event target (µs).
    target_us: Vec<u64>,
    /// Node status lane ([`ACTIVE`] / [`RETIRED`] / [`CRASHED`]).
    status: Vec<u8>,
    budget_us: u64,
    /// Requested shard count (clamped to the node count at run time).
    shards: usize,
    /// Fleet-level fault schedules (node stall/crash); `None` = clean run,
    /// zero cost.
    fleet_faults: Option<FleetFaults>,
    /// Per-shard counters from the most recent [`FleetSim::run`].
    shard_stats: Vec<ShardStats>,
    /// Per-node traffic job deadlines (summary-only metadata).
    deadlines: Vec<Vec<JobDeadline>>,
    /// Per-node tenant energy shares (summary-only metadata).
    tenant_shares: Vec<Vec<TenantShare>>,
}

impl FleetSim {
    /// Start building a fleet with a per-node wall-clock budget (s).
    #[must_use]
    pub fn builder(budget_s: f64) -> FleetBuilder {
        FleetBuilder::new(budget_s)
    }

    /// Number of nodes in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// True when the fleet has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// A node's simulation (read-only).
    #[must_use]
    pub fn sim(&self, idx: usize) -> &Simulation {
        &self.sims[idx]
    }

    /// Per-shard lockstep counters from the most recent [`FleetSim::run`]
    /// (empty before the first run).
    #[must_use]
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.shard_stats
    }

    /// Drain every node's telemetry event buffer, in node-index order.
    /// Event streams are part of the bit-identity contract: byte-identical
    /// across shard counts and stepping modes.
    #[cfg(feature = "telemetry")]
    pub fn take_node_events(&mut self) -> Vec<Vec<magus_telemetry::Event>> {
        self.sims
            .iter_mut()
            .map(|s| s.node_mut().telemetry_mut().take_events())
            .collect()
    }

    /// Run every node to completion (or its budget), creating one decider
    /// per node and firing it exactly as the single-node trial loop would:
    /// immediately at start, then at each `now + latency + rest` deadline.
    ///
    /// Each node's trajectory is bit-identical to running it alone with the
    /// same decision schedule — for every shard count and both stepping
    /// modes. Shards step disjoint contiguous node ranges on the rayon
    /// pool; their clocks never synchronize with each other, only with
    /// their own nodes' decision boundaries.
    pub fn run(&mut self, opts: &RunOpts) -> FleetSummary {
        let n = self.sims.len();
        self.shard_stats.clear();
        // One backend decision per run: the env override is re-read every
        // time so differential tests can flip `MAGUS_FLEET_SCALAR`
        // in-process between runs.
        let backend = scan_backend();
        if n > 0 {
            let shards = self.shards.clamp(1, n);
            let budget_us = self.budget_us;
            let fleet_faults = self.fleet_faults;
            // Carve each lane into per-shard contiguous windows. Remainder
            // nodes spread one-per-shard from the front, so no shard is
            // empty and sizes differ by at most one.
            let mut views = Vec::with_capacity(shards);
            let mut class_of = self.class_of.as_slice();
            let mut offsets = self.start_offset_us.as_slice();
            let (mut sims, mut ff, mut due, mut now, mut target, mut status) = (
                self.sims.as_mut_slice(),
                self.ff.as_mut_slice(),
                self.next_due_us.as_mut_slice(),
                self.now_us.as_mut_slice(),
                self.target_us.as_mut_slice(),
                self.status.as_mut_slice(),
            );
            let mut base = 0;
            for shard in 0..shards {
                let take = n / shards + usize::from(shard < n % shards);
                let (c0, c1) = class_of.split_at(take);
                let (o0, o1) = offsets.split_at(take);
                let (s0, s1) = sims.split_at_mut(take);
                let (f0, f1) = ff.split_at_mut(take);
                let (d0, d1) = due.split_at_mut(take);
                let (n0, n1) = now.split_at_mut(take);
                let (t0, t1) = target.split_at_mut(take);
                let (st0, st1) = status.split_at_mut(take);
                class_of = c1;
                offsets = o1;
                (sims, ff, due, now, target, status) = (s1, f1, d1, n1, t1, st1);
                views.push(ShardView {
                    shard,
                    base,
                    budget_us,
                    backend,
                    fleet_faults,
                    class_of: c0,
                    offsets: o0,
                    sims: s0,
                    ff: f0,
                    next_due_us: d0,
                    now_us: n0,
                    target_us: t0,
                    status: st0,
                });
                base += take;
            }
            self.shard_stats = if shards == 1 {
                views.iter_mut().map(|v| run_shard(v, opts)).collect()
            } else {
                views.par_iter_mut().map(|v| run_shard(v, opts)).collect()
            };
        }
        self.summarize(backend)
    }

    /// Build the fleet summary from the current node states. The f64
    /// energy sums fold in node-index order (the pre-SoA reference order —
    /// f64 addition is non-associative, and this order is part of the
    /// bit-identity contract); the makespan and horizon scans, which are
    /// reorder-safe, use the backend's 8-lane reductions. Makespan counts
    /// each node's finish time on the *fleet* clock: start offset plus
    /// runtime (adding a zero offset is bit-exact for the non-negative
    /// runtimes, so zero-offset fleets are unchanged).
    fn summarize(&self, backend: ScanBackend) -> FleetSummary {
        let nodes: Vec<RunSummary> = self.sims.iter().map(|s| s.summary(0)).collect();
        let finish_lane: Vec<f64> = nodes
            .iter()
            .zip(&self.start_offset_us)
            .map(|(n, &off)| crate::us_to_secs(off) + n.runtime_s)
            .collect();
        let mut total_cpu_j = 0.0;
        let mut total_uncore_j = 0.0;
        let mut total_j = 0.0;
        let mut uncore_w = Vec::with_capacity(nodes.len());
        // Traffic metrics: deadline checks read only per-node (runtime,
        // progress) pairs — both bit-identical across partitions — and the
        // tenant energy accumulates in node-index order into an ordered
        // map, so these fields share the summary's bit-identity contract.
        let have_deadlines = self.deadlines.iter().any(|d| !d.is_empty());
        let mut deadline_jobs = 0u64;
        let mut deadline_misses = 0u64;
        let mut node_deadline_misses = Vec::new();
        let mut tenant_energy: BTreeMap<u64, f64> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            total_cpu_j += n.energy.core_j + n.energy.dram_j;
            total_uncore_j += n.energy.uncore_j;
            total_j += n.energy.total_j();
            if n.energy.elapsed_s > 0.0 {
                uncore_w.push(n.energy.uncore_j / n.energy.elapsed_s);
            }
            if have_deadlines {
                let progress = self.sims[i].progress_s();
                let misses = self.deadlines[i]
                    .iter()
                    .filter(|d| deadline_missed(n.runtime_s, progress, d))
                    .count() as u32;
                deadline_jobs += self.deadlines[i].len() as u64;
                deadline_misses += u64::from(misses);
                node_deadline_misses.push(misses);
            }
            for ts in &self.tenant_shares[i] {
                *tenant_energy.entry(ts.tenant).or_insert(0.0) += n.energy.total_j() * ts.share;
            }
        }
        FleetSummary {
            deadline_jobs,
            deadline_misses,
            node_deadline_misses,
            tenant_energy_j: tenant_energy.into_iter().collect(),
            completed: nodes.iter().filter(|n| n.completed).count(),
            total_cpu_j,
            total_uncore_j,
            total_j,
            uncore_power_w: Distribution::from_values(&uncore_w),
            makespan_s: max_lane(&finish_lane, backend).max(0.0),
            decisions: self.shard_stats.iter().map(|s| s.decisions).sum(),
            node_steps: self.shard_stats.iter().map(|s| s.node_steps).sum(),
            node_progress_s: self.sims.iter().map(Simulation::progress_s).collect(),
            crashed: self.status.iter().filter(|&&s| s == CRASHED).count(),
            node_fault_counters: self
                .sims
                .iter()
                .map(|s| s.node().fault_counters())
                .collect(),
            nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::demand::Demand;
    use crate::workload::{Phase, PhaseKind};

    fn trace(work_s: f64, gbs: f64) -> AppTrace {
        AppTrace::new(
            "fleet-test",
            vec![Phase::new(
                PhaseKind::Compute,
                work_s,
                Demand::new(gbs, 0.2, 0.2, 0.8),
            )],
        )
    }

    /// A homogeneous fleet of `n` nodes over one shared trace.
    fn fleet_of(n: usize, budget_s: f64, shared: &Arc<AppTrace>) -> FleetBuilder {
        let mut b = FleetSim::builder(budget_s);
        for _ in 0..n {
            b = b.node(NodeConfig::intel_a100(), Arc::clone(shared));
        }
        b
    }

    #[test]
    fn fleet_node_matches_isolated_run() {
        let shared: Arc<AppTrace> = Arc::new(trace(3.0, 5.0));
        let mut alone = Simulation::new(Node::new(NodeConfig::intel_a100()));
        alone.load(Arc::clone(&shared));
        let solo = alone.run_to_completion(60.0);

        let mut fleet = fleet_of(4, 60.0, &shared).build().unwrap();
        let summary = fleet.run(&RunOpts::noop());
        assert_eq!(summary.nodes.len(), 4);
        assert_eq!(summary.completed, 4);
        for n in &summary.nodes {
            // Same workload, same hardware, no runtime: bit-identical to
            // the single-node run (the shard clock must not perturb it).
            assert_eq!(n, &solo);
        }
        assert_eq!(summary.decisions, 4);
        assert!(summary.node_steps > 0);
    }

    #[test]
    fn traffic_metadata_feeds_deadline_and_tenant_metrics() {
        let shared: Arc<AppTrace> = Arc::new(trace(2.0, 5.0));
        let mut fleet = FleetSim::builder(60.0)
            .node(NodeConfig::intel_a100(), Arc::clone(&shared))
            .node_traffic(
                vec![
                    // Generous deadline: met. Impossible deadline: missed.
                    JobDeadline {
                        work_end_s: 1.0,
                        due_s: 1000.0,
                    },
                    JobDeadline {
                        work_end_s: 2.0,
                        due_s: 0.5,
                    },
                ],
                vec![
                    TenantShare {
                        tenant: 3,
                        share: 0.25,
                    },
                    TenantShare {
                        tenant: 7,
                        share: 0.75,
                    },
                ],
            )
            .node(NodeConfig::intel_a100(), Arc::clone(&shared))
            .build()
            .unwrap();
        let summary = fleet.run(&RunOpts::noop());
        assert_eq!(summary.deadline_jobs, 2);
        assert_eq!(summary.deadline_misses, 1);
        assert_eq!(summary.node_deadline_misses, vec![1, 0]);
        let by_tenant = &summary.tenant_energy_j;
        assert_eq!(by_tenant.len(), 2);
        assert_eq!((by_tenant[0].0, by_tenant[1].0), (3, 7));
        let node_j = summary.nodes[0].energy.total_j();
        assert!((by_tenant[0].1 - node_j * 0.25).abs() < 1e-9);
        assert!((by_tenant[1].1 - node_j * 0.75).abs() < 1e-9);
        // Metadata is summary-only: both nodes' trajectories stay
        // bit-identical (the metadata node still deduped with the bare one).
        assert_eq!(summary.nodes[0], summary.nodes[1]);
    }

    #[test]
    fn deadline_rule_maps_work_through_the_stretch_factor() {
        let d = JobDeadline {
            work_end_s: 2.0,
            due_s: 3.0,
        };
        // Unstretched: finishes at t=2 < 3.
        assert!(!deadline_missed(4.0, 4.0, &d));
        // 2x stretch: finishes at t=4 > 3.
        assert!(deadline_missed(8.0, 4.0, &d));
        // Work never completed: always a miss.
        assert!(deadline_missed(60.0, 1.5, &d));
        assert!(deadline_missed(60.0, 0.0, &d));
    }

    #[test]
    fn heterogeneous_finish_times_retire_independently() {
        let mut fleet = FleetSim::builder(60.0)
            .node(NodeConfig::intel_a100(), trace(1.0, 5.0))
            .node(NodeConfig::intel_a100(), trace(5.0, 5.0))
            .build()
            .unwrap();
        let summary = fleet.run(&RunOpts::noop());
        assert_eq!(summary.completed, 2);
        assert!(summary.nodes[0].runtime_s < summary.nodes[1].runtime_s);
        assert!((summary.makespan_s - summary.nodes[1].runtime_s).abs() < 1e-12);
    }

    #[test]
    fn budget_truncates_fleet() {
        let mut fleet = FleetSim::builder(2.0)
            .node(NodeConfig::intel_a100(), trace(100.0, 5.0))
            .build()
            .unwrap();
        let summary = fleet.run(&RunOpts::noop());
        assert_eq!(summary.completed, 0);
        assert!((summary.makespan_s - 2.0).abs() < 0.05);
    }

    #[test]
    fn periodic_decisions_fire_on_cadence() {
        let mut fleet = FleetSim::builder(60.0)
            .node(NodeConfig::intel_a100(), trace(4.0, 5.0))
            .build()
            .unwrap();
        // 0.5 s cadence over a ~4 s run: first decision at t=0, then every
        // 500 ms → 8–9 invocations.
        let opts = RunOpts::from_fn(|_, _| Decision {
            latency_us: 0,
            rest_us: 500_000,
        });
        let summary = fleet.run(&opts);
        assert!(
            (7..=10).contains(&summary.decisions),
            "decisions = {}",
            summary.decisions
        );
    }

    #[test]
    fn aggregates_are_consistent() {
        let shared: Arc<AppTrace> = Arc::new(trace(2.0, 5.0));
        let mut fleet = fleet_of(3, 60.0, &shared).build().unwrap();
        let s = fleet.run(&RunOpts::noop());
        let sum: f64 = s.nodes.iter().map(|n| n.energy.total_j()).sum();
        assert!((s.total_j - sum).abs() < 1e-9);
        assert!(s.total_uncore_j > 0.0);
        assert!(s.total_cpu_j > 0.0);
        assert!(s.uncore_power_w.min <= s.uncore_power_w.p50);
        assert!(s.uncore_power_w.p50 <= s.uncore_power_w.p95);
        assert!(s.uncore_power_w.p95 <= s.uncore_power_w.max);
    }

    #[test]
    fn shard_stats_count_rounds_and_stalls() {
        // A coarse-tick node paired with a fine-tick, fast-deciding node:
        // the coarse node overshoots the shard horizon, so later horizons
        // driven by the fine node's deadlines land behind it and it idles
        // (stalls) while the shard catches up.
        let mut coarse = NodeConfig::intel_a100();
        coarse.tick_us = 70_000;
        let mut fleet = FleetSim::builder(2.0)
            .node(coarse, trace(100.0, 5.0))
            .node(NodeConfig::intel_a100(), trace(100.0, 5.0))
            .build()
            .unwrap();
        let opts = RunOpts::from_fn(|i, _| Decision {
            latency_us: 0,
            rest_us: if i == 0 { 1_000_000 } else { 5_000 },
        });
        let s = fleet.run(&opts);
        let stats = fleet.shard_stats();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].rounds > 0);
        assert!(stats[0].stalls > 0, "coarse node never stalled");
        assert_eq!(stats[0].decisions, s.decisions);
        assert_eq!(stats[0].node_steps, s.node_steps);
        assert_eq!(s.node_progress_s.len(), 2);
        assert!(s.node_progress_s.iter().all(|&p| p > 0.0));

        // A homogeneous single-shard fleet shares every clock edge and
        // never stalls.
        let shared: Arc<AppTrace> = Arc::new(trace(100.0, 5.0));
        let mut fleet = fleet_of(3, 2.0, &shared).build().unwrap();
        fleet.run(&RunOpts::noop());
        assert_eq!(fleet.shard_stats()[0].stalls, 0);
    }

    #[test]
    fn sharded_runs_are_bit_identical_across_shard_counts_and_modes() {
        let plan = FaultPlan::builder()
            .fleet_crash(4, 500_000)
            .fleet_stall(3, 300_000)
            .pcm_spike(2, 0.4)
            .build()
            .unwrap();
        let run_with = |shards: usize, mode: StepMode| {
            let mut b = FleetSim::builder(60.0);
            for i in 0..6 {
                b = b.node(NodeConfig::intel_a100(), trace(1.0 + i as f64, 5.0));
            }
            let mut fleet = b.shards(shards).fault_plan(&plan).build().unwrap();
            // The decider samples PCM each decision, so the per-node
            // injected-spike schedule (an access-counted fault) is exercised
            // and must replay identically under every shard partition.
            let opts = RunOpts::from_fn(|_, sim| {
                let _ = sim.node_mut().pcm_try_read_gbs();
                Decision {
                    latency_us: 0,
                    rest_us: 500_000,
                }
            })
            .with_mode(mode);
            let summary = fleet.run(&opts);
            assert_eq!(
                fleet.shard_stats().len(),
                shards.min(6),
                "one stats row per non-empty shard"
            );
            summary
        };
        let reference = run_with(1, StepMode::Fast);
        assert!(
            reference.node_fault_counters.iter().any(|c| c.total() > 0),
            "plan must actually inject"
        );
        for shards in [2, 3, 6, 64] {
            for mode in [StepMode::Fast, StepMode::Reference] {
                assert_eq!(
                    run_with(shards, mode),
                    reference,
                    "shards={shards} {mode:?} diverged from single-shard fast"
                );
            }
        }
    }

    #[test]
    fn builder_validates_inputs() {
        let shared: Arc<AppTrace> = Arc::new(trace(1.0, 5.0));
        assert_eq!(
            FleetSim::builder(60.0).build().unwrap_err(),
            FleetBuildError::EmptyFleet
        );
        assert!(matches!(
            fleet_of(1, -1.0, &shared).build().unwrap_err(),
            FleetBuildError::BadBudget(_)
        ));
        assert!(matches!(
            fleet_of(1, f64::NAN, &shared).build().unwrap_err(),
            FleetBuildError::BadBudget(_)
        ));
        assert_eq!(
            fleet_of(1, 60.0, &shared).shards(0).build().unwrap_err(),
            FleetBuildError::ZeroShards
        );
        let mut advanced = Simulation::new(Node::new(NodeConfig::intel_a100()));
        advanced.load(Arc::clone(&shared));
        advanced.step();
        assert!(matches!(
            FleetSim::builder(60.0).sim(advanced).build().unwrap_err(),
            FleetBuildError::NodeClockNonzero { index: 0, .. }
        ));
        let bad_plan = FaultPlan {
            pcm: crate::fault::PcmFaults {
                dropout_every: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(matches!(
            fleet_of(1, 60.0, &shared)
                .fault_plan(&bad_plan)
                .build()
                .unwrap_err(),
            FleetBuildError::InvalidFaultPlan(_)
        ));
    }

    #[test]
    fn empty_fault_plan_leaves_fleet_bit_identical() {
        let shared: Arc<AppTrace> = Arc::new(trace(2.0, 5.0));
        let mut clean = fleet_of(1, 60.0, &shared).build().unwrap();
        let clean_summary = clean.run(&RunOpts::noop());

        let mut armed = fleet_of(1, 60.0, &shared)
            .fault_plan(&FaultPlan::default())
            .build()
            .unwrap();
        let summary = armed.run(&RunOpts::noop());
        assert_eq!(summary, clean_summary);
        assert_eq!(summary.crashed, 0);
    }

    #[test]
    fn fleet_faults_crash_and_stall_scheduled_nodes() {
        let plan = FaultPlan::builder()
            .fleet_crash(4, 500_000) // every 4th node dies at t = 0.5 s
            .fleet_stall(3, 300_000) // every 3rd node's daemon hangs 0.3 s
            .build()
            .unwrap();
        let shared: Arc<AppTrace> = Arc::new(trace(3.0, 5.0));
        let mut fleet = fleet_of(4, 60.0, &shared)
            .fault_plan(&plan)
            .build()
            .unwrap();
        let opts = RunOpts::from_fn(|_, _| Decision {
            latency_us: 0,
            rest_us: 500_000,
        });
        let s = fleet.run(&opts);
        // Node 4 (index 3) crashed at 0.5 s; the other three finished.
        assert_eq!(s.crashed, 1);
        assert_eq!(s.completed, 3);
        assert!(!s.nodes[3].completed);
        assert!(s.nodes[3].runtime_s < s.nodes[0].runtime_s);
        assert!((s.nodes[3].runtime_s - 0.5).abs() < 0.1);
    }

    /// Sum a per-shard stat over every shard of the last run.
    fn stat(fleet: &FleetSim, f: impl Fn(&ShardStats) -> u64) -> u64 {
        fleet.shard_stats().iter().map(f).sum()
    }

    #[test]
    fn dedup_shares_identical_nodes_and_stays_bit_identical() {
        let shared: Arc<AppTrace> = Arc::new(trace(2.0, 5.0));
        // 5 identical nodes, periodic decisions so the run has many rounds.
        let opts = |key: bool| {
            let o = RunOpts::from_fn(|_, _| Decision {
                latency_us: 0,
                rest_us: 200_000,
            });
            if key {
                o.with_decider_key(7)
            } else {
                o
            }
        };
        let mut on = fleet_of(5, 60.0, &shared).build().unwrap();
        let s_on = on.run(&opts(true));
        let mut off = fleet_of(5, 60.0, &shared).dedup(false).build().unwrap();
        let s_off = off.run(&opts(true));
        assert_eq!(s_on, s_off, "dedup changed the fleet summary");

        // One class of five: one live trajectory, four mirroring.
        assert_eq!(stat(&on, |s| s.classes), 1);
        assert!(stat(&on, |s| s.replayed_node_rounds) > 0);
        assert_eq!(stat(&on, |s| s.class_evictions), 0);
        assert_eq!(stat(&off, |s| s.classes), 5);
        assert_eq!(stat(&off, |s| s.replayed_node_rounds), 0);
        // Shard-clock counters are dedup-invariant; only the live-stepping
        // share moves.
        assert_eq!(stat(&on, |s| s.rounds), stat(&off, |s| s.rounds));
        assert_eq!(stat(&on, |s| s.stalls), stat(&off, |s| s.stalls));
        assert_eq!(stat(&on, |s| s.decisions), stat(&off, |s| s.decisions));
        assert_eq!(stat(&on, |s| s.node_steps), stat(&off, |s| s.node_steps));
        assert!(stat(&on, |s| s.rep_node_rounds) < stat(&off, |s| s.rep_node_rounds));

        // An undeclared factory (no decider key) never engages dedup.
        let mut plain = fleet_of(5, 60.0, &shared).build().unwrap();
        assert_eq!(plain.run(&opts(false)), s_off);
        assert_eq!(stat(&plain, |s| s.classes), 5);
        assert_eq!(stat(&plain, |s| s.replayed_node_rounds), 0);
    }

    #[test]
    fn divergent_decider_is_evicted_not_miscomputed() {
        // Node 2's decider makes one extra PCM read at its 3rd decision —
        // a behaviorally index-VARIANT factory wrongly declared invariant.
        // The contract: bit-identity survives (the follower is evicted),
        // only the shared-stepping win is lost.
        struct Poker {
            idx: usize,
            fired: u32,
        }
        impl NodeDecider for Poker {
            fn decide(&mut self, sim: &mut Simulation) -> Decision {
                self.fired += 1;
                if self.idx == 2 && self.fired == 3 {
                    let _ = sim.node_mut().pcm_try_read_gbs();
                }
                Decision {
                    latency_us: 0,
                    rest_us: 500_000,
                }
            }
        }
        let opts = |key: bool| {
            let o = RunOpts::new(|idx| Box::new(Poker { idx, fired: 0 }));
            if key {
                o.with_decider_key(9)
            } else {
                o
            }
        };
        let shared: Arc<AppTrace> = Arc::new(trace(3.0, 5.0));
        let mut on = fleet_of(4, 60.0, &shared).build().unwrap();
        let s_on = on.run(&opts(true));
        let mut off = fleet_of(4, 60.0, &shared).dedup(false).build().unwrap();
        let s_off = off.run(&opts(false));
        assert_eq!(s_on, s_off, "eviction failed to preserve bit-identity");
        assert_eq!(stat(&on, |s| s.class_evictions), 1);
        assert_eq!(stat(&off, |s| s.class_evictions), 0);
        // The poked node genuinely diverged (extra monitoring energy);
        // untouched classmates stayed bit-identical to each other.
        assert_ne!(s_on.nodes[2], s_on.nodes[1]);
        assert_eq!(s_on.nodes[1], s_on.nodes[0]);
    }

    #[test]
    fn fault_plans_force_singleton_classes() {
        let shared: Arc<AppTrace> = Arc::new(trace(2.0, 5.0));
        let plan = FaultPlan::builder().pcm_dropout_every(5).build().unwrap();
        let mut faulted = fleet_of(3, 60.0, &shared)
            .fault_plan(&plan)
            .build()
            .unwrap();
        faulted.run(&RunOpts::noop());
        assert_eq!(stat(&faulted, |s| s.classes), 3);
        assert_eq!(stat(&faulted, |s| s.replayed_node_rounds), 0);

        // An *empty* plan arms nothing and leaves sharing intact.
        let mut clean = fleet_of(3, 60.0, &shared)
            .fault_plan(&FaultPlan::default())
            .build()
            .unwrap();
        clean.run(&RunOpts::noop());
        assert_eq!(stat(&clean, |s| s.classes), 1);
    }

    #[test]
    fn dedup_requires_interned_identity_and_declared_deciders() {
        // Equal-content but separately-owned traces: distinct allocations,
        // distinct classes (identity is the content key only through the
        // intern table).
        let mut owned = FleetSim::builder(60.0)
            .node(NodeConfig::intel_a100(), trace(2.0, 5.0))
            .node(NodeConfig::intel_a100(), trace(2.0, 5.0))
            .build()
            .unwrap();
        owned.run(&RunOpts::noop());
        assert_eq!(stat(&owned, |s| s.classes), 2);

        // `.sim()` nodes are opaque: singleton classes even when identical.
        let shared: Arc<AppTrace> = Arc::new(trace(2.0, 5.0));
        let make = || {
            let mut sim = Simulation::new(Node::new(NodeConfig::intel_a100()));
            sim.load(Arc::clone(&shared));
            sim
        };
        let mut opaque = FleetSim::builder(60.0)
            .sim(make())
            .sim(make())
            .build()
            .unwrap();
        opaque.run(&RunOpts::noop());
        assert_eq!(stat(&opaque, |s| s.classes), 2);

        // Different configs split classes even over one shared trace.
        let mut coarse = NodeConfig::intel_a100();
        coarse.tick_us *= 2;
        let mut mixed = FleetSim::builder(60.0)
            .node(NodeConfig::intel_a100(), Arc::clone(&shared))
            .node(coarse, Arc::clone(&shared))
            .node(NodeConfig::intel_a100(), Arc::clone(&shared))
            .build()
            .unwrap();
        mixed.run(&RunOpts::noop());
        assert_eq!(stat(&mixed, |s| s.classes), 2);
        assert_eq!(
            stat(&mixed, |s| s.replayed_node_rounds),
            stat(&mixed, |s| s.rounds)
        );
    }

    #[test]
    fn dedup_is_shard_local_and_shard_invariant() {
        let shared: Arc<AppTrace> = Arc::new(trace(2.0, 5.0));
        let opts = RunOpts::from_fn(|_, _| Decision {
            latency_us: 0,
            rest_us: 300_000,
        })
        .with_decider_key(3);
        let mut single = fleet_of(6, 60.0, &shared).build().unwrap();
        let reference = single.run(&opts);
        assert_eq!(stat(&single, |s| s.classes), 1);
        for shards in [2, 3, 6, 64] {
            let mut fleet = fleet_of(6, 60.0, &shared).shards(shards).build().unwrap();
            let summary = fleet.run(&opts);
            assert_eq!(summary, reference, "shards={shards} diverged under dedup");
            // Each shard elects its own representative: one class per
            // non-empty shard.
            assert_eq!(stat(&fleet, |s| s.classes), shards.min(6) as u64);
        }
    }

    /// Every backend the host can run (scalar always; AVX2 when detected).
    fn backends() -> Vec<ScanBackend> {
        let mut b = vec![ScanBackend::Scalar];
        #[cfg(target_arch = "x86_64")]
        if std::is_x86_feature_detected!("avx2") {
            b.push(ScanBackend::Avx2);
        }
        b
    }

    #[test]
    fn lane_reductions_match_naive_folds_on_every_backend() {
        for backend in backends() {
            for len in [0, 1, 7, 8, 9, 37, 1023] {
                let us: Vec<u64> = (0..len)
                    .map(|i| (i * 2_654_435_761_u64) % 1_000_003)
                    .chain((len > 0).then_some(u64::MAX))
                    .collect();
                assert_eq!(
                    min_lane(&us, backend),
                    us.iter().copied().min().unwrap_or(u64::MAX),
                    "{backend:?} len={len}"
                );
                let fs: Vec<f64> = (0..len)
                    .map(|i| f64::from(i as u32 * 7 % 13) * 0.5)
                    .collect();
                assert_eq!(
                    max_lane(&fs, backend),
                    fs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    "{backend:?} len={len}"
                );
            }
        }
    }

    #[test]
    fn scan_backends_agree_bit_for_bit() {
        // The differential the MAGUS_FLEET_SCALAR CI job relies on: both
        // backends must produce identical bits on the same lanes.
        for backend in backends() {
            let us: Vec<u64> = (0..1000u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            assert_eq!(min_lane(&us, backend), min_lane(&us, ScanBackend::Scalar));
            let fs: Vec<f64> = (0..1000).map(|i| (i % 97) as f64 * 0.125).collect();
            assert_eq!(
                max_lane(&fs, backend).to_bits(),
                max_lane(&fs, ScanBackend::Scalar).to_bits()
            );
        }
    }

    #[test]
    fn scalar_env_forces_the_portable_backend() {
        // Setting the override only ever *removes* vector lanes, and both
        // backends are bit-identical, so a concurrent test that happens to
        // read the flipped value still computes the same fleet. The prior
        // value is restored so a CI-wide MAGUS_FLEET_SCALAR=1 run keeps
        // its forcing for the rest of this test binary.
        let prior = std::env::var("MAGUS_FLEET_SCALAR").ok();
        std::env::set_var("MAGUS_FLEET_SCALAR", "1");
        assert_eq!(scan_backend(), ScanBackend::Scalar);
        std::env::set_var("MAGUS_FLEET_SCALAR", "0");
        let unforced = scan_backend();
        std::env::remove_var("MAGUS_FLEET_SCALAR");
        assert_eq!(scan_backend(), unforced, "\"0\" must mean no forcing");
        if let Some(value) = prior {
            std::env::set_var("MAGUS_FLEET_SCALAR", value);
        }
    }

    /// Offsets for the phase-shifted tests. The *first* node carries the
    /// largest offset so that, under offset sharing, the class
    /// representative starts later than some followers — the exact shape
    /// that livelocks if followers are allowed to pin the shard horizon.
    const STAGGER_US: [u64; 5] = [1_500_000, 0, 750_000, 250_000, 250_000];

    /// Five identical nodes over one shared trace, staggered by
    /// [`STAGGER_US`].
    fn staggered_fleet(
        shared: &Arc<AppTrace>,
        share_offsets: bool,
        dedup: bool,
        shards: usize,
    ) -> FleetSim {
        let mut b = FleetSim::builder(60.0)
            .shards(shards)
            .share_offsets(share_offsets)
            .dedup(dedup);
        for &off in &STAGGER_US {
            b = b.node_at(NodeConfig::intel_a100(), Arc::clone(shared), off);
        }
        b.build().unwrap()
    }

    #[test]
    fn offset_sharing_is_bit_identical_and_counts_offset_classes() {
        let shared: Arc<AppTrace> = Arc::new(trace(2.0, 5.0));
        let opts = RunOpts::from_fn(|_, _| Decision {
            latency_us: 0,
            rest_us: 200_000,
        })
        .with_decider_key(7);
        let mut live = staggered_fleet(&shared, false, false, 1);
        let reference = live.run(&opts);

        // Offsets never perturb a node's own trajectory: every staggered
        // copy is bit-identical to the zero-offset (solo-equivalent) node.
        let mut solo = fleet_of(1, 60.0, &shared).build().unwrap();
        let solo_node = solo.run(&opts).nodes[0].clone();
        for n in &reference.nodes {
            assert_eq!(n, &solo_node);
        }
        // ... but the fleet makespan counts them: last finisher is the
        // 1.5 s-offset node.
        assert!((reference.makespan_s - (1.5 + solo_node.runtime_s)).abs() < 1e-9);

        // Exact-key dedup: offsets partition classes — {1.5s}, {0}, {750ms}
        // singletons plus the {250ms, 250ms} pair. No offset classes.
        let mut exact = staggered_fleet(&shared, false, true, 1);
        assert_eq!(exact.run(&opts), reference, "exact dedup changed the fleet");
        assert_eq!(stat(&exact, |s| s.classes), 4);
        assert_eq!(stat(&exact, |s| s.offset_classes), 0);
        assert_eq!(stat(&exact, |s| s.offset_replayed_rounds), 0);

        // Offset quotient: one class of five behind one representative,
        // still bit-identical — including with the representative starting
        // 1.5 s after its earliest follower (the livelock regression).
        let mut quotient = staggered_fleet(&shared, true, true, 1);
        assert_eq!(
            quotient.run(&opts),
            reference,
            "offset sharing changed the fleet"
        );
        assert_eq!(stat(&quotient, |s| s.classes), 1);
        assert_eq!(stat(&quotient, |s| s.offset_classes), 1);
        let offset_replayed = stat(&quotient, |s| s.offset_replayed_rounds);
        assert!(offset_replayed > 0, "no phase-shifted rounds were shared");
        assert!(offset_replayed <= stat(&quotient, |s| s.replayed_node_rounds));
        assert_eq!(stat(&quotient, |s| s.offset_evictions), 0);

        // Shard-invariance holds for staggered fleets too.
        for shards in [2, 3, 5, 64] {
            let mut fleet = staggered_fleet(&shared, true, true, shards);
            assert_eq!(fleet.run(&opts), reference, "shards={shards} diverged");
        }
    }

    #[test]
    fn divergent_offset_follower_is_evicted_not_miscomputed() {
        // Node 3 (offset 250 ms, a follower under offset sharing) makes one
        // extra PCM read at its 3rd decision. Same contract as the exact
        // dedup eviction test: bit-identity survives, the shared win is
        // lost, and the offset eviction counter records it.
        struct Poker {
            idx: usize,
            fired: u32,
        }
        impl NodeDecider for Poker {
            fn decide(&mut self, sim: &mut Simulation) -> Decision {
                self.fired += 1;
                if self.idx == 3 && self.fired == 3 {
                    let _ = sim.node_mut().pcm_try_read_gbs();
                }
                Decision {
                    latency_us: 0,
                    rest_us: 500_000,
                }
            }
        }
        let opts = |key: bool| {
            let o = RunOpts::new(|idx| Box::new(Poker { idx, fired: 0 }));
            if key {
                o.with_decider_key(9)
            } else {
                o
            }
        };
        let shared: Arc<AppTrace> = Arc::new(trace(3.0, 5.0));
        let mut on = staggered_fleet(&shared, true, true, 1);
        let s_on = on.run(&opts(true));
        let mut off = staggered_fleet(&shared, false, false, 1);
        let s_off = off.run(&opts(false));
        assert_eq!(s_on, s_off, "offset eviction broke bit-identity");
        assert_eq!(stat(&on, |s| s.class_evictions), 1);
        assert_eq!(stat(&on, |s| s.offset_evictions), 1);
        assert_ne!(s_on.nodes[3], s_on.nodes[2]);
        assert_eq!(s_on.nodes[2], s_on.nodes[1]);
    }

    #[test]
    fn start_offset_overflow_is_rejected() {
        let shared: Arc<AppTrace> = Arc::new(trace(1.0, 5.0));
        let err = FleetSim::builder(60.0)
            .node_at(NodeConfig::intel_a100(), Arc::clone(&shared), u64::MAX - 1)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            FleetBuildError::StartOffsetOverflow { index: 0, .. }
        ));
        // A large-but-representable offset builds fine.
        assert!(FleetSim::builder(60.0)
            .node_at(NodeConfig::intel_a100(), shared, u64::MAX / 2)
            .build()
            .is_ok());
    }

    #[test]
    fn distribution_percentiles() {
        let vals: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = Distribution::from_values(&vals);
        assert!((d.mean - 50.5).abs() < 1e-9);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p95, 95.0);
        assert_eq!(d.max, 100.0);
        let empty = Distribution::from_values(&[]);
        assert_eq!(empty.max, 0.0);
    }
}
