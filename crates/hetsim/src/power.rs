//! Power decomposition and energy accounting.
//!
//! Mirrors the measurement domains of §5: *CPU package* (core + uncore),
//! *DRAM*, and *GPU board*. Energy totals integrate breakdowns over ticks
//! and feed both the RAPL energy-status MSRs and the experiment metrics.

use serde::{Deserialize, Serialize};

/// Instantaneous node power, decomposed by domain (W).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Sum of core-domain power across sockets.
    pub core_w: f64,
    /// Sum of uncore-domain power across sockets.
    pub uncore_w: f64,
    /// Sum of DRAM power across sockets.
    pub dram_w: f64,
    /// Sum of GPU board power across devices.
    pub gpu_w: f64,
    /// Monitoring-runtime overhead power charged this tick.
    pub overhead_w: f64,
}

impl PowerBreakdown {
    /// CPU package power (core + uncore + monitoring overhead), the RAPL
    /// package-domain quantity.
    #[must_use]
    pub fn pkg_w(&self) -> f64 {
        self.core_w + self.uncore_w + self.overhead_w
    }

    /// CPU-side power (package + DRAM), the paper's "power saving" domain.
    #[must_use]
    pub fn cpu_w(&self) -> f64 {
        self.pkg_w() + self.dram_w
    }

    /// Total node power (CPU side + GPU boards), the paper's "energy
    /// saving" domain.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.cpu_w() + self.gpu_w
    }
}

impl core::ops::Add for PowerBreakdown {
    type Output = PowerBreakdown;

    fn add(self, rhs: PowerBreakdown) -> PowerBreakdown {
        PowerBreakdown {
            core_w: self.core_w + rhs.core_w,
            uncore_w: self.uncore_w + rhs.uncore_w,
            dram_w: self.dram_w + rhs.dram_w,
            gpu_w: self.gpu_w + rhs.gpu_w,
            overhead_w: self.overhead_w + rhs.overhead_w,
        }
    }
}

/// Cumulative energy by domain (J).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyTotals {
    /// Core-domain energy.
    pub core_j: f64,
    /// Uncore-domain energy.
    pub uncore_j: f64,
    /// DRAM energy.
    pub dram_j: f64,
    /// GPU board energy.
    pub gpu_j: f64,
    /// Monitoring-runtime overhead energy.
    pub overhead_j: f64,
    /// Integrated wall-clock time (s).
    pub elapsed_s: f64,
}

impl EnergyTotals {
    /// Integrate a power breakdown over `dt_s` seconds.
    pub fn accumulate(&mut self, p: &PowerBreakdown, dt_s: f64) {
        self.core_j += p.core_w * dt_s;
        self.uncore_j += p.uncore_w * dt_s;
        self.dram_j += p.dram_w * dt_s;
        self.gpu_j += p.gpu_w * dt_s;
        self.overhead_j += p.overhead_w * dt_s;
        self.elapsed_s += dt_s;
    }

    /// CPU package energy (core + uncore + overhead), J.
    #[must_use]
    pub fn pkg_j(&self) -> f64 {
        self.core_j + self.uncore_j + self.overhead_j
    }

    /// CPU-side energy (package + DRAM), J.
    #[must_use]
    pub fn cpu_j(&self) -> f64 {
        self.pkg_j() + self.dram_j
    }

    /// Total energy-to-solution (CPU side + GPU boards), J — the quantity
    /// the paper minimises.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.cpu_j() + self.gpu_j
    }

    /// Mean total power over the accumulation window (W).
    #[must_use]
    pub fn mean_total_w(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.total_j() / self.elapsed_s
        }
    }

    /// Mean CPU-side power over the accumulation window (W).
    #[must_use]
    pub fn mean_cpu_w(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.cpu_j() / self.elapsed_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PowerBreakdown {
        PowerBreakdown {
            core_w: 45.0,
            uncore_w: 55.0,
            dram_w: 12.0,
            gpu_w: 200.0,
            overhead_w: 1.0,
        }
    }

    #[test]
    fn domain_sums() {
        let p = sample();
        assert!((p.pkg_w() - 101.0).abs() < 1e-12);
        assert!((p.cpu_w() - 113.0).abs() < 1e-12);
        assert!((p.total_w() - 313.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_add_is_fieldwise() {
        let p = sample() + sample();
        assert!((p.core_w - 90.0).abs() < 1e-12);
        assert!((p.total_w() - 626.0).abs() < 1e-12);
    }

    #[test]
    fn energy_integrates_power() {
        let mut e = EnergyTotals::default();
        let p = sample();
        for _ in 0..100 {
            e.accumulate(&p, 0.01);
        }
        assert!((e.elapsed_s - 1.0).abs() < 1e-9);
        assert!((e.total_j() - p.total_w()).abs() < 1e-6);
        assert!((e.mean_total_w() - p.total_w()).abs() < 1e-6);
    }

    #[test]
    fn energy_never_negative_for_nonneg_power() {
        let mut e = EnergyTotals::default();
        e.accumulate(&PowerBreakdown::default(), 1.0);
        assert_eq!(e.total_j(), 0.0);
        assert_eq!(e.mean_total_w(), 0.0);
    }

    #[test]
    fn empty_window_mean_is_zero() {
        let e = EnergyTotals::default();
        assert_eq!(e.mean_total_w(), 0.0);
        assert_eq!(e.mean_cpu_w(), 0.0);
    }
}
