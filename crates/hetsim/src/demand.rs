//! Instantaneous resource demand presented to the node by a workload phase.

use serde::{Deserialize, Serialize};

/// What a workload asks of the node at an instant.
///
/// `Demand` is the interface between the [`workload`](crate::workload) layer
/// and the node: phases declare how much host-memory traffic they generate,
/// how memory-bound their progress is, and how busy the CPU cores and GPUs
/// are. MAGUS itself never sees a `Demand` — it only observes the *delivered*
/// memory throughput through the PCM counters, exactly as on real hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Demanded system memory throughput (GB/s) at full progress rate.
    pub mem_gbs: f64,
    /// Fraction of the phase's critical path stalled on memory traffic when
    /// bandwidth is capped below demand (0 = pure compute, 1 = pure copy).
    pub mem_frac: f64,
    /// Fraction of the critical path executed on host cores and therefore
    /// sensitive to core-frequency *throttling* (RAPL power capping).
    /// Uncapped DVFS is the reference: this term is exactly neutral unless
    /// a power limit forces the cores below their natural frequency.
    pub cpu_frac: f64,
    /// Average CPU core utilisation (0..1) across the node.
    pub cpu_util: f64,
    /// Per-GPU utilisation (0..1). Shorter vectors leave trailing GPUs idle.
    pub gpu_util: Vec<f64>,
}

impl Demand {
    /// A fully idle node.
    #[must_use]
    pub fn idle() -> Self {
        Self {
            mem_gbs: 0.0,
            mem_frac: 0.0,
            cpu_frac: 0.0,
            cpu_util: 0.0,
            gpu_util: Vec::new(),
        }
    }

    /// Demand with a single-GPU utilisation.
    #[must_use]
    pub fn new(mem_gbs: f64, mem_frac: f64, cpu_util: f64, gpu_util: f64) -> Self {
        Self {
            mem_gbs,
            mem_frac,
            cpu_frac: 0.0,
            cpu_util,
            gpu_util: vec![gpu_util],
        }
    }

    /// Builder: set the throttle-sensitive host fraction (clamped so
    /// `mem_frac + cpu_frac <= 1`).
    #[must_use]
    pub fn with_cpu_frac(mut self, cpu_frac: f64) -> Self {
        self.cpu_frac = cpu_frac.clamp(0.0, 1.0 - self.mem_frac.clamp(0.0, 1.0));
        self
    }

    /// Utilisation of GPU `idx` (0 when the vector is shorter).
    #[must_use]
    pub fn gpu_util(&self, idx: usize) -> f64 {
        self.gpu_util.get(idx).copied().unwrap_or(0.0)
    }

    /// Clamp all fields into their valid ranges; returns `self` for chaining.
    #[must_use]
    pub fn clamped(mut self) -> Self {
        self.mem_gbs = self.mem_gbs.max(0.0);
        self.mem_frac = self.mem_frac.clamp(0.0, 1.0);
        self.cpu_frac = self.cpu_frac.clamp(0.0, 1.0 - self.mem_frac);
        self.cpu_util = self.cpu_util.clamp(0.0, 1.0);
        for u in &mut self.gpu_util {
            *u = u.clamp(0.0, 1.0);
        }
        self
    }

    /// True when the demand represents a completely idle node.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.mem_gbs == 0.0 && self.cpu_util == 0.0 && self.gpu_util.iter().all(|&u| u == 0.0)
    }
}

impl Default for Demand {
    fn default() -> Self {
        Self::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_demand_is_idle() {
        assert!(Demand::idle().is_idle());
        assert!(!Demand::new(1.0, 0.5, 0.1, 0.9).is_idle());
    }

    #[test]
    fn gpu_util_defaults_to_zero() {
        let d = Demand::new(10.0, 0.5, 0.2, 0.8);
        assert_eq!(d.gpu_util(0), 0.8);
        assert_eq!(d.gpu_util(3), 0.0);
    }

    #[test]
    fn clamped_bounds_fields() {
        let d = Demand {
            mem_gbs: -5.0,
            mem_frac: 1.5,
            cpu_frac: 0.9,
            cpu_util: -0.2,
            gpu_util: vec![2.0, -1.0],
        }
        .clamped();
        assert_eq!(d.mem_gbs, 0.0);
        assert_eq!(d.mem_frac, 1.0);
        assert_eq!(d.cpu_frac, 0.0); // squeezed out by mem_frac = 1
        assert_eq!(d.cpu_util, 0.0);
        assert_eq!(d.gpu_util, vec![1.0, 0.0]);
    }

    #[test]
    fn with_cpu_frac_respects_budget() {
        let d = Demand::new(10.0, 0.6, 0.5, 0.5).with_cpu_frac(0.9);
        assert!((d.cpu_frac - 0.4).abs() < 1e-12);
        let d = Demand::new(10.0, 0.2, 0.5, 0.5).with_cpu_frac(0.3);
        assert!((d.cpu_frac - 0.3).abs() < 1e-12);
    }
}
