//! Instantaneous resource demand presented to the node by a workload phase.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Maximum GPUs a single [`Demand`] can address.
///
/// Sized for the paper's testbeds (at most four A100s) with headroom; the
/// inline array keeps `Demand` `Copy` so the simulator's hot loop never
/// touches the heap.
pub const MAX_GPUS: usize = 8;

/// Per-GPU utilisation values stored inline (no heap allocation).
///
/// Behaves like a `&[f64]` via `Deref`; serialises as a plain JSON array so
/// existing workload specs (`"gpu_util": [0.9]`) are unchanged.
#[derive(Debug, Clone, Copy)]
pub struct GpuUtilVec {
    len: u8,
    vals: [f64; MAX_GPUS],
}

impl GpuUtilVec {
    /// An empty vector (all GPUs idle).
    #[must_use]
    pub const fn empty() -> Self {
        Self {
            len: 0,
            vals: [0.0; MAX_GPUS],
        }
    }

    /// A single-GPU utilisation.
    #[must_use]
    pub fn single(util: f64) -> Self {
        let mut v = Self::empty();
        v.push(util);
        v
    }

    /// Build from a slice.
    ///
    /// # Panics
    /// Panics when the slice holds more than [`MAX_GPUS`] entries.
    #[must_use]
    pub fn from_slice(vals: &[f64]) -> Self {
        assert!(
            vals.len() <= MAX_GPUS,
            "at most {MAX_GPUS} GPU utilisation entries supported, got {}",
            vals.len()
        );
        let mut v = Self::empty();
        for &u in vals {
            v.push(u);
        }
        v
    }

    /// Append one entry.
    ///
    /// # Panics
    /// Panics when the vector is already full ([`MAX_GPUS`] entries).
    pub fn push(&mut self, util: f64) {
        assert!((self.len as usize) < MAX_GPUS, "GpuUtilVec full");
        self.vals[self.len as usize] = util;
        self.len += 1;
    }

    /// Entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when there are no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entries as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.vals[..self.len as usize]
    }

    /// The entries as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.vals[..self.len as usize]
    }
}

impl Default for GpuUtilVec {
    fn default() -> Self {
        Self::empty()
    }
}

impl core::ops::Deref for GpuUtilVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl core::ops::DerefMut for GpuUtilVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl<'a> IntoIterator for &'a GpuUtilVec {
    type Item = &'a f64;
    type IntoIter = core::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl From<&[f64]> for GpuUtilVec {
    fn from(vals: &[f64]) -> Self {
        Self::from_slice(vals)
    }
}

impl FromIterator<f64> for GpuUtilVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut v = Self::empty();
        for u in iter {
            v.push(u);
        }
        v
    }
}

impl PartialEq for GpuUtilVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[f64]> for GpuUtilVec {
    fn eq(&self, other: &[f64]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<f64>> for GpuUtilVec {
    fn eq(&self, other: &Vec<f64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[f64; N]> for GpuUtilVec {
    fn eq(&self, other: &[f64; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Serialize for GpuUtilVec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.as_slice())
    }
}

impl<'de> Deserialize<'de> for GpuUtilVec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let vals = Vec::<f64>::deserialize(deserializer)?;
        if vals.len() > MAX_GPUS {
            return Err(D::Error::custom(format!(
                "gpu_util holds {} entries; at most {MAX_GPUS} supported",
                vals.len()
            )));
        }
        Ok(Self::from_slice(&vals))
    }
}

/// What a workload asks of the node at an instant.
///
/// `Demand` is the interface between the [`workload`](crate::workload) layer
/// and the node: phases declare how much host-memory traffic they generate,
/// how memory-bound their progress is, and how busy the CPU cores and GPUs
/// are. MAGUS itself never sees a `Demand` — it only observes the *delivered*
/// memory throughput through the PCM counters, exactly as on real hardware.
///
/// The type is `Copy` (GPU utilisations live in an inline array), so passing
/// one per simulation tick costs nothing on the heap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Demanded system memory throughput (GB/s) at full progress rate.
    pub mem_gbs: f64,
    /// Fraction of the phase's critical path stalled on memory traffic when
    /// bandwidth is capped below demand (0 = pure compute, 1 = pure copy).
    pub mem_frac: f64,
    /// Fraction of the critical path executed on host cores and therefore
    /// sensitive to core-frequency *throttling* (RAPL power capping).
    /// Uncapped DVFS is the reference: this term is exactly neutral unless
    /// a power limit forces the cores below their natural frequency.
    pub cpu_frac: f64,
    /// Average CPU core utilisation (0..1) across the node.
    pub cpu_util: f64,
    /// Per-GPU utilisation (0..1). Shorter vectors leave trailing GPUs idle.
    pub gpu_util: GpuUtilVec,
}

impl Demand {
    /// A fully idle node.
    #[must_use]
    pub fn idle() -> Self {
        Self {
            mem_gbs: 0.0,
            mem_frac: 0.0,
            cpu_frac: 0.0,
            cpu_util: 0.0,
            gpu_util: GpuUtilVec::empty(),
        }
    }

    /// Demand with a single-GPU utilisation.
    #[must_use]
    pub fn new(mem_gbs: f64, mem_frac: f64, cpu_util: f64, gpu_util: f64) -> Self {
        Self {
            mem_gbs,
            mem_frac,
            cpu_frac: 0.0,
            cpu_util,
            gpu_util: GpuUtilVec::single(gpu_util),
        }
    }

    /// Builder: set the throttle-sensitive host fraction (clamped so
    /// `mem_frac + cpu_frac <= 1`).
    #[must_use]
    pub fn with_cpu_frac(mut self, cpu_frac: f64) -> Self {
        self.cpu_frac = cpu_frac.clamp(0.0, 1.0 - self.mem_frac.clamp(0.0, 1.0));
        self
    }

    /// Utilisation of GPU `idx` (0 when the vector is shorter).
    #[must_use]
    pub fn gpu_util(&self, idx: usize) -> f64 {
        self.gpu_util.as_slice().get(idx).copied().unwrap_or(0.0)
    }

    /// Clamp all fields into their valid ranges; returns `self` for chaining.
    #[must_use]
    pub fn clamped(mut self) -> Self {
        self.mem_gbs = self.mem_gbs.max(0.0);
        self.mem_frac = self.mem_frac.clamp(0.0, 1.0);
        self.cpu_frac = self.cpu_frac.clamp(0.0, 1.0 - self.mem_frac);
        self.cpu_util = self.cpu_util.clamp(0.0, 1.0);
        for u in self.gpu_util.as_mut_slice() {
            *u = u.clamp(0.0, 1.0);
        }
        self
    }

    /// True when the demand represents a completely idle node.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.mem_gbs == 0.0 && self.cpu_util == 0.0 && self.gpu_util.iter().all(|&u| u == 0.0)
    }
}

impl Default for Demand {
    fn default() -> Self {
        Self::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_demand_is_idle() {
        assert!(Demand::idle().is_idle());
        assert!(!Demand::new(1.0, 0.5, 0.1, 0.9).is_idle());
    }

    #[test]
    fn gpu_util_defaults_to_zero() {
        let d = Demand::new(10.0, 0.5, 0.2, 0.8);
        assert_eq!(d.gpu_util(0), 0.8);
        assert_eq!(d.gpu_util(3), 0.0);
    }

    #[test]
    fn clamped_bounds_fields() {
        let d = Demand {
            mem_gbs: -5.0,
            mem_frac: 1.5,
            cpu_frac: 0.9,
            cpu_util: -0.2,
            gpu_util: GpuUtilVec::from_slice(&[2.0, -1.0]),
        }
        .clamped();
        assert_eq!(d.mem_gbs, 0.0);
        assert_eq!(d.mem_frac, 1.0);
        assert_eq!(d.cpu_frac, 0.0); // squeezed out by mem_frac = 1
        assert_eq!(d.cpu_util, 0.0);
        assert_eq!(d.gpu_util, vec![1.0, 0.0]);
    }

    #[test]
    fn with_cpu_frac_respects_budget() {
        let d = Demand::new(10.0, 0.6, 0.5, 0.5).with_cpu_frac(0.9);
        assert!((d.cpu_frac - 0.4).abs() < 1e-12);
        let d = Demand::new(10.0, 0.2, 0.5, 0.5).with_cpu_frac(0.3);
        assert!((d.cpu_frac - 0.3).abs() < 1e-12);
    }

    #[test]
    fn gpu_util_vec_serialises_as_plain_array() {
        let d = Demand::new(10.0, 0.5, 0.2, 0.9);
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"gpu_util\":[0.9]"), "{json}");
        let back: Demand = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn gpu_util_vec_rejects_oversized_input() {
        let json = format!("[{}]", vec!["0.5"; MAX_GPUS + 1].join(","));
        assert!(serde_json::from_str::<GpuUtilVec>(&json).is_err());
        let ok = format!("[{}]", vec!["0.5"; MAX_GPUS].join(","));
        let v: GpuUtilVec = serde_json::from_str(&ok).unwrap();
        assert_eq!(v.len(), MAX_GPUS);
    }

    #[test]
    fn gpu_util_vec_slice_semantics() {
        let mut v = GpuUtilVec::from_slice(&[0.1, 0.2, 0.3]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v[1], 0.2);
        assert_eq!(v.iter().copied().sum::<f64>(), 0.1 + 0.2 + 0.3);
        v.push(0.4);
        assert_eq!(v, [0.1, 0.2, 0.3, 0.4]);
        assert_eq!(GpuUtilVec::empty().len(), 0);
        let collected: GpuUtilVec = [0.5, 0.6].into_iter().collect();
        assert_eq!(collected, [0.5, 0.6]);
    }
}
