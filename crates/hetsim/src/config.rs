//! Node configuration: parameters for CPU, uncore, memory, and GPU models,
//! plus presets for the paper's three testbeds (§5).
//!
//! Calibration note: the power-model constants are fitted to the paper's
//! published operating points rather than to vendor datasheets — e.g. the
//! Intel+A100 preset reproduces Fig 2's UNet profile (package ≈200 W at max
//! uncore, ≈120 W at min uncore, +21% runtime at min). `EXPERIMENTS.md`
//! records the residuals.

use serde::{Deserialize, Serialize};

/// Per-socket CPU core-complex parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Physical cores per socket.
    pub cores: u32,
    /// Minimum core frequency (GHz).
    pub core_freq_min_ghz: f64,
    /// Base (all-core sustained) frequency (GHz).
    pub core_freq_base_ghz: f64,
    /// Maximum turbo frequency (GHz).
    pub core_freq_max_ghz: f64,
    /// Static (leakage + fabric floor, excluding uncore) power per socket (W).
    pub static_power_w: f64,
    /// Dynamic core power per socket at full utilisation and max frequency (W).
    pub dyn_power_max_w: f64,
    /// Exponent of the frequency term in dynamic core power (≈ v² f).
    pub dyn_freq_exp: f64,
    /// First-order smoothing constant for the DVFS governor per tick (0..1].
    pub dvfs_alpha: f64,
    /// Baseline instructions-per-cycle of unstalled busy cores (for the
    /// fixed-counter model that UPS reads).
    pub base_ipc: f64,
    /// How strongly host IPC couples to memory-starvation of the *workload*
    /// (0..1). On GPU-dominant applications this is weak: DMA transfers do
    /// not stall host cores — the host spins in synchronisation loops
    /// retiring instructions at full rate — which is precisely why UPS's
    /// IPC feedback, designed for CPU-only HPC codes, fails to notice
    /// uncore-induced starvation here (the paper's core motivation).
    pub ipc_stall_coupling: f64,
    /// Thermal design power per socket (W); the stock uncore governor only
    /// throttles when package power approaches this.
    pub tdp_w: f64,
}

/// Per-socket uncore-domain parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UncoreConfig {
    /// Minimum uncore frequency (GHz).
    pub freq_min_ghz: f64,
    /// Maximum uncore frequency (GHz).
    pub freq_max_ghz: f64,
    /// Uncore power per socket at the minimum frequency, idle (W).
    pub power_min_w: f64,
    /// Additional uncore power per socket at the maximum frequency (W),
    /// before the activity factor is applied.
    pub power_span_w: f64,
    /// Exponent of the normalised-frequency term in uncore power.
    pub power_exp: f64,
    /// Fraction of the dynamic term that is frequency-only (clock tree,
    /// always burned at a given frequency); the remainder scales with
    /// memory activity.
    pub dyn_static_frac: f64,
    /// Frequency slew rate (GHz per second) when moving towards the target;
    /// models the hardware's finite ramp and penalises thrashing.
    pub slew_ghz_per_s: f64,
}

/// Per-socket memory-subsystem parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Peak deliverable bandwidth per socket at maximum uncore frequency (GB/s).
    pub peak_bw_gbs: f64,
    /// Fraction of peak bandwidth still deliverable at minimum uncore
    /// frequency. Bandwidth interpolates between this floor and the peak.
    pub floor_frac: f64,
    /// Exponent of the interpolation (1.0 = linear in normalised frequency).
    pub bw_exp: f64,
    /// DRAM background power per socket (W).
    pub dram_base_w: f64,
    /// DRAM power per GB/s of delivered traffic (W per GB/s).
    pub dram_w_per_gbs: f64,
}

/// Per-device GPU parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Idle board power (W). The paper reports ≈30 W for one A100-40GB and
    /// ≈200 W total for four A100-80GB.
    pub idle_power_w: f64,
    /// Board power at full utilisation (W).
    pub max_power_w: f64,
    /// Minimum SM clock (MHz).
    pub sm_clock_min_mhz: f64,
    /// Maximum SM clock (MHz).
    pub sm_clock_max_mhz: f64,
    /// First-order smoothing constant of the SM-clock governor per tick.
    pub clock_alpha: f64,
}

/// Stock (hardware-default) uncore-governor parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TdpGovernorConfig {
    /// Enable the TDP-coupled throttle (true on all Intel presets).
    pub enabled: bool,
    /// Package-power fraction of TDP above which the uncore is throttled.
    pub trigger_frac: f64,
    /// GHz removed from the uncore target per watt above the trigger.
    pub ghz_per_watt: f64,
}

impl Default for TdpGovernorConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            trigger_frac: 0.95,
            ghz_per_watt: 0.05,
        }
    }
}

/// Full node configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Human-readable system name (e.g. `"Intel+A100"`).
    pub name: String,
    /// Number of CPU sockets.
    pub sockets: u32,
    /// Per-socket CPU parameters.
    pub cpu: CpuConfig,
    /// Per-socket uncore parameters.
    pub uncore: UncoreConfig,
    /// Per-socket memory parameters.
    pub mem: MemoryConfig,
    /// GPU devices (one entry per board).
    pub gpus: Vec<GpuConfig>,
    /// Stock uncore governor behaviour.
    pub tdp_governor: TdpGovernorConfig,
    /// Simulation tick (µs). 10 ms resolves the millisecond-scale phase
    /// alternation the paper describes while keeping runs fast.
    pub tick_us: u64,
    /// Seed for the node's deterministic sensor/jitter noise.
    pub seed: u64,
    /// Per-core MSR read energy (µJ) — the dominant term in UPS's power
    /// overhead; higher on the Sapphire Rapids tile architecture.
    pub core_msr_read_energy_uj: f64,
    /// Per-core MSR read latency (µs).
    pub core_msr_read_latency_us: f64,
    /// Memory-throughput measurement window of the PCM-style monitor (µs).
    pub pcm_window_us: u64,
    /// Daemon active power while collecting a PCM measurement (W).
    pub pcm_daemon_power_w: f64,
}

impl NodeConfig {
    /// Total logical core count across sockets.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cpu.cores
    }

    /// Peak system memory bandwidth at maximum uncore frequency (GB/s).
    #[must_use]
    pub fn peak_system_bw_gbs(&self) -> f64 {
        self.mem.peak_bw_gbs * f64::from(self.sockets)
    }

    /// The Chameleon Intel+A100 testbed: 2× Xeon Platinum 8380 (40 cores,
    /// uncore 0.8–2.2 GHz, TDP 270 W) + 1× A100-40GB.
    #[must_use]
    pub fn intel_a100() -> Self {
        Self {
            name: "Intel+A100".to_string(),
            sockets: 2,
            cpu: CpuConfig {
                cores: 40,
                core_freq_min_ghz: 0.8,
                core_freq_base_ghz: 2.3,
                core_freq_max_ghz: 3.4,
                static_power_w: 24.0,
                dyn_power_max_w: 170.0,
                dyn_freq_exp: 2.2,
                dvfs_alpha: 0.5,
                base_ipc: 1.7,
                ipc_stall_coupling: 0.14,
                tdp_w: 270.0,
            },
            uncore: UncoreConfig {
                freq_min_ghz: 0.8,
                freq_max_ghz: 2.2,
                power_min_w: 13.0,
                power_span_w: 50.0,
                power_exp: 1.35,
                dyn_static_frac: 0.8,
                slew_ghz_per_s: 28.0,
            },
            mem: MemoryConfig {
                peak_bw_gbs: 80.0,
                floor_frac: 0.33,
                bw_exp: 1.0,
                dram_base_w: 10.0,
                dram_w_per_gbs: 0.10,
            },
            gpus: vec![GpuConfig::a100_40gb()],
            tdp_governor: TdpGovernorConfig::default(),
            tick_us: 10_000,
            seed: 0x4d41_4755_5331, // "MAGUS1"
            core_msr_read_energy_uj: 26_000.0,
            core_msr_read_latency_us: 1_800.0,
            pcm_window_us: 100_000,
            pcm_daemon_power_w: 5.8,
        }
    }

    /// Intel+4A100: same host as [`NodeConfig::intel_a100`] but with four
    /// A100-80GB boards on PCIe (idle floor ≈200 W total).
    #[must_use]
    pub fn intel_4a100() -> Self {
        let mut cfg = Self::intel_a100();
        cfg.name = "Intel+4A100".to_string();
        cfg.gpus = vec![GpuConfig::a100_80gb(); 4];
        cfg.seed = 0x4d41_4755_5334;
        cfg
    }

    /// Intel+Max1550: 2× Xeon CPU Max 9462 (32 cores, Sapphire Rapids,
    /// uncore 0.8–2.5 GHz, HBM2e) + Data Center GPU Max 1550.
    ///
    /// Per-core MSR access is costlier across the SPR compute tiles, which
    /// is why UPS's power overhead rises to 7.9% here (Table 2).
    #[must_use]
    pub fn intel_max1550() -> Self {
        Self {
            name: "Intel+Max1550".to_string(),
            sockets: 2,
            cpu: CpuConfig {
                cores: 32,
                core_freq_min_ghz: 0.8,
                core_freq_base_ghz: 2.7,
                core_freq_max_ghz: 3.5,
                static_power_w: 28.0,
                dyn_power_max_w: 200.0,
                dyn_freq_exp: 2.2,
                dvfs_alpha: 0.5,
                base_ipc: 1.9,
                ipc_stall_coupling: 0.14,
                tdp_w: 350.0,
            },
            uncore: UncoreConfig {
                freq_min_ghz: 0.8,
                freq_max_ghz: 2.5,
                power_min_w: 15.0,
                power_span_w: 44.0,
                power_exp: 1.35,
                dyn_static_frac: 0.8,
                slew_ghz_per_s: 28.0,
            },
            mem: MemoryConfig {
                peak_bw_gbs: 120.0,
                floor_frac: 0.38,
                bw_exp: 1.0,
                dram_base_w: 14.0,
                dram_w_per_gbs: 0.08,
            },
            gpus: vec![GpuConfig::max_1550()],
            tdp_governor: TdpGovernorConfig::default(),
            tick_us: 10_000,
            seed: 0x4d41_4755_534d,
            core_msr_read_energy_uj: 62_000.0,
            core_msr_read_latency_us: 2_400.0,
            pcm_window_us: 100_000,
            pcm_daemon_power_w: 6.0,
        }
    }
}

impl GpuConfig {
    /// NVIDIA A100-40GB (PCIe): idle ≈30 W per the paper's Fig 4c discussion.
    #[must_use]
    pub fn a100_40gb() -> Self {
        Self {
            idle_power_w: 30.0,
            max_power_w: 250.0,
            sm_clock_min_mhz: 210.0,
            sm_clock_max_mhz: 1410.0,
            clock_alpha: 0.6,
        }
    }

    /// NVIDIA A100-80GB (PCIe): idle ≈50 W (4 boards ≈ 200 W, Fig 4c).
    #[must_use]
    pub fn a100_80gb() -> Self {
        Self {
            idle_power_w: 50.0,
            max_power_w: 300.0,
            sm_clock_min_mhz: 210.0,
            sm_clock_max_mhz: 1410.0,
            clock_alpha: 0.6,
        }
    }

    /// Intel Data Center GPU Max 1550 (Ponte Vecchio, 128 GB HBM2e).
    #[must_use]
    pub fn max_1550() -> Self {
        Self {
            idle_power_w: 110.0,
            max_power_w: 600.0,
            sm_clock_min_mhz: 900.0,
            sm_clock_max_mhz: 1600.0,
            clock_alpha: 0.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for cfg in [
            NodeConfig::intel_a100(),
            NodeConfig::intel_4a100(),
            NodeConfig::intel_max1550(),
        ] {
            assert!(cfg.sockets >= 1);
            assert!(cfg.uncore.freq_min_ghz < cfg.uncore.freq_max_ghz);
            assert!(cfg.cpu.core_freq_min_ghz < cfg.cpu.core_freq_max_ghz);
            assert!(cfg.mem.floor_frac > 0.0 && cfg.mem.floor_frac < 1.0);
            assert!(!cfg.gpus.is_empty());
            assert!(cfg.tick_us > 0);
        }
    }

    #[test]
    fn a100_matches_paper_uncore_range() {
        let cfg = NodeConfig::intel_a100();
        assert_eq!(cfg.uncore.freq_min_ghz, 0.8);
        assert_eq!(cfg.uncore.freq_max_ghz, 2.2);
        assert_eq!(cfg.total_cores(), 80);
    }

    #[test]
    fn max1550_matches_paper_uncore_range() {
        let cfg = NodeConfig::intel_max1550();
        assert_eq!(cfg.uncore.freq_min_ghz, 0.8);
        assert_eq!(cfg.uncore.freq_max_ghz, 2.5);
    }

    #[test]
    fn multi_gpu_idle_floor_near_200w() {
        let cfg = NodeConfig::intel_4a100();
        let idle: f64 = cfg.gpus.iter().map(|g| g.idle_power_w).sum();
        assert!((idle - 200.0).abs() < 1.0);
    }

    #[test]
    fn presets_have_distinct_names_and_seeds() {
        let a = NodeConfig::intel_a100();
        let b = NodeConfig::intel_4a100();
        let c = NodeConfig::intel_max1550();
        assert_ne!(a.name, b.name);
        assert_ne!(b.name, c.name);
        assert_ne!(a.seed, b.seed);
        assert_ne!(b.seed, c.seed);
    }
}
