//! Simple uncore policies applied through the MSR surface.
//!
//! The *stock TDP-coupled governor* is part of [`crate::node::Node::step`]
//! itself (it is hardware behaviour). This module provides the helper
//! policies used as experimental baselines and building blocks:
//!
//! * [`set_fixed_uncore`] — pin the uncore to one frequency on every socket
//!   (the max/min settings of Fig 2 and Fig 5a).
//! * [`UncoreSetter`] — a small wrapper that deduplicates writes to
//!   `0x620`, matching how a careful runtime avoids redundant `wrmsr`s.

use magus_msr::{MsrError, MsrScope, UncoreRatioLimit, MSR_UNCORE_RATIO_LIMIT};

use crate::node::Node;

/// Pin every socket's uncore min and max limits to `ghz`.
pub fn set_fixed_uncore(node: &mut Node, ghz: f64) -> Result<(), MsrError> {
    let raw = UncoreRatioLimit::from_ghz(ghz, ghz).encode();
    for pkg in 0..node.config().sockets {
        node.msr_write(MsrScope::Package(pkg), MSR_UNCORE_RATIO_LIMIT, raw)?;
    }
    Ok(())
}

/// Write-deduplicating uncore max-limit setter.
///
/// Runtimes call [`UncoreSetter::set_max`] every decision cycle; the setter
/// only issues `wrmsr` when the requested maximum actually changes, so MSR
/// write costs reflect real transitions rather than decision frequency.
#[derive(Debug, Clone)]
pub struct UncoreSetter {
    last_max_ghz: Option<f64>,
    writes: u64,
}

impl UncoreSetter {
    /// New setter with no known previous value.
    #[must_use]
    pub fn new() -> Self {
        Self {
            last_max_ghz: None,
            writes: 0,
        }
    }

    /// Set the uncore max limit on all sockets, preserving the min bits.
    /// Returns `true` when a write was actually issued.
    pub fn set_max(&mut self, node: &mut Node, max_ghz: f64) -> Result<bool, MsrError> {
        if let Some(last) = self.last_max_ghz {
            if (last - max_ghz).abs() < 1e-9 {
                return Ok(false);
            }
        }
        for pkg in 0..node.config().sockets {
            let scope = MsrScope::Package(pkg);
            let raw = node.msr_read(scope, MSR_UNCORE_RATIO_LIMIT)?;
            let spliced = UncoreRatioLimit::splice_max(raw, max_ghz);
            node.msr_write(scope, MSR_UNCORE_RATIO_LIMIT, spliced)?;
        }
        self.last_max_ghz = Some(max_ghz);
        self.writes += 1;
        Ok(true)
    }

    /// Number of distinct max-limit changes issued.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The last max limit issued, if any.
    #[must_use]
    pub fn last_max_ghz(&self) -> Option<f64> {
        self.last_max_ghz
    }
}

impl Default for UncoreSetter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::demand::Demand;

    #[test]
    fn fixed_uncore_pins_all_sockets() {
        let mut node = Node::new(NodeConfig::intel_a100());
        set_fixed_uncore(&mut node, 1.4).unwrap();
        for _ in 0..100 {
            node.step(10_000, &Demand::idle());
        }
        for socket in node.sockets() {
            assert!((socket.uncore.freq_ghz() - 1.4).abs() < 1e-9);
        }
    }

    #[test]
    fn setter_dedups_identical_requests() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut setter = UncoreSetter::new();
        assert!(setter.set_max(&mut node, 0.8).unwrap());
        assert!(!setter.set_max(&mut node, 0.8).unwrap());
        assert!(setter.set_max(&mut node, 2.2).unwrap());
        assert_eq!(setter.writes(), 2);
        assert_eq!(setter.last_max_ghz(), Some(2.2));
    }

    #[test]
    fn setter_preserves_min_bits() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut setter = UncoreSetter::new();
        setter.set_max(&mut node, 1.0).unwrap();
        let (min, max) = node.sockets()[0].uncore.msr_limits();
        assert!((min - 0.8).abs() < 1e-9, "min limit disturbed: {min}");
        assert!((max - 1.0).abs() < 1e-9);
    }
}
