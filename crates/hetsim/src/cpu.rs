//! CPU core complex: per-core DVFS and core-domain power.
//!
//! The hardware DVFS governor is modelled as a first-order tracker of the
//! utilisation-implied frequency target — this reproduces the Fig 1a
//! behaviour where core frequency moves with workload demand while the
//! uncore (handled separately in [`crate::uncore`]) stays pinned.

use crate::config::CpuConfig;
use serde::{Deserialize, Serialize};

/// State of one socket's core complex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuComplex {
    cfg: CpuConfig,
    /// Current average core frequency (GHz). Individual cores jitter around
    /// this value deterministically (see [`CpuComplex::core_freq_ghz`]).
    freq_ghz: f64,
    /// Most recent utilisation (0..1), retained for counter modelling.
    util: f64,
    /// Cumulative instructions retired across the socket.
    instructions: f64,
    /// Cumulative unhalted core cycles across the socket.
    cycles: f64,
    /// RAPL-enforcement frequency cap (GHz); `f64::INFINITY` when no cap.
    freq_cap_ghz: f64,
    /// Last tick's uncapped DVFS target (GHz) — the throttling reference.
    natural_target_ghz: f64,
}

impl CpuComplex {
    /// Create a complex idling at minimum frequency.
    #[must_use]
    pub fn new(cfg: CpuConfig) -> Self {
        let f0 = cfg.core_freq_min_ghz;
        Self {
            cfg,
            freq_ghz: f0,
            util: 0.0,
            instructions: 0.0,
            cycles: 0.0,
            freq_cap_ghz: f64::INFINITY,
            natural_target_ghz: f0,
        }
    }

    /// Set the RAPL-enforcement frequency cap (GHz). `f64::INFINITY`
    /// removes the cap. The cap floors at the minimum core frequency.
    pub fn set_freq_cap(&mut self, cap_ghz: f64) {
        self.freq_cap_ghz = cap_ghz.max(self.cfg.core_freq_min_ghz);
    }

    /// Current RAPL-enforcement frequency cap (GHz).
    #[must_use]
    pub fn freq_cap_ghz(&self) -> f64 {
        self.freq_cap_ghz
    }

    /// Advance one tick: track the utilisation-implied frequency target and
    /// accumulate fixed-counter state.
    ///
    /// `progress_factor` (0..1] is how fast memory-bound work is actually
    /// progressing; it scales retired instructions so that IPC — which the
    /// UPS baseline monitors — degrades when the uncore throttles a
    /// memory-bound phase, exactly the signal UPS keys on.
    pub fn step(&mut self, dt_s: f64, util: f64, progress_factor: f64) {
        let util = util.clamp(0.0, 1.0);
        self.util = util;
        // DVFS target: min freq when idle, base at moderate load, turbo when
        // hot. Piecewise-linear in utilisation.
        let target = if util < 0.5 {
            self.cfg.core_freq_min_ghz
                + (self.cfg.core_freq_base_ghz - self.cfg.core_freq_min_ghz) * (util / 0.5)
        } else {
            self.cfg.core_freq_base_ghz
                + (self.cfg.core_freq_max_ghz - self.cfg.core_freq_base_ghz) * ((util - 0.5) / 0.5)
        };
        // RAPL power-limit enforcement throttles core DVFS below its
        // utilisation-implied target.
        self.natural_target_ghz = target;
        let target = target.min(self.freq_cap_ghz);
        self.freq_ghz += (target - self.freq_ghz) * self.cfg.dvfs_alpha;

        let (cycles, instructions) = self.tick_counter_increments(util, progress_factor, dt_s);
        self.cycles += cycles;
        self.instructions += instructions;
    }

    /// Per-tick fixed-counter increments `(cycles, instructions)` at the
    /// *current* frequency. `step` applies exactly these; the node's frozen
    /// fast path captures them once and replays them, so both paths must go
    /// through this single definition to stay bit-identical.
    pub(crate) fn tick_counter_increments(
        &self,
        util: f64,
        progress_factor: f64,
        dt_s: f64,
    ) -> (f64, f64) {
        let util = util.clamp(0.0, 1.0);
        let busy_cores = util * f64::from(self.cfg.cores);
        let cycles = busy_cores * self.freq_ghz * 1e9 * dt_s;
        // Host IPC only partially reflects workload starvation: spinning
        // synchronisation threads retire instructions regardless of DMA
        // progress. `ipc_stall_coupling` sets the visible fraction.
        let coupling = self.cfg.ipc_stall_coupling.clamp(0.0, 1.0);
        let visible = 1.0 - coupling * (1.0 - progress_factor.clamp(0.0, 1.0));
        (cycles, cycles * self.cfg.base_ipc * visible)
    }

    /// Apply pre-captured per-tick counter increments without re-evaluating
    /// the DVFS model (frozen fast path; frequency provably unchanged).
    pub(crate) fn replay_tick(&mut self, cycles_inc: f64, instructions_inc: f64) {
        self.cycles += cycles_inc;
        self.instructions += instructions_inc;
    }

    /// Current average core frequency (GHz).
    #[must_use]
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Deterministic per-core frequency (GHz): the average plus a small
    /// core-index-dependent offset, as plotted in Fig 1a.
    #[must_use]
    pub fn core_freq_ghz(&self, core: u32) -> f64 {
        let jitter = (f64::from(core % 7) - 3.0) * 0.015;
        (self.freq_ghz + jitter).clamp(self.cfg.core_freq_min_ghz, self.cfg.core_freq_max_ghz)
    }

    /// Most recent utilisation (0..1).
    #[must_use]
    pub fn util(&self) -> f64 {
        self.util
    }

    /// Core-domain power (W) for this socket at the current operating point.
    ///
    /// `static + dyn_max * util * (f/f_max)^exp` — the classic `C·V²·f`
    /// shape with voltage folded into the frequency exponent.
    #[must_use]
    pub fn power_w(&self) -> f64 {
        let norm = (self.freq_ghz / self.cfg.core_freq_max_ghz).clamp(0.0, 1.0);
        self.cfg.static_power_w
            + self.cfg.dyn_power_max_w * self.util * norm.powf(self.cfg.dyn_freq_exp)
    }

    /// Cumulative instructions retired across the socket.
    #[must_use]
    pub fn instructions(&self) -> f64 {
        self.instructions
    }

    /// Cumulative unhalted cycles across the socket.
    #[must_use]
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Last tick's uncapped DVFS target (GHz) — feedback state for the
    /// frozen fast path's fixed-point snapshot.
    pub(crate) fn natural_target_ghz(&self) -> f64 {
        self.natural_target_ghz
    }

    /// How much of the natural (uncapped-DVFS) core speed is currently
    /// delivered (0..1]. Exactly 1.0 when no power limit binds; below 1.0
    /// while RAPL enforcement holds the cores under their utilisation-
    /// implied frequency.
    #[must_use]
    pub fn throttle_factor(&self) -> f64 {
        if self.natural_target_ghz <= 0.0 {
            return 1.0;
        }
        (self.freq_ghz / self.natural_target_ghz).min(1.0)
    }

    /// Per-core share of the socket-cumulative instruction counter, with a
    /// deterministic core-dependent skew (work is never perfectly balanced).
    #[must_use]
    pub fn core_instructions(&self, core: u32) -> u64 {
        let share = self.instructions / f64::from(self.cfg.cores);
        let skew = 1.0 + (f64::from(core % 5) - 2.0) * 0.01;
        (share * skew).max(0.0) as u64
    }

    /// Per-core share of the socket-cumulative cycle counter.
    #[must_use]
    pub fn core_cycles(&self, core: u32) -> u64 {
        let share = self.cycles / f64::from(self.cfg.cores);
        let skew = 1.0 + (f64::from(core % 5) - 2.0) * 0.01;
        (share * skew).max(0.0) as u64
    }

    /// The configuration this complex was built with.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;

    fn cpu() -> CpuComplex {
        CpuComplex::new(NodeConfig::intel_a100().cpu)
    }

    #[test]
    fn starts_at_min_frequency() {
        let c = cpu();
        assert!((c.freq_ghz() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn frequency_tracks_utilisation() {
        let mut c = cpu();
        for _ in 0..100 {
            c.step(0.01, 1.0, 1.0);
        }
        assert!((c.freq_ghz() - c.config().core_freq_max_ghz).abs() < 0.05);
        for _ in 0..100 {
            c.step(0.01, 0.0, 1.0);
        }
        assert!((c.freq_ghz() - c.config().core_freq_min_ghz).abs() < 0.05);
    }

    #[test]
    fn freq_cap_throttles_dvfs() {
        let mut c = cpu();
        c.set_freq_cap(1.2);
        for _ in 0..100 {
            c.step(0.01, 1.0, 1.0);
        }
        assert!((c.freq_ghz() - 1.2).abs() < 0.05, "{}", c.freq_ghz());
        c.set_freq_cap(f64::INFINITY);
        for _ in 0..100 {
            c.step(0.01, 1.0, 1.0);
        }
        assert!((c.freq_ghz() - c.config().core_freq_max_ghz).abs() < 0.05);
    }

    #[test]
    fn freq_cap_floors_at_min() {
        let mut c = cpu();
        c.set_freq_cap(0.1);
        assert!((c.freq_cap_ghz() - c.config().core_freq_min_ghz).abs() < 1e-12);
    }

    #[test]
    fn power_monotone_in_utilisation() {
        let mut lo = cpu();
        let mut hi = cpu();
        for _ in 0..50 {
            lo.step(0.01, 0.2, 1.0);
            hi.step(0.01, 0.9, 1.0);
        }
        assert!(hi.power_w() > lo.power_w());
        assert!(lo.power_w() >= lo.config().static_power_w);
    }

    #[test]
    fn counters_accumulate_and_ipc_tracks_progress() {
        let mut c = cpu();
        for _ in 0..100 {
            c.step(0.01, 0.5, 1.0);
        }
        let ipc_full = c.instructions() / c.cycles();
        assert!((ipc_full - c.config().base_ipc).abs() < 1e-9);

        let mut stalled = cpu();
        for _ in 0..100 {
            stalled.step(0.01, 0.5, 0.5);
        }
        // With weak IPC/stall coupling, a 50% starvation shows up as only
        // a ~7% IPC dip: barely visible against UPS's tolerance — the
        // "blind feedback" effect on GPU-dominant hosts.
        let ipc_stalled = stalled.instructions() / stalled.cycles();
        let coupling = stalled.config().ipc_stall_coupling;
        let expect = ipc_full * (1.0 - coupling * 0.5);
        assert!(
            (ipc_stalled - expect).abs() < 1e-9,
            "{ipc_stalled} vs {expect}"
        );
    }

    #[test]
    fn per_core_values_are_deterministic_and_clamped() {
        let mut c = cpu();
        for _ in 0..20 {
            c.step(0.01, 0.7, 1.0);
        }
        assert_eq!(c.core_freq_ghz(3), c.core_freq_ghz(3));
        for core in 0..40 {
            let f = c.core_freq_ghz(core);
            assert!(f >= c.config().core_freq_min_ghz && f <= c.config().core_freq_max_ghz);
        }
        assert_ne!(c.core_instructions(0), c.core_instructions(1));
    }
}
