//! Time-series recording of node state, used by the figure regenerators.

use serde::{Deserialize, Serialize};

use crate::node::Node;

/// One recorded sample of node state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Sample time (s).
    pub t_s: f64,
    /// Cumulative application progress at this sample (seconds of work
    /// content completed). Traces from differently-governed runs align on
    /// this axis: equal progress ⇒ the same point in the application.
    pub progress_s: f64,
    /// Delivered system memory throughput (GB/s), noise-free ground truth.
    pub mem_gbs: f64,
    /// Demanded system memory throughput (GB/s).
    pub demand_gbs: f64,
    /// Socket-0 uncore frequency (GHz).
    pub uncore_ghz: f64,
    /// Socket-0 mean core frequency (GHz).
    pub core_freq_ghz: f64,
    /// GPU-0 SM clock (MHz); 0 when the node has no GPU.
    pub gpu_clock_mhz: f64,
    /// CPU package power (W), both sockets.
    pub pkg_w: f64,
    /// DRAM power (W), both sockets.
    pub dram_w: f64,
    /// GPU board power (W), all devices.
    pub gpu_w: f64,
    /// Monitoring-overhead power (W).
    pub overhead_w: f64,
}

/// Records [`TraceSample`]s at a fixed interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRecorder {
    interval_us: u64,
    next_due_us: u64,
    samples: Vec<TraceSample>,
}

impl TraceRecorder {
    /// Recorder sampling every `interval_us` microseconds. An interval of 0
    /// disables recording.
    #[must_use]
    pub fn new(interval_us: u64) -> Self {
        Self {
            interval_us,
            next_due_us: 0,
            samples: Vec::new(),
        }
    }

    /// A disabled recorder.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// True when recording is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.interval_us > 0
    }

    /// Observe the node after a tick; records a sample when due.
    pub fn observe(&mut self, node: &Node, demand_gbs: f64, progress_s: f64) {
        if self.interval_us == 0 || node.time_us() < self.next_due_us {
            return;
        }
        self.next_due_us = node.time_us() + self.interval_us;
        let socket0 = &node.sockets()[0];
        let power = node.last_power();
        self.samples.push(TraceSample {
            t_s: node.time_s(),
            progress_s,
            mem_gbs: node.delivered_gbs(),
            demand_gbs,
            uncore_ghz: socket0.uncore.freq_ghz(),
            core_freq_ghz: socket0.cpu.freq_ghz(),
            gpu_clock_mhz: node.gpus().first().map_or(0.0, |g| g.sm_clock_mhz()),
            pkg_w: power.pkg_w(),
            dram_w: power.dram_w,
            gpu_w: power.gpu_w,
            overhead_w: power.overhead_w,
        });
    }

    /// Recorded samples.
    #[must_use]
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Take ownership of the samples, leaving the recorder empty.
    pub fn take_samples(&mut self) -> Vec<TraceSample> {
        core::mem::take(&mut self.samples)
    }

    /// Mean of a projected quantity over all samples (0 when empty).
    pub fn mean_of(&self, f: impl Fn(&TraceSample) -> f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(f).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::demand::Demand;

    #[test]
    fn records_at_interval() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut rec = TraceRecorder::new(100_000); // 0.1 s
        let demand = Demand::new(10.0, 0.3, 0.2, 0.5);
        for _ in 0..100 {
            node.step(10_000, &demand); // 1 s total
            rec.observe(&node, demand.mem_gbs, 0.0);
        }
        // 1 s of run at 0.1 s interval -> ~10 samples.
        assert!(
            (9..=11).contains(&rec.samples().len()),
            "{}",
            rec.samples().len()
        );
        assert!(rec.samples().windows(2).all(|w| w[1].t_s > w[0].t_s));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut rec = TraceRecorder::disabled();
        for _ in 0..10 {
            node.step(10_000, &Demand::idle());
            rec.observe(&node, 0.0, 0.0);
        }
        assert!(rec.samples().is_empty());
        assert!(!rec.enabled());
    }

    #[test]
    fn mean_of_projects() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut rec = TraceRecorder::new(10_000);
        for _ in 0..50 {
            node.step(10_000, &Demand::idle());
            rec.observe(&node, 0.0, 0.0);
        }
        let mean_pkg = rec.mean_of(|s| s.pkg_w);
        assert!(mean_pkg > 0.0);
        assert_eq!(rec.mean_of(|s| s.mem_gbs), 0.0);
    }

    #[test]
    fn take_samples_empties() {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut rec = TraceRecorder::new(10_000);
        node.step(10_000, &Demand::idle());
        rec.observe(&node, 0.0, 0.0);
        let taken = rec.take_samples();
        assert_eq!(taken.len(), 1);
        assert!(rec.samples().is_empty());
    }
}
