//! Per-node instrumentation state (only compiled with the `telemetry`
//! feature).
//!
//! [`NodeTelemetry`] rides inside [`crate::Node`] and obeys two hard
//! rules:
//!
//! * **Sim-time only.** Every recorded value derives from simulated state
//!   (`Node::time_us`, frequencies, counter deltas) — never the wall
//!   clock — so two identical runs produce byte-identical telemetry.
//! * **Invisible to the simulation.** Recording never touches
//!   `state_epoch`, the cost ledger, or any feedback state: an
//!   instrumented run computes exactly what an uninstrumented run does,
//!   and the macro-stepping fast path stays frozen across event pushes.
//!
//! The hot-loop cost is deliberately tiny: the residency histogram is a
//! fixed array indexed by a pre-computed bin (no hashing, no allocation),
//! and the remaining counters are single integer adds. Decision *events*
//! are pushed by runtime drivers at decision cadence (~100 ms of simulated
//! time), never per tick.

use magus_telemetry::{Event, EventLog, NodeCounters};

/// Number of uncore-frequency residency bins (0.1 GHz each, 0.0–3.1 GHz;
/// the last bin also absorbs anything faster).
pub const RESIDENCY_BINS: usize = 32;

/// Residency bin for an uncore frequency: `round(ghz * 10)`, clamped to
/// the last bin. Bin 18 covers readings that round to 1.8 GHz.
#[inline]
#[must_use]
pub fn freq_bin(ghz: f64) -> u16 {
    let bin = (ghz * 10.0).round();
    if bin <= 0.0 {
        0
    } else if bin >= (RESIDENCY_BINS - 1) as f64 {
        (RESIDENCY_BINS - 1) as u16
    } else {
        bin as u16
    }
}

/// Instrumentation state carried by every [`crate::Node`].
#[derive(Debug, Clone, Default)]
pub struct NodeTelemetry {
    /// `wrmsr` writes to `MSR 0x620` (`UNCORE_RATIO_LIMIT`).
    pub(crate) uncore_msr_writes: u64,
    /// Fixed-point spans frozen by the fast path.
    pub(crate) fastpath_frozen_spans: u64,
    /// Ticks replayed from a frozen span.
    pub(crate) fastpath_replayed_ticks: u64,
    /// Frozen spans torn down by an epoch/demand/dt event.
    pub(crate) fastpath_invalidations: u64,
    /// Socket-µs of uncore residency per frequency bin (see [`freq_bin`]).
    pub(crate) residency_us: [u64; RESIDENCY_BINS],
    /// Structured decision/actuation events, in simulation order.
    pub(crate) events: EventLog,
}

impl NodeTelemetry {
    /// Append a structured event (bounded; drops past the log cap).
    ///
    /// This must never perturb simulated state — in particular it does
    /// *not* bump the node's `state_epoch`, so pushing an event keeps any
    /// frozen fast-forward span intact.
    pub fn push_event(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        self.events.events()
    }

    /// Drain buffered events (the drop counter survives).
    pub fn take_events(&mut self) -> Vec<Event> {
        self.events.take()
    }

    /// Snapshot the deterministic counters in portable form.
    #[must_use]
    pub fn counters(&self) -> NodeCounters {
        NodeCounters {
            uncore_msr_writes: self.uncore_msr_writes,
            fastpath_frozen_spans: self.fastpath_frozen_spans,
            fastpath_replayed_ticks: self.fastpath_replayed_ticks,
            fastpath_invalidations: self.fastpath_invalidations,
            residency_us: self
                .residency_us
                .iter()
                .enumerate()
                .filter(|&(_, &us)| us > 0)
                .map(|(bin, &us)| (bin as u16, us))
                .collect(),
            events_dropped: self.events.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_bins_round_and_clamp() {
        assert_eq!(freq_bin(0.0), 0);
        assert_eq!(freq_bin(-1.0), 0);
        assert_eq!(freq_bin(0.8), 8);
        assert_eq!(freq_bin(1.84), 18);
        assert_eq!(freq_bin(2.2), 22);
        assert_eq!(freq_bin(9.9), (RESIDENCY_BINS - 1) as u16);
    }

    #[test]
    fn counters_report_only_occupied_bins() {
        let mut t = NodeTelemetry::default();
        t.residency_us[22] = 10_000;
        t.residency_us[8] = 5_000;
        t.uncore_msr_writes = 3;
        let c = t.counters();
        assert_eq!(c.residency_us, vec![(8, 5_000), (22, 10_000)]);
        assert_eq!(c.residency_total_us(), 15_000);
        assert_eq!(c.uncore_msr_writes, 3);
    }
}
