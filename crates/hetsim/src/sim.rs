//! Simulation driver: advances a node through an application trace.
//!
//! [`Simulation`] owns the node, the running application, and an optional
//! trace recorder. It exposes a per-tick [`Simulation::step`] so runtime
//! drivers (MAGUS, UPS) can interleave decisions with hardware progress,
//! plus [`Simulation::run_to_completion`] for baseline runs.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::demand::Demand;
use crate::node::{FastForward, Node, StepOutcome};
use crate::power::EnergyTotals;
use crate::trace::TraceRecorder;
use crate::workload::AppTrace;

/// Execution cursor over an application trace. The trace is held behind an
/// `Arc` so interned catalog traces (and fleet nodes running the same app)
/// share one allocation; cloning a `Simulation` is then cursor-cheap.
#[derive(Debug, Clone)]
struct AppExec {
    trace: Arc<AppTrace>,
    phase_idx: usize,
    phase_done_s: f64,
}

/// Summary of a completed (or truncated) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Application name.
    pub app: String,
    /// System name.
    pub system: String,
    /// Wall-clock runtime (s) until the trace completed.
    pub runtime_s: f64,
    /// Whether the application actually finished within the step budget.
    pub completed: bool,
    /// Cumulative energy totals over the run.
    pub energy: EnergyTotals,
    /// Mean CPU-side power over the run (pkg + DRAM), W.
    pub mean_cpu_w: f64,
    /// Mean total node power over the run, W.
    pub mean_total_w: f64,
    /// Uncore target transitions summed over sockets.
    pub uncore_transitions: u64,
    /// Monitoring reads issued against the node during the run.
    pub monitor_reads: u64,
    /// Monitoring writes issued against the node during the run.
    pub monitor_writes: u64,
}

/// A node advancing through an application trace.
///
/// ```
/// use magus_hetsim::{AppTrace, Demand, Node, NodeConfig, Phase, Simulation};
/// use magus_hetsim::workload::PhaseKind;
///
/// let mut sim = Simulation::new(Node::new(NodeConfig::intel_a100()));
/// sim.load(AppTrace::new(
///     "demo",
///     vec![Phase::new(PhaseKind::Compute, 1.0, Demand::new(5.0, 0.2, 0.2, 0.8))],
/// ));
/// let summary = sim.run_to_completion(10.0);
/// assert!(summary.completed);
/// assert!((summary.runtime_s - 1.0).abs() < 0.05);
/// assert!(summary.energy.total_j() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    node: Node,
    app: Option<AppExec>,
    recorder: TraceRecorder,
    /// Cumulative work completed (s of work content).
    progress_s: f64,
}

impl Simulation {
    /// New simulation with no application loaded (idle node).
    #[must_use]
    pub fn new(node: Node) -> Self {
        Self {
            node,
            app: None,
            recorder: TraceRecorder::disabled(),
            progress_s: 0.0,
        }
    }

    /// Load an application trace, replacing any current one. Accepts an
    /// owned trace or a shared `Arc<AppTrace>` (e.g. from the workload
    /// intern table) — the latter is loaded without copying phase data.
    pub fn load(&mut self, trace: impl Into<Arc<AppTrace>>) {
        self.app = Some(AppExec {
            trace: trace.into(),
            phase_idx: 0,
            phase_done_s: 0.0,
        });
    }

    /// Attach a trace recorder.
    pub fn set_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = recorder;
    }

    /// Cumulative work completed so far (s of work content).
    #[must_use]
    pub fn progress_s(&self) -> f64 {
        self.progress_s
    }

    /// The recorder (e.g. to read samples after a run).
    #[must_use]
    pub fn recorder(&self) -> &TraceRecorder {
        &self.recorder
    }

    /// Mutable recorder access.
    pub fn recorder_mut(&mut self) -> &mut TraceRecorder {
        &mut self.recorder
    }

    /// The node (read-only).
    #[must_use]
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Mutable node access — this is the runtimes' monitoring/actuation
    /// surface (`msr_read`/`msr_write`/`pcm_read_gbs`).
    pub fn node_mut(&mut self) -> &mut Node {
        &mut self.node
    }

    /// Name of the loaded application, if any.
    #[must_use]
    pub fn app_name(&self) -> Option<&str> {
        self.app.as_ref().map(|a| a.trace.name.as_str())
    }

    /// True when the loaded application has run to completion (an idle
    /// simulation is never "done").
    #[must_use]
    pub fn done(&self) -> bool {
        self.app
            .as_ref()
            .is_some_and(|a| a.phase_idx >= a.trace.phases.len())
    }

    /// Demand of the currently running phase (idle when none).
    #[must_use]
    pub fn current_demand(&self) -> Demand {
        match &self.app {
            Some(exec) if exec.phase_idx < exec.trace.phases.len() => {
                exec.trace.phases[exec.phase_idx].demand
            }
            _ => Demand::idle(),
        }
    }

    /// Advance one tick. Returns the node's step outcome.
    pub fn step(&mut self) -> StepOutcome {
        let dt_us = self.node.config().tick_us;
        let demand = self.current_demand();
        let outcome = self.node.step(dt_us, &demand);
        self.apply_tick_outcome(outcome, dt_us, demand.mem_gbs);
        outcome
    }

    /// Advance one tick through the macro-stepping fast path. Bit-for-bit
    /// identical to [`Simulation::step`]; `ff` carries the frozen-span state
    /// across calls (see [`FastForward`]).
    pub fn step_fast(&mut self, ff: &mut FastForward) -> StepOutcome {
        let dt_us = self.node.config().tick_us;
        let demand = self.current_demand();
        let outcome = self.node.step_fast(dt_us, &demand, ff);
        self.apply_tick_outcome(outcome, dt_us, demand.mem_gbs);
        outcome
    }

    /// Fast-forward to `horizon_us` (or until the application completes),
    /// using the macro-stepping fast path tick by tick. The caller picks the
    /// horizon as its next *event* time — typically a runtime's decision
    /// point or the end of the run budget; phase boundaries and recorder
    /// samples inside the span are handled here exactly as in per-tick
    /// stepping.
    pub fn advance_until(&mut self, horizon_us: u64, ff: &mut FastForward) {
        while !self.done() && self.node.time_us() < horizon_us {
            self.step_fast(ff);
        }
    }

    /// Post-tick bookkeeping shared by the reference and fast paths: phase
    /// progress (a tick can complete multiple very short phases) and trace
    /// recording.
    fn apply_tick_outcome(&mut self, outcome: StepOutcome, dt_us: u64, demand_gbs: f64) {
        if let Some(exec) = &mut self.app {
            if exec.phase_idx < exec.trace.phases.len() {
                let advanced = outcome.progress * crate::us_to_secs(dt_us);
                self.progress_s += advanced;
                exec.phase_done_s += advanced;
                while exec.phase_idx < exec.trace.phases.len()
                    && exec.phase_done_s >= exec.trace.phases[exec.phase_idx].work_s
                {
                    exec.phase_done_s -= exec.trace.phases[exec.phase_idx].work_s;
                    exec.phase_idx += 1;
                }
            }
        }
        self.recorder
            .observe(&self.node, demand_gbs, self.progress_s);
    }

    /// Run until the application completes or `max_s` elapses, with no
    /// runtime attached (the stock governor alone).
    pub fn run_to_completion(&mut self, max_s: f64) -> RunSummary {
        let start_us = self.node.time_us();
        let budget_us = crate::secs_to_us(max_s);
        while !self.done() && self.node.time_us() - start_us < budget_us {
            self.step();
        }
        self.summary(start_us)
    }

    /// Build a summary relative to a start time (µs).
    #[must_use]
    pub fn summary(&self, start_us: u64) -> RunSummary {
        let energy = *self.node.energy();
        RunSummary {
            app: self.app_name().unwrap_or("idle").to_string(),
            system: self.node.config().name.clone(),
            runtime_s: crate::us_to_secs(self.node.time_us() - start_us),
            completed: self.done(),
            energy,
            mean_cpu_w: energy.mean_cpu_w(),
            mean_total_w: energy.mean_total_w(),
            uncore_transitions: self.node.uncore_transitions(),
            monitor_reads: self.node.ledger().reads(),
            monitor_writes: self.node.ledger().writes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::workload::{Phase, PhaseKind};

    fn sim_with(phases: Vec<Phase>) -> Simulation {
        let mut sim = Simulation::new(Node::new(NodeConfig::intel_a100()));
        sim.load(AppTrace::new("test", phases));
        sim
    }

    #[test]
    fn unconstrained_run_matches_work_content() {
        let mut sim = sim_with(vec![Phase::new(
            PhaseKind::Compute,
            5.0,
            Demand::new(2.0, 0.1, 0.2, 0.9),
        )]);
        let summary = sim.run_to_completion(60.0);
        assert!(summary.completed);
        // Low demand is always met: runtime == work content (± one tick).
        assert!(
            (summary.runtime_s - 5.0).abs() < 0.05,
            "{}",
            summary.runtime_s
        );
    }

    #[test]
    fn starved_run_stretches() {
        let mut sim = sim_with(vec![Phase::new(
            PhaseKind::Burst,
            5.0,
            Demand::new(200.0, 0.6, 0.3, 0.9),
        )]);
        crate::governor::set_fixed_uncore(sim.node_mut(), 0.8).unwrap();
        let summary = sim.run_to_completion(120.0);
        assert!(summary.completed);
        assert!(summary.runtime_s > 5.5, "{}", summary.runtime_s);
    }

    #[test]
    fn budget_truncates() {
        let mut sim = sim_with(vec![Phase::new(
            PhaseKind::Compute,
            100.0,
            Demand::new(1.0, 0.1, 0.1, 0.5),
        )]);
        let summary = sim.run_to_completion(2.0);
        assert!(!summary.completed);
        assert!((summary.runtime_s - 2.0).abs() < 0.05);
    }

    #[test]
    fn multiple_short_phases_complete_within_ticks() {
        let phases: Vec<Phase> = (0..100)
            .map(|_| Phase::new(PhaseKind::Burst, 0.001, Demand::new(1.0, 0.2, 0.1, 0.2)))
            .collect();
        let mut sim = sim_with(phases);
        let summary = sim.run_to_completion(10.0);
        assert!(summary.completed);
        assert!(summary.runtime_s < 0.3);
    }

    #[test]
    fn idle_sim_never_done() {
        let mut sim = Simulation::new(Node::new(NodeConfig::intel_a100()));
        for _ in 0..10 {
            sim.step();
        }
        assert!(!sim.done());
        assert_eq!(sim.app_name(), None);
        assert!(sim.current_demand().is_idle());
    }

    #[test]
    fn fast_path_run_matches_reference_exactly() {
        let phases = vec![
            Phase::new(PhaseKind::Compute, 3.0, Demand::new(5.0, 0.2, 0.3, 0.8)),
            Phase::new(PhaseKind::Burst, 2.0, Demand::new(150.0, 0.7, 0.4, 0.9)),
            Phase::new(PhaseKind::Compute, 1.0, Demand::new(2.0, 0.1, 0.2, 0.6)),
        ];
        let mut reference = sim_with(phases.clone());
        reference.set_recorder(TraceRecorder::new(100_000));
        let ref_summary = reference.run_to_completion(60.0);

        let mut fast = sim_with(phases);
        fast.set_recorder(TraceRecorder::new(100_000));
        let mut ff = FastForward::new();
        let start = fast.node().time_us();
        fast.advance_until(crate::secs_to_us(60.0), &mut ff);
        let fast_summary = fast.summary(start);

        assert_eq!(ref_summary, fast_summary);
        assert_eq!(reference.recorder().samples(), fast.recorder().samples());
        assert_eq!(
            reference.progress_s().to_bits(),
            fast.progress_s().to_bits()
        );
    }

    #[test]
    fn energy_to_solution_positive_and_consistent() {
        let mut sim = sim_with(vec![Phase::new(
            PhaseKind::Compute,
            2.0,
            Demand::new(5.0, 0.2, 0.2, 0.8),
        )]);
        let summary = sim.run_to_completion(30.0);
        assert!(summary.energy.total_j() > 0.0);
        let implied = summary.mean_total_w * summary.runtime_s;
        assert!((implied - summary.energy.total_j()).abs() / summary.energy.total_j() < 0.01);
    }
}
