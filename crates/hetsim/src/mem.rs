//! Memory subsystem: uncore-limited bandwidth delivery and DRAM power.
//!
//! The central mechanism of the whole reproduction: deliverable bandwidth is
//! a monotone function of the uncore frequency (the LLC/mesh/memory
//! controller all sit in the uncore clock domain), so downclocking the
//! uncore caps throughput, and workload progress on memory-bound phases
//! stalls proportionally (§2's "setting it to the minimum ... can
//! significantly impact performance, especially for memory-intensive
//! tasks").

use crate::config::MemoryConfig;
use serde::{Deserialize, Serialize};

/// One socket's memory channel group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryChannel {
    cfg: MemoryConfig,
    /// Delivered throughput during the last tick (GB/s).
    delivered_gbs: f64,
    /// Demanded throughput during the last tick (GB/s).
    demanded_gbs: f64,
    /// Cumulative bytes moved (GB).
    total_gb: f64,
}

impl MemoryChannel {
    /// New, quiescent channel group.
    #[must_use]
    pub fn new(cfg: MemoryConfig) -> Self {
        Self {
            cfg,
            delivered_gbs: 0.0,
            demanded_gbs: 0.0,
            total_gb: 0.0,
        }
    }

    /// Bandwidth cap (GB/s) at a given normalised uncore frequency (0..1).
    ///
    /// Interpolates between `floor_frac · peak` (uncore at minimum) and
    /// `peak` (uncore at maximum) with exponent `bw_exp`.
    #[must_use]
    pub fn bw_cap_gbs(&self, uncore_norm: f64) -> f64 {
        let n = uncore_norm.clamp(0.0, 1.0).powf(self.cfg.bw_exp);
        self.cfg.peak_bw_gbs * (self.cfg.floor_frac + (1.0 - self.cfg.floor_frac) * n)
    }

    /// Advance one tick: deliver `min(demand, cap)` and return the delivered
    /// throughput (GB/s).
    pub fn step(&mut self, dt_s: f64, demand_gbs: f64, uncore_norm: f64) -> f64 {
        let demand = demand_gbs.max(0.0);
        let cap = self.bw_cap_gbs(uncore_norm);
        let delivered = demand.min(cap);
        self.demanded_gbs = demand;
        self.delivered_gbs = delivered;
        self.total_gb += delivered * dt_s;
        delivered
    }

    /// Apply a pre-captured per-tick traffic increment without re-evaluating
    /// the delivery model (frozen fast path; delivery provably unchanged).
    pub(crate) fn replay_tick(&mut self, gb_inc: f64) {
        self.total_gb += gb_inc;
    }

    /// Delivered throughput during the last tick (GB/s).
    #[must_use]
    pub fn delivered_gbs(&self) -> f64 {
        self.delivered_gbs
    }

    /// Demanded throughput during the last tick (GB/s).
    #[must_use]
    pub fn demanded_gbs(&self) -> f64 {
        self.demanded_gbs
    }

    /// Fraction of the current bandwidth cap in use (0..1); this is the
    /// activity factor fed to the uncore power model.
    #[must_use]
    pub fn activity(&self, uncore_norm: f64) -> f64 {
        let cap = self.bw_cap_gbs(uncore_norm);
        if cap <= 0.0 {
            0.0
        } else {
            (self.delivered_gbs / cap).clamp(0.0, 1.0)
        }
    }

    /// DRAM power (W) for this socket: background plus traffic-proportional.
    #[must_use]
    pub fn dram_power_w(&self) -> f64 {
        self.cfg.dram_base_w + self.cfg.dram_w_per_gbs * self.delivered_gbs
    }

    /// Cumulative data moved (GB).
    #[must_use]
    pub fn total_gb(&self) -> f64 {
        self.total_gb
    }

    /// The configuration this channel group was built with.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }
}

/// Progress factor for a phase under constrained bandwidth.
///
/// A phase with memory-boundedness `mem_frac` demanding `demand` GB/s but
/// receiving `delivered` GB/s progresses at
/// `1 / ((1 - mem_frac) + mem_frac · demand/delivered)` — the roofline-style
/// serial composition of its compute and memory fractions. Returns 1.0 when
/// demand is met (or absent) and decays towards 0 as bandwidth starves.
#[must_use]
pub fn progress_factor(mem_frac: f64, demand_gbs: f64, delivered_gbs: f64) -> f64 {
    let mem_frac = mem_frac.clamp(0.0, 1.0);
    if demand_gbs <= 0.0 || delivered_gbs >= demand_gbs {
        return 1.0;
    }
    if delivered_gbs <= 0.0 {
        // Fully starved: the memory fraction never completes, so a phase
        // with any memory-bound share makes no forward progress. This is
        // the continuous limit of the roofline formula as delivery -> 0.
        return if mem_frac > 0.0 { 0.0 } else { 1.0 };
    }
    let stretch = (1.0 - mem_frac) + mem_frac * (demand_gbs / delivered_gbs);
    1.0 / stretch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;

    fn mem() -> MemoryChannel {
        MemoryChannel::new(NodeConfig::intel_a100().mem)
    }

    #[test]
    fn cap_interpolates_between_floor_and_peak() {
        let m = mem();
        let peak = m.config().peak_bw_gbs;
        let floor = m.config().floor_frac * peak;
        assert!((m.bw_cap_gbs(1.0) - peak).abs() < 1e-9);
        assert!((m.bw_cap_gbs(0.0) - floor).abs() < 1e-9);
        assert!(m.bw_cap_gbs(0.5) > floor && m.bw_cap_gbs(0.5) < peak);
    }

    #[test]
    fn cap_monotone_in_uncore() {
        let m = mem();
        let mut prev = 0.0;
        for i in 0..=10 {
            let cap = m.bw_cap_gbs(f64::from(i) / 10.0);
            assert!(cap >= prev);
            prev = cap;
        }
    }

    #[test]
    fn delivery_respects_cap() {
        let mut m = mem();
        let delivered = m.step(0.01, 1_000.0, 0.0);
        assert!((delivered - m.bw_cap_gbs(0.0)).abs() < 1e-9);
        let delivered = m.step(0.01, 5.0, 0.0);
        assert!((delivered - 5.0).abs() < 1e-9);
    }

    #[test]
    fn activity_reflects_cap_usage() {
        let mut m = mem();
        m.step(0.01, 1_000.0, 1.0);
        assert!((m.activity(1.0) - 1.0).abs() < 1e-9);
        m.step(0.01, 0.0, 1.0);
        assert!(m.activity(1.0).abs() < 1e-9);
    }

    #[test]
    fn dram_power_scales_with_traffic() {
        let mut m = mem();
        let idle = m.dram_power_w();
        m.step(0.01, 40.0, 1.0);
        assert!(m.dram_power_w() > idle);
        assert!((idle - m.config().dram_base_w).abs() < 1e-9);
    }

    #[test]
    fn total_gb_accumulates() {
        let mut m = mem();
        for _ in 0..100 {
            m.step(0.01, 10.0, 1.0);
        }
        assert!((m.total_gb() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn progress_factor_unconstrained_is_one() {
        assert_eq!(progress_factor(0.5, 10.0, 10.0), 1.0);
        assert_eq!(progress_factor(0.5, 0.0, 0.0), 1.0);
        assert_eq!(progress_factor(0.5, 10.0, 20.0), 1.0);
    }

    #[test]
    fn progress_factor_matches_roofline_formula() {
        // mem_frac 0.55, starved to half the demand: 0.45 + 0.55*2 = 1.55.
        let f = progress_factor(0.55, 20.0, 10.0);
        assert!((f - 1.0 / 1.55).abs() < 1e-12);
    }

    #[test]
    fn progress_factor_starved_limits() {
        assert_eq!(progress_factor(0.3, 10.0, 0.0), 0.0);
        assert_eq!(progress_factor(1.0, 10.0, 0.0), 0.0);
        assert_eq!(progress_factor(0.0, 10.0, 0.0), 1.0);
    }

    #[test]
    fn progress_factor_monotone_in_delivery() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let f = progress_factor(0.8, 10.0, f64::from(i));
            assert!(f >= prev);
            prev = f;
        }
    }
}
