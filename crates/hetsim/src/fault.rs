//! Deterministic, seeded fault injection for the sensor/actuator stack.
//!
//! The paper's runtimes hang off a small set of fragile surfaces: MAGUS
//! trusts one noisy PCM throughput counter, UPS trusts a per-core MSR sweep,
//! and both actuate through `MSR_UNCORE_RATIO_LIMIT` writes that on real
//! silicon can fail transiently or land late (PAPERS.md: *Methodology for
//! GPU Frequency Switching Latency Measurement*). A [`FaultPlan`] describes
//! which of those surfaces misbehave and how often, so robustness
//! experiments can measure how gracefully each runtime degrades.
//!
//! Determinism rules (the contract the differential tests enforce):
//!
//! * **Empty plan = no plan.** A default/empty [`FaultPlan`] injects
//!   nothing, draws nothing from any RNG, and leaves every simulated run
//!   bit-for-bit identical to a run with no plan attached — on both the
//!   reference and the macro-stepping fast path.
//! * **Seeded schedules.** All randomized fault behavior (spike signs,
//!   extra noise draws) comes from a dedicated [`rand::rngs::SmallRng`]
//!   seeded from [`FaultPlan::seed`] — never from the node's own sensor
//!   noise stream and never from the wall clock — so a given plan replays
//!   the same fault schedule on every run, in every scheduling mode.
//! * **Counted schedules.** Periodic faults (`every`-N dropouts, write
//!   failures) count *accesses*, not wall time: the n-th PCM read fails no
//!   matter when it happens, so fast-path macro-stepping cannot shift the
//!   schedule.
//! * **Fast-path safety.** Every injected event either rides an access that
//!   already bumps the node's `state_epoch` (PCM reads, MSR writes) or —
//!   for delayed actuations that fire *between* accesses — bumps it
//!   explicitly when applied, so frozen fast-forward spans are invalidated
//!   exactly as they would be by a real actuation.
//!
//! Plans are built through the validating [`FaultPlanBuilder`]:
//!
//! ```
//! use magus_hetsim::fault::FaultPlan;
//!
//! let plan = FaultPlan::builder()
//!     .seed(7)
//!     .pcm_dropout_every(50)
//!     .pcm_spike(30, 0.5)
//!     .uncore_write_fail_every(10)
//!     .actuation_delay_us(40_000)
//!     .build()
//!     .unwrap();
//! assert!(!plan.is_empty());
//!
//! // Zero periods are nonsense and rejected with a typed error.
//! assert!(FaultPlan::builder().pcm_dropout_every(0).build().is_err());
//! ```

#![warn(missing_docs)]

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Faults on the PCM-style memory-throughput counter (what MAGUS samples).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct PcmFaults {
    /// Every `n`-th PCM read fails outright (daemon missed its window);
    /// surfaced to callers as a transient sample error.
    pub dropout_every: Option<u64>,
    /// Every `n`-th PCM read returns the previous reading unchanged (stale
    /// counter snapshot) instead of a fresh measurement.
    pub stale_every: Option<u64>,
    /// Additional uniform jitter on successful reads, relative to the
    /// windowed mean (0 = off). Drawn from the fault RNG, not the node's
    /// sensor-noise stream.
    pub extra_noise_rel: f64,
    /// Every `n`-th PCM read is a spike: the reading is scaled by
    /// `1 ± spike_magnitude_rel` (sign drawn from the fault RNG).
    pub spike_every: Option<u64>,
    /// Relative magnitude of injected spikes (must be > 0 when
    /// `spike_every` is set).
    pub spike_magnitude_rel: f64,
}

impl PcmFaults {
    /// True when no PCM fault is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dropout_every.is_none()
            && self.stale_every.is_none()
            && self.extra_noise_rel == 0.0
            && self.spike_every.is_none()
    }
}

/// Faults on the MSR actuation path (`MSR_UNCORE_RATIO_LIMIT` writes).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct MsrFaults {
    /// Every `n`-th uncore-limit write fails with
    /// `MsrError::TransientFault` (the write's access cost is still
    /// charged — the `wrmsr` was attempted).
    pub uncore_write_fail_every: Option<u64>,
    /// Successful uncore-limit writes take effect this many µs late
    /// (actuation latency), applied at the first tick boundary at or after
    /// the due time. 0 = immediate.
    pub actuation_delay_us: u64,
}

impl MsrFaults {
    /// True when no MSR fault is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.uncore_write_fail_every.is_none() && self.actuation_delay_us == 0
    }
}

/// Faults on the power meters (RAPL / NVML analogues in `magus-powermon`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct MeterFaults {
    /// Quantize RAPL joule deltas to multiples of this step (0 = off);
    /// models coarse energy-counter units.
    pub rapl_quantum_j: f64,
    /// Quantize NVML board-power readings to multiples of this step (0 =
    /// off); models the driver's milliwatt→watt rounding.
    pub gpu_power_quantum_w: f64,
}

impl MeterFaults {
    /// True when no meter fault is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rapl_quantum_j == 0.0 && self.gpu_power_quantum_w == 0.0
    }
}

/// Fleet-level node failures (consumed by `FleetSim`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FleetFaults {
    /// Every `k`-th node (1-based index) is a straggler: each of its
    /// decisions is delayed by [`FleetFaults::stall_us`].
    pub stall_every: Option<u64>,
    /// Extra per-decision delay on stalled nodes (µs).
    pub stall_us: u64,
    /// Every `k`-th node (1-based index) crashes at
    /// [`FleetFaults::crash_at_us`] and never completes.
    pub crash_every: Option<u64>,
    /// Simulation time at which crashing nodes die (µs).
    pub crash_at_us: u64,
}

impl FleetFaults {
    /// True when no fleet fault is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stall_every.is_none() && self.crash_every.is_none()
    }
}

/// A complete, serializable description of the faults injected into one
/// trial. Hashed into the trial spec (experiments layer), so cached results
/// can never conflate faulted and clean runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultPlan {
    /// Seed for the dedicated fault RNG (spike signs, extra noise).
    pub seed: u64,
    /// PCM throughput-counter faults.
    pub pcm: PcmFaults,
    /// MSR actuation faults.
    pub msr: MsrFaults,
    /// Power-meter faults.
    pub meter: MeterFaults,
    /// Fleet-level node failures.
    pub fleet: FleetFaults,
}

impl FaultPlan {
    /// Validating builder, seeded with the all-clean default.
    #[must_use]
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }

    /// True when the plan injects nothing. Empty plans are never attached
    /// to a node: runs are bit-identical to having no plan at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pcm.is_empty() && self.msr.is_empty() && self.meter.is_empty() && self.fleet.is_empty()
    }

    /// Re-check the builder invariants on an already-constructed plan
    /// (e.g. one deserialized from a `--faults` JSON file, which bypasses
    /// the builder).
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        fn period(field: &'static str, v: Option<u64>) -> Result<(), FaultPlanError> {
            match v {
                Some(0) => Err(FaultPlanError::ZeroPeriod { field }),
                _ => Ok(()),
            }
        }
        fn non_negative(field: &'static str, v: f64) -> Result<(), FaultPlanError> {
            if v < 0.0 || !v.is_finite() {
                Err(FaultPlanError::NegativeValue { field, value: v })
            } else {
                Ok(())
            }
        }
        period("pcm.dropout_every", self.pcm.dropout_every)?;
        period("pcm.stale_every", self.pcm.stale_every)?;
        period("pcm.spike_every", self.pcm.spike_every)?;
        period(
            "msr.uncore_write_fail_every",
            self.msr.uncore_write_fail_every,
        )?;
        period("fleet.stall_every", self.fleet.stall_every)?;
        period("fleet.crash_every", self.fleet.crash_every)?;
        non_negative("pcm.extra_noise_rel", self.pcm.extra_noise_rel)?;
        non_negative("pcm.spike_magnitude_rel", self.pcm.spike_magnitude_rel)?;
        non_negative("meter.rapl_quantum_j", self.meter.rapl_quantum_j)?;
        non_negative("meter.gpu_power_quantum_w", self.meter.gpu_power_quantum_w)?;
        if self.pcm.spike_every.is_some() && self.pcm.spike_magnitude_rel == 0.0 {
            return Err(FaultPlanError::ZeroMagnitude {
                field: "pcm.spike_magnitude_rel",
            });
        }
        if self.fleet.stall_every.is_some() && self.fleet.stall_us == 0 {
            return Err(FaultPlanError::ZeroMagnitude {
                field: "fleet.stall_us",
            });
        }
        Ok(())
    }
}

/// A [`FaultPlan`] that fails validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// An `every`-N period of 0 (a period must be >= 1; use `None`/omit the
    /// field to disable the fault).
    ZeroPeriod {
        /// The offending plan field.
        field: &'static str,
    },
    /// A magnitude that must be finite and non-negative.
    NegativeValue {
        /// The offending plan field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A periodic fault was enabled with a zero magnitude (it would inject
    /// nothing observable).
    ZeroMagnitude {
        /// The offending plan field.
        field: &'static str,
    },
}

impl core::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultPlanError::ZeroPeriod { field } => {
                write!(f, "{field} must be >= 1 (omit the field to disable)")
            }
            FaultPlanError::NegativeValue { field, value } => {
                write!(f, "{field} must be finite and >= 0 (got {value})")
            }
            FaultPlanError::ZeroMagnitude { field } => {
                write!(f, "{field} must be > 0 when its period is set")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Validating builder for [`FaultPlan`]. Every setter overrides one field;
/// [`FaultPlanBuilder::build`] rejects nonsense combinations with a typed
/// [`FaultPlanError`].
///
/// ```
/// use magus_hetsim::fault::FaultPlan;
///
/// let plan = FaultPlan::builder().seed(1).pcm_stale_every(4).build().unwrap();
/// assert_eq!(plan.pcm.stale_every, Some(4));
/// assert!(FaultPlan::builder().pcm_extra_noise_rel(-0.5).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Builder seeded with the all-clean default.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Seed for the fault RNG.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.plan.seed = seed;
        self
    }

    /// Fail every `n`-th PCM read (transient dropout).
    #[must_use]
    pub fn pcm_dropout_every(mut self, n: u64) -> Self {
        self.plan.pcm.dropout_every = Some(n);
        self
    }

    /// Return a stale reading on every `n`-th PCM read.
    #[must_use]
    pub fn pcm_stale_every(mut self, n: u64) -> Self {
        self.plan.pcm.stale_every = Some(n);
        self
    }

    /// Add uniform jitter of `rel` x windowed-mean to successful PCM reads.
    #[must_use]
    pub fn pcm_extra_noise_rel(mut self, rel: f64) -> Self {
        self.plan.pcm.extra_noise_rel = rel;
        self
    }

    /// Spike every `n`-th PCM read by `±magnitude_rel` (relative).
    #[must_use]
    pub fn pcm_spike(mut self, n: u64, magnitude_rel: f64) -> Self {
        self.plan.pcm.spike_every = Some(n);
        self.plan.pcm.spike_magnitude_rel = magnitude_rel;
        self
    }

    /// Fail every `n`-th uncore-limit MSR write with a transient fault.
    #[must_use]
    pub fn uncore_write_fail_every(mut self, n: u64) -> Self {
        self.plan.msr.uncore_write_fail_every = Some(n);
        self
    }

    /// Delay successful uncore-limit writes by `us` before they take effect.
    #[must_use]
    pub fn actuation_delay_us(mut self, us: u64) -> Self {
        self.plan.msr.actuation_delay_us = us;
        self
    }

    /// Quantize RAPL joule deltas to multiples of `quantum_j`.
    #[must_use]
    pub fn rapl_quantum_j(mut self, quantum_j: f64) -> Self {
        self.plan.meter.rapl_quantum_j = quantum_j;
        self
    }

    /// Quantize NVML board-power readings to multiples of `quantum_w`.
    #[must_use]
    pub fn gpu_power_quantum_w(mut self, quantum_w: f64) -> Self {
        self.plan.meter.gpu_power_quantum_w = quantum_w;
        self
    }

    /// Make every `k`-th fleet node a straggler: each decision is delayed
    /// by `stall_us`.
    #[must_use]
    pub fn fleet_stall(mut self, every: u64, stall_us: u64) -> Self {
        self.plan.fleet.stall_every = Some(every);
        self.plan.fleet.stall_us = stall_us;
        self
    }

    /// Crash every `k`-th fleet node at `at_us`.
    #[must_use]
    pub fn fleet_crash(mut self, every: u64, at_us: u64) -> Self {
        self.plan.fleet.crash_every = Some(every);
        self.plan.fleet.crash_at_us = at_us;
        self
    }

    /// Validate and produce the plan.
    pub fn build(self) -> Result<FaultPlan, FaultPlanError> {
        self.plan.validate()?;
        Ok(self.plan)
    }
}

/// Counts of injected faults, per kind — cheap ground truth for tests and
/// reports, available even when the `telemetry` feature (and its event log)
/// is compiled out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultCounters {
    /// PCM reads failed outright.
    pub pcm_dropouts: u64,
    /// PCM reads answered with a stale value.
    pub pcm_stale: u64,
    /// PCM reads spiked.
    pub pcm_spikes: u64,
    /// Uncore-limit MSR writes failed transiently.
    pub msr_write_fails: u64,
    /// Uncore-limit MSR writes deferred by actuation delay.
    pub delayed_writes: u64,
}

impl FaultCounters {
    /// Total injected faults across all kinds (delayed writes count once
    /// when deferred).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.pcm_dropouts
            + self.pcm_stale
            + self.pcm_spikes
            + self.msr_write_fails
            + self.delayed_writes
    }
}

/// A PCM read that failed because of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The monitoring daemon missed its measurement window: no sample.
    PcmDropout,
}

impl core::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InjectedFault::PcmDropout => write!(f, "injected PCM dropout"),
        }
    }
}

impl std::error::Error for InjectedFault {}

/// An uncore-limit write waiting out its injected actuation delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingWrite {
    /// Simulation time at/after which the write takes effect (µs).
    pub due_us: u64,
    /// Target package.
    pub pkg: u32,
    /// Raw `MSR_UNCORE_RATIO_LIMIT` value.
    pub value: u64,
}

/// Per-node runtime state for an active (non-empty) fault plan. Created by
/// `Node::set_fault_plan`; absent (`None`) on clean nodes, so the empty-plan
/// cost is a single `Option` discriminant check on each fault site.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub plan: FaultPlan,
    /// Dedicated RNG for randomized fault behavior; deliberately separate
    /// from the node's sensor-noise stream so attaching a plan with only
    /// deterministic faults cannot shift the clean noise sequence.
    pub rng: SmallRng,
    /// Last successfully delivered PCM reading (GB/s), for stale reads.
    pub last_pcm_gbs: f64,
    /// Uncore-limit writes attempted so far (drives `every`-N schedules).
    pub uncore_writes: u64,
    /// Delayed writes not yet applied, in due-time order.
    pub pending: VecDeque<PendingWrite>,
    /// Cached earliest due time (`u64::MAX` when the queue is empty) so the
    /// per-tick check is one compare.
    pub next_due_us: u64,
    pub counters: FaultCounters,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            rng: SmallRng::seed_from_u64(plan.seed),
            last_pcm_gbs: 0.0,
            uncore_writes: 0,
            pending: VecDeque::new(),
            next_due_us: u64::MAX,
            counters: FaultCounters::default(),
        }
    }

    /// Queue a delayed uncore-limit write.
    pub fn defer_write(&mut self, due_us: u64, pkg: u32, value: u64) {
        self.pending.push_back(PendingWrite { due_us, pkg, value });
        self.next_due_us = self.next_due_us.min(due_us);
        self.counters.delayed_writes += 1;
    }

    /// Pop the next write due at or before `now_us`, refreshing the cached
    /// earliest due time.
    pub fn pop_due(&mut self, now_us: u64) -> Option<PendingWrite> {
        // Writes are queued in issue order; due times are issue time plus a
        // constant delay, so the front is always the earliest.
        if self.pending.front().is_some_and(|w| w.due_us <= now_us) {
            let w = self.pending.pop_front();
            self.next_due_us = self.pending.front().map_or(u64::MAX, |w| w.due_us);
            return w;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.validate().is_ok());
        assert!(FaultPlan::builder().build().unwrap().is_empty());
    }

    #[test]
    fn builder_round_trips_every_field() {
        let plan = FaultPlan::builder()
            .seed(9)
            .pcm_dropout_every(5)
            .pcm_stale_every(7)
            .pcm_extra_noise_rel(0.1)
            .pcm_spike(11, 0.4)
            .uncore_write_fail_every(3)
            .actuation_delay_us(25_000)
            .rapl_quantum_j(0.25)
            .gpu_power_quantum_w(1.0)
            .fleet_stall(4, 50_000)
            .fleet_crash(8, 2_000_000)
            .build()
            .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.pcm.dropout_every, Some(5));
        assert_eq!(plan.msr.actuation_delay_us, 25_000);
        assert_eq!(plan.fleet.crash_every, Some(8));
        assert!(!plan.is_empty());
    }

    #[test]
    fn zero_periods_and_negative_magnitudes_are_rejected() {
        assert_eq!(
            FaultPlan::builder().pcm_dropout_every(0).build(),
            Err(FaultPlanError::ZeroPeriod {
                field: "pcm.dropout_every"
            })
        );
        assert!(matches!(
            FaultPlan::builder().pcm_extra_noise_rel(-1.0).build(),
            Err(FaultPlanError::NegativeValue { .. })
        ));
        assert!(matches!(
            FaultPlan::builder().pcm_spike(5, 0.0).build(),
            Err(FaultPlanError::ZeroMagnitude { .. })
        ));
        assert!(matches!(
            FaultPlan::builder().fleet_stall(2, 0).build(),
            Err(FaultPlanError::ZeroMagnitude { .. })
        ));
        assert!(FaultPlanError::ZeroPeriod { field: "x" }
            .to_string()
            .contains("must be >= 1"));
    }

    #[test]
    fn plan_serde_round_trips_and_accepts_partial_json() {
        let plan = FaultPlan::builder()
            .seed(3)
            .pcm_dropout_every(6)
            .build()
            .unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Partial JSON (the `--faults` file format) defaults everything else.
        let partial: FaultPlan = serde_json::from_str(r#"{"pcm": {"stale_every": 4}}"#).unwrap();
        assert_eq!(partial.pcm.stale_every, Some(4));
        assert!(partial.msr.is_empty());
        assert!(partial.validate().is_ok());
    }

    #[test]
    fn pending_writes_pop_in_due_order() {
        let mut fs = FaultState::new(FaultPlan::default());
        assert_eq!(fs.next_due_us, u64::MAX);
        fs.defer_write(100, 0, 1);
        fs.defer_write(200, 1, 2);
        assert_eq!(fs.next_due_us, 100);
        assert!(fs.pop_due(50).is_none());
        let w = fs.pop_due(150).unwrap();
        assert_eq!((w.due_us, w.pkg, w.value), (100, 0, 1));
        assert_eq!(fs.next_due_us, 200);
        assert_eq!(fs.pop_due(200).unwrap().pkg, 1);
        assert_eq!(fs.next_due_us, u64::MAX);
        assert_eq!(fs.counters.delayed_writes, 2);
    }

    #[test]
    fn identical_seeds_produce_identical_fault_rng_streams() {
        use rand::Rng;
        let plan = FaultPlan::builder()
            .seed(42)
            .pcm_spike(2, 0.5)
            .build()
            .unwrap();
        let mut a = FaultState::new(plan);
        let mut b = FaultState::new(plan);
        for _ in 0..64 {
            let x: f64 = a.rng.gen_range(-1.0..1.0);
            let y: f64 = b.rng.gen_range(-1.0..1.0);
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    // --- Node integration ---

    use crate::demand::Demand;
    use crate::node::{FastForward, Node};
    use crate::NodeConfig;
    use magus_msr::{MsrError, MsrScope, UncoreRatioLimit, MSR_UNCORE_RATIO_LIMIT};

    fn busy() -> Demand {
        Demand::new(30.0, 0.4, 0.2, 0.8)
    }

    #[test]
    fn empty_plan_attaches_nothing_and_stays_bit_identical() {
        let mut clean = Node::new(NodeConfig::intel_a100());
        let mut planned = Node::new(NodeConfig::intel_a100());
        planned.set_fault_plan(FaultPlan::default());
        assert!(planned.fault_plan().is_none());
        for i in 0..300 {
            clean.step(10_000, &busy());
            planned.step(10_000, &busy());
            if i % 20 == 19 {
                let a = clean.pcm_try_read_gbs().unwrap();
                let b = planned.pcm_try_read_gbs().unwrap();
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(
            clean.energy().total_j().to_bits(),
            planned.energy().total_j().to_bits()
        );
        assert_eq!(planned.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn plan_dropouts_surface_as_errors_and_count() {
        let mut node = Node::new(NodeConfig::intel_a100());
        node.set_fault_plan(FaultPlan::builder().pcm_dropout_every(3).build().unwrap());
        for _ in 0..30 {
            node.step(10_000, &busy());
        }
        let mut failures = 0;
        for i in 1..=9 {
            let r = node.pcm_try_read_gbs();
            if i % 3 == 0 {
                assert_eq!(r, Err(InjectedFault::PcmDropout));
                failures += 1;
            } else {
                assert!(r.unwrap() > 0.0);
            }
        }
        assert_eq!(failures, 3);
        assert_eq!(node.fault_counters().pcm_dropouts, 3);
        // The legacy surface flattens injected dropouts to 0.0.
        for _ in 0..2 {
            let _ = node.pcm_read_gbs();
        }
        assert_eq!(node.pcm_read_gbs(), 0.0);
    }

    #[test]
    fn stale_reads_repeat_the_previous_reading() {
        let mut node = Node::new(NodeConfig::intel_a100());
        node.set_fault_plan(FaultPlan::builder().pcm_stale_every(2).build().unwrap());
        for _ in 0..30 {
            node.step(10_000, &busy());
        }
        let first = node.pcm_try_read_gbs().unwrap(); // read 1: fresh
        let second = node.pcm_try_read_gbs().unwrap(); // read 2: stale
        assert_eq!(first.to_bits(), second.to_bits());
        assert_eq!(node.fault_counters().pcm_stale, 1);
    }

    #[test]
    fn uncore_write_failures_are_transient_and_charged() {
        let mut node = Node::new(NodeConfig::intel_a100());
        node.set_fault_plan(
            FaultPlan::builder()
                .uncore_write_fail_every(2)
                .build()
                .unwrap(),
        );
        let raw = UncoreRatioLimit::from_ghz(0.8, 1.4).encode();
        let scope = MsrScope::Package(0);
        assert!(node.msr_write(scope, MSR_UNCORE_RATIO_LIMIT, raw).is_ok());
        let writes_before = node.ledger().writes();
        assert_eq!(
            node.msr_write(scope, MSR_UNCORE_RATIO_LIMIT, raw),
            Err(MsrError::TransientFault)
        );
        // The failed attempt still charged a write.
        assert_eq!(node.ledger().writes(), writes_before + 1);
        assert!(node.msr_write(scope, MSR_UNCORE_RATIO_LIMIT, raw).is_ok());
        assert_eq!(node.fault_counters().msr_write_fails, 1);
    }

    #[test]
    fn delayed_actuation_applies_at_the_due_tick_boundary() {
        let mut node = Node::new(NodeConfig::intel_a100());
        node.set_fault_plan(
            FaultPlan::builder()
                .actuation_delay_us(25_000)
                .build()
                .unwrap(),
        );
        for _ in 0..50 {
            node.step(10_000, &busy());
        }
        let raw = UncoreRatioLimit::from_ghz(0.8, 0.8).encode();
        node.msr_write(MsrScope::Package(0), MSR_UNCORE_RATIO_LIMIT, raw)
            .unwrap();
        node.msr_write(MsrScope::Package(1), MSR_UNCORE_RATIO_LIMIT, raw)
            .unwrap();
        assert_eq!(node.fault_counters().delayed_writes, 2);
        // Not yet applied: limits still at the config default.
        let (_, max0) = node.sockets()[0].uncore.msr_limits();
        assert!(max0 > 2.0, "write should still be pending, max = {max0}");
        // Issued at t = 500 ms, due at t = 525 ms: crossed during the 3rd
        // tick, so the write lands at the next tick boundary — the head of
        // the 4th step (t = 530 ms).
        node.step(10_000, &busy());
        node.step(10_000, &busy());
        node.step(10_000, &busy());
        let (_, max_mid) = node.sockets()[0].uncore.msr_limits();
        assert!(max_mid > 2.0, "applied too early");
        node.step(10_000, &busy());
        for socket in node.sockets() {
            let (_, max) = socket.uncore.msr_limits();
            assert!((max - 0.8).abs() < 1e-9, "max = {max}");
        }
    }

    #[test]
    fn faulted_runs_match_across_stepping_paths_bit_for_bit() {
        let plan = FaultPlan::builder()
            .seed(11)
            .pcm_spike(3, 0.4)
            .pcm_extra_noise_rel(0.05)
            .actuation_delay_us(35_000)
            .build()
            .unwrap();
        let mut reference = Node::new(NodeConfig::intel_a100());
        let mut fast = Node::new(NodeConfig::intel_a100());
        reference.set_fault_plan(plan);
        fast.set_fault_plan(plan);
        let mut ff = FastForward::new();
        let raw = UncoreRatioLimit::from_ghz(0.8, 1.2).encode();
        for i in 0..600 {
            reference.step(10_000, &busy());
            fast.step_fast(10_000, &busy(), &mut ff);
            if i % 97 == 50 {
                // Identical access sequence on both nodes: a PCM read and a
                // (delayed) uncore write mid-run.
                let a = reference.pcm_try_read_gbs();
                let b = fast.pcm_try_read_gbs();
                match (a, b) {
                    (Ok(x), Ok(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    (x, y) => assert_eq!(x, y),
                }
                reference
                    .msr_write(MsrScope::Package(0), MSR_UNCORE_RATIO_LIMIT, raw)
                    .unwrap();
                fast.msr_write(MsrScope::Package(0), MSR_UNCORE_RATIO_LIMIT, raw)
                    .unwrap();
            }
        }
        assert_eq!(reference.time_us(), fast.time_us());
        assert_eq!(
            reference.energy().total_j().to_bits(),
            fast.energy().total_j().to_bits()
        );
        for (a, b) in reference.sockets().iter().zip(fast.sockets()) {
            assert_eq!(a.uncore.freq_ghz().to_bits(), b.uncore.freq_ghz().to_bits());
            assert_eq!(a.pkg_energy_j.to_bits(), b.pkg_energy_j.to_bits());
        }
        assert_eq!(reference.fault_counters(), fast.fault_counters());
        assert!(reference.fault_counters().delayed_writes > 0);
    }
}
