//! Discrete-time heterogeneous CPU–GPU node simulator.
//!
//! This crate is the hardware substrate for the MAGUS reproduction. The
//! paper evaluates on real Intel Xeon + NVIDIA A100 / Intel Max 1550 nodes;
//! here every mechanism the paper's runtimes interact with is simulated:
//!
//! * **CPU sockets** with per-core DVFS ([`cpu`]) — core frequency tracks
//!   utilisation, as in Fig 1a.
//! * **An uncore domain per socket** ([`uncore`]) whose frequency is bounded
//!   by the `UNCORE_RATIO_LIMIT` MSR (`0x620`) exactly as on Intel parts,
//!   slews at a finite rate, and consumes a large share of package power at
//!   high frequency (up to ~40% under GPU-dominant load, Fig 2).
//! * **A memory subsystem** ([`mem`]) whose deliverable bandwidth scales
//!   with uncore frequency; workload progress stalls when demanded
//!   throughput exceeds the cap — this is what makes uncore scaling a real
//!   performance/energy trade-off instead of a free win.
//! * **GPU devices** ([`gpu`]) with an SM-clock governor and idle/dynamic
//!   power, as in Fig 1b; multi-GPU idle floors reproduce the Fig 4c effect.
//! * **An integrated power model** ([`power`]) decomposed into core, uncore,
//!   DRAM, and GPU-board domains, mirrored into RAPL energy-status MSRs.
//! * **The stock TDP-coupled uncore governor** ([`governor`]) that only
//!   throttles the uncore when package power approaches TDP — the behaviour
//!   whose inadequacy for GPU-dominant workloads motivates the paper (§2).
//!
//! Workloads are phase traces ([`workload`]); [`sim::Simulation`] advances a
//! node through a trace in fixed ticks, records time series ([`trace`]), and
//! exposes counter state through a simulated MSR file so the MAGUS and UPS
//! runtimes read hardware state exactly the way they would on metal.
//!
//! Sensors and actuators can be made to misbehave on purpose: a seeded
//! [`fault::FaultPlan`] injects PCM dropouts/stale reads/spikes, transient
//! or delayed uncore MSR writes, meter quantization, and fleet-level node
//! failures — deterministically, and at zero cost when no plan is attached.

pub mod config;
pub mod cpu;
pub mod demand;
pub mod fault;
pub mod fleet;
pub mod governor;
pub mod gpu;
pub mod mem;
pub mod node;
pub mod power;
pub mod roster;
pub mod sim;
#[cfg(feature = "telemetry")]
pub mod telemetry;
pub mod trace;
pub mod uncore;
pub mod workload;

pub use config::{CpuConfig, GpuConfig, MemoryConfig, NodeConfig, UncoreConfig};
pub use demand::{Demand, GpuUtilVec};
pub use fault::{FaultCounters, FaultPlan, FaultPlanBuilder, FaultPlanError, InjectedFault};
pub use fleet::{
    deadline_missed, Decision, Distribution, FleetBuildError, FleetBuilder, FleetSim, FleetSummary,
    JobDeadline, NodeDecider, RunOpts, ShardStats, StepMode, TenantShare,
};
pub use node::{FastForward, Node};
pub use power::PowerBreakdown;
pub use roster::{FleetRoster, RosterBuildOpts, RosterEntry, RosterError};
pub use sim::{RunSummary, Simulation};
pub use trace::{TraceRecorder, TraceSample};
pub use workload::{AppTrace, Phase};

/// Microseconds per second, the simulator's base time unit.
pub const US_PER_S: u64 = 1_000_000;

/// Convert seconds to simulator microseconds (rounding).
#[must_use]
pub fn secs_to_us(secs: f64) -> u64 {
    (secs * US_PER_S as f64).round() as u64
}

/// Convert simulator microseconds to seconds.
#[must_use]
pub fn us_to_secs(us: u64) -> f64 {
    us as f64 / US_PER_S as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        assert_eq!(secs_to_us(0.2), 200_000);
        assert!((us_to_secs(secs_to_us(47.5)) - 47.5).abs() < 1e-9);
    }
}
