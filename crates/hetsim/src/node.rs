//! The heterogeneous node: sockets, GPUs, MSR surface, and power accounting.
//!
//! [`Node::step`] advances every hardware domain one tick under a workload
//! [`Demand`] and returns the achieved progress factor. Runtimes interact
//! with the node exclusively through its monitoring/actuation surface:
//! [`Node::msr_read`] / [`Node::msr_write`] (MSR semantics, with access
//! costs charged as monitoring overhead) and [`Node::pcm_read_gbs`] (the
//! PCM-style windowed memory-throughput counter).

use std::collections::VecDeque;

use magus_msr::{
    AccessCost, CostLedger, MsrError, MsrScope, PkgPowerLimit, RaplPowerUnit, UncoreRatioLimit,
    IA32_FIXED_CTR0, IA32_FIXED_CTR1, IA32_FIXED_CTR2, MSR_DRAM_ENERGY_STATUS,
    MSR_PKG_ENERGY_STATUS, MSR_PKG_POWER_LIMIT, MSR_RAPL_POWER_UNIT, MSR_UNCORE_RATIO_LIMIT,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::NodeConfig;
use crate::cpu::CpuComplex;
use crate::demand::Demand;
use crate::fault::{FaultCounters, FaultPlan, FaultState, InjectedFault};
use crate::gpu::GpuDevice;
use crate::mem::{progress_factor, MemoryChannel};
use crate::power::{EnergyTotals, PowerBreakdown};
#[cfg(feature = "telemetry")]
use crate::telemetry::NodeTelemetry;
use crate::uncore::UncoreDomain;

/// One CPU socket: core complex, uncore domain, memory channels, and the
/// per-socket energy counters mirrored into RAPL MSRs.
#[derive(Debug, Clone)]
pub struct Socket {
    /// Core complex (DVFS + fixed counters).
    pub cpu: CpuComplex,
    /// Uncore clock domain.
    pub uncore: UncoreDomain,
    /// Memory channel group.
    pub mem: MemoryChannel,
    /// Cumulative package energy (J) — core + uncore + overhead share.
    pub pkg_energy_j: f64,
    /// Cumulative DRAM energy (J).
    pub dram_energy_j: f64,
    /// RAPL PL1 package power limit (raw `0x610` value; 0 = disabled).
    pub power_limit_raw: u64,
}

/// Outcome of a single simulation tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepOutcome {
    /// Progress factor applied to the running phase (0..1].
    pub progress: f64,
    /// Delivered system memory throughput (GB/s).
    pub delivered_gbs: f64,
    /// Power breakdown during the tick.
    pub power: PowerBreakdown,
}

/// Reusable scratch state for the macro-stepping fast path
/// ([`Node::step_fast`] / [`Node::advance_until`]).
///
/// # How the fast path works
///
/// Between *events* — governor sample points (every MSR/PCM access bumps the
/// node's state epoch), workload phase boundaries (the demand changes), and
/// power-limit transients (the RAPL walk mutates the frequency cap every
/// tick until it converges) — the node's feedback state reaches a floating-
/// point fixed point: DVFS trackers converge, the uncore slew clamps exactly
/// onto its target, and `last_power` stops changing. From that point on,
/// every tick adds *bit-identical* increments to the pure accumulators
/// (energy, counters, traffic, time).
///
/// `FastForward` detects the fixed point by comparing bitwise snapshots of
/// the feedback state across two consecutive ticks. Once two snapshots
/// match, it captures the per-tick accumulator increments (computed by the
/// same expressions `step` uses) and *replays* them for subsequent ticks,
/// skipping the model evaluation entirely — ~a dozen additions instead of
/// eight `powf` calls and the full governor cascade. Replay is bit-for-bit
/// identical to per-tick stepping by construction; any event (epoch bump,
/// demand change, different `dt`) drops back to reference stepping until a
/// new fixed point is reached.
///
/// The scratch buffers are allocated once and reused, so the hot loop stays
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FastForward {
    frozen: bool,
    prev_valid: bool,
    epoch: u64,
    dt_us: u64,
    demand: Demand,
    prev: Vec<u64>,
    cur: Vec<u64>,
    /// Per-socket (cycles, instructions, traffic GB) increments.
    socket_inc: Vec<(f64, f64, f64)>,
    /// Per-GPU energy (J) increments.
    gpu_inc: Vec<f64>,
    pkg_per_socket_j: f64,
    dram_per_socket_j: f64,
    outcome: StepOutcome,
    /// Per-socket uncore residency bin at capture time. Uncore frequency
    /// is part of the feedback snapshot, so it is constant across a
    /// frozen span and the bin can be replayed verbatim.
    #[cfg(feature = "telemetry")]
    residency_bins: Vec<u16>,
}

impl FastForward {
    /// Fresh fast-forward state (equivalent to `Default`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True while the node is in a frozen span (ticks are being replayed).
    #[must_use]
    pub fn frozen(&self) -> bool {
        self.frozen
    }
}

/// Bitwise demand equality — stricter than `PartialEq` (distinguishes
/// `0.0`/`-0.0`), which is what the frozen-replay proof needs.
fn demand_bits_eq(a: &Demand, b: &Demand) -> bool {
    a.mem_gbs.to_bits() == b.mem_gbs.to_bits()
        && a.mem_frac.to_bits() == b.mem_frac.to_bits()
        && a.cpu_frac.to_bits() == b.cpu_frac.to_bits()
        && a.cpu_util.to_bits() == b.cpu_util.to_bits()
        && a.gpu_util.len() == b.gpu_util.len()
        && a.gpu_util
            .iter()
            .zip(b.gpu_util.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The simulated heterogeneous node.
#[derive(Debug, Clone)]
pub struct Node {
    cfg: NodeConfig,
    sockets: Vec<Socket>,
    gpus: Vec<GpuDevice>,
    time_us: u64,
    energy: EnergyTotals,
    last_power: PowerBreakdown,
    /// Monitoring-overhead energy waiting to be charged (µJ).
    pending_overhead_uj: f64,
    /// Ledger of all monitoring accesses (reads/writes and their costs).
    ledger: CostLedger,
    /// Recent delivered system throughput, (tick end time µs, GB/s). A
    /// bounded ring: entries older than the PCM measurement window are
    /// dropped every tick, so the length never exceeds
    /// `pcm_window_us / tick + 2` (asserted in debug builds).
    bw_history: VecDeque<(u64, f64)>,
    /// Bumped on every externally visible state mutation (MSR writes,
    /// monitoring charges); invalidates any [`FastForward`] frozen state.
    state_epoch: u64,
    /// Sensor-noise generator (deterministic per config seed).
    noise: SmallRng,
    /// Relative 1-sigma noise applied to PCM readings.
    pcm_noise_rel: f64,
    /// Absolute 1-sigma noise floor on PCM readings (GB/s).
    pcm_noise_abs_gbs: f64,
    /// When `Some(n)`, every `n`-th PCM read reports a dropout (0 GB/s) —
    /// failure injection for runtime robustness tests.
    pcm_dropout_every: Option<u64>,
    pcm_reads: u64,
    /// Active fault-injection state ([`crate::fault::FaultPlan`]). `None`
    /// unless a non-empty plan was attached: the clean-run cost of the
    /// fault layer is one `Option` discriminant check per fault site.
    faults: Option<Box<FaultState>>,
    /// Instrumentation counters + event log. Recording never touches
    /// `state_epoch` or feedback state: telemetry is invisible to the
    /// simulation and to the fast path's frozen spans.
    #[cfg(feature = "telemetry")]
    telemetry: NodeTelemetry,
}

impl Node {
    /// Build a node from a configuration. The uncore starts at max, GPUs
    /// idle, all counters zero.
    #[must_use]
    pub fn new(cfg: NodeConfig) -> Self {
        let sockets = (0..cfg.sockets)
            .map(|_| Socket {
                cpu: CpuComplex::new(cfg.cpu),
                uncore: UncoreDomain::new(cfg.uncore),
                mem: MemoryChannel::new(cfg.mem),
                pkg_energy_j: 0.0,
                dram_energy_j: 0.0,
                power_limit_raw: 0,
            })
            .collect();
        let gpus = cfg.gpus.iter().copied().map(GpuDevice::new).collect();
        let noise = SmallRng::seed_from_u64(cfg.seed);
        let bw_capacity = (cfg.pcm_window_us / cfg.tick_us.max(1) + 2) as usize;
        Self {
            cfg,
            sockets,
            gpus,
            time_us: 0,
            energy: EnergyTotals::default(),
            last_power: PowerBreakdown::default(),
            pending_overhead_uj: 0.0,
            ledger: CostLedger::new(),
            bw_history: VecDeque::with_capacity(bw_capacity),
            state_epoch: 0,
            noise,
            pcm_noise_rel: 0.01,
            pcm_noise_abs_gbs: 0.15,
            pcm_dropout_every: None,
            pcm_reads: 0,
            faults: None,
            #[cfg(feature = "telemetry")]
            telemetry: NodeTelemetry::default(),
        }
    }

    /// Node configuration.
    #[must_use]
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Simulated time (µs).
    #[must_use]
    pub fn time_us(&self) -> u64 {
        self.time_us
    }

    /// Simulated time (s).
    #[must_use]
    pub fn time_s(&self) -> f64 {
        crate::us_to_secs(self.time_us)
    }

    /// Sockets (read-only).
    #[must_use]
    pub fn sockets(&self) -> &[Socket] {
        &self.sockets
    }

    /// GPUs (read-only).
    #[must_use]
    pub fn gpus(&self) -> &[GpuDevice] {
        &self.gpus
    }

    /// Cumulative node energy totals.
    #[must_use]
    pub fn energy(&self) -> &EnergyTotals {
        &self.energy
    }

    /// Power breakdown of the most recent tick.
    #[must_use]
    pub fn last_power(&self) -> &PowerBreakdown {
        &self.last_power
    }

    /// Monitoring-access ledger (reads/writes, lifetime and pending costs).
    #[must_use]
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Mutable ledger access (drivers drain invocation latency from here).
    pub fn ledger_mut(&mut self) -> &mut CostLedger {
        &mut self.ledger
    }

    /// The externally-visible-mutation counter ([`Node::charge_monitoring`]
    /// bumps it on every MSR/PCM access). `pub(crate)`: the fleet's
    /// trajectory-dedup divergence check compares follower and
    /// representative epochs — a lone extra monitoring access is the
    /// cheapest observable difference between two deciders.
    #[must_use]
    pub(crate) fn state_epoch(&self) -> u64 {
        self.state_epoch
    }

    /// Instrumentation counters and buffered events (telemetry builds).
    #[cfg(feature = "telemetry")]
    #[must_use]
    pub fn telemetry(&self) -> &NodeTelemetry {
        &self.telemetry
    }

    /// Mutable telemetry access — runtime drivers push decision events
    /// here. Pushing events does **not** perturb simulated state, charge
    /// monitoring cost, or invalidate fast-forward frozen spans.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_mut(&mut self) -> &mut NodeTelemetry {
        &mut self.telemetry
    }

    /// Enable PCM dropout injection: every `n`-th read returns 0 GB/s.
    /// Pass 0 to disable.
    pub fn set_pcm_dropout_every(&mut self, n: u64) {
        self.pcm_dropout_every = if n == 0 { None } else { Some(n) };
    }

    /// Attach a fault-injection plan. An empty plan detaches entirely
    /// ([`FaultPlan::is_empty`]), making the run bit-identical to one that
    /// never called this.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(Box::new(FaultState::new(plan)))
        };
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref().map(|fs| &fs.plan)
    }

    /// Counts of faults injected so far (all zero without a plan).
    #[must_use]
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_deref()
            .map_or_else(FaultCounters::default, |fs| fs.counters)
    }

    /// Uncore transitions summed across sockets (thrash diagnostic).
    #[must_use]
    pub fn uncore_transitions(&self) -> u64 {
        self.sockets.iter().map(|s| s.uncore.transitions()).sum()
    }

    /// Apply any injected-delay uncore writes that have come due. Runs at
    /// the head of every reference tick; a pending write due inside a tick
    /// takes effect at that tick's start boundary (the same instant on both
    /// stepping paths, since the fast path refuses to replay across a due
    /// write). Applying bumps `state_epoch` exactly like a live MSR write.
    fn apply_due_actuations(&mut self) {
        loop {
            let now = self.time_us;
            let Some(w) = self.faults.as_deref_mut().and_then(|fs| fs.pop_due(now)) else {
                break;
            };
            let lim = UncoreRatioLimit::decode(w.value);
            self.sockets[w.pkg as usize]
                .uncore
                .set_msr_limits(lim.min_ghz(), lim.max_ghz());
            self.state_epoch = self.state_epoch.wrapping_add(1);
            #[cfg(feature = "telemetry")]
            {
                self.telemetry.uncore_msr_writes += 1;
                self.telemetry.push_event(
                    magus_telemetry::Event::new(now, "uncore_limit_write")
                        .with("pkg", u64::from(w.pkg))
                        .with("min_ghz", lim.min_ghz())
                        .with("max_ghz", lim.max_ghz())
                        .with("delayed", true),
                );
            }
        }
    }

    /// True when a deferred actuation is due at or before the current time
    /// (so the next tick must run through [`Node::step`], not be replayed).
    #[inline]
    fn fault_actuation_due(&self) -> bool {
        self.faults
            .as_deref()
            .is_some_and(|fs| fs.next_due_us <= self.time_us)
    }

    /// Advance the node one tick of `dt_us` under `demand`.
    pub fn step(&mut self, dt_us: u64, demand: &Demand) -> StepOutcome {
        if self.faults.is_some() {
            self.apply_due_actuations();
        }
        let dt_s = crate::us_to_secs(dt_us);
        let n_sockets = self.sockets.len() as f64;

        // 1. TDP-coupled stock governor: cap the uncore only when the last
        //    tick's package power neared TDP (§2). Computed per socket.
        let gov = self.cfg.tdp_governor;
        let pkg_per_socket = self.last_power.pkg_w() / n_sockets;
        let power_unit = RaplPowerUnit::default();
        for socket in &mut self.sockets {
            // RAPL PL1 enforcement: when the socket exceeds its programmed
            // power limit, walk the core frequency cap down; when it is
            // comfortably below, walk the cap back up. First-order control
            // like the firmware's running-average limiter.
            let limit = PkgPowerLimit::decode(socket.power_limit_raw, power_unit.power_exp);
            if limit.enabled && limit.limit_w > 0.0 {
                let excess_w = pkg_per_socket - limit.limit_w;
                let cap = socket.cpu.freq_cap_ghz();
                if excess_w > 0.0 {
                    let current = if cap.is_finite() {
                        cap
                    } else {
                        socket.cpu.config().core_freq_max_ghz
                    };
                    socket.cpu.set_freq_cap(current - 0.02 * excess_w.min(40.0));
                } else if excess_w < -5.0 && cap.is_finite() {
                    socket.cpu.set_freq_cap(cap + 0.05);
                }
            } else if socket.cpu.freq_cap_ghz().is_finite() {
                socket.cpu.set_freq_cap(f64::INFINITY);
            }
            if gov.enabled {
                let trigger_w = gov.trigger_frac * socket.cpu.config().tdp_w;
                if pkg_per_socket > trigger_w {
                    let excess = pkg_per_socket - trigger_w;
                    let cap = socket.uncore.config().freq_max_ghz - gov.ghz_per_watt * excess;
                    socket.uncore.set_tdp_cap(cap);
                } else {
                    let max = socket.uncore.config().freq_max_ghz;
                    socket.uncore.set_tdp_cap(max);
                }
            }
            // 2. Slew the uncore clock towards its target.
            socket.uncore.step(dt_s);
        }

        // 3. Memory delivery, split evenly across sockets.
        let demand_per_socket = demand.mem_gbs / n_sockets;
        let mut delivered_total = 0.0;
        for socket in &mut self.sockets {
            let norm = socket.uncore.norm_freq();
            delivered_total += socket.mem.step(dt_s, demand_per_socket, norm);
        }

        // 4. Progress under the roofline stall model, serially composed
        //    with the RAPL-throttle term: the memory-bound share stretches
        //    by demand/delivered, the throttle-sensitive host share by the
        //    inverse throttle factor, and the rest runs at full speed.
        let mem_progress = progress_factor(demand.mem_frac, demand.mem_gbs, delivered_total);
        let throttle = self
            .sockets
            .iter()
            .map(|s| s.cpu.throttle_factor())
            .fold(1.0f64, f64::min);
        let cpu_frac = demand
            .cpu_frac
            .clamp(0.0, 1.0 - demand.mem_frac.clamp(0.0, 1.0));
        let progress = if cpu_frac > 0.0 && throttle < 1.0 {
            let mem_stretch = if mem_progress > 0.0 {
                1.0 / mem_progress
            } else {
                f64::INFINITY
            };
            // mem_stretch already counts the (1 - mem_frac) remainder at
            // full speed; replace the cpu share of that remainder with the
            // throttled rate.
            let stretch = mem_stretch - cpu_frac + cpu_frac / throttle.max(1e-6);
            if stretch.is_finite() {
                1.0 / stretch
            } else {
                0.0
            }
        } else {
            mem_progress
        };

        // 5. Core complexes and GPUs.
        for socket in &mut self.sockets {
            socket.cpu.step(dt_s, demand.cpu_util, progress);
        }
        for (idx, gpu) in self.gpus.iter_mut().enumerate() {
            gpu.step(dt_s, demand.gpu_util(idx));
        }

        // 6. Power breakdown for this tick.
        let overhead_w = (self.pending_overhead_uj * 1e-6) / dt_s;
        self.pending_overhead_uj = 0.0;
        let mut power = PowerBreakdown {
            overhead_w,
            ..PowerBreakdown::default()
        };
        for socket in &self.sockets {
            let norm = socket.uncore.norm_freq();
            power.core_w += socket.cpu.power_w();
            power.uncore_w += socket.uncore.power_w(socket.mem.activity(norm));
            power.dram_w += socket.mem.dram_power_w();
        }
        for gpu in &self.gpus {
            power.gpu_w += gpu.power_w();
        }

        // 6b. Uncore-frequency residency: socket-µs per 0.1 GHz bin. One
        //     array add per socket; replayed bit-identically by the fast
        //     path from the bins captured at the fixed point.
        #[cfg(feature = "telemetry")]
        for socket in &self.sockets {
            let bin = crate::telemetry::freq_bin(socket.uncore.freq_ghz());
            self.telemetry.residency_us[bin as usize] += dt_us;
        }

        // 7. Energy accounting, node-level and per-socket (RAPL domains).
        self.energy.accumulate(&power, dt_s);
        let pkg_per_socket_j =
            (power.core_w + power.uncore_w + power.overhead_w) / n_sockets * dt_s;
        let dram_per_socket_j = power.dram_w / n_sockets * dt_s;
        for socket in &mut self.sockets {
            socket.pkg_energy_j += pkg_per_socket_j;
            socket.dram_energy_j += dram_per_socket_j;
        }

        self.last_power = power;
        self.time_us += dt_us;

        // 8. Retain delivered-throughput history for PCM windows.
        self.record_bw(dt_us, delivered_total);

        StepOutcome {
            progress,
            delivered_gbs: delivered_total,
            power,
        }
    }

    /// Append this tick's delivered throughput and trim entries older than
    /// the PCM measurement window. Shared by `step` and the frozen replay so
    /// both paths keep byte-identical history.
    fn record_bw(&mut self, dt_us: u64, delivered_gbs: f64) {
        self.bw_history.push_back((self.time_us, delivered_gbs));
        let horizon = self.time_us.saturating_sub(self.cfg.pcm_window_us);
        while let Some(&(t, _)) = self.bw_history.front() {
            if t < horizon {
                self.bw_history.pop_front();
            } else {
                break;
            }
        }
        debug_assert!(
            self.bw_history.len() <= (self.cfg.pcm_window_us / dt_us.max(1) + 2) as usize,
            "bw_history grew past its PCM-window bound: {} entries",
            self.bw_history.len()
        );
    }

    /// Advance one tick like [`Node::step`], but replay pre-verified
    /// per-tick increments whenever the node is in a frozen span (see
    /// [`FastForward`]). Bit-for-bit identical to `step` on every field.
    pub fn step_fast(&mut self, dt_us: u64, demand: &Demand, ff: &mut FastForward) -> StepOutcome {
        // A deferred actuation coming due is an event like any other: the
        // tick must run through `step` (which applies it at the tick head
        // and bumps the epoch), never be replayed over.
        let actuation_due = self.fault_actuation_due();
        if ff.frozen
            && !actuation_due
            && ff.epoch == self.state_epoch
            && ff.dt_us == dt_us
            && demand_bits_eq(&ff.demand, demand)
        {
            self.replay_frozen_tick(dt_us, ff);
            return ff.outcome;
        }
        // An event occurred (or we never froze): restart fixed-point
        // detection from reference steps.
        if actuation_due
            || ff.epoch != self.state_epoch
            || ff.dt_us != dt_us
            || !demand_bits_eq(&ff.demand, demand)
        {
            #[cfg(feature = "telemetry")]
            if ff.frozen {
                self.telemetry.fastpath_invalidations += 1;
            }
            ff.frozen = false;
            ff.prev_valid = false;
            ff.epoch = self.state_epoch;
            ff.dt_us = dt_us;
            ff.demand = *demand;
        }
        let out = self.step(dt_us, demand);
        self.write_feedback_snapshot(&mut ff.cur);
        if ff.prev_valid && ff.cur == ff.prev {
            self.capture_increments(dt_us, demand, out, ff);
            ff.frozen = true;
            #[cfg(feature = "telemetry")]
            {
                self.telemetry.fastpath_frozen_spans += 1;
            }
        } else {
            core::mem::swap(&mut ff.prev, &mut ff.cur);
            ff.prev_valid = true;
        }
        out
    }

    /// Fast-forward the node to `horizon_us` (exclusive of any tick starting
    /// at or past it) under constant demand, using the macro-stepping fast
    /// path. Returns the number of ticks advanced. The caller chooses the
    /// horizon as the next *event* time — a governor decision point, a
    /// workload phase boundary, or the end of the run budget.
    pub fn advance_until(&mut self, horizon_us: u64, demand: &Demand, ff: &mut FastForward) -> u64 {
        let dt_us = self.cfg.tick_us;
        let mut ticks = 0;
        while self.time_us < horizon_us {
            self.step_fast(dt_us, demand, ff);
            ticks += 1;
        }
        ticks
    }

    /// Serialise the feedback state — everything `step` *reads* — as raw
    /// bits. Two consecutive equal snapshots prove the node sits on a
    /// floating-point fixed point of `step` for the current demand.
    ///
    /// `pub(crate)`: the fleet's trajectory-dedup divergence check reuses
    /// this exact snapshot to compare a follower node against its class
    /// representative after each decision round.
    pub(crate) fn write_feedback_snapshot(&self, out: &mut Vec<u64>) {
        out.clear();
        for s in &self.sockets {
            out.push(s.cpu.freq_ghz().to_bits());
            out.push(s.cpu.freq_cap_ghz().to_bits());
            out.push(s.cpu.natural_target_ghz().to_bits());
            out.push(s.cpu.util().to_bits());
            out.push(s.uncore.freq_ghz().to_bits());
            let (min, max) = s.uncore.msr_limits();
            out.push(min.to_bits());
            out.push(max.to_bits());
            out.push(s.uncore.tdp_cap_ghz().to_bits());
            out.push(s.uncore.last_target_ghz().to_bits());
            out.push(s.mem.delivered_gbs().to_bits());
            out.push(s.mem.demanded_gbs().to_bits());
            out.push(s.power_limit_raw);
        }
        for g in &self.gpus {
            out.push(g.sm_clock_mhz().to_bits());
            out.push(g.util().to_bits());
        }
        out.push(self.last_power.core_w.to_bits());
        out.push(self.last_power.uncore_w.to_bits());
        out.push(self.last_power.dram_w.to_bits());
        out.push(self.last_power.gpu_w.to_bits());
        out.push(self.last_power.overhead_w.to_bits());
        out.push(self.pending_overhead_uj.to_bits());
    }

    /// Capture the per-tick accumulator increments at a fixed point. Every
    /// value is produced by the same expression (same operands, same
    /// evaluation order) `step` uses, so replaying them is bit-exact.
    fn capture_increments(
        &self,
        dt_us: u64,
        demand: &Demand,
        out: StepOutcome,
        ff: &mut FastForward,
    ) {
        let dt_s = crate::us_to_secs(dt_us);
        let n_sockets = self.sockets.len() as f64;
        ff.socket_inc.clear();
        for s in &self.sockets {
            let (cycles, instructions) =
                s.cpu
                    .tick_counter_increments(demand.cpu_util, out.progress, dt_s);
            ff.socket_inc
                .push((cycles, instructions, s.mem.delivered_gbs() * dt_s));
        }
        ff.gpu_inc.clear();
        for g in &self.gpus {
            ff.gpu_inc.push(g.power_w() * dt_s);
        }
        ff.pkg_per_socket_j =
            (out.power.core_w + out.power.uncore_w + out.power.overhead_w) / n_sockets * dt_s;
        ff.dram_per_socket_j = out.power.dram_w / n_sockets * dt_s;
        ff.outcome = out;
        #[cfg(feature = "telemetry")]
        {
            ff.residency_bins.clear();
            for s in &self.sockets {
                ff.residency_bins
                    .push(crate::telemetry::freq_bin(s.uncore.freq_ghz()));
            }
        }
    }

    /// One replayed tick: apply the captured increments to the accumulators
    /// and leave all feedback state untouched (it is at a fixed point).
    fn replay_frozen_tick(&mut self, dt_us: u64, ff: &FastForward) {
        let dt_s = crate::us_to_secs(dt_us);
        for (s, &(cycles, instructions, gb)) in self.sockets.iter_mut().zip(&ff.socket_inc) {
            s.cpu.replay_tick(cycles, instructions);
            s.mem.replay_tick(gb);
            s.pkg_energy_j += ff.pkg_per_socket_j;
            s.dram_energy_j += ff.dram_per_socket_j;
        }
        for (g, &energy_j) in self.gpus.iter_mut().zip(&ff.gpu_inc) {
            g.replay_tick(energy_j);
        }
        self.energy.accumulate(&ff.outcome.power, dt_s);
        self.time_us += dt_us;
        self.record_bw(dt_us, ff.outcome.delivered_gbs);
        // Telemetry replay mirrors step() 6b exactly: the uncore frequency
        // is feedback state, so its bin is constant across the span.
        #[cfg(feature = "telemetry")]
        {
            for &bin in &ff.residency_bins {
                self.telemetry.residency_us[bin as usize] += dt_us;
            }
            self.telemetry.fastpath_replayed_ticks += 1;
        }
    }

    /// Charge a monitoring access cost against the node: energy joins the
    /// next tick's overhead power; the ledger records both components so
    /// drivers can report invocation latency.
    pub fn charge_monitoring(&mut self, cost: AccessCost, is_write: bool) {
        // Any monitoring access perturbs the node (pending overhead now; MSR
        // side effects for writes), so it invalidates frozen fast-forward
        // state. Every msr_read/msr_write/pcm_read charges, so bumping here
        // covers the whole actuation surface.
        self.state_epoch = self.state_epoch.wrapping_add(1);
        self.pending_overhead_uj += cost.energy_uj;
        if is_write {
            self.ledger.record_write(cost);
        } else {
            self.ledger.record_read(cost);
        }
    }

    fn core_read_cost(&self) -> AccessCost {
        AccessCost::new(
            self.cfg.core_msr_read_latency_us,
            self.cfg.core_msr_read_energy_uj,
        )
    }

    /// MSR read with full cost accounting. Supports the registers the
    /// reproduced runtimes use; anything else is `UnknownRegister`.
    pub fn msr_read(&mut self, scope: MsrScope, addr: u32) -> Result<u64, MsrError> {
        let unit = RaplPowerUnit::default();
        match scope {
            MsrScope::Package(pkg) => {
                let idx = pkg as usize;
                if idx >= self.sockets.len() {
                    return Err(MsrError::BadScope(scope));
                }
                self.charge_monitoring(AccessCost::new(250.0, 260.0), false);
                match addr {
                    MSR_RAPL_POWER_UNIT => Ok(unit.encode()),
                    MSR_PKG_ENERGY_STATUS => {
                        Ok(unit.joules_to_counts(self.sockets[idx].pkg_energy_j))
                    }
                    MSR_DRAM_ENERGY_STATUS => {
                        Ok(unit.joules_to_counts(self.sockets[idx].dram_energy_j))
                    }
                    MSR_UNCORE_RATIO_LIMIT => {
                        let (min, max) = self.sockets[idx].uncore.msr_limits();
                        Ok(UncoreRatioLimit::from_ghz(min, max).encode())
                    }
                    MSR_PKG_POWER_LIMIT => Ok(self.sockets[idx].power_limit_raw),
                    _ => Err(MsrError::UnknownRegister(addr)),
                }
            }
            MsrScope::Core(core) => {
                if core >= self.cfg.total_cores() {
                    return Err(MsrError::BadScope(scope));
                }
                self.charge_monitoring(self.core_read_cost(), false);
                let socket = (core / self.cfg.cpu.cores) as usize;
                let local = core % self.cfg.cpu.cores;
                let cpu = &self.sockets[socket].cpu;
                match addr {
                    IA32_FIXED_CTR0 => Ok(cpu.core_instructions(local)),
                    IA32_FIXED_CTR1 | IA32_FIXED_CTR2 => Ok(cpu.core_cycles(local)),
                    _ => Err(MsrError::UnknownRegister(addr)),
                }
            }
        }
    }

    /// MSR write with cost accounting. Only `UNCORE_RATIO_LIMIT` is
    /// writable, matching what the runtimes actuate.
    pub fn msr_write(&mut self, scope: MsrScope, addr: u32, value: u64) -> Result<(), MsrError> {
        match scope {
            MsrScope::Package(pkg) => {
                let idx = pkg as usize;
                if idx >= self.sockets.len() {
                    return Err(MsrError::BadScope(scope));
                }
                self.charge_monitoring(AccessCost::new(60.0, 60.0), true);
                match addr {
                    MSR_UNCORE_RATIO_LIMIT => {
                        // Injected actuation faults: the write's cost is
                        // already charged (the wrmsr was attempted) whether
                        // it fails, lands late, or goes through.
                        if let Some(fs) = self.faults.as_deref_mut() {
                            fs.uncore_writes += 1;
                            if fs
                                .plan
                                .msr
                                .uncore_write_fail_every
                                .is_some_and(|n| fs.uncore_writes.is_multiple_of(n))
                            {
                                fs.counters.msr_write_fails += 1;
                                #[cfg(feature = "telemetry")]
                                self.telemetry.push_event(
                                    magus_telemetry::Event::new(
                                        self.time_us,
                                        "fault_msr_write_fail",
                                    )
                                    .with("pkg", u64::from(pkg))
                                    .with("attempt", fs.uncore_writes),
                                );
                                return Err(MsrError::TransientFault);
                            }
                            if fs.plan.msr.actuation_delay_us > 0 {
                                let due = self.time_us + fs.plan.msr.actuation_delay_us;
                                fs.defer_write(due, pkg, value);
                                #[cfg(feature = "telemetry")]
                                self.telemetry.push_event(
                                    magus_telemetry::Event::new(
                                        self.time_us,
                                        "fault_actuation_delayed",
                                    )
                                    .with("pkg", u64::from(pkg))
                                    .with("due_us", due),
                                );
                                return Ok(());
                            }
                        }
                        let lim = UncoreRatioLimit::decode(value);
                        self.sockets[idx]
                            .uncore
                            .set_msr_limits(lim.min_ghz(), lim.max_ghz());
                        #[cfg(feature = "telemetry")]
                        {
                            self.telemetry.uncore_msr_writes += 1;
                            self.telemetry.push_event(
                                magus_telemetry::Event::new(self.time_us, "uncore_limit_write")
                                    .with("pkg", u64::from(pkg))
                                    .with("min_ghz", lim.min_ghz())
                                    .with("max_ghz", lim.max_ghz()),
                            );
                        }
                        Ok(())
                    }
                    MSR_PKG_POWER_LIMIT => {
                        self.sockets[idx].power_limit_raw = value;
                        Ok(())
                    }
                    MSR_RAPL_POWER_UNIT | MSR_PKG_ENERGY_STATUS | MSR_DRAM_ENERGY_STATUS => {
                        Err(MsrError::ReadOnly(addr))
                    }
                    _ => Err(MsrError::UnknownRegister(addr)),
                }
            }
            MsrScope::Core(_) => Err(MsrError::ReadOnly(addr)),
        }
    }

    /// Program an enabled RAPL PL1 package power limit on every socket
    /// (`limit_w` is per socket). Convenience over `msr_write(0x610)`.
    pub fn set_power_limit_w(&mut self, limit_w: f64) -> Result<(), MsrError> {
        let raw = PkgPowerLimit::enabled_watts(limit_w).encode();
        for pkg in 0..self.cfg.sockets {
            self.msr_write(MsrScope::Package(pkg), MSR_PKG_POWER_LIMIT, raw)?;
        }
        Ok(())
    }

    /// PCM-style memory-throughput measurement:
    /// [`Node::pcm_try_read_gbs`] with injected dropouts flattened to
    /// 0 GB/s (the legacy surface for callers without an error path).
    pub fn pcm_read_gbs(&mut self) -> f64 {
        self.pcm_try_read_gbs().unwrap_or(0.0)
    }

    /// PCM-style memory-throughput measurement: the mean delivered system
    /// throughput over the configured measurement window, with sensor noise.
    /// Charges the measurement's daemon-power cost.
    ///
    /// Returns GB/s. Reads during the very first window average whatever
    /// history exists. With an attached [`FaultPlan`], reads may fail
    /// ([`InjectedFault::PcmDropout`]), return stale values, spike, or carry
    /// extra jitter per the plan's schedule; the clean noise draw always
    /// comes from the node's own sensor-noise stream, so an empty plan
    /// leaves the reading sequence bit-identical.
    pub fn pcm_try_read_gbs(&mut self) -> Result<f64, InjectedFault> {
        let window_us = self.cfg.pcm_window_us;
        let energy_uj = self.cfg.pcm_daemon_power_w * window_us as f64; // W·µs = µJ
        self.charge_monitoring(AccessCost::new(window_us as f64, energy_uj), false);
        self.pcm_reads += 1;
        if let Some(n) = self.pcm_dropout_every {
            if self.pcm_reads.is_multiple_of(n) {
                return Ok(0.0);
            }
        }
        let since = self.time_us.saturating_sub(window_us);
        let mut sum = 0.0;
        let mut count = 0u64;
        for &(t, bw) in self.bw_history.iter().rev() {
            if t <= since {
                break;
            }
            sum += bw;
            count += 1;
        }
        let mean = if count == 0 { 0.0 } else { sum / count as f64 };
        let sigma = (mean * self.pcm_noise_rel).max(self.pcm_noise_abs_gbs);
        // Cheap deterministic gaussian-ish noise: mean of 4 uniforms.
        let u: f64 = (0..4).map(|_| self.noise.gen_range(-1.0..1.0)).sum::<f64>() / 4.0;
        let mut value = (mean + sigma * u * 1.732).max(0.0);
        let read_idx = self.pcm_reads;
        let time_us = self.time_us;
        if let Some(fs) = self.faults.as_deref_mut() {
            let pcm = fs.plan.pcm;
            if pcm
                .dropout_every
                .is_some_and(|n| read_idx.is_multiple_of(n))
            {
                fs.counters.pcm_dropouts += 1;
                #[cfg(feature = "telemetry")]
                self.telemetry.push_event(
                    magus_telemetry::Event::new(time_us, "fault_pcm_dropout")
                        .with("read", read_idx),
                );
                return Err(InjectedFault::PcmDropout);
            }
            if pcm.stale_every.is_some_and(|n| read_idx.is_multiple_of(n)) {
                fs.counters.pcm_stale += 1;
                let stale = fs.last_pcm_gbs;
                #[cfg(feature = "telemetry")]
                self.telemetry.push_event(
                    magus_telemetry::Event::new(time_us, "fault_pcm_stale")
                        .with("read", read_idx)
                        .with("gbs", stale),
                );
                return Ok(stale);
            }
            if pcm.spike_every.is_some_and(|n| read_idx.is_multiple_of(n)) {
                fs.counters.pcm_spikes += 1;
                let sign = if fs.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                value = (value * (1.0 + sign * pcm.spike_magnitude_rel)).max(0.0);
                #[cfg(feature = "telemetry")]
                self.telemetry.push_event(
                    magus_telemetry::Event::new(time_us, "fault_pcm_spike")
                        .with("read", read_idx)
                        .with("gbs", value),
                );
            }
            if pcm.extra_noise_rel > 0.0 {
                let jitter: f64 = fs.rng.gen_range(-1.0..1.0);
                value = (value + mean * pcm.extra_noise_rel * jitter).max(0.0);
            }
            fs.last_pcm_gbs = value;
        }
        Ok(value)
    }

    /// Delivered throughput of the most recent tick (GB/s), noise-free —
    /// for recording ground-truth traces, not for runtime consumption.
    #[must_use]
    pub fn delivered_gbs(&self) -> f64 {
        self.bw_history.back().map_or(0.0, |&(_, bw)| bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;

    fn node() -> Node {
        Node::new(NodeConfig::intel_a100())
    }

    fn busy_demand() -> Demand {
        Demand::new(40.0, 0.5, 0.2, 0.9)
    }

    #[test]
    fn uncore_stays_max_under_gpu_dominant_load() {
        // The paper's motivating observation (Fig 1c): with the stock
        // governor, GPU-dominant load never pushes package power to TDP, so
        // the uncore never leaves its maximum.
        let mut n = node();
        for _ in 0..500 {
            n.step(10_000, &busy_demand());
        }
        for socket in n.sockets() {
            assert!((socket.uncore.freq_ghz() - 2.2).abs() < 1e-9);
        }
        assert!(n.last_power().pkg_w() < 0.9 * 2.0 * 270.0);
    }

    #[test]
    fn msr_write_0x620_lowers_uncore() {
        let mut n = node();
        let raw = UncoreRatioLimit::from_ghz(0.8, 0.8).encode();
        for pkg in 0..2 {
            n.msr_write(MsrScope::Package(pkg), MSR_UNCORE_RATIO_LIMIT, raw)
                .unwrap();
        }
        for _ in 0..100 {
            n.step(10_000, &busy_demand());
        }
        for socket in n.sockets() {
            assert!((socket.uncore.freq_ghz() - 0.8).abs() < 1e-9);
        }
    }

    #[test]
    fn low_uncore_caps_delivered_bandwidth_and_progress() {
        let mut hi = node();
        let mut lo = node();
        let raw = UncoreRatioLimit::from_ghz(0.8, 0.8).encode();
        for pkg in 0..2 {
            lo.msr_write(MsrScope::Package(pkg), MSR_UNCORE_RATIO_LIMIT, raw)
                .unwrap();
        }
        let demand = Demand::new(120.0, 0.6, 0.2, 0.9);
        let mut out_hi = None;
        let mut out_lo = None;
        for _ in 0..300 {
            out_hi = Some(hi.step(10_000, &demand));
            out_lo = Some(lo.step(10_000, &demand));
        }
        let (hi, lo) = (out_hi.unwrap(), out_lo.unwrap());
        assert!(lo.delivered_gbs < hi.delivered_gbs);
        assert!(lo.progress < hi.progress);
        assert!(hi.progress <= 1.0);
    }

    #[test]
    fn pkg_power_drops_when_uncore_drops() {
        let mut hi = node();
        let mut lo = node();
        let raw = UncoreRatioLimit::from_ghz(0.8, 0.8).encode();
        for pkg in 0..2 {
            lo.msr_write(MsrScope::Package(pkg), MSR_UNCORE_RATIO_LIMIT, raw)
                .unwrap();
        }
        let demand = busy_demand();
        for _ in 0..300 {
            hi.step(10_000, &demand);
            lo.step(10_000, &demand);
        }
        let delta = hi.last_power().pkg_w() - lo.last_power().pkg_w();
        // Fig 2 scale: ~82 W across two sockets.
        assert!(delta > 55.0 && delta < 110.0, "delta = {delta}");
    }

    #[test]
    fn rapl_counters_track_energy() {
        let mut n = node();
        for _ in 0..100 {
            n.step(10_000, &busy_demand());
        }
        let unit = RaplPowerUnit::default();
        let raw = n
            .msr_read(MsrScope::Package(0), MSR_PKG_ENERGY_STATUS)
            .unwrap();
        let j = unit.counts_to_joules(raw);
        let expect = n.sockets()[0].pkg_energy_j;
        assert!((j - expect).abs() < 0.01, "rapl {j} vs model {expect}");
        assert!(j > 0.0);
    }

    #[test]
    fn fixed_counters_monotone_and_ipc_sane() {
        let mut n = node();
        let mut prev = 0u64;
        for _ in 0..5 {
            for _ in 0..20 {
                n.step(10_000, &busy_demand());
            }
            let inst = n.msr_read(MsrScope::Core(0), IA32_FIXED_CTR0).unwrap();
            assert!(inst >= prev);
            prev = inst;
        }
        let inst = n.msr_read(MsrScope::Core(3), IA32_FIXED_CTR0).unwrap();
        let cyc = n.msr_read(MsrScope::Core(3), IA32_FIXED_CTR1).unwrap();
        let ipc = inst as f64 / cyc as f64;
        assert!(ipc > 1.0 && ipc < 2.5, "ipc = {ipc}");
    }

    #[test]
    fn monitoring_costs_become_overhead_power() {
        let mut n = node();
        n.step(10_000, &Demand::idle());
        let idle_power = n.last_power().pkg_w();
        // One PCM read charges window-energy into the next tick.
        let _ = n.pcm_read_gbs();
        n.step(10_000, &Demand::idle());
        assert!(n.last_power().overhead_w > 0.0);
        assert!(n.last_power().pkg_w() > idle_power);
        assert_eq!(n.ledger().reads(), 1);
    }

    #[test]
    fn pcm_read_averages_recent_window() {
        let mut n = node();
        let demand = Demand::new(30.0, 0.5, 0.2, 0.5);
        for _ in 0..50 {
            n.step(10_000, &demand);
        }
        let reading = n.pcm_read_gbs();
        assert!((reading - 30.0).abs() < 3.0, "reading = {reading}");
    }

    #[test]
    fn pcm_dropout_injection() {
        let mut n = node();
        let demand = Demand::new(30.0, 0.5, 0.2, 0.5);
        for _ in 0..50 {
            n.step(10_000, &demand);
        }
        n.set_pcm_dropout_every(2);
        let first = n.pcm_read_gbs();
        let second = n.pcm_read_gbs();
        assert!(first > 0.0);
        assert_eq!(second, 0.0);
    }

    #[test]
    fn bad_scopes_and_registers_error() {
        let mut n = node();
        assert!(matches!(
            n.msr_read(MsrScope::Package(9), MSR_PKG_ENERGY_STATUS),
            Err(MsrError::BadScope(_))
        ));
        assert!(matches!(
            n.msr_read(MsrScope::Core(999), IA32_FIXED_CTR0),
            Err(MsrError::BadScope(_))
        ));
        assert!(matches!(
            n.msr_read(MsrScope::Package(0), 0x42),
            Err(MsrError::UnknownRegister(0x42))
        ));
        assert!(matches!(
            n.msr_write(MsrScope::Package(0), MSR_PKG_ENERGY_STATUS, 0),
            Err(MsrError::ReadOnly(_))
        ));
        assert!(matches!(
            n.msr_write(MsrScope::Core(0), IA32_FIXED_CTR0, 0),
            Err(MsrError::ReadOnly(_))
        ));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut n = node();
            for _ in 0..200 {
                n.step(10_000, &busy_demand());
            }
            let _ = n.pcm_read_gbs();
            (n.energy().total_j(), n.pcm_read_gbs())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn power_limit_enforced_by_core_throttling() {
        let mut n = node();
        // A heavy CPU load, uncapped, runs well above 90 W per socket.
        let demand = Demand::new(40.0, 0.4, 0.9, 0.9);
        for _ in 0..500 {
            n.step(10_000, &demand);
        }
        let uncapped = n.last_power().pkg_w() / 2.0;
        assert!(uncapped > 95.0, "uncapped {uncapped}");

        n.set_power_limit_w(90.0).unwrap();
        for _ in 0..3000 {
            n.step(10_000, &demand);
        }
        let capped = n.last_power().pkg_w() / 2.0;
        assert!(
            capped < 93.0,
            "capped socket power {capped} W vs limit 90 W"
        );
        assert!(n.sockets()[0].cpu.freq_cap_ghz().is_finite());

        // Disabling the limit releases the throttle.
        let off = PkgPowerLimit::disabled().encode();
        for pkg in 0..2 {
            n.msr_write(MsrScope::Package(pkg), MSR_PKG_POWER_LIMIT, off)
                .unwrap();
        }
        for _ in 0..500 {
            n.step(10_000, &demand);
        }
        assert!(n.last_power().pkg_w() / 2.0 > 95.0);
    }

    #[test]
    fn throttled_cores_slow_cpu_sensitive_work() {
        // A workload with a 40% host-sensitive critical path under a tight
        // power cap progresses slower; an insensitive one does not.
        let run = |cpu_frac: f64| {
            let mut n = node();
            n.set_power_limit_w(80.0).unwrap();
            let demand = Demand::new(10.0, 0.1, 0.9, 0.5).with_cpu_frac(cpu_frac);
            let mut last = 1.0;
            for _ in 0..2000 {
                last = n.step(10_000, &demand).progress;
            }
            last
        };
        let insensitive = run(0.0);
        let sensitive = run(0.4);
        assert!((insensitive - 1.0).abs() < 1e-9, "{insensitive}");
        assert!(sensitive < 0.92, "sensitive progress {sensitive}");
        assert!(sensitive > 0.4);
    }

    #[test]
    fn cpu_frac_neutral_without_cap() {
        let mut n = node();
        let demand = Demand::new(10.0, 0.1, 0.9, 0.5).with_cpu_frac(0.5);
        let mut last = 0.0;
        for _ in 0..300 {
            last = n.step(10_000, &demand).progress;
        }
        assert!((last - 1.0).abs() < 1e-9, "uncapped progress {last}");
    }

    #[test]
    fn power_limit_register_round_trips() {
        let mut n = node();
        n.set_power_limit_w(150.0).unwrap();
        let raw = n
            .msr_read(MsrScope::Package(1), MSR_PKG_POWER_LIMIT)
            .unwrap();
        let lim = PkgPowerLimit::decode(raw, RaplPowerUnit::default().power_exp);
        assert!(lim.enabled);
        assert!((lim.limit_w - 150.0).abs() < 0.2);
    }

    /// Compare every observable accumulator and feedback field of two nodes
    /// bit-for-bit.
    fn assert_nodes_identical(a: &Node, b: &Node, ctx: &str) {
        assert_eq!(a.time_us(), b.time_us(), "{ctx}: time");
        let (ea, eb) = (a.energy(), b.energy());
        for (x, y, what) in [
            (ea.core_j, eb.core_j, "core_j"),
            (ea.uncore_j, eb.uncore_j, "uncore_j"),
            (ea.dram_j, eb.dram_j, "dram_j"),
            (ea.gpu_j, eb.gpu_j, "gpu_j"),
            (ea.overhead_j, eb.overhead_j, "overhead_j"),
            (ea.elapsed_s, eb.elapsed_s, "elapsed_s"),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: energy.{what}");
        }
        for (sa, sb) in a.sockets().iter().zip(b.sockets()) {
            assert_eq!(
                sa.cpu.freq_ghz().to_bits(),
                sb.cpu.freq_ghz().to_bits(),
                "{ctx}"
            );
            assert_eq!(
                sa.cpu.cycles().to_bits(),
                sb.cpu.cycles().to_bits(),
                "{ctx}"
            );
            assert_eq!(
                sa.cpu.instructions().to_bits(),
                sb.cpu.instructions().to_bits(),
                "{ctx}"
            );
            assert_eq!(
                sa.pkg_energy_j.to_bits(),
                sb.pkg_energy_j.to_bits(),
                "{ctx}"
            );
            assert_eq!(
                sa.dram_energy_j.to_bits(),
                sb.dram_energy_j.to_bits(),
                "{ctx}"
            );
            assert_eq!(
                sa.uncore.freq_ghz().to_bits(),
                sb.uncore.freq_ghz().to_bits(),
                "{ctx}"
            );
            assert_eq!(sa.uncore.transitions(), sb.uncore.transitions(), "{ctx}");
            assert_eq!(
                sa.mem.total_gb().to_bits(),
                sb.mem.total_gb().to_bits(),
                "{ctx}"
            );
        }
        for (ga, gb) in a.gpus().iter().zip(b.gpus()) {
            assert_eq!(
                ga.sm_clock_mhz().to_bits(),
                gb.sm_clock_mhz().to_bits(),
                "{ctx}"
            );
            assert_eq!(ga.energy_j().to_bits(), gb.energy_j().to_bits(), "{ctx}");
        }
        assert_eq!(a.last_power(), b.last_power(), "{ctx}: last_power");
        assert_eq!(
            a.delivered_gbs().to_bits(),
            b.delivered_gbs().to_bits(),
            "{ctx}"
        );
    }

    #[test]
    fn fast_path_matches_reference_bit_for_bit() {
        let mut reference = node();
        let mut fast = node();
        let mut ff = FastForward::new();
        let demand = busy_demand();
        for _ in 0..1000 {
            reference.step(10_000, &demand);
            fast.step_fast(10_000, &demand, &mut ff);
        }
        assert!(ff.frozen(), "fast path never froze on constant demand");
        assert_nodes_identical(&reference, &fast, "steady busy");
        // Noise stream untouched by replay: PCM reads agree exactly.
        assert_eq!(reference.pcm_read_gbs(), fast.pcm_read_gbs());
    }

    #[test]
    fn fast_path_matches_across_events() {
        // MSR writes, power-limit programming, and demand changes all
        // invalidate the frozen state; the two paths must stay identical
        // through every transition.
        let run = |fast: bool| {
            let mut n = node();
            let mut ff = FastForward::new();
            let mut do_ticks =
                |n: &mut Node, demand: &Demand, ticks: usize, ff: &mut FastForward| {
                    for _ in 0..ticks {
                        if fast {
                            n.step_fast(10_000, demand, ff);
                        } else {
                            n.step(10_000, demand);
                        }
                    }
                };
            let busy = busy_demand();
            let memheavy = Demand::new(150.0, 0.7, 0.6, 0.9).with_cpu_frac(0.2);
            do_ticks(&mut n, &busy, 300, &mut ff);
            let raw = UncoreRatioLimit::from_ghz(0.8, 1.4).encode();
            for pkg in 0..2 {
                n.msr_write(MsrScope::Package(pkg), MSR_UNCORE_RATIO_LIMIT, raw)
                    .unwrap();
            }
            do_ticks(&mut n, &memheavy, 400, &mut ff);
            n.set_power_limit_w(90.0).unwrap();
            do_ticks(&mut n, &busy, 500, &mut ff);
            let _ = n.pcm_read_gbs();
            do_ticks(&mut n, &memheavy, 300, &mut ff);
            n
        };
        let reference = run(false);
        let fast = run(true);
        assert_nodes_identical(&reference, &fast, "event sequence");
        assert_eq!(reference.ledger().reads(), fast.ledger().reads());
        assert_eq!(reference.ledger().writes(), fast.ledger().writes());
    }

    #[test]
    fn advance_until_reaches_horizon_exactly() {
        let mut n = node();
        let mut ff = FastForward::new();
        let demand = busy_demand();
        let ticks = n.advance_until(2_000_000, &demand, &mut ff);
        assert_eq!(n.time_us(), 2_000_000);
        assert_eq!(ticks, 200);
        // Horizon not tick-aligned: overshoots to the next tick edge, like
        // the per-tick reference loop would.
        n.advance_until(2_015_000, &demand, &mut ff);
        assert_eq!(n.time_us(), 2_020_000);
    }

    #[test]
    fn bw_history_stays_bounded() {
        let mut n = node();
        let demand = busy_demand();
        for _ in 0..5000 {
            n.step(10_000, &demand);
        }
        let bound = (n.config().pcm_window_us / n.config().tick_us + 2) as usize;
        assert!(
            n.bw_history.len() <= bound,
            "{} entries > bound {bound}",
            n.bw_history.len()
        );
        // The PCM window is still fully served.
        let reading = n.pcm_read_gbs();
        assert!((reading - 40.0).abs() < 4.0, "reading = {reading}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_is_identical_across_paths_and_records_msr_events() {
        let drive = |fast: bool| {
            let mut n = node();
            let mut ff = FastForward::new();
            let busy = busy_demand();
            let mut do_ticks = |n: &mut Node, ticks: usize, ff: &mut FastForward| {
                for _ in 0..ticks {
                    if fast {
                        n.step_fast(10_000, &busy, ff);
                    } else {
                        n.step(10_000, &busy);
                    }
                }
            };
            do_ticks(&mut n, 1000, &mut ff);
            let raw = UncoreRatioLimit::from_ghz(0.8, 0.8).encode();
            for pkg in 0..2 {
                n.msr_write(MsrScope::Package(pkg), MSR_UNCORE_RATIO_LIMIT, raw)
                    .unwrap();
            }
            do_ticks(&mut n, 300, &mut ff);
            n
        };
        let reference = drive(false);
        let fast = drive(true);
        let (rc, fc) = (
            reference.telemetry().counters(),
            fast.telemetry().counters(),
        );
        // Deterministic counters agree between the reference and fast paths.
        assert_eq!(rc.residency_us, fc.residency_us);
        assert_eq!(rc.uncore_msr_writes, 2);
        assert_eq!(fc.uncore_msr_writes, 2);
        assert_eq!(reference.telemetry().events(), fast.telemetry().events());
        // Fast-path diagnostics fire only on the fast path.
        assert!(fc.fastpath_frozen_spans >= 1);
        assert!(fc.fastpath_replayed_ticks > 0);
        assert!(fc.fastpath_invalidations >= 1, "MSR write must thaw");
        assert_eq!(rc.fastpath_replayed_ticks, 0);
        // Residency covers every socket-tick exactly once.
        assert_eq!(rc.residency_total_us(), 1300 * 10_000 * 2);
        let kinds: Vec<&str> = reference
            .telemetry()
            .events()
            .iter()
            .map(|e| e.kind.as_str())
            .collect();
        assert_eq!(kinds, ["uncore_limit_write", "uncore_limit_write"]);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn event_push_does_not_thaw_frozen_spans() {
        let mut n = node();
        let mut ff = FastForward::new();
        let demand = busy_demand();
        for _ in 0..1000 {
            n.step_fast(10_000, &demand, &mut ff);
        }
        assert!(ff.frozen());
        let before = n.telemetry().counters().fastpath_invalidations;
        let t = n.time_us();
        n.telemetry_mut()
            .push_event(magus_telemetry::Event::new(t, "marker"));
        n.step_fast(10_000, &demand, &mut ff);
        assert!(ff.frozen(), "event push must not invalidate the span");
        assert_eq!(n.telemetry().counters().fastpath_invalidations, before);
    }

    #[test]
    fn tdp_coupling_throttles_under_extreme_cpu_load() {
        // Force a CPU-saturating, memory-heavy demand with an artificially
        // low TDP so the stock governor's coupling path is exercised.
        let mut cfg = NodeConfig::intel_a100();
        cfg.cpu.tdp_w = 110.0;
        let mut n = Node::new(cfg);
        let demand = Demand::new(150.0, 0.8, 1.0, 0.9);
        for _ in 0..500 {
            n.step(10_000, &demand);
        }
        let throttled = n.sockets().iter().any(|s| s.uncore.freq_ghz() < 2.2 - 1e-6);
        assert!(throttled, "TDP coupling never engaged");
    }
}
