//! GPU device model: SM-clock governor and board power.
//!
//! The paper's Fig 1b shows the GPU clock being managed dynamically by the
//! vendor stack already; MAGUS leaves GPUs alone. We still need a faithful
//! GPU *power* model because the paper's energy-saving metric includes GPU
//! board energy (§5) — a CPU-side runtime that slows the application down
//! keeps every GPU powered longer, which is exactly why multi-GPU energy
//! savings shrink in Fig 4c.

use crate::config::GpuConfig;
use serde::{Deserialize, Serialize};

/// One GPU board.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuDevice {
    cfg: GpuConfig,
    sm_clock_mhz: f64,
    util: f64,
    energy_j: f64,
}

impl GpuDevice {
    /// New idle device at minimum SM clock.
    #[must_use]
    pub fn new(cfg: GpuConfig) -> Self {
        let clock = cfg.sm_clock_min_mhz;
        Self {
            cfg,
            sm_clock_mhz: clock,
            util: 0.0,
            energy_j: 0.0,
        }
    }

    /// Advance one tick at the given utilisation (0..1).
    pub fn step(&mut self, dt_s: f64, util: f64) {
        let util = util.clamp(0.0, 1.0);
        self.util = util;
        let target = self.cfg.sm_clock_min_mhz
            + (self.cfg.sm_clock_max_mhz - self.cfg.sm_clock_min_mhz) * util;
        self.sm_clock_mhz += (target - self.sm_clock_mhz) * self.cfg.clock_alpha;
        self.energy_j += self.power_w() * dt_s;
    }

    /// Apply a pre-captured per-tick energy increment without re-evaluating
    /// the clock governor (frozen fast path; clock provably unchanged).
    pub(crate) fn replay_tick(&mut self, energy_inc_j: f64) {
        self.energy_j += energy_inc_j;
    }

    /// Current SM clock (MHz).
    #[must_use]
    pub fn sm_clock_mhz(&self) -> f64 {
        self.sm_clock_mhz
    }

    /// Most recent utilisation (0..1).
    #[must_use]
    pub fn util(&self) -> f64 {
        self.util
    }

    /// Board power (W): idle floor plus utilisation- and clock-dependent
    /// dynamic power.
    #[must_use]
    pub fn power_w(&self) -> f64 {
        let clock_norm = ((self.sm_clock_mhz - self.cfg.sm_clock_min_mhz)
            / (self.cfg.sm_clock_max_mhz - self.cfg.sm_clock_min_mhz))
            .clamp(0.0, 1.0);
        self.cfg.idle_power_w
            + (self.cfg.max_power_w - self.cfg.idle_power_w) * self.util * (0.4 + 0.6 * clock_norm)
    }

    /// Cumulative board energy (J).
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// The configuration this device was built with.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> GpuDevice {
        GpuDevice::new(GpuConfig::a100_40gb())
    }

    #[test]
    fn idle_power_is_floor() {
        let g = a100();
        assert!((g.power_w() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn clock_tracks_utilisation() {
        let mut g = a100();
        for _ in 0..50 {
            g.step(0.01, 1.0);
        }
        assert!((g.sm_clock_mhz() - 1410.0).abs() < 5.0);
        for _ in 0..50 {
            g.step(0.01, 0.0);
        }
        assert!((g.sm_clock_mhz() - 210.0).abs() < 5.0);
    }

    #[test]
    fn power_bounded_by_config() {
        let mut g = a100();
        for _ in 0..100 {
            g.step(0.01, 1.0);
            assert!(g.power_w() >= g.config().idle_power_w - 1e-9);
            assert!(g.power_w() <= g.config().max_power_w + 1e-9);
        }
        assert!((g.power_w() - 250.0).abs() < 5.0);
    }

    #[test]
    fn energy_accumulates_at_idle_rate() {
        let mut g = a100();
        for _ in 0..100 {
            g.step(0.01, 0.0);
        }
        // 1 second at 30 W idle = 30 J.
        assert!((g.energy_j() - 30.0).abs() < 0.5);
    }
}
