//! Round-boundary fleet membership for a long-lived control plane.
//!
//! [`FleetSim`] is deliberately immutable once built: the bit-identity
//! contract (every node bit-identical to a solo run across shard counts,
//! stepping modes, and dedup settings) is proven for a fleet whose roster is
//! fixed for the whole run. A daemonized control plane, however, must accept
//! node joins, leaves, and workload submissions *while serving traffic*.
//!
//! [`FleetRoster`] reconciles the two with an epoch rule: membership
//! operations mutate only the roster, never a running fleet, and take effect
//! at the next **round boundary** — when [`FleetRoster::build_fleet`]
//! snapshots the current membership into a fresh [`FleetBuilder`] fleet in
//! ascending node-id order. Each epoch is therefore *exactly* a batch build:
//! a fleet advanced through the control plane is bit-identical to the same
//! membership built and run in one shot, by construction rather than by
//! re-proof.
//!
//! Nodes are identified by small monotonically assigned `u64` ids; ids are
//! never reused, so a departed node's id stays invalid forever. A node with
//! no submitted workload is *dormant*: it occupies a roster slot but is
//! skipped by [`FleetRoster::build_fleet`] (an empty simulator node would
//! violate the builder's non-empty-trace assumptions and contribute nothing
//! to the summary).
//!
//! This module is part of the simulator substrate and therefore must stay
//! off the wall clock entirely, like everything else in this crate.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::fleet::{FleetBuildError, FleetBuilder, FleetSim};
use crate::workload::AppTrace;
use crate::NodeConfig;

/// One member of a [`FleetRoster`].
#[derive(Debug, Clone)]
pub struct RosterEntry {
    /// The node's hardware configuration.
    pub config: NodeConfig,
    /// The submitted workload, if any (`None` = dormant node).
    pub trace: Option<Arc<AppTrace>>,
    /// Start offset on the fleet clock (µs), as in [`FleetBuilder::node_at`].
    pub start_offset_us: u64,
}

/// Typed error for roster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RosterError {
    /// The referenced node id was never assigned or has already left.
    UnknownNode(u64),
}

impl core::fmt::Display for RosterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownNode(id) => write!(f, "unknown fleet node id {id}"),
        }
    }
}

impl std::error::Error for RosterError {}

/// Options for one [`FleetRoster::build_fleet`] snapshot — the knobs a
/// control plane forwards to the underlying [`FleetBuilder`].
#[derive(Debug, Clone, Copy)]
pub struct RosterBuildOpts {
    /// Per-node simulated-time budget (s).
    pub budget_s: f64,
    /// Shard count for the lockstep kernel.
    pub shards: usize,
    /// Enable trajectory deduplication.
    pub dedup: bool,
    /// Quotient dedup classes by start offset.
    pub share_offsets: bool,
}

impl Default for RosterBuildOpts {
    fn default() -> Self {
        Self {
            budget_s: 600.0,
            shards: 1,
            dedup: true,
            share_offsets: false,
        }
    }
}

/// Mutable fleet membership with round-boundary build snapshots.
///
/// See the module docs for the epoch rule. The roster itself is cheap to
/// mutate and cheap to snapshot (configs clone, traces are shared `Arc`s);
/// the expensive object — the built [`FleetSim`] — is created fresh per
/// epoch and never mutated.
#[derive(Debug, Default, Clone)]
pub struct FleetRoster {
    next_id: u64,
    generation: u64,
    entries: BTreeMap<u64, RosterEntry>,
}

impl FleetRoster {
    /// An empty roster.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of member nodes (dormant ones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no nodes are enrolled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of nodes with a submitted workload.
    #[must_use]
    pub fn armed(&self) -> usize {
        self.entries.values().filter(|e| e.trace.is_some()).count()
    }

    /// How many epoch snapshots [`FleetRoster::build_fleet`] has produced.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A member's entry, if enrolled.
    #[must_use]
    pub fn entry(&self, id: u64) -> Option<&RosterEntry> {
        self.entries.get(&id)
    }

    /// Iterate over `(id, entry)` in ascending id order — the order
    /// [`FleetRoster::build_fleet`] feeds the [`FleetBuilder`].
    pub fn iter(&self) -> impl Iterator<Item = (u64, &RosterEntry)> {
        self.entries.iter().map(|(id, e)| (*id, e))
    }

    /// Enroll a node (dormant until a workload is submitted) and return its
    /// id. Takes effect at the next round boundary.
    pub fn join(&mut self, config: NodeConfig, start_offset_us: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.insert(
            id,
            RosterEntry {
                config,
                trace: None,
                start_offset_us,
            },
        );
        id
    }

    /// Submit (or replace) the workload a member runs from the next round
    /// boundary on. Traces are shared handles, so staging the same interned
    /// trace on thousands of nodes costs one allocation total.
    pub fn submit(&mut self, id: u64, trace: impl Into<Arc<AppTrace>>) -> Result<(), RosterError> {
        match self.entries.get_mut(&id) {
            Some(entry) => {
                entry.trace = Some(trace.into());
                Ok(())
            }
            None => Err(RosterError::UnknownNode(id)),
        }
    }

    /// Remove a member. Its id is never reused.
    pub fn leave(&mut self, id: u64) -> Result<RosterEntry, RosterError> {
        self.entries.remove(&id).ok_or(RosterError::UnknownNode(id))
    }

    /// Round-boundary hook: snapshot the current membership into a fresh
    /// fleet. Returns the built [`FleetSim`] plus the ids of the nodes it
    /// contains, in fleet-index order (ascending roster id; dormant nodes
    /// are skipped). Bumps [`FleetRoster::generation`] on success.
    ///
    /// The snapshot is the entire coupling between the roster and the
    /// kernel: the built fleet is exactly what a batch caller would get
    /// from [`FleetBuilder`] with the same nodes, so every bit-identity
    /// guarantee of [`FleetSim::run`] carries over per epoch.
    pub fn build_fleet(
        &mut self,
        opts: &RosterBuildOpts,
    ) -> Result<(FleetSim, Vec<u64>), FleetBuildError> {
        let mut builder = FleetSim::builder(opts.budget_s)
            .shards(opts.shards)
            .dedup(opts.dedup)
            .share_offsets(opts.share_offsets);
        let mut ids = Vec::with_capacity(self.entries.len());
        for (id, entry) in &self.entries {
            let Some(trace) = &entry.trace else { continue };
            ids.push(*id);
            builder = builder.node_at(
                entry.config.clone(),
                Arc::clone(trace),
                entry.start_offset_us,
            );
        }
        let fleet = builder.build()?;
        self.generation += 1;
        Ok((fleet, ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Demand;
    use crate::fleet::RunOpts;
    use crate::workload::{Phase, PhaseKind};

    fn test_config() -> NodeConfig {
        NodeConfig::intel_a100()
    }

    fn test_trace(work_s: f64) -> AppTrace {
        AppTrace::new(
            "roster-test",
            vec![Phase::new(
                PhaseKind::Compute,
                work_s,
                Demand::new(5.0, 0.2, 0.2, 0.8),
            )],
        )
    }

    #[test]
    fn join_submit_leave_roundtrip() {
        let mut roster = FleetRoster::new();
        assert!(roster.is_empty());
        let a = roster.join(test_config(), 0);
        let b = roster.join(test_config(), 250_000);
        assert_eq!((a, b), (0, 1));
        assert_eq!(roster.len(), 2);
        assert_eq!(roster.armed(), 0);

        roster.submit(a, test_trace(1.0)).unwrap();
        assert_eq!(roster.armed(), 1);
        assert_eq!(
            roster.submit(99, test_trace(1.0)),
            Err(RosterError::UnknownNode(99))
        );

        let gone = roster.leave(b).unwrap();
        assert_eq!(gone.start_offset_us, 250_000);
        assert_eq!(roster.leave(b), Err(RosterError::UnknownNode(b)));
        // Ids are never reused.
        assert_eq!(roster.join(test_config(), 0), 2);
    }

    #[test]
    fn dormant_nodes_are_skipped_and_ids_reported() {
        let mut roster = FleetRoster::new();
        let a = roster.join(test_config(), 0);
        let _dormant = roster.join(test_config(), 0);
        let c = roster.join(test_config(), 0);
        roster.submit(a, test_trace(0.5)).unwrap();
        roster.submit(c, test_trace(0.5)).unwrap();
        let (fleet, ids) = roster.build_fleet(&RosterBuildOpts::default()).unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(ids, vec![a, c]);
        assert_eq!(roster.generation(), 1);
    }

    #[test]
    fn empty_snapshot_is_a_typed_error() {
        let mut roster = FleetRoster::new();
        let _ = roster.join(test_config(), 0); // dormant
        let err = roster.build_fleet(&RosterBuildOpts::default()).unwrap_err();
        assert!(matches!(err, FleetBuildError::EmptyFleet));
        assert_eq!(roster.generation(), 0);
    }

    /// The epoch rule itself: a roster snapshot run equals the same
    /// membership built directly through `FleetBuilder`, bit for bit.
    #[test]
    fn snapshot_matches_direct_builder_bit_for_bit() {
        let trace: Arc<AppTrace> = Arc::new(test_trace(2.0));
        let offsets = [0_u64, 0, 400_000, 800_000];

        let mut roster = FleetRoster::new();
        for &off in &offsets {
            let id = roster.join(test_config(), off);
            roster.submit(id, Arc::clone(&trace)).unwrap();
        }
        let opts = RosterBuildOpts {
            budget_s: 30.0,
            shards: 2,
            ..RosterBuildOpts::default()
        };
        let (mut via_roster, ids) = roster.build_fleet(&opts).unwrap();
        assert_eq!(ids, vec![0, 1, 2, 3]);

        let mut builder = FleetSim::builder(opts.budget_s)
            .shards(opts.shards)
            .dedup(opts.dedup)
            .share_offsets(opts.share_offsets);
        for &off in &offsets {
            builder = builder.node_at(test_config(), Arc::clone(&trace), off);
        }
        let mut direct = builder.build().unwrap();

        let run = RunOpts::noop();
        let a = via_roster.run(&run);
        let b = direct.run(&run);
        assert_eq!(a, b);

        // Membership changes apply at the next boundary: drop one node and
        // the next epoch equals a fresh three-node batch build.
        roster.leave(3).unwrap();
        let (mut smaller, ids) = roster.build_fleet(&opts).unwrap();
        assert_eq!(ids, vec![0, 1, 2]);
        let mut direct3 = FleetSim::builder(opts.budget_s)
            .shards(opts.shards)
            .dedup(opts.dedup)
            .share_offsets(opts.share_offsets);
        for &off in &offsets[..3] {
            direct3 = direct3.node_at(test_config(), Arc::clone(&trace), off);
        }
        let mut direct3 = direct3.build().unwrap();
        assert_eq!(smaller.run(&run), direct3.run(&run));
        assert_eq!(roster.generation(), 2);
    }
}
