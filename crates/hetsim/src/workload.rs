//! Workload representation: applications as sequences of demand phases.
//!
//! A [`Phase`] declares a quantity of *work* (seconds of execution at
//! unconstrained speed) and the [`Demand`] it places on the node while that
//! work runs. When the uncore throttles bandwidth below the phase's demand,
//! the phase takes longer than `work` seconds — the simulator stretches it
//! by the roofline factor from [`crate::mem::progress_factor`]. This is how
//! uncore misconfiguration becomes measurable performance loss.

use crate::demand::Demand;
use serde::{Deserialize, Serialize};

/// Coarse classification of a phase, used by trace analysis and plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Application start-up (input loading, allocation, JIT warm-up).
    Init,
    /// Memory-intensive interval (host↔device transfers, staging).
    Burst,
    /// Compute-dominant interval (GPU kernels running, little host traffic).
    Compute,
    /// Host-side idle or synchronisation wait.
    Idle,
}

/// One execution phase: `work` seconds of unconstrained execution under a
/// fixed demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase classification.
    pub kind: PhaseKind,
    /// Work content: duration in seconds when demand is fully met.
    pub work_s: f64,
    /// Resource demand while the phase runs.
    pub demand: Demand,
}

impl Phase {
    /// Construct a phase, clamping demand into valid ranges.
    #[must_use]
    pub fn new(kind: PhaseKind, work_s: f64, demand: Demand) -> Self {
        Self {
            kind,
            work_s: work_s.max(0.0),
            demand: demand.clamped(),
        }
    }
}

/// A complete application execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppTrace {
    /// Application name as it appears in the paper's tables.
    pub name: String,
    /// Ordered phases.
    pub phases: Vec<Phase>,
}

impl AppTrace {
    /// New named trace from phases.
    #[must_use]
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        Self {
            name: name.into(),
            phases,
        }
    }

    /// Total work content (s): the ideal runtime with demand always met.
    #[must_use]
    pub fn total_work_s(&self) -> f64 {
        self.phases.iter().map(|p| p.work_s).sum()
    }

    /// Work-weighted mean memory demand (GB/s).
    #[must_use]
    pub fn mean_mem_demand_gbs(&self) -> f64 {
        let total = self.total_work_s();
        if total <= 0.0 {
            return 0.0;
        }
        self.phases
            .iter()
            .map(|p| p.demand.mem_gbs * p.work_s)
            .sum::<f64>()
            / total
    }

    /// Peak memory demand (GB/s) across phases.
    #[must_use]
    pub fn peak_mem_demand_gbs(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.demand.mem_gbs)
            .fold(0.0, f64::max)
    }

    /// Number of phases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True when the trace has no phases.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Concatenate another trace onto this one (used to prepend init phases
    /// or stitch repeated epochs).
    pub fn extend_with(&mut self, other: &AppTrace) {
        self.phases.extend(other.phases.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> AppTrace {
        AppTrace::new(
            "toy",
            vec![
                Phase::new(PhaseKind::Init, 1.0, Demand::new(30.0, 0.8, 0.5, 0.0)),
                Phase::new(PhaseKind::Compute, 4.0, Demand::new(2.0, 0.1, 0.1, 0.9)),
                Phase::new(PhaseKind::Burst, 1.0, Demand::new(60.0, 0.7, 0.3, 0.5)),
            ],
        )
    }

    #[test]
    fn total_work_sums_phases() {
        assert!((toy().total_work_s() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn mean_demand_is_work_weighted() {
        let t = toy();
        let expect = (30.0 * 1.0 + 2.0 * 4.0 + 60.0 * 1.0) / 6.0;
        assert!((t.mean_mem_demand_gbs() - expect).abs() < 1e-12);
    }

    #[test]
    fn peak_demand() {
        assert!((toy().peak_mem_demand_gbs() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn phase_new_clamps() {
        let p = Phase::new(PhaseKind::Burst, -1.0, Demand::new(-5.0, 2.0, 1.5, 0.5));
        assert_eq!(p.work_s, 0.0);
        assert_eq!(p.demand.mem_gbs, 0.0);
        assert_eq!(p.demand.mem_frac, 1.0);
        assert_eq!(p.demand.cpu_util, 1.0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = toy();
        let before = a.len();
        let b = toy();
        a.extend_with(&b);
        assert_eq!(a.len(), before * 2);
    }

    #[test]
    fn empty_trace_mean_is_zero() {
        let t = AppTrace::new("empty", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.mean_mem_demand_gbs(), 0.0);
    }
}
