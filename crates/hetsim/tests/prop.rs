//! Property-based tests on simulator invariants.

use magus_hetsim::mem::progress_factor;
use magus_hetsim::{Demand, Node, NodeConfig};
use magus_msr::{MsrScope, UncoreRatioLimit, MSR_UNCORE_RATIO_LIMIT};
use proptest::prelude::*;

fn arb_demand() -> impl Strategy<Value = Demand> {
    (0.0f64..200.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0)
        .prop_map(|(mem, frac, cpu, gpu)| Demand::new(mem, frac, cpu, gpu))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Progress factor is always within [0, 1], and strictly positive
    /// whenever any bandwidth is delivered.
    #[test]
    fn progress_factor_bounded(frac in 0.0f64..1.0, demand in 0.0f64..500.0, delivered in 0.0f64..500.0) {
        let f = progress_factor(frac, demand, delivered);
        prop_assert!((0.0..=1.0).contains(&f));
        if delivered > 0.0 {
            prop_assert!(f > 0.0);
        }
    }

    /// Progress factor is monotone non-decreasing in delivered bandwidth.
    #[test]
    fn progress_factor_monotone(frac in 0.0f64..1.0, demand in 1.0f64..500.0, d1 in 0.0f64..500.0, d2 in 0.0f64..500.0) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(progress_factor(frac, demand, lo) <= progress_factor(frac, demand, hi) + 1e-12);
    }

    /// Energy totals never decrease and power stays non-negative under any
    /// demand sequence.
    #[test]
    fn energy_monotone_power_nonnegative(demands in proptest::collection::vec(arb_demand(), 1..40)) {
        let mut node = Node::new(NodeConfig::intel_a100());
        let mut prev_energy = 0.0;
        for d in &demands {
            let out = node.step(10_000, d);
            prop_assert!(out.power.total_w() >= 0.0);
            prop_assert!(out.power.pkg_w() > 0.0);
            let e = node.energy().total_j();
            prop_assert!(e >= prev_energy);
            prev_energy = e;
        }
    }

    /// Delivered bandwidth never exceeds demand nor the configured system peak.
    #[test]
    fn delivery_bounded(demands in proptest::collection::vec(arb_demand(), 1..40)) {
        let cfg = NodeConfig::intel_a100();
        let peak = cfg.peak_system_bw_gbs();
        let mut node = Node::new(cfg);
        for d in &demands {
            let out = node.step(10_000, d);
            prop_assert!(out.delivered_gbs <= d.mem_gbs + 1e-9);
            prop_assert!(out.delivered_gbs <= peak + 1e-9);
        }
    }

    /// Whatever limits are written to 0x620, the physical uncore clock stays
    /// inside the hardware range and eventually converges to the target.
    #[test]
    fn uncore_respects_written_limits(max_ratio in 0u8..40, steps in 50usize..300) {
        let mut node = Node::new(NodeConfig::intel_a100());
        let raw = UncoreRatioLimit { max_ratio, min_ratio: 0 }.encode();
        for pkg in 0..2 {
            node.msr_write(MsrScope::Package(pkg), MSR_UNCORE_RATIO_LIMIT, raw).unwrap();
        }
        let d = Demand::new(10.0, 0.3, 0.2, 0.5);
        for _ in 0..steps {
            node.step(10_000, &d);
        }
        let cfg = node.config().uncore;
        for socket in node.sockets() {
            let f = socket.uncore.freq_ghz();
            prop_assert!(f >= cfg.freq_min_ghz - 1e-9 && f <= cfg.freq_max_ghz + 1e-9);
        }
        // 3+ seconds of slew at 28 GHz/s always converges.
        if steps >= 200 {
            let expect = (f64::from(max_ratio) * 0.1).clamp(cfg.freq_min_ghz, cfg.freq_max_ghz);
            for socket in node.sockets() {
                prop_assert!((socket.uncore.freq_ghz() - expect).abs() < 1e-6);
            }
        }
    }

    /// Identical seeds and demand sequences give bit-identical energy and
    /// PCM readings (full determinism).
    #[test]
    fn determinism(demands in proptest::collection::vec(arb_demand(), 1..20)) {
        let run = |demands: &[Demand]| {
            let mut node = Node::new(NodeConfig::intel_a100());
            for d in demands {
                node.step(10_000, d);
            }
            (node.energy().total_j(), node.pcm_read_gbs())
        };
        prop_assert_eq!(run(&demands), run(&demands));
    }

    /// PCM readings are non-negative and bounded by peak bandwidth plus
    /// noise margin.
    #[test]
    fn pcm_reading_bounded(demands in proptest::collection::vec(arb_demand(), 5..30)) {
        let cfg = NodeConfig::intel_a100();
        let peak = cfg.peak_system_bw_gbs();
        let mut node = Node::new(cfg);
        for d in &demands {
            node.step(10_000, d);
        }
        let r = node.pcm_read_gbs();
        prop_assert!(r >= 0.0);
        prop_assert!(r <= peak * 1.1 + 1.0);
    }
}
