//! Wire-protocol round-trip tests: the real [`CtlClient`] and the real
//! connection loop, served over loopback sockets by the in-process
//! [`MockServer`] — no simulator nodes anywhere, so these run in
//! milliseconds. Raw-socket cases cover the codec's rejection paths
//! (truncated frames, oversized headers, unknown variants) exactly as a
//! misbehaving peer would produce them.

use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpStream};

use magus_ctl::mockserver::{mock_jsonl, MockServer};
use magus_ctl::proto::{self, Request, Response, MAX_FRAME_BYTES};
use magus_ctl::{CtlClient, SubEvent};
use magus_experiments::harness::SystemId;
use magus_workloads::AppId;

#[test]
fn every_request_round_trips_through_the_real_client() {
    let server = MockServer::spawn().expect("spawn mock server");
    let plane = server.plane();

    // `connect` performs the Hello round-trip.
    let mut client = CtlClient::connect(server.addr()).expect("connect");

    let nodes = client.join(SystemId::IntelA100, 3, 0).expect("join");
    assert_eq!(nodes, vec![0, 1, 2]);

    client.submit(1, AppId::Bfs).expect("submit");
    client.leave(2).expect("leave");

    let (epoch, summary) = client.advance().expect("advance");
    assert_eq!(epoch, 1);
    assert_eq!(summary.completed, 2, "3 joined - 1 left");

    let snap = client.snapshot().expect("snapshot");
    assert_eq!(snap.epoch, 1);
    assert!(snap.summary.is_some());
    assert!(snap.prometheus.contains("magus_mock_epochs 1"));

    client.shutdown().expect("shutdown");
    server.join().expect("server exits cleanly");

    // The plane saw every request in order (Subscribe is connection-level
    // and never reaches `handle`; it round-trips in the streaming tests).
    let kinds: Vec<&'static str> = plane
        .requests()
        .iter()
        .map(|r| match r {
            Request::Hello { .. } => "hello",
            Request::JoinNode { .. } => "join",
            Request::SubmitWorkload { .. } => "submit",
            Request::LeaveNode { .. } => "leave",
            Request::Advance => "advance",
            Request::Snapshot => "snapshot",
            Request::Subscribe => "subscribe",
            Request::Shutdown => "shutdown",
        })
        .collect();
    assert_eq!(
        kinds,
        vec!["hello", "join", "submit", "leave", "advance", "snapshot", "shutdown"]
    );
}

#[test]
fn server_side_errors_become_typed_rejections() {
    let server = MockServer::spawn().expect("spawn mock server");
    let mut client = CtlClient::connect(server.addr()).expect("connect");
    let err = client.leave(99).expect_err("unknown node");
    assert!(
        matches!(&err, magus_ctl::CtlError::Server(msg) if msg.contains("99")),
        "{err}"
    );
    // The connection survives a rejected request.
    assert_eq!(
        client.join(SystemId::IntelA100, 1, 0).expect("join"),
        vec![0]
    );
    client.shutdown().expect("shutdown");
    server.join().expect("server exits cleanly");
}

#[test]
fn subscription_streams_one_frame_per_epoch() {
    let server = MockServer::spawn().expect("spawn mock server");
    let mut driver = CtlClient::connect(server.addr()).expect("connect driver");
    driver.join(SystemId::IntelA100, 1, 0).expect("join");

    let mut sub = CtlClient::connect(server.addr())
        .expect("connect subscriber")
        .subscribe()
        .expect("subscribe");
    assert_eq!(sub.since_epoch, 0);

    driver.advance().expect("advance 1");
    driver.advance().expect("advance 2");
    for epoch in [1, 2] {
        assert_eq!(
            sub.next_event().expect("stream frame"),
            Some(SubEvent::Telemetry {
                epoch,
                jsonl: mock_jsonl(epoch),
            })
        );
    }

    driver.shutdown().expect("shutdown");
    server.join().expect("server exits cleanly");
}

#[test]
fn graceful_shutdown_drains_subscribers_before_close() {
    let server = MockServer::spawn().expect("spawn mock server");
    let mut driver = CtlClient::connect(server.addr()).expect("connect driver");
    driver.join(SystemId::IntelA100, 2, 0).expect("join");

    let mut sub = CtlClient::connect(server.addr())
        .expect("connect subscriber")
        .subscribe()
        .expect("subscribe");

    // Queue an epoch frame, then shut down *without* the subscriber
    // reading anything: the pending telemetry must still be delivered,
    // then the shutting-down frame, then a clean close — in that order.
    driver.advance().expect("advance");
    driver.shutdown().expect("shutdown");

    assert_eq!(
        sub.next_event()
            .expect("queued telemetry survives shutdown"),
        Some(SubEvent::Telemetry {
            epoch: 1,
            jsonl: mock_jsonl(1),
        })
    );
    assert_eq!(
        sub.next_event().expect("final frame"),
        Some(SubEvent::ShuttingDown)
    );
    assert_eq!(sub.next_event().expect("clean close"), None);

    server.join().expect("server exits cleanly");
}

/// Read the daemon's length-prefixed error reply off a raw socket.
fn read_error(stream: &TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    match proto::read_message::<Response>(&mut reader) {
        Ok(Some(Response::Error { message })) => message,
        other => panic!("expected an error frame, got {other:?}"),
    }
}

#[test]
fn truncated_frames_get_an_error_frame_and_a_dropped_connection() {
    let server = MockServer::spawn().expect("spawn mock server");
    let mut stream = TcpStream::connect(server.addr()).expect("raw connect");

    // Header promises 100 bytes; deliver 10 and half-close.
    stream.write_all(&100u32.to_le_bytes()).expect("header");
    stream.write_all(&[b'{'; 10]).expect("partial payload");
    stream.shutdown(Shutdown::Write).expect("half-close");

    let message = read_error(&stream);
    assert!(message.contains("truncated"), "{message}");
    assert!(
        message.contains("100") && message.contains("10"),
        "{message}"
    );

    let mut driver = CtlClient::connect(server.addr()).expect("daemon still serves");
    driver.shutdown().expect("shutdown");
    server.join().expect("server exits cleanly");
}

#[test]
fn oversized_headers_are_refused_without_reading_the_payload() {
    let server = MockServer::spawn().expect("spawn mock server");
    let mut stream = TcpStream::connect(server.addr()).expect("raw connect");

    let len = (MAX_FRAME_BYTES as u32) + 1;
    stream.write_all(&len.to_le_bytes()).expect("header");
    stream.flush().expect("flush");

    // The rejection arrives immediately — no payload was ever sent.
    let message = read_error(&stream);
    assert!(message.contains("oversized"), "{message}");

    let mut driver = CtlClient::connect(server.addr()).expect("daemon still serves");
    driver.shutdown().expect("shutdown");
    server.join().expect("server exits cleanly");
}

#[test]
fn unknown_variants_are_refused_with_the_serde_error() {
    let server = MockServer::spawn().expect("spawn mock server");
    let mut stream = TcpStream::connect(server.addr()).expect("raw connect");

    let payload = br#"{"type":"frobnicate"}"#;
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .expect("header");
    stream.write_all(payload).expect("payload");
    stream.flush().expect("flush");

    let message = read_error(&stream);
    assert!(message.contains("malformed"), "{message}");
    assert!(message.contains("frobnicate"), "{message}");

    let mut driver = CtlClient::connect(server.addr()).expect("daemon still serves");
    driver.shutdown().expect("shutdown");
    server.join().expect("server exits cleanly");
}
