//! Typed client for the control-plane protocol: one blocking call per
//! request, plus a pull-based subscription stream.
//!
//! [`CtlClient::connect`] performs the version handshake before returning,
//! so every constructed client is known-compatible. Calls map daemon-side
//! rejections ([`Response::Error`]) to [`CtlError::Server`] and
//! wrong-variant replies to [`CtlError::Unexpected`] — a client never has
//! to pattern-match raw frames.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use magus_experiments::harness::SystemId;
use magus_hetsim::fleet::FleetSummary;
use magus_workloads::{AppId, TrafficSpec};

use crate::proto::{self, Request, Response, PROTOCOL_VERSION};
use crate::CtlError;

/// A connected, handshaken control-plane client.
pub struct CtlClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// The daemon state a [`CtlClient::snapshot`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInfo {
    /// Completed epoch count.
    pub epoch: u64,
    /// The most recent epoch's summary (`None` before the first advance).
    pub summary: Option<FleetSummary>,
    /// Prometheus text — the same bytes `GET /metrics` serves.
    pub prometheus: String,
}

/// One frame from a [`Subscription`].
#[derive(Debug, Clone, PartialEq)]
pub enum SubEvent {
    /// An epoch's telemetry JSONL.
    Telemetry {
        /// The epoch that produced it.
        epoch: u64,
        /// Per-node event JSONL (byte-identical to the batch rendering).
        jsonl: String,
    },
    /// The daemon is shutting down; the stream ends after this frame.
    ShuttingDown,
}

/// A connection parked in subscriber mode (see [`CtlClient::subscribe`]).
pub struct Subscription {
    reader: BufReader<TcpStream>,
    /// The daemon's epoch count when the subscription was established.
    pub since_epoch: u64,
}

impl Subscription {
    /// Block for the next pushed frame; `Ok(None)` once the daemon has
    /// closed the stream (after a graceful shutdown's final frame).
    pub fn next_event(&mut self) -> Result<Option<SubEvent>, CtlError> {
        match proto::read_message::<Response>(&mut self.reader)? {
            None => Ok(None),
            Some(Response::Telemetry { epoch, jsonl }) => {
                Ok(Some(SubEvent::Telemetry { epoch, jsonl }))
            }
            Some(Response::ShuttingDown) => Ok(Some(SubEvent::ShuttingDown)),
            Some(other) => Err(CtlError::Unexpected(format!(
                "subscription received a non-stream frame: {other:?}"
            ))),
        }
    }
}

impl CtlClient {
    /// Connect and handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, CtlError> {
        let writer = TcpStream::connect(addr).map_err(CtlError::Io)?;
        let reader = BufReader::new(writer.try_clone().map_err(CtlError::Io)?);
        let mut client = Self { reader, writer };
        match client.call(&Request::Hello {
            protocol: PROTOCOL_VERSION,
        })? {
            Response::HelloOk { .. } => Ok(client),
            Response::Error { message } => Err(CtlError::Server(message)),
            other => Err(unexpected("hello_ok", &other)),
        }
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, CtlError> {
        proto::write_message(&mut self.writer, req)?;
        match proto::read_message::<Response>(&mut self.reader)? {
            Some(resp) => Ok(resp),
            None => Err(CtlError::Closed),
        }
    }

    /// Enroll `count` nodes of `system` starting `start_offset_us` into
    /// each epoch; returns their ids.
    pub fn join(
        &mut self,
        system: SystemId,
        count: u32,
        start_offset_us: u64,
    ) -> Result<Vec<u64>, CtlError> {
        match self.call(&Request::JoinNode {
            system,
            count,
            start_offset_us,
        })? {
            Response::Joined { nodes } => Ok(nodes),
            Response::Error { message } => Err(CtlError::Server(message)),
            other => Err(unexpected("joined", &other)),
        }
    }

    /// Remove one node at the next round boundary.
    pub fn leave(&mut self, node: u64) -> Result<(), CtlError> {
        match self.call(&Request::LeaveNode { node })? {
            Response::Left { .. } => Ok(()),
            Response::Error { message } => Err(CtlError::Server(message)),
            other => Err(unexpected("left", &other)),
        }
    }

    /// Stage a catalog workload on one node.
    pub fn submit(&mut self, node: u64, app: AppId) -> Result<(), CtlError> {
        match self.call(&Request::SubmitWorkload {
            node,
            app: Some(app),
            traffic: None,
        })? {
            Response::Submitted { .. } => Ok(()),
            Response::Error { message } => Err(CtlError::Server(message)),
            other => Err(unexpected("submitted", &other)),
        }
    }

    /// Stage one slot of a multi-tenant traffic expansion on one node. The
    /// daemon expands `spec` at its end — only the generator parameters
    /// cross the wire — and the node runs the expansion slot addressed by
    /// its fleet id.
    pub fn submit_traffic(&mut self, node: u64, spec: TrafficSpec) -> Result<(), CtlError> {
        match self.call(&Request::SubmitWorkload {
            node,
            app: None,
            traffic: Some(spec),
        })? {
            Response::Submitted { .. } => Ok(()),
            Response::Error { message } => Err(CtlError::Server(message)),
            other => Err(unexpected("submitted", &other)),
        }
    }

    /// Run one epoch; returns its number and summary.
    pub fn advance(&mut self) -> Result<(u64, FleetSummary), CtlError> {
        match self.call(&Request::Advance)? {
            Response::Advanced { epoch, summary, .. } => Ok((epoch, summary)),
            Response::Error { message } => Err(CtlError::Server(message)),
            other => Err(unexpected("advanced", &other)),
        }
    }

    /// Read the daemon's current state without advancing.
    pub fn snapshot(&mut self) -> Result<SnapshotInfo, CtlError> {
        match self.call(&Request::Snapshot)? {
            Response::SnapshotOk {
                epoch,
                summary,
                prometheus,
            } => Ok(SnapshotInfo {
                epoch,
                summary,
                prometheus,
            }),
            Response::Error { message } => Err(CtlError::Server(message)),
            other => Err(unexpected("snapshot_ok", &other)),
        }
    }

    /// Request a graceful daemon shutdown.
    pub fn shutdown(&mut self) -> Result<(), CtlError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(CtlError::Server(message)),
            other => Err(unexpected("shutting_down", &other)),
        }
    }

    /// Convert this connection into a telemetry subscription (one
    /// [`SubEvent`] per epoch until shutdown).
    pub fn subscribe(mut self) -> Result<Subscription, CtlError> {
        match self.call(&Request::Subscribe)? {
            Response::Subscribed { epoch } => Ok(Subscription {
                reader: self.reader,
                since_epoch: epoch,
            }),
            Response::Error { message } => Err(CtlError::Server(message)),
            other => Err(unexpected("subscribed", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> CtlError {
    CtlError::Unexpected(format!("expected {wanted}, got {got:?}"))
}
