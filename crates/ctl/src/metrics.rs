//! The daemon's metric registry: a pure function from control-plane state
//! to a [`Registry`], so the `/metrics` rendering is reproducible from a
//! batch run's [`FleetSummary`] alone.
//!
//! Purity is the acceptance criterion: `GET /metrics` on a daemon that has
//! advanced N epochs must byte-equal [`fleet_prometheus`] applied to the
//! batch engine's summary of the same membership — which holds exactly
//! because both sides call [`fleet_registry`] on bit-identical inputs and
//! the rendering is [`magus_telemetry::Snapshot::to_prometheus_text`], the
//! same renderer the engine's `write_telemetry` uses for its `.prom`
//! sibling files.

use magus_hetsim::fleet::FleetSummary;
use magus_telemetry::Registry;

/// Build the control-plane registry for a daemon that has completed
/// `epochs` epochs, the most recent yielding `summary` (`None` before the
/// first advance: counters only, no fleet gauges).
#[must_use]
pub fn fleet_registry(epochs: u64, summary: Option<&FleetSummary>) -> Registry {
    let registry = Registry::new();
    registry.inc("ctl/epochs", epochs);
    if let Some(s) = summary {
        registry.inc("ctl/decisions", s.decisions);
        registry.inc("ctl/node_steps", s.node_steps);
        registry.set_gauge("fleet/nodes", s.nodes.len() as f64);
        registry.set_gauge("fleet/completed", s.completed as f64);
        registry.set_gauge("fleet/crashed", s.crashed as f64);
        registry.set_gauge("fleet/total_cpu_j", s.total_cpu_j);
        registry.set_gauge("fleet/total_uncore_j", s.total_uncore_j);
        registry.set_gauge("fleet/total_j", s.total_j);
        registry.set_gauge("fleet/makespan_s", s.makespan_s);
        registry.set_gauge("fleet/uncore_power_w_mean", s.uncore_power_w.mean);
        registry.set_gauge("fleet/uncore_power_w_p95", s.uncore_power_w.p95);
        registry.set_gauge("fleet/uncore_power_w_max", s.uncore_power_w.max);
    }
    registry
}

/// The Prometheus text a daemon in this state serves at `/metrics`.
#[must_use]
pub fn fleet_prometheus(epochs: u64, summary: Option<&FleetSummary>) -> String {
    fleet_registry(epochs, summary)
        .snapshot()
        .to_prometheus_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state_renders_only_the_epoch_counter() {
        let text = fleet_prometheus(0, None);
        assert!(text.contains("magus_ctl_epochs 0"), "{text}");
        assert!(!text.contains("fleet_nodes"), "{text}");
    }
}
