//! The MAGUS control-plane wire protocol: a length-prefixed JSON frame
//! codec plus the validating request/response message types.
//!
//! Framing is deliberately minimal — one little-endian `u32` byte length
//! followed by that many bytes of JSON — so a session is inspectable with
//! nothing but `xxd` and the protocol stays implementable from any
//! language in an afternoon. Every frame is one message; messages never
//! span frames. The codec defends the daemon at the boundary: frames
//! larger than [`MAX_FRAME_BYTES`] are rejected before allocation
//! ([`ProtoError::Oversized`]), streams that end mid-frame surface
//! [`ProtoError::Truncated`] with byte counts, and payloads that fail
//! validation — malformed JSON, unknown `type` variants, wrong field
//! shapes — surface [`ProtoError::Malformed`] instead of panicking.
//!
//! Messages are serde enums tagged by a `"type"` field, so the wire shape
//! of, say, a join is `{"type":"join_node","system":"IntelA100",
//! "count":64}`. Embedded domain types ([`SystemId`], [`AppId`],
//! [`FleetSummary`]) reuse their existing serde renderings — the same
//! bytes the batch engine writes — which is what lets the CI system test
//! byte-compare a daemon session against a batch run.

use std::io::{self, Read, Write};

use magus_experiments::harness::SystemId;
use magus_hetsim::fleet::FleetSummary;
use magus_workloads::{AppId, TrafficSpec};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// Protocol revision spoken by this build. A [`Request::Hello`] carrying a
/// different revision is refused, so incompatible clients fail fast with a
/// typed error instead of mis-parsing frames.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on one frame's payload size (64 MiB). Large enough for a
/// 100k-node epoch summary, small enough that a corrupt or hostile length
/// header cannot drive an allocation of the header's full `u32` range.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Upper bound on the node count of one [`Request::JoinNode`] — matches
/// the 100k-node fleet scale the kernel is benched at, with headroom.
pub const MAX_JOIN_COUNT: u32 = 262_144;

/// Typed codec / message-validation error.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream ended inside a frame (header or payload).
    Truncated {
        /// Bytes the frame section needed.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// A frame header announced a payload over [`MAX_FRAME_BYTES`].
    Oversized {
        /// The announced payload length.
        len: u64,
        /// The ceiling it exceeded.
        max: usize,
    },
    /// The payload is not a valid message (bad JSON, unknown `type`
    /// variant, wrong field shapes, or a failed semantic validation).
    Malformed(String),
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wire i/o error: {e}"),
            Self::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            Self::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds the {max}-byte limit"
                )
            }
            Self::Malformed(msg) => write!(f, "malformed message: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Read exactly `buf.len()` bytes, reporting how many arrived before a
/// premature EOF (so [`ProtoError::Truncated`] can carry real counts).
fn read_exact_counted(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, ProtoError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(got),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(got)
}

/// Read one raw frame. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); EOF anywhere *inside* a frame is
/// [`ProtoError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut header = [0u8; 4];
    match read_exact_counted(r, &mut header)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(ProtoError::Truncated { expected: 4, got }),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized {
            len: len as u64,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    let got = read_exact_counted(r, &mut payload)?;
    if got < len {
        return Err(ProtoError::Truncated { expected: len, got });
    }
    Ok(Some(payload))
}

/// Write one raw frame (header + payload + flush).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized {
            len: payload.len() as u64,
            max: MAX_FRAME_BYTES,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Serialize `msg` and write it as one frame.
pub fn write_message<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), ProtoError> {
    let payload = serde_json::to_vec(msg).map_err(|e| ProtoError::Malformed(e.to_string()))?;
    write_frame(w, &payload)
}

/// Read one frame and parse it as a `T`. `Ok(None)` is a clean
/// end-of-stream, exactly as in [`read_frame`].
pub fn read_message<T: DeserializeOwned>(r: &mut impl Read) -> Result<Option<T>, ProtoError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => serde_json::from_slice(&payload)
            .map(Some)
            .map_err(|e| ProtoError::Malformed(e.to_string())),
    }
}

/// Client → daemon messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Request {
    /// Version handshake; must be the first message on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Enroll `count` nodes of one hardware preset. Nodes join dormant
    /// (no workload) and take effect at the next round boundary.
    JoinNode {
        /// Hardware preset for every node in the batch.
        system: SystemId,
        /// Number of nodes to enroll (1..=[`MAX_JOIN_COUNT`]).
        count: u32,
        /// Start offset on the fleet clock (µs) for the whole batch.
        #[serde(default)]
        start_offset_us: u64,
    },
    /// Remove one node at the next round boundary.
    LeaveNode {
        /// The node id to remove.
        node: u64,
    },
    /// Submit (or replace) the workload one node runs from the next round
    /// boundary on: either a catalog application or one node of a
    /// multi-tenant traffic expansion — exactly one of `app` / `traffic`
    /// must be set (checked by [`Request::validate`]). Pre-traffic clients
    /// that send only `app` keep their wire shape: `traffic` has a serde
    /// default of absent.
    SubmitWorkload {
        /// Target node id.
        node: u64,
        /// Catalog application to run.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        app: Option<AppId>,
        /// Traffic spec whose expansion slot `node` runs instead of a
        /// catalog app (the generator parameters travel on the wire, never
        /// the expanded trace).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        traffic: Option<TrafficSpec>,
    },
    /// Run one epoch: snapshot the roster at the round boundary, build the
    /// fleet, and run it to completion.
    Advance,
    /// Switch this connection into a telemetry subscriber: the daemon
    /// pushes one [`Response::Telemetry`] frame per epoch until shutdown.
    Subscribe,
    /// Report the daemon's current epoch, last summary, and Prometheus
    /// rendering without advancing anything.
    Snapshot,
    /// Gracefully stop the daemon: finish any in-flight epoch, drain
    /// subscribers, then close all sockets.
    Shutdown,
}

impl Request {
    /// Semantic validation beyond what serde shapes enforce. The daemon
    /// rejects invalid requests with [`Response::Error`] before touching
    /// any state.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Self::JoinNode { count, .. } if *count == 0 => {
                Err("join_node count must be at least 1".into())
            }
            Self::JoinNode { count, .. } if *count > MAX_JOIN_COUNT => Err(format!(
                "join_node count {count} exceeds the {MAX_JOIN_COUNT}-node limit"
            )),
            Self::SubmitWorkload { app, traffic, .. } => match (app, traffic) {
                (None, None) => Err("submit_workload needs one of `app` or `traffic`".into()),
                (Some(_), Some(_)) => {
                    Err("submit_workload takes `app` or `traffic`, not both".into())
                }
                (None, Some(spec)) => spec.validate().map_err(|e| e.to_string()),
                (Some(_), None) => Ok(()),
            },
            _ => Ok(()),
        }
    }
}

/// Daemon → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The daemon's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Daemon identification string (name/version).
        server: String,
    },
    /// Nodes enrolled; ids are assigned in batch order and never reused.
    Joined {
        /// The new node ids.
        nodes: Vec<u64>,
    },
    /// Node removed from the roster.
    Left {
        /// The departed node id.
        node: u64,
    },
    /// Workload staged on the node.
    Submitted {
        /// The target node id.
        node: u64,
    },
    /// One epoch completed.
    Advanced {
        /// Epoch number (1-based, monotonic).
        epoch: u64,
        /// Nodes the epoch's fleet contained (dormant members excluded).
        nodes: u64,
        /// The epoch's fleet summary — bit-identical to a batch
        /// `FleetBuilder` run of the same membership.
        summary: FleetSummary,
    },
    /// Subscription established; telemetry frames follow.
    Subscribed {
        /// The epoch count at subscription time.
        epoch: u64,
    },
    /// Current daemon state.
    SnapshotOk {
        /// Completed epoch count.
        epoch: u64,
        /// The most recent epoch's summary (`None` before the first
        /// advance).
        summary: Option<FleetSummary>,
        /// Prometheus text rendering of the daemon's metric registry —
        /// the same bytes `GET /metrics` serves.
        prometheus: String,
    },
    /// One epoch's telemetry stream (pushed to subscribers).
    Telemetry {
        /// The epoch that produced the stream.
        epoch: u64,
        /// Per-node event JSONL, byte-identical to the batch engine's
        /// rendering of the same fleet.
        jsonl: String,
    },
    /// The daemon accepted a shutdown (also pushed to subscribers as the
    /// final frame before their channel closes).
    ShuttingDown,
    /// The request was rejected; state is unchanged.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trip a message through the codec over an in-memory pipe.
    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + core::fmt::Debug>(msg: &T) {
        let mut buf = Vec::new();
        write_message(&mut buf, msg).unwrap();
        let got: T = read_message(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(&got, msg);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip(&Request::Hello { protocol: 1 });
        roundtrip(&Request::JoinNode {
            system: SystemId::IntelA100,
            count: 64,
            start_offset_us: 250_000,
        });
        roundtrip(&Request::LeaveNode { node: 7 });
        roundtrip(&Request::SubmitWorkload {
            node: 3,
            app: Some(AppId::all()[0]),
            traffic: None,
        });
        roundtrip(&Request::SubmitWorkload {
            node: 4,
            app: None,
            traffic: Some(TrafficSpec::default()),
        });
        roundtrip(&Request::Advance);
        roundtrip(&Request::Subscribe);
        roundtrip(&Request::Snapshot);
        roundtrip(&Request::Shutdown);
    }

    #[test]
    fn join_omits_default_offset_and_accepts_its_absence() {
        // `start_offset_us` has a serde default, so hand-written clients
        // can omit it.
        let req: Request =
            serde_json::from_str(r#"{"type":"join_node","system":"IntelA100","count":2}"#).unwrap();
        assert_eq!(
            req,
            Request::JoinNode {
                system: SystemId::IntelA100,
                count: 2,
                start_offset_us: 0
            }
        );
    }

    #[test]
    fn pre_traffic_submit_json_still_parses() {
        // Clients written before the traffic generator existed send
        // `{"node":…,"app":…}` with no `traffic` key; both optional fields
        // have serde defaults so that wire shape keeps working.
        let req: Request =
            serde_json::from_str(r#"{"type":"submit_workload","node":3,"app":"Bfs"}"#).unwrap();
        match &req {
            Request::SubmitWorkload { node, app, traffic } => {
                assert_eq!(*node, 3);
                assert!(app.is_some());
                assert!(traffic.is_none());
            }
            other => panic!("parsed to {other:?}"),
        }
        assert!(req.validate().is_ok());
    }

    #[test]
    fn submit_requires_exactly_one_workload_source() {
        let neither = Request::SubmitWorkload {
            node: 0,
            app: None,
            traffic: None,
        };
        assert!(neither.validate().is_err());
        let both = Request::SubmitWorkload {
            node: 0,
            app: Some(AppId::all()[0]),
            traffic: Some(TrafficSpec::default()),
        };
        assert!(both.validate().is_err());
        // An invalid traffic spec is rejected at the protocol boundary too.
        let bad = Request::SubmitWorkload {
            node: 0,
            app: None,
            traffic: Some(TrafficSpec {
                tenants: 0,
                ..TrafficSpec::default()
            }),
        };
        assert!(bad.validate().unwrap_err().contains("tenant"));
        let ok = Request::SubmitWorkload {
            node: 0,
            app: None,
            traffic: Some(TrafficSpec::default()),
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn unknown_variant_is_malformed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, br#"{"type":"frobnicate"}"#).unwrap();
        let err = read_message::<Request>(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed(_)), "{err}");
        assert!(err.to_string().contains("frobnicate"), "{err}");
    }

    #[test]
    fn clean_eof_is_none_but_partial_frames_are_truncated() {
        // Clean EOF between frames.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        // EOF inside the header.
        let err = read_frame(&mut [1u8, 0].as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                ProtoError::Truncated {
                    expected: 4,
                    got: 2
                }
            ),
            "{err}"
        );
        // EOF inside the payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                ProtoError::Truncated {
                    expected: 8,
                    got: 3
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, ProtoError::Oversized { .. }), "{err}");

        let huge = vec![b'x'; MAX_FRAME_BYTES + 1];
        let err = write_frame(&mut Vec::new(), &huge).unwrap_err();
        assert!(matches!(err, ProtoError::Oversized { .. }), "{err}");
    }

    #[test]
    fn join_count_bounds_are_validated() {
        let zero = Request::JoinNode {
            system: SystemId::IntelA100,
            count: 0,
            start_offset_us: 0,
        };
        assert!(zero.validate().is_err());
        let huge = Request::JoinNode {
            system: SystemId::IntelA100,
            count: MAX_JOIN_COUNT + 1,
            start_offset_us: 0,
        };
        assert!(huge.validate().is_err());
        let ok = Request::JoinNode {
            system: SystemId::IntelA100,
            count: MAX_JOIN_COUNT,
            start_offset_us: 0,
        };
        assert!(ok.validate().is_ok());
    }
}
