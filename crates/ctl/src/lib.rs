//! MAGUS fleet control plane: the daemon that turns the batch fleet
//! harness into a long-lived service.
//!
//! Four pieces, mirroring a client/server/mockserver/systemtest split:
//!
//! * [`proto`] — the length-prefixed JSON wire protocol: frame codec with
//!   typed errors plus the validating request/response message types.
//! * [`server`] — the daemon: a [`server::FleetDaemon`] owning a
//!   [`magus_hetsim::roster::FleetRoster`] behind a TCP connection loop,
//!   with round-boundary membership, per-epoch telemetry broadcast to
//!   subscribers, graceful shutdown, and a minimal HTTP `/metrics`.
//! * [`client`] — the typed blocking client ([`CtlClient`]) and
//!   subscription stream the `magus ctl` CLI is built on.
//! * [`mockserver`] — an in-process fake behind the same
//!   [`server::ControlPlane`] trait, served by the real connection loop,
//!   for fast protocol tests.
//!
//! The crate sticks to `std::net` + threads and the workspace's existing
//! serde stack — no new dependencies — matching the registry-less build
//! constraint the repo operates under.
//!
//! **Determinism contract.** An epoch advanced through the daemon is
//! exactly a batch `FleetBuilder` run of the roster's membership at that
//! round boundary: same node order, same interned traces, same kernel.
//! Its `FleetSummary` is bit-identical and its telemetry JSONL
//! byte-identical to the in-process equivalent, which `tests/ctl.rs` and
//! the `control-plane-systemtest` CI job both assert by diffing.

use std::io;

pub mod client;
pub mod metrics;
pub mod mockserver;
pub mod proto;
pub mod server;

pub use client::{CtlClient, SnapshotInfo, SubEvent, Subscription};
pub use metrics::{fleet_prometheus, fleet_registry};
pub use mockserver::{MockPlane, MockServer};
pub use proto::{ProtoError, Request, Response, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{
    bind_with_retries, peak_rss_kb, serve_fleet, ControlPlane, FleetDaemon, ServeConfig, Server,
};

/// Client/server-level error (wraps codec errors and daemon rejections).
#[derive(Debug)]
pub enum CtlError {
    /// Socket-level failure.
    Io(io::Error),
    /// Frame codec or message-validation failure.
    Proto(ProtoError),
    /// The daemon rejected the request ([`Response::Error`]).
    Server(String),
    /// The daemon replied with a variant the call cannot accept.
    Unexpected(String),
    /// The connection closed while a response was pending.
    Closed,
}

impl core::fmt::Display for CtlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "control-plane i/o error: {e}"),
            Self::Proto(e) => write!(f, "control-plane protocol error: {e}"),
            Self::Server(msg) => write!(f, "daemon rejected the request: {msg}"),
            Self::Unexpected(msg) => write!(f, "unexpected response: {msg}"),
            Self::Closed => write!(f, "connection closed mid-exchange"),
        }
    }
}

impl std::error::Error for CtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtoError> for CtlError {
    fn from(e: ProtoError) -> Self {
        Self::Proto(e)
    }
}
