//! The control-plane daemon: a long-lived TCP server owning a fleet
//! roster, plus a minimal HTTP listener serving `/metrics`.
//!
//! # Round-boundary membership and the determinism contract
//!
//! The daemon never mutates a running fleet. Joins, leaves, and workload
//! submissions mutate only the [`FleetRoster`] (under a short-lived lock),
//! and each [`Request::Advance`] is one **epoch**: the roster is
//! snapshotted at that round boundary into a fresh `FleetBuilder` fleet —
//! ascending node-id order, dormant members skipped — which runs to
//! completion exactly as a batch run would. An epoch's `FleetSummary` and
//! telemetry JSONL are therefore bit/byte-identical to building and
//! running the same membership in-process, by construction; the CI system
//! test `diff`s the two on every push.
//!
//! # Threading
//!
//! One accept loop, one thread per connection, plus an optional HTTP
//! thread. Subscribers ([`Request::Subscribe`]) park their connection on a
//! channel the daemon pushes one [`Response::Telemetry`] frame into per
//! epoch. Shutdown is graceful by ordering: the handler first waits for
//! any in-flight epoch (so its telemetry is queued), then queues a final
//! [`Response::ShuttingDown`] to every subscriber and drops the senders —
//! each subscriber connection drains its queue fully before its socket
//! closes — and finally wakes the accept loops so `run` can join every
//! connection thread and return.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use magus_experiments::engine::GovernorSpec;
use magus_experiments::fleet::governor_run_opts;
use magus_experiments::harness::{SimPath, SystemId};
use magus_hetsim::fleet::FleetSummary;
use magus_hetsim::roster::{FleetRoster, RosterBuildOpts};
use magus_workloads::app_trace;
use parking_lot::Mutex;

use crate::metrics::fleet_prometheus;
use crate::proto::{self, Request, Response, PROTOCOL_VERSION};
use crate::CtlError;

/// Configuration for [`serve_fleet`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Control-socket bind address. Port 0 picks a free port; the chosen
    /// address is reported by [`Server::ctl_addr`].
    pub ctl_addr: String,
    /// HTTP bind address for `/metrics` (`None` disables HTTP).
    pub http_addr: Option<String>,
    /// Attempts per listener bind before giving up (loaded CI runners can
    /// transiently refuse binds; retries back off 50 ms per attempt).
    pub bind_retries: u32,
    /// Governor every fleet node runs.
    pub governor: GovernorSpec,
    /// Per-node simulated-time budget per epoch (s).
    pub budget_s: f64,
    /// Shard count for the fleet kernel.
    pub shards: usize,
    /// Stepping path.
    pub path: SimPath,
    /// Trajectory deduplication.
    pub dedup: bool,
    /// Quotient dedup classes by start offset.
    pub share_offsets: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            ctl_addr: "127.0.0.1:0".into(),
            http_addr: Some("127.0.0.1:0".into()),
            bind_retries: 5,
            governor: GovernorSpec::Default,
            budget_s: 600.0,
            shards: 1,
            path: SimPath::Fast,
            dedup: true,
            share_offsets: false,
        }
    }
}

/// The behaviour a framed connection drives — implemented by the real
/// [`FleetDaemon`] and by the test-only mock plane, so protocol tests can
/// run against the exact connection loop without simulating anything.
pub trait ControlPlane: Send + Sync + 'static {
    /// Handle one request (everything except `Subscribe`, which is
    /// connection-level). Must not panic on any input.
    fn handle(&self, req: Request) -> Response;

    /// Register a telemetry subscriber: returns the current epoch and the
    /// channel the plane will push per-epoch frames into. The plane closes
    /// the channel (drops its sender) only after queueing every pending
    /// frame plus a final [`Response::ShuttingDown`].
    fn subscribe(&self) -> (u64, mpsc::Receiver<Response>);

    /// True once a shutdown has been accepted.
    fn shutting_down(&self) -> bool;

    /// The Prometheus text `/metrics` serves.
    fn metrics_text(&self) -> String;
}

/// The real control plane: a [`FleetRoster`] plus epoch state.
pub struct FleetDaemon {
    cfg: ServeConfig,
    state: Mutex<RosterState>,
    /// Serializes epochs: `Advance` and `Shutdown` both take this first,
    /// so a shutdown always lets an in-flight round finish (and queue its
    /// telemetry) before draining subscribers.
    epoch_lock: Mutex<()>,
    epochs: AtomicU64,
    last_summary: Mutex<Option<FleetSummary>>,
    subscribers: Mutex<Vec<mpsc::Sender<Response>>>,
    stop: AtomicBool,
}

/// Roster plus the per-node hardware preset (needed to resolve a catalog
/// app to a platform trace at submit time).
struct RosterState {
    roster: FleetRoster,
    systems: HashMap<u64, SystemId>,
}

impl FleetDaemon {
    /// A daemon in its initial state (empty roster, epoch 0).
    #[must_use]
    pub fn new(cfg: ServeConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(RosterState {
                roster: FleetRoster::new(),
                systems: HashMap::new(),
            }),
            epoch_lock: Mutex::new(()),
            epochs: AtomicU64::new(0),
            last_summary: Mutex::new(None),
            subscribers: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        }
    }

    /// Completed epoch count.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::SeqCst)
    }

    /// Run one epoch at the current round boundary.
    fn advance(&self) -> Response {
        let _epoch = self.epoch_lock.lock();
        let build = {
            let mut st = self.state.lock();
            let opts = RosterBuildOpts {
                budget_s: self.cfg.budget_s,
                shards: self.cfg.shards,
                dedup: self.cfg.dedup,
                share_offsets: self.cfg.share_offsets,
            };
            st.roster.build_fleet(&opts)
            // Lock released here: the roster stays responsive (joins,
            // leaves, snapshots) while the epoch runs below.
        };
        let (mut fleet, _ids) = match build {
            Ok(built) => built,
            Err(e) => {
                return Response::Error {
                    message: format!("advance failed: {e}"),
                }
            }
        };
        let summary = fleet.run(&governor_run_opts(&self.cfg.governor, self.cfg.path));
        #[cfg(feature = "telemetry")]
        let jsonl = magus_experiments::fleet::fleet_telemetry_jsonl(&mut fleet);
        #[cfg(not(feature = "telemetry"))]
        let jsonl = String::new();
        let epoch = self.epochs.fetch_add(1, Ordering::SeqCst) + 1;
        *self.last_summary.lock() = Some(summary.clone());
        self.broadcast(Response::Telemetry { epoch, jsonl });
        Response::Advanced {
            epoch,
            nodes: summary.nodes.len() as u64,
            summary,
        }
    }

    /// Queue one frame to every live subscriber, pruning closed channels.
    fn broadcast(&self, frame: Response) {
        self.subscribers
            .lock()
            .retain(|tx| tx.send(frame.clone()).is_ok());
    }

    /// Accept a shutdown: finish any in-flight epoch, then drain
    /// subscribers (final frame + channel close).
    fn shutdown(&self) -> Response {
        let _epoch = self.epoch_lock.lock();
        self.stop.store(true, Ordering::SeqCst);
        let mut subs = self.subscribers.lock();
        for tx in subs.iter() {
            let _ = tx.send(Response::ShuttingDown);
        }
        subs.clear();
        Response::ShuttingDown
    }
}

impl ControlPlane for FleetDaemon {
    fn handle(&self, req: Request) -> Response {
        if let Err(message) = req.validate() {
            return Response::Error { message };
        }
        match req {
            Request::Hello { protocol } => {
                if protocol == PROTOCOL_VERSION {
                    Response::HelloOk {
                        protocol: PROTOCOL_VERSION,
                        server: concat!("magus-ctl/", env!("CARGO_PKG_VERSION")).to_string(),
                    }
                } else {
                    Response::Error {
                        message: format!(
                            "unsupported protocol {protocol} (server speaks {PROTOCOL_VERSION})"
                        ),
                    }
                }
            }
            Request::JoinNode {
                system,
                count,
                start_offset_us,
            } => {
                let mut st = self.state.lock();
                let config = system.node_config();
                let nodes: Vec<u64> = (0..count)
                    .map(|_| {
                        let id = st.roster.join(config.clone(), start_offset_us);
                        st.systems.insert(id, system);
                        id
                    })
                    .collect();
                Response::Joined { nodes }
            }
            Request::LeaveNode { node } => {
                let mut st = self.state.lock();
                match st.roster.leave(node) {
                    Ok(_) => {
                        st.systems.remove(&node);
                        Response::Left { node }
                    }
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::SubmitWorkload { node, app, traffic } => {
                let mut st = self.state.lock();
                let Some(system) = st.systems.get(&node).copied() else {
                    return Response::Error {
                        message: format!("unknown fleet node id {node}"),
                    };
                };
                // `validate()` already enforced exactly-one-of; expand the
                // traffic slot addressed by the fleet node id, or intern
                // the catalog app. Traffic deadline/tenant accounting is a
                // batch-engine feature — the roster carries traces only, so
                // daemon epochs report energy but not deadline metrics.
                let trace = match (app, traffic) {
                    (Some(app), None) => app_trace(app, system.platform()),
                    (None, Some(spec)) => spec.node_profile(system.platform(), node as usize).trace,
                    _ => {
                        return Response::Error {
                            message: "submit_workload needs exactly one of `app` or `traffic`"
                                .into(),
                        };
                    }
                };
                match st.roster.submit(node, trace) {
                    Ok(()) => Response::Submitted { node },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Advance => self.advance(),
            Request::Snapshot => Response::SnapshotOk {
                epoch: self.epochs(),
                summary: self.last_summary.lock().clone(),
                prometheus: self.metrics_text(),
            },
            // The connection loop intercepts Subscribe; reaching here
            // means a caller bypassed it.
            Request::Subscribe => Response::Error {
                message: "subscribe is connection-level".into(),
            },
            Request::Shutdown => self.shutdown(),
        }
    }

    fn subscribe(&self) -> (u64, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        self.subscribers.lock().push(tx);
        (self.epochs(), rx)
    }

    fn shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn metrics_text(&self) -> String {
        fleet_prometheus(self.epochs(), self.last_summary.lock().as_ref())
    }
}

/// `VmHWM` (peak resident set, kB) from `/proc/self/status`; `None` where
/// the proc filesystem is unavailable (off-Linux), so callers report
/// "unavailable" instead of a bogus zero.
#[must_use]
pub fn peak_rss_kb() -> Option<u64> {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
}

/// Bind a listener, retrying transient failures with linear backoff
/// (50 ms × attempt). Port 0 requests never collide, but explicit ports on
/// loaded CI runners can race a previous process's TIME_WAIT socket.
pub fn bind_with_retries(addr: &str, retries: u32) -> Result<TcpListener, CtlError> {
    let mut last = None;
    for attempt in 0..retries.max(1) {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) => {
                last = Some(e);
                thread::sleep(Duration::from_millis(50 * u64::from(attempt + 1)));
            }
        }
    }
    Err(CtlError::Io(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::AddrNotAvailable, "bind failed")
    })))
}

/// Dummy-connects to the daemon's own listeners so blocking `accept`
/// calls observe the stop flag and unwind.
struct Waker {
    ctl: SocketAddr,
    http: Option<SocketAddr>,
}

impl Waker {
    fn wake(&self) {
        let _ = TcpStream::connect(self.ctl);
        if let Some(http) = self.http {
            let _ = TcpStream::connect(http);
        }
    }
}

/// A bound (but not yet running) control-plane server over any
/// [`ControlPlane`].
pub struct Server<P: ControlPlane> {
    plane: Arc<P>,
    listener: TcpListener,
    http: Option<TcpListener>,
}

impl<P: ControlPlane> Server<P> {
    /// Bind the control socket (and the HTTP socket if requested) for
    /// `plane`. Nothing is accepted until [`Server::run`].
    pub fn bind(
        ctl_addr: &str,
        http_addr: Option<&str>,
        bind_retries: u32,
        plane: Arc<P>,
    ) -> Result<Self, CtlError> {
        let listener = bind_with_retries(ctl_addr, bind_retries)?;
        let http = match http_addr {
            Some(addr) => Some(bind_with_retries(addr, bind_retries)?),
            None => None,
        };
        Ok(Self {
            plane,
            listener,
            http,
        })
    }

    /// The bound control-socket address (resolves port 0 to the chosen
    /// port).
    pub fn ctl_addr(&self) -> Result<SocketAddr, CtlError> {
        self.listener.local_addr().map_err(CtlError::Io)
    }

    /// The bound HTTP address, when HTTP is enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// The plane this server fronts.
    #[must_use]
    pub fn plane(&self) -> Arc<P> {
        Arc::clone(&self.plane)
    }

    /// Serve until a [`Request::Shutdown`] is accepted, then join every
    /// connection thread (so subscriber drains finish before return) and
    /// exit.
    pub fn run(self) -> Result<(), CtlError> {
        let waker = Arc::new(Waker {
            ctl: self.ctl_addr()?,
            http: self.http_addr(),
        });
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        if let Some(http) = self.http {
            let plane = Arc::clone(&self.plane);
            workers.push(thread::spawn(move || serve_http(&http, &plane)));
        }
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) if self.plane.shutting_down() => break,
                Err(_) => {
                    // Transient accept failure (EMFILE, ...): back off and
                    // keep serving.
                    thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if self.plane.shutting_down() {
                break;
            }
            let plane = Arc::clone(&self.plane);
            let waker = Arc::clone(&waker);
            workers.push(thread::spawn(move || serve_conn(stream, &plane, &waker)));
            workers.retain(|w| !w.is_finished());
        }
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// One framed connection: requests in, responses out, until EOF, a framing
/// error, or shutdown. `Subscribe` flips the connection into push mode.
fn serve_conn<P: ControlPlane>(stream: TcpStream, plane: &Arc<P>, waker: &Arc<Waker>) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match proto::read_message::<Request>(&mut reader) {
            Ok(Some(req)) => req,
            // Clean EOF: the client is done.
            Ok(None) => return,
            Err(err) => {
                // Framing or validation failure: the stream may be
                // unsynchronized, so report and drop the connection.
                let _ = proto::write_message(
                    &mut writer,
                    &Response::Error {
                        message: err.to_string(),
                    },
                );
                return;
            }
        };
        if matches!(req, Request::Subscribe) {
            let (epoch, frames) = plane.subscribe();
            if proto::write_message(&mut writer, &Response::Subscribed { epoch }).is_err() {
                return;
            }
            // Drain until the plane closes the channel (shutdown): every
            // queued frame — including the final ShuttingDown — is written
            // before the socket drops.
            while let Ok(frame) = frames.recv() {
                if proto::write_message(&mut writer, &frame).is_err() {
                    return;
                }
            }
            return;
        }
        let was_shutdown = matches!(req, Request::Shutdown);
        let resp = plane.handle(req);
        let _ = proto::write_message(&mut writer, &resp);
        if was_shutdown || plane.shutting_down() {
            waker.wake();
            return;
        }
    }
}

/// Minimal HTTP/1.1 loop: `GET /metrics` (Prometheus text), `GET /healthz`
/// (liveness), 404 otherwise. One request per connection.
fn serve_http<P: ControlPlane>(listener: &TcpListener, plane: &Arc<P>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) if plane.shutting_down() => return,
            Err(_) => {
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if plane.shutting_down() {
            return;
        }
        handle_http(stream, plane.as_ref());
    }
}

/// Serve one HTTP exchange (errors are dropped with the connection).
fn handle_http<P: ControlPlane>(stream: TcpStream, plane: &P) {
    // The HTTP loop is serial; a stalled client must not wedge /metrics.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so the peer sees a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line).is_ok_and(|n| n > 0) && !line.trim().is_empty() {
        line.clear();
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            plane.metrics_text(),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

/// Bind a [`FleetDaemon`] server from `cfg`. The caller decides when to
/// block in [`Server::run`] (after reporting the bound addresses, say).
pub fn serve_fleet(cfg: ServeConfig) -> Result<Server<FleetDaemon>, CtlError> {
    let ctl_addr = cfg.ctl_addr.clone();
    let http_addr = cfg.http_addr.clone();
    let retries = cfg.bind_retries;
    let plane = Arc::new(FleetDaemon::new(cfg));
    Server::bind(&ctl_addr, http_addr.as_deref(), retries, plane)
}
