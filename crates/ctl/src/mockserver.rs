//! In-process fake control plane for fast protocol tests.
//!
//! [`MockPlane`] implements [`ControlPlane`] with instant, canned
//! semantics — ids are allocated, epochs count up, telemetry frames are
//! deterministic one-liners — so the frame codec, the connection loop, the
//! typed client, and the graceful-shutdown drain can all be exercised in
//! milliseconds without building a single simulator node. It records every
//! request it handles for assertions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use magus_hetsim::fleet::{Distribution, FleetSummary};
use parking_lot::Mutex;

use crate::proto::{Request, Response, PROTOCOL_VERSION};
use crate::server::{ControlPlane, Server};
use crate::CtlError;

/// The canned summary every mock epoch reports.
#[must_use]
pub fn mock_summary(nodes: u64) -> FleetSummary {
    FleetSummary {
        nodes: Vec::new(),
        completed: nodes as usize,
        total_cpu_j: 0.0,
        total_uncore_j: 0.0,
        total_j: 0.0,
        uncore_power_w: Distribution::from_values(&[]),
        makespan_s: 0.0,
        decisions: nodes,
        node_steps: 0,
        node_progress_s: Vec::new(),
        crashed: 0,
        node_fault_counters: Vec::new(),
        deadline_jobs: 0,
        deadline_misses: 0,
        node_deadline_misses: Vec::new(),
        tenant_energy_j: Vec::new(),
    }
}

/// The telemetry JSONL a mock epoch streams.
#[must_use]
pub fn mock_jsonl(epoch: u64) -> String {
    format!("{{\"node\":0,\"t_us\":0,\"kind\":\"mock\",\"fields\":{{\"epoch\":{epoch}}}}}\n")
}

/// Scripted [`ControlPlane`] with recorded requests.
#[derive(Default)]
pub struct MockPlane {
    requests: Mutex<Vec<Request>>,
    next_id: AtomicU64,
    live_nodes: AtomicU64,
    epochs: AtomicU64,
    subscribers: Mutex<Vec<mpsc::Sender<Response>>>,
    stop: AtomicBool,
}

impl MockPlane {
    /// A fresh mock plane.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Every request handled so far, in order.
    #[must_use]
    pub fn requests(&self) -> Vec<Request> {
        self.requests.lock().clone()
    }

    /// Completed (mock) epoch count.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::SeqCst)
    }

    fn broadcast(&self, frame: &Response) {
        self.subscribers
            .lock()
            .retain(|tx| tx.send(frame.clone()).is_ok());
    }
}

impl ControlPlane for MockPlane {
    fn handle(&self, req: Request) -> Response {
        self.requests.lock().push(req.clone());
        if let Err(message) = req.validate() {
            return Response::Error { message };
        }
        match req {
            Request::Hello { protocol } => {
                if protocol == PROTOCOL_VERSION {
                    Response::HelloOk {
                        protocol: PROTOCOL_VERSION,
                        server: "magus-ctl-mock".into(),
                    }
                } else {
                    Response::Error {
                        message: format!("unsupported protocol {protocol}"),
                    }
                }
            }
            Request::JoinNode { count, .. } => {
                let first = self.next_id.fetch_add(u64::from(count), Ordering::SeqCst);
                self.live_nodes
                    .fetch_add(u64::from(count), Ordering::SeqCst);
                Response::Joined {
                    nodes: (first..first + u64::from(count)).collect(),
                }
            }
            Request::LeaveNode { node } => {
                if node < self.next_id.load(Ordering::SeqCst) {
                    self.live_nodes.fetch_sub(1, Ordering::SeqCst);
                    Response::Left { node }
                } else {
                    Response::Error {
                        message: format!("unknown fleet node id {node}"),
                    }
                }
            }
            Request::SubmitWorkload { node, .. } => {
                if node < self.next_id.load(Ordering::SeqCst) {
                    Response::Submitted { node }
                } else {
                    Response::Error {
                        message: format!("unknown fleet node id {node}"),
                    }
                }
            }
            Request::Advance => {
                let epoch = self.epochs.fetch_add(1, Ordering::SeqCst) + 1;
                let nodes = self.live_nodes.load(Ordering::SeqCst);
                self.broadcast(&Response::Telemetry {
                    epoch,
                    jsonl: mock_jsonl(epoch),
                });
                Response::Advanced {
                    epoch,
                    nodes,
                    summary: mock_summary(nodes),
                }
            }
            Request::Snapshot => {
                let epoch = self.epochs();
                Response::SnapshotOk {
                    epoch,
                    summary: (epoch > 0)
                        .then(|| mock_summary(self.live_nodes.load(Ordering::SeqCst))),
                    prometheus: self.metrics_text(),
                }
            }
            Request::Subscribe => Response::Error {
                message: "subscribe is connection-level".into(),
            },
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                let mut subs = self.subscribers.lock();
                for tx in subs.iter() {
                    let _ = tx.send(Response::ShuttingDown);
                }
                subs.clear();
                Response::ShuttingDown
            }
        }
    }

    fn subscribe(&self) -> (u64, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        self.subscribers.lock().push(tx);
        (self.epochs(), rx)
    }

    fn shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn metrics_text(&self) -> String {
        format!(
            "# TYPE magus_mock_epochs counter\nmagus_mock_epochs {}\n",
            self.epochs()
        )
    }
}

/// A mock plane served over real loopback sockets by the real connection
/// loop — protocol tests drive it with the real [`crate::CtlClient`].
pub struct MockServer {
    plane: Arc<MockPlane>,
    addr: std::net::SocketAddr,
    runner: Option<thread::JoinHandle<Result<(), CtlError>>>,
}

impl MockServer {
    /// Bind on an ephemeral loopback port and start serving.
    pub fn spawn() -> Result<Self, CtlError> {
        let plane = Arc::new(MockPlane::new());
        let server = Server::bind("127.0.0.1:0", None, 3, Arc::clone(&plane))?;
        let addr = server.ctl_addr()?;
        let runner = thread::spawn(move || server.run());
        Ok(Self {
            plane,
            addr,
            runner: Some(runner),
        })
    }

    /// The bound control-socket address.
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The plane behind the server (for request-log assertions).
    #[must_use]
    pub fn plane(&self) -> Arc<MockPlane> {
        Arc::clone(&self.plane)
    }

    /// Block until the server loop exits (after a shutdown request).
    pub fn join(mut self) -> Result<(), CtlError> {
        match self.runner.take() {
            Some(runner) => runner
                .join()
                .map_err(|_| CtlError::Unexpected("mock server panicked".into()))?,
            None => Ok(()),
        }
    }
}
