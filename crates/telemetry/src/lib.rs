//! Observability primitives shared by the simulator, the runtimes, and the
//! experiments engine: a string-keyed metric [`Registry`] (counters, gauges,
//! weighted histograms), a bounded structured [`EventLog`], and a
//! point-in-time [`Snapshot`] renderable in Prometheus text exposition
//! format.
//!
//! Design rules (DESIGN.md, "Observability"):
//!
//! * **Deterministic values.** Everything recorded *inside* the simulator is
//!   keyed to simulation time (`t_us`) and simulated state only, so a
//!   replayed run reproduces its telemetry byte-for-byte. Wall-clock
//!   diagnostics (trial latency, reorder-buffer depth) are permitted but
//!   must live under the `diag/` name prefix so comparisons can exclude
//!   them ([`Snapshot::deterministic`]).
//! * **No new dependencies.** `serde` only, which the workspace already
//!   carries; the registry is a `Mutex<BTreeMap>` updated at trial
//!   granularity, never inside the per-tick hot loop.
//! * **Bounded memory.** [`EventLog`] drops (and counts) events past its
//!   cap instead of growing without bound.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Default cap on buffered events per [`EventLog`].
pub const DEFAULT_EVENT_CAP: usize = 65_536;

/// One dynamically-typed event field value.
///
/// Serialized untagged, so JSON stays flat (`"fields":{"pkg":0,...}`).
/// Variant order matters for deserialization: booleans, then unsigned,
/// signed, float, string — `3` round-trips as `U64`, `-3` as `I64`,
/// `3.5` as `F64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum FieldValue {
    /// Boolean flag (e.g. `tune_event`).
    Bool(bool),
    /// Unsigned integer (counters, cycle numbers).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point reading (frequencies, throughputs).
    F64(f64),
    /// Symbolic value (trend / action names).
    Str(String),
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

/// One structured telemetry event.
///
/// `t_us` is **simulation time** — never wall clock — so identical runs
/// emit identical events. Fields are a sorted map, which makes the JSON
/// serialization canonical (key order never depends on insertion order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation timestamp (µs since node construction).
    pub t_us: u64,
    /// Event kind (e.g. `magus_decision`, `uncore_limit_write`).
    pub kind: String,
    /// Event payload, sorted by field name.
    pub fields: BTreeMap<String, FieldValue>,
}

impl Event {
    /// New event of `kind` at simulation time `t_us` with no fields.
    #[must_use]
    pub fn new(t_us: u64, kind: &str) -> Self {
        Self {
            t_us,
            kind: kind.to_string(),
            fields: BTreeMap::new(),
        }
    }

    /// Builder-style field append.
    #[must_use]
    pub fn with(mut self, name: &str, value: impl Into<FieldValue>) -> Self {
        self.fields.insert(name.to_string(), value.into());
        self
    }
}

/// Bounded in-memory event buffer.
///
/// Pushing past the cap drops the event and increments [`dropped`]
/// (`EventLog::dropped`) instead of reallocating: a runaway emitter costs
/// a counter bump, not unbounded memory.
#[derive(Debug, Clone)]
pub struct EventLog {
    events: Vec<Event>,
    cap: usize,
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::with_cap(DEFAULT_EVENT_CAP)
    }
}

impl EventLog {
    /// Empty log holding at most `cap` events.
    #[must_use]
    pub fn with_cap(cap: usize) -> Self {
        Self {
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Append `event`, or count it as dropped once the log is full.
    pub fn push(&mut self, event: Event) {
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Drain the buffer, leaving the drop counter intact.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Number of events rejected because the log was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One registered metric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter {
        /// Current count.
        value: u64,
    },
    /// Last-write-wins (or max-tracked) level.
    Gauge {
        /// Current level.
        value: f64,
    },
    /// Weighted histogram over fixed upper bounds.
    Histogram {
        /// Bucket upper bounds, ascending; an implicit `+Inf` bucket
        /// follows the last bound.
        bounds: Vec<f64>,
        /// Per-bucket weights (`bounds.len() + 1` entries, non-cumulative).
        counts: Vec<u64>,
        /// Total observed weight.
        total: u64,
        /// Weighted sum of observed values.
        sum: f64,
    },
}

impl MetricValue {
    fn new_histogram(bounds: &[f64]) -> Self {
        Self::Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }
}

/// Thread-safe, string-keyed metric store.
///
/// Update costs are one mutex lock plus a `BTreeMap` probe — fine at
/// trial/decision granularity, deliberately *not* offered to the per-tick
/// simulator loop (nodes keep raw counters and fold them in afterwards).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, MetricValue>>,
}

impl Registry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, MetricValue>> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Add `by` to counter `name` (creating it at zero first).
    pub fn inc(&self, name: &str, by: u64) {
        let mut metrics = self.lock();
        let entry = metrics
            .entry(name.to_string())
            .or_insert(MetricValue::Counter { value: 0 });
        match entry {
            MetricValue::Counter { value } => *value += by,
            other => *other = MetricValue::Counter { value: by },
        }
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut metrics = self.lock();
        metrics.insert(name.to_string(), MetricValue::Gauge { value });
    }

    /// Raise gauge `name` to `value` if `value` exceeds its current level.
    pub fn gauge_max(&self, name: &str, value: f64) {
        let mut metrics = self.lock();
        let entry = metrics
            .entry(name.to_string())
            .or_insert(MetricValue::Gauge { value });
        match entry {
            MetricValue::Gauge { value: cur } => *cur = cur.max(value),
            other => *other = MetricValue::Gauge { value },
        }
    }

    /// Observe `value` with integer `weight` in histogram `name`.
    ///
    /// `bounds` fixes the bucket layout on first use. The weight lets
    /// callers fold pre-aggregated data (e.g. µs of residency per
    /// frequency bin) in one call per bin.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64, weight: u64) {
        let mut metrics = self.lock();
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::new_histogram(bounds));
        if !matches!(entry, MetricValue::Histogram { .. }) {
            *entry = MetricValue::new_histogram(bounds);
        }
        if let MetricValue::Histogram {
            bounds,
            counts,
            total,
            sum,
        } = entry
        {
            let idx = bounds.partition_point(|b| *b < value);
            counts[idx] += weight;
            *total += weight;
            *sum += value * weight as f64;
        }
    }

    /// Point-in-time copy of every metric.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            metrics: self.lock().clone(),
        }
    }
}

/// Point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Metric name → value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Counter value, if `name` is a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter { value }) => Some(*value),
            _ => None,
        }
    }

    /// Gauge level, if `name` is a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge { value }) => Some(*value),
            _ => None,
        }
    }

    /// Copy with every `diag/`-prefixed metric removed: the subset that
    /// must be identical across serial/parallel and fast/reference runs.
    #[must_use]
    pub fn deterministic(&self) -> Self {
        Self {
            metrics: self
                .metrics
                .iter()
                .filter(|(name, _)| !name.starts_with("diag/"))
                .map(|(name, value)| (name.clone(), value.clone()))
                .collect(),
        }
    }

    /// Render in Prometheus text exposition format (metric names are
    /// prefixed `magus_` and mangled to `[a-zA-Z0-9_:]`; histogram buckets
    /// are cumulative with an explicit `+Inf`).
    #[must_use]
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            let n = prometheus_name(name);
            match value {
                MetricValue::Counter { value } => {
                    let _ = writeln!(out, "# TYPE {n} counter\n{n} {value}");
                }
                MetricValue::Gauge { value } => {
                    let _ = writeln!(out, "# TYPE {n} gauge\n{n} {value}");
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    total,
                    sum,
                } => {
                    let _ = writeln!(out, "# TYPE {n} histogram");
                    let mut cum = 0u64;
                    for (bound, count) in bounds.iter().zip(counts.iter()) {
                        cum += count;
                        let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {total}");
                    let _ = writeln!(out, "{n}_sum {sum}\n{n}_count {total}");
                }
            }
        }
        out
    }
}

/// Mangle a registry name into the Prometheus charset with a `magus_`
/// namespace prefix (`engine/cache_hits` → `magus_engine_cache_hits`).
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("magus_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Deterministic per-node instrumentation counters, drained from a
/// simulated node at the end of a trial.
///
/// Lives here (not in `magus-hetsim`) so the experiments layer can carry
/// it in `TrialResult` unconditionally — when the simulator is built
/// without its `telemetry` feature the field is simply `None`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct NodeCounters {
    /// `wrmsr` writes to `MSR 0x620` (`UNCORE_RATIO_LIMIT`).
    pub uncore_msr_writes: u64,
    /// Fixed-point spans frozen by the macro-stepping fast path.
    pub fastpath_frozen_spans: u64,
    /// Ticks replayed from a frozen span instead of full evaluation.
    pub fastpath_replayed_ticks: u64,
    /// Frozen spans invalidated by monitoring/actuation state changes.
    pub fastpath_invalidations: u64,
    /// Uncore-frequency residency: `(bin, µs)` pairs sorted by bin, where
    /// bin `b` covers frequencies rounding to `b / 10` GHz, weighted by
    /// socket-µs (two sockets at 1.8 GHz for one 10 ms tick add
    /// 20 000 µs to bin 18).
    pub residency_us: Vec<(u16, u64)>,
    /// Events rejected by the node's bounded event log.
    pub events_dropped: u64,
}

impl NodeCounters {
    /// Total socket-µs across all residency bins.
    #[must_use]
    pub fn residency_total_us(&self) -> u64 {
        self.residency_us.iter().map(|&(_, us)| us).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_mismatches_reset() {
        let reg = Registry::new();
        reg.inc("engine/cache_hits", 1);
        reg.inc("engine/cache_hits", 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("engine/cache_hits"), Some(3));
        // A kind change replaces rather than corrupting.
        reg.set_gauge("engine/cache_hits", 7.0);
        assert_eq!(reg.snapshot().gauge("engine/cache_hits"), Some(7.0));
        reg.inc("engine/cache_hits", 5);
        assert_eq!(reg.snapshot().counter("engine/cache_hits"), Some(5));
    }

    #[test]
    fn gauge_max_only_raises() {
        let reg = Registry::new();
        reg.gauge_max("diag/fold_reorder_peak", 3.0);
        reg.gauge_max("diag/fold_reorder_peak", 1.0);
        reg.gauge_max("diag/fold_reorder_peak", 9.0);
        assert_eq!(reg.snapshot().gauge("diag/fold_reorder_peak"), Some(9.0));
    }

    #[test]
    fn histogram_buckets_by_bound_and_weights() {
        let reg = Registry::new();
        let bounds = [1.0, 2.0];
        reg.observe("node/uncore_residency_ghz", &bounds, 0.8, 10);
        reg.observe("node/uncore_residency_ghz", &bounds, 1.0, 5); // on-bound → first bucket
        reg.observe("node/uncore_residency_ghz", &bounds, 1.5, 2);
        reg.observe("node/uncore_residency_ghz", &bounds, 9.0, 1); // overflow bucket
        let snap = reg.snapshot();
        match snap.metrics.get("node/uncore_residency_ghz") {
            Some(MetricValue::Histogram {
                counts, total, sum, ..
            }) => {
                assert_eq!(counts, &vec![15, 2, 1]);
                assert_eq!(*total, 18);
                let expected = 0.8 * 10.0 + 1.0 * 5.0 + 1.5 * 2.0 + 9.0;
                assert!((sum - expected).abs() < 1e-9);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn prometheus_text_is_cumulative_and_mangled() {
        let reg = Registry::new();
        reg.inc("engine/trials_total", 4);
        reg.observe("node/uncore_residency_ghz", &[1.0, 2.0], 0.5, 3);
        reg.observe("node/uncore_residency_ghz", &[1.0, 2.0], 1.5, 2);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE magus_engine_trials_total counter"));
        assert!(text.contains("magus_engine_trials_total 4"));
        assert!(text.contains("# TYPE magus_node_uncore_residency_ghz histogram"));
        assert!(text.contains("magus_node_uncore_residency_ghz_bucket{le=\"1\"} 3"));
        // Cumulative: the le="2" bucket includes the le="1" weight.
        assert!(text.contains("magus_node_uncore_residency_ghz_bucket{le=\"2\"} 5"));
        assert!(text.contains("magus_node_uncore_residency_ghz_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("magus_node_uncore_residency_ghz_count 5"));
    }

    #[test]
    fn event_log_caps_and_counts_drops() {
        let mut log = EventLog::with_cap(2);
        log.push(Event::new(0, "a"));
        log.push(Event::new(1, "b"));
        log.push(Event::new(2, "c"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        let drained = log.take();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1, "drain keeps the drop counter");
    }

    #[test]
    fn event_serde_round_trips_exactly() {
        let ev = Event::new(300_000, "magus_decision")
            .with("cycle", 3u64)
            .with("sample_mbs", 12_345.5)
            .with("trend", "increase")
            .with("tune_event", true)
            .with("delta", -2i64);
        let json = serde_json::to_string(&ev).expect("serialize");
        let back: Event = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, ev);
        // Canonical: serializing twice yields identical bytes.
        assert_eq!(json, serde_json::to_string(&back).expect("serialize"));
        // Untagged ordering: unsigned stays U64, negative I64, fraction F64.
        assert_eq!(back.fields.get("cycle"), Some(&FieldValue::U64(3)));
        assert_eq!(back.fields.get("delta"), Some(&FieldValue::I64(-2)));
        assert_eq!(
            back.fields.get("sample_mbs"),
            Some(&FieldValue::F64(12_345.5))
        );
    }

    #[test]
    fn deterministic_view_drops_diag_metrics() {
        let reg = Registry::new();
        reg.inc("engine/trials_total", 1);
        reg.set_gauge("diag/trial_wall_s", 0.25);
        let det = reg.snapshot().deterministic();
        assert!(det.metrics.contains_key("engine/trials_total"));
        assert!(!det.metrics.contains_key("diag/trial_wall_s"));
    }

    #[test]
    fn node_counters_serde_defaults_missing_fields() {
        let nc: NodeCounters = serde_json::from_str("{}").expect("defaults");
        assert_eq!(nc, NodeCounters::default());
        let nc: NodeCounters =
            serde_json::from_str(r#"{"uncore_msr_writes":2,"residency_us":[[18,20000]]}"#)
                .expect("partial");
        assert_eq!(nc.uncore_msr_writes, 2);
        assert_eq!(nc.residency_total_us(), 20_000);
    }
}
