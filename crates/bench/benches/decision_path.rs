//! Criterion benchmarks of the runtime decision paths.
//!
//! The paper's overhead argument is that MAGUS's per-cycle work (one
//! counter read + Algorithms 1–3) is negligible while UPS's per-core MSR
//! sweep is not. These benches measure the *computational* sides of both
//! on this host; the simulated access-cost model (Table 2) covers the
//! hardware sides.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magus_experiments::drivers::{MagusDriver, RuntimeDriver, UpsDriver};
use magus_hetsim::{Demand, Node, NodeConfig, Simulation};
use magus_msr::{MsrDevice, MsrScope, SimMsr, MSR_UNCORE_RATIO_LIMIT};
use magus_pcm::SampleWindow;
use magus_runtime::{predict_trend, HighFreqDetector, MagusConfig, MagusCore};
use magus_ups::{UpsConfig, UpsCore};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");

    group.bench_function("alg1_predict_trend", |b| {
        let mut w = SampleWindow::new(3);
        for v in [10_000.0, 40_000.0, 90_000.0] {
            w.push(v);
        }
        b.iter(|| predict_trend(black_box(&w), 200.0, 500.0));
    });

    group.bench_function("alg2_high_freq_record", |b| {
        let mut d = HighFreqDetector::new(10, 0.4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            d.record(i % 3 == 0);
            black_box(d.is_high_frequency())
        });
    });

    group.bench_function("alg3_magus_cycle", |b| {
        let mut core = MagusCore::new(MagusConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let sample = if i % 13 < 6 { 90_000.0 } else { 3_000.0 };
            black_box(core.on_sample(black_box(sample)))
        });
    });

    group.bench_function("ups_decide", |b| {
        let mut core = UpsCore::new(UpsConfig::default(), 0.8, 2.2);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let ipc = if i % 7 == 0 { 1.2 } else { 1.7 };
            black_box(core.decide(black_box(ipc), black_box(22.0)))
        });
    });

    group.finish();
}

fn bench_msr(c: &mut Criterion) {
    let mut group = c.benchmark_group("msr");

    group.bench_function("sim_msr_read", |b| {
        let mut dev = SimMsr::new(2, 80);
        b.iter(|| {
            dev.read(MsrScope::Package(0), MSR_UNCORE_RATIO_LIMIT)
                .unwrap()
        });
    });

    group.bench_function("sim_msr_core_sweep_160", |b| {
        let mut dev = SimMsr::new(2, 80);
        b.iter(|| {
            let mut acc = 0u64;
            for core in 0..80 {
                acc ^= dev
                    .read(MsrScope::Core(core), magus_msr::IA32_FIXED_CTR0)
                    .unwrap();
                acc ^= dev
                    .read(MsrScope::Core(core), magus_msr::IA32_FIXED_CTR1)
                    .unwrap();
            }
            black_box(acc)
        });
    });

    group.finish();
}

fn bench_invocations(c: &mut Criterion) {
    let mut group = c.benchmark_group("invocations");

    group.bench_function("magus_full_invocation", |b| {
        let mut sim = Simulation::new(Node::new(NodeConfig::intel_a100()));
        let mut driver = MagusDriver::with_defaults();
        driver.attach(&mut sim);
        let demand = Demand::new(30.0, 0.4, 0.3, 0.8);
        b.iter(|| {
            sim.node_mut().step(10_000, &demand);
            black_box(driver.on_decision(&mut sim))
        });
    });

    group.bench_function("ups_full_invocation", |b| {
        let mut sim = Simulation::new(Node::new(NodeConfig::intel_a100()));
        let mut driver = UpsDriver::with_defaults();
        driver.attach(&mut sim);
        let demand = Demand::new(30.0, 0.4, 0.3, 0.8);
        b.iter(|| {
            sim.node_mut().step(10_000, &demand);
            black_box(driver.on_decision(&mut sim))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_msr, bench_invocations);
criterion_main!(benches);
