//! Criterion benchmarks of the simulator substrate: these bound how fast
//! the figure regenerators can sweep (40-point sensitivity grids, 20-app
//! suites) and catch performance regressions in the node step path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use magus_experiments::drivers::{MagusDriver, NoopDriver};
use magus_experiments::harness::{run_trial, SimPath, SystemId, TrialOpts};
use magus_hetsim::{Demand, FastForward, GpuUtilVec, Node, NodeConfig};
use magus_workloads::{app_trace, AppId, Platform};

fn bench_node_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("node");
    group.throughput(Throughput::Elements(1));

    group.bench_function("step_idle", |b| {
        let mut node = Node::new(NodeConfig::intel_a100());
        let demand = Demand::idle();
        b.iter(|| black_box(node.step(10_000, &demand)));
    });

    group.bench_function("step_busy", |b| {
        let mut node = Node::new(NodeConfig::intel_a100());
        let demand = Demand::new(60.0, 0.5, 0.4, 0.9);
        b.iter(|| black_box(node.step(10_000, &demand)));
    });

    group.bench_function("step_multi_gpu", |b| {
        let mut node = Node::new(NodeConfig::intel_4a100());
        let demand = Demand {
            mem_gbs: 120.0,
            mem_frac: 0.5,
            cpu_frac: 0.0,
            cpu_util: 0.4,
            gpu_util: GpuUtilVec::from_slice(&[0.9; 4]),
        };
        b.iter(|| black_box(node.step(10_000, &demand)));
    });

    group.bench_function("step_busy_fast", |b| {
        // Steady-state frozen replay: after the warm-up ticks below the
        // feedback state has reached its fixed point, so every measured
        // iteration takes the accumulator-replay path.
        let mut node = Node::new(NodeConfig::intel_a100());
        let demand = Demand::new(60.0, 0.5, 0.4, 0.9);
        let mut ff = FastForward::new();
        for _ in 0..200 {
            node.step_fast(10_000, &demand, &mut ff);
        }
        b.iter(|| black_box(node.step_fast(10_000, &demand, &mut ff)));
    });

    group.bench_function("pcm_read", |b| {
        let mut node = Node::new(NodeConfig::intel_a100());
        let demand = Demand::new(30.0, 0.4, 0.3, 0.8);
        for _ in 0..50 {
            node.step(10_000, &demand);
        }
        b.iter(|| black_box(node.pcm_read_gbs()));
    });

    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.bench_function("generate_srad", |b| {
        b.iter(|| black_box(app_trace(AppId::Srad, Platform::IntelA100)));
    });
    group.bench_function("generate_full_suite", |b| {
        b.iter(|| {
            for &app in AppId::all() {
                black_box(app_trace(app, Platform::IntelA100));
            }
        });
    });
    group.finish();
}

fn bench_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("trials");
    group.sample_size(10);

    group.bench_function("bfs_baseline_trial", |b| {
        b.iter(|| {
            let mut d = NoopDriver;
            black_box(run_trial(
                SystemId::IntelA100,
                AppId::Bfs,
                &mut d,
                TrialOpts::default(),
            ))
        });
    });

    group.bench_function("bfs_magus_trial", |b| {
        b.iter(|| {
            let mut d = MagusDriver::with_defaults();
            black_box(run_trial(
                SystemId::IntelA100,
                AppId::Bfs,
                &mut d,
                TrialOpts::default(),
            ))
        });
    });

    // The headline pair: the full 20-app suite under MAGUS on the
    // reference per-tick path vs the macro-stepping fast path. The ratio
    // between these two medians is the speedup the fast path claims.
    let suite = |path: SimPath| {
        for &app in AppId::all() {
            let mut d = MagusDriver::with_defaults();
            black_box(run_trial(
                SystemId::IntelA100,
                app,
                &mut d,
                TrialOpts::default().with_path(path),
            ));
        }
    };
    group.bench_function("suite_reference", |b| b.iter(|| suite(SimPath::Reference)));
    group.bench_function("suite_fast", |b| b.iter(|| suite(SimPath::Fast)));

    group.finish();
}

criterion_group!(
    benches,
    bench_node_step,
    bench_workload_generation,
    bench_trials
);
criterion_main!(benches);
