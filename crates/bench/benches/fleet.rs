//! Criterion benchmarks of the fleet layer: lockstep multi-node stepping
//! and the engine's streaming suite reduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use magus_experiments::engine::{Engine, GovernorSpec, TrialSpec};
use magus_experiments::fleet::{run_fleet, FleetSpec};
use magus_experiments::harness::SystemId;
use magus_workloads::AppId;

fn bench_fleet_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    // 64 nodes × the catalog (round-robin) under MAGUS, bounded budget:
    // the node-steps/sec headline the fleet bench bin and CI gate track.
    let spec = FleetSpec {
        max_s: 30.0,
        ..FleetSpec::new(GovernorSpec::magus_default(), 64)
    };
    let node_steps = run_fleet(&spec).summary.node_steps;
    group.throughput(Throughput::Elements(node_steps));
    group.bench_function("step_64", |b| b.iter(|| black_box(run_fleet(&spec))));

    group.finish();
}

fn bench_suite_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    // The full catalog under MAGUS through the uncached engine: the
    // streaming fold must cost no more than collect-then-reduce (CI gates
    // the bench-bin ratio of the same pair).
    let specs: Vec<TrialSpec> = AppId::all()
        .iter()
        .map(|&app| TrialSpec::new(SystemId::IntelA100, app, GovernorSpec::magus_default()))
        .collect();
    let engine = Engine::ephemeral();
    group.bench_function("suite_collect", |b| {
        b.iter(|| black_box(engine.run_suite(&specs)));
    });
    group.bench_function("suite_streaming", |b| {
        b.iter(|| {
            engine.fold_suite(
                &specs,
                |_, outcome| outcome.result.summary.runtime_s,
                0.0f64,
                |acc, _, runtime_s| *acc += runtime_s,
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fleet_step, bench_suite_streaming);
criterion_main!(benches);
