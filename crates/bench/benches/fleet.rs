//! Criterion benchmarks of the fleet layer: lockstep multi-node stepping
//! and the engine's streaming suite reduction.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use magus_experiments::engine::{Engine, GovernorSpec, TrialSpec};
use magus_experiments::fleet::{fleet_app, run_fleet, FleetSpec};
use magus_experiments::harness::SystemId;
use magus_hetsim::{FleetSim, RunOpts};
use magus_workloads::{app_traces, AppId, Platform};

fn bench_fleet_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    // 64 nodes × the catalog (round-robin) under MAGUS, bounded budget:
    // the node-steps/sec headline the fleet bench bin and CI gate track.
    let spec = FleetSpec {
        max_s: 30.0,
        ..FleetSpec::new(GovernorSpec::magus_default(), 64)
    };
    let node_steps = run_fleet(&spec).summary.node_steps;
    group.throughput(Throughput::Elements(node_steps));
    group.bench_function("step_64", |b| b.iter(|| black_box(run_fleet(&spec))));

    group.finish();
}

fn bench_fleet_step_100k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    // The raw 100k-node lockstep kernel: round-robin catalog traces from
    // one bulk intern lookup, a noop decider (one decision at t=0, then
    // rest forever), one shard per CPU. This times pure SoA stepping —
    // fleet construction happens in the untimed setup closure. `step_100k`
    // pins dedup off (the raw kernel, comparable with pre-dedup numbers);
    // `step_100k_dedup` runs the same fleet with trajectory dedup sharing
    // macro-step work across the catalog's equivalence classes. Both
    // produce bit-identical summaries, so the shared Elements(node_steps)
    // throughput makes the two directly comparable.
    const NODES: usize = 100_000;
    let budget_s = 5.0;
    let keys: Vec<(AppId, Platform)> = (0..NODES)
        .map(|i| (fleet_app(i), SystemId::IntelA100.platform()))
        .collect();
    let shards = std::thread::available_parallelism().map_or(1, usize::from);
    let build = |dedup: bool| {
        let mut b = FleetSim::builder(budget_s).shards(shards).dedup(dedup);
        for trace in app_traces(&keys) {
            b = b.node(SystemId::IntelA100.node_config(), trace);
        }
        b.build().expect("100k fleet spec is valid")
    };
    let opts = RunOpts::noop();
    let node_steps = build(false).run(&opts).node_steps;
    group.throughput(Throughput::Elements(node_steps));
    group.bench_function("step_100k", |b| {
        b.iter_batched_ref(
            || build(false),
            |fleet| black_box(fleet.run(&opts)),
            BatchSize::PerIteration,
        );
    });
    group.bench_function("step_100k_dedup", |b| {
        b.iter_batched_ref(
            || build(true),
            |fleet| black_box(fleet.run(&opts)),
            BatchSize::PerIteration,
        );
    });

    // The phase-shifted variant: each catalog wave (24 nodes) starts
    // 0.25 s later on the fleet clock, so exact-key dedup degenerates to
    // singleton classes and only offset sharing recovers the redundancy.
    // Same noop decider and shard layout; throughput is re-pinned because
    // the staggered fleet's step count differs from the unstaggered one.
    let catalog = AppId::all().len();
    let stagger_us: u64 = 250_000;
    let build_staggered = || {
        let mut b = FleetSim::builder(budget_s)
            .shards(shards)
            .dedup(true)
            .share_offsets(true);
        for (i, trace) in app_traces(&keys).into_iter().enumerate() {
            let offset_us = ((i / catalog) as u64).saturating_mul(stagger_us);
            b = b.node_at(SystemId::IntelA100.node_config(), trace, offset_us);
        }
        b.build().expect("staggered 100k fleet spec is valid")
    };
    let node_steps = build_staggered().run(&opts).node_steps;
    group.throughput(Throughput::Elements(node_steps));
    group.bench_function("step_100k_offset_dedup", |b| {
        b.iter_batched_ref(
            &build_staggered,
            |fleet| black_box(fleet.run(&opts)),
            BatchSize::PerIteration,
        );
    });

    group.finish();
}

fn bench_suite_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    // The full catalog under MAGUS through the uncached engine: the
    // streaming fold must cost no more than collect-then-reduce (CI gates
    // the bench-bin ratio of the same pair).
    let specs: Vec<TrialSpec> = AppId::all()
        .iter()
        .map(|&app| TrialSpec::new(SystemId::IntelA100, app, GovernorSpec::magus_default()))
        .collect();
    let engine = Engine::ephemeral();
    group.bench_function("suite_collect", |b| {
        b.iter(|| black_box(engine.run_suite(&specs)));
    });
    group.bench_function("suite_streaming", |b| {
        b.iter(|| {
            engine.fold_suite(
                &specs,
                |_, outcome| outcome.result.summary.runtime_s,
                0.0f64,
                |acc, _, runtime_s| *acc += runtime_s,
            )
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_fleet_step,
    bench_fleet_step_100k,
    bench_suite_streaming
);
criterion_main!(benches);
