//! Criterion benchmarks of the telemetry layer: the instrumented
//! macro-stepping hot loop, structured event pushes, and registry
//! updates. `telemetry/step_busy_fast_instrumented` measures the same
//! workload as `node/step_busy_fast` in the simulator bench — running
//! this bench with and without `--features telemetry` (default on) bounds
//! the instrumentation overhead the CI gate enforces at ≤5%.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use magus_hetsim::{Demand, FastForward, Node, NodeConfig};
use magus_telemetry::{Event, EventLog, Registry};

fn bench_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.throughput(Throughput::Elements(1));

    // Steady-state frozen replay with per-tick residency accumulation —
    // the path the ≤5% overhead budget is written against.
    group.bench_function("step_busy_fast_instrumented", |b| {
        let mut node = Node::new(NodeConfig::intel_a100());
        let demand = Demand::new(60.0, 0.5, 0.4, 0.9);
        let mut ff = FastForward::new();
        for _ in 0..200 {
            node.step_fast(10_000, &demand, &mut ff);
        }
        b.iter(|| black_box(node.step_fast(10_000, &demand, &mut ff)));
    });

    // One decision-event push (driver cadence, ~100 ms of simulated time
    // apart — never per tick).
    group.bench_function("event_push", |b| {
        let mut log = EventLog::with_cap(1 << 16);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            log.push(
                Event::new(t, "magus_decision")
                    .with("cycle", t)
                    .with("trend", "stable")
                    .with("tune_event", false),
            );
            if log.len() == 1 << 16 {
                black_box(log.take());
            }
        });
    });

    // Registry updates at engine cadence (once per trial).
    group.bench_function("registry_inc", |b| {
        let registry = Registry::new();
        b.iter(|| registry.inc("engine/trials_total", 1));
    });
    group.bench_function("registry_observe", |b| {
        let registry = Registry::new();
        const BOUNDS: [f64; 9] = [0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.5];
        b.iter(|| {
            registry.observe("node/uncore_residency_ghz", &BOUNDS, black_box(1.8), 10_000);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
