//! Figure/table regenerators for the MAGUS reproduction.
//!
//! Each binary in `src/bin/` prints the data for one paper artefact; the
//! Criterion benches in `benches/` measure the runtimes' decision costs.
//! This library crate re-exports the experiment API they share, plus the
//! committed-baseline validation the self-timing bench binaries use.

pub mod baseline;

pub use magus_experiments as experiments;
