//! Fig 7: Pareto frontiers of energy vs runtime across 40 threshold
//! combinations (fix two thresholds, vary the third).
//!
//! Paper: the common configuration (inc=300, dec=500, hf=0.4) sits on or
//! close to the frontier for every application; the defaults (inc=200) are
//! equally good.

use magus_experiments::engine_from_cli;
use magus_experiments::figures::fig7_sensitivity;
use magus_experiments::pareto::{distance_to_frontier, pareto_frontier};
use magus_workloads::AppId;

fn main() {
    let (engine, _, _) = engine_from_cli("fig7");
    for app in [AppId::Srad, AppId::Unet] {
        let sweep = fig7_sensitivity(&engine, app);
        let frontier = pareto_frontier(&sweep.points);
        println!(
            "== Fig 7: {} — {} configs, {} on frontier ==",
            sweep.app,
            sweep.points.len(),
            frontier.len()
        );
        for p in &frontier {
            println!(
                "  frontier: {:<28} runtime {:>7.2} s  energy {:>9.0} J",
                p.label, p.runtime_s, p.energy_j
            );
        }
        for (name, point) in [
            ("default", &sweep.default_point),
            ("common", &sweep.common_point),
        ] {
            println!(
                "  {name:<8} {:<28} runtime {:>7.2} s  energy {:>9.0} J  distance-to-frontier {:.4}",
                point.label,
                point.runtime_s,
                point.energy_j,
                distance_to_frontier(point, &frontier)
            );
        }
        println!();
    }
    engine.finish("fig7");
}
