//! Power-budget study: what a RAPL package cap costs under each uncore
//! policy (the §6.1 budget argument, quantified).
//!
//! The stock governor's pinned-max uncore eats the budget and forces core
//! throttling; MAGUS's uncore savings buy the cores headroom.

use magus_experiments::engine_from_cli;
use magus_experiments::powercap::powercap_study;

fn main() {
    let (engine, _, _) = engine_from_cli("powercap_study");
    let caps = [None, Some(120.0), Some(105.0), Some(95.0), Some(85.0)];
    let mut cells = powercap_study(&engine, &caps);
    cells.sort_by(|a, b| {
        b.cap_w
            .unwrap_or(f64::INFINITY)
            .total_cmp(&a.cap_w.unwrap_or(f64::INFINITY))
            .then(a.policy.cmp(&b.policy))
    });
    println!("== hybrid host+GPU workload under per-socket PL1 caps (Intel+A100) ==");
    println!(
        "{:>10} {:<8} {:>10} {:>12} {:>10}",
        "cap (W)", "policy", "runtime", "mean CPU W", "energy J"
    );
    for c in &cells {
        println!(
            "{:>10} {:<8} {:>9.2}s {:>12.1} {:>10.0}",
            c.cap_w.map_or("none".into(), |w| format!("{w:.0}")),
            c.policy,
            c.runtime_s,
            c.mean_cpu_w,
            c.energy_j
        );
    }
    println!("\nunder tight caps the stock governor throttles the cores to pay for");
    println!("its pinned-max uncore; MAGUS converts uncore waste into core headroom.");
    engine.finish("powercap_study");
}
