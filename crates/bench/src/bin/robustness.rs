//! Robustness study: the Fig 4a evaluation repeated under seeded
//! sensor/actuator fault plans of increasing intensity.
//!
//! A robust governor's suite-mean energy saving and performance loss stay
//! close to the clean tier's even when PCM reads drop out, MSR writes
//! fail, and actuations land late. Regenerate `results/robustness.txt`
//! with:
//!
//! ```text
//! cargo run --release -p magus-bench --bin robustness > results/robustness.txt
//! ```

use magus_experiments::robustness::{render_robustness_report, robustness_study, summarize};
use magus_experiments::{engine_from_cli, SystemId};

fn main() {
    let (engine, _, _) = engine_from_cli("robustness");
    let evals = robustness_study(&engine, SystemId::IntelA100);
    print!("{}", render_robustness_report("Intel + A100", &evals));
    let summaries = summarize(&evals);
    let worst = summaries
        .iter()
        .map(|s| s.magus_energy_delta.abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nMAGUS: worst suite-mean energy-saving delta under faults {worst:.2} pct-points \
         across {} tiers",
        summaries.len()
    );
    engine.finish("robustness");
}
