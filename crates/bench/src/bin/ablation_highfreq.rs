//! Ablation: the Algorithm 2 high-frequency lock, on vs off, on SRAD.
//!
//! Without the lock, MAGUS thrashes the uncore through SRAD's fluctuation
//! intervals, paying repeated reaction lags — the §3.2 design argument.

use magus_experiments::engine_from_cli;
use magus_experiments::figures::ablation_high_freq;
use magus_workloads::AppId;

fn main() {
    let (engine, _, _) = engine_from_cli("ablation_highfreq");
    for app in [AppId::Srad, AppId::Unet] {
        let a = ablation_high_freq(&engine, app);
        println!("== high-frequency-lock ablation: {app} ==");
        println!(
            "with lock:    loss {:>5.2}% | power saving {:>6.2}% | energy saving {:>6.2}%",
            a.with_lock.perf_loss_pct, a.with_lock.power_saving_pct, a.with_lock.energy_saving_pct
        );
        println!(
            "without lock: loss {:>5.2}% | power saving {:>6.2}% | energy saving {:>6.2}%",
            a.without_lock.perf_loss_pct,
            a.without_lock.power_saving_pct,
            a.without_lock.energy_saving_pct
        );
        println!();
    }
    engine.finish("ablation_highfreq");
}
