//! Bench smoke run: median ns/op for the hot simulator paths, as JSON.
//!
//! A lightweight self-timing complement to the Criterion benches (which
//! need a dev-dependency harness and minutes of sampling): each case runs
//! enough repetitions to exceed a minimum measurement window, takes the
//! median of per-rep timings, and the result is written to
//! `BENCH_sim.json` at the repo root (schema v2: the gate thresholds
//! travel in the file, see `magus_bench::baseline`). CI runs this binary
//! so simulator performance regressions show up as a diff against the
//! committed baseline rather than silently.
//!
//! `--write-baseline` regenerates the complete measured v2 baseline —
//! this binary always measures every case, so the switch only skips the
//! pre-flight validation of the committed file (which a regeneration
//! replaces wholesale). It exists so the mechanical first-networked-CI
//! baseline landing uses one switch across both bench bins (see
//! `fleet_bench --write-baseline`).
//!
//! Usage: `cargo run --release --bin bench_smoke [--write-baseline] \
//!         [out.json] [engine switches]`

use std::hint::black_box;
use std::time::Instant;

use magus_experiments::drivers::{MagusDriver, NoopDriver};
use magus_experiments::harness::{run_trial, SimPath, SystemId, TrialOpts};
use magus_experiments::opts::take_switch;
use magus_experiments::EngineOpts;
use magus_hetsim::{Demand, FastForward, Node, NodeConfig};
use magus_workloads::AppId;

/// Carry a field forward from the committed baseline so regeneration
/// never silently rewrites the gate contract.
fn carried(path: &str, key: &str, default: serde_json::Value) -> serde_json::Value {
    std::fs::read(path)
        .ok()
        .and_then(|bytes| serde_json::from_slice::<serde_json::Value>(&bytes).ok())
        .and_then(|v| v.get(key).cloned())
        .unwrap_or(default)
}

/// Median ns/op over `reps` timed repetitions of `iters` iterations each.
fn median_ns_per_op(reps: usize, iters: u64, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let write_baseline = take_switch(&mut args, "--write-baseline");
    // The shared engine switches parse (and install `--sim-path` /
    // `--faults` defaults) even here, where trials pin their own paths —
    // one grammar across every bin beats a special case.
    let opts = match EngineOpts::take_from_args(&mut args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("bench_smoke: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = opts.install_defaults() {
        eprintln!("bench_smoke: {e}");
        std::process::exit(2);
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    // Fail fast (clear message, non-zero exit) if the committed baseline
    // the CI gate will diff against is malformed — before benching.
    // `--write-baseline` replaces that file wholesale, so a malformed (or
    // missing) committed baseline is not an error there.
    if !write_baseline {
        magus_bench::baseline::validate_baseline_or_exit("BENCH_sim.json");
    }

    let mut cases: Vec<(&str, f64)> = Vec::new();

    // -- node group: single-tick costs -----------------------------------
    {
        let mut node = Node::new(NodeConfig::intel_a100());
        let demand = Demand::idle();
        cases.push((
            "node/step_idle",
            median_ns_per_op(15, 20_000, || {
                black_box(node.step(10_000, &demand));
            }),
        ));
    }
    {
        let mut node = Node::new(NodeConfig::intel_a100());
        let demand = Demand::new(60.0, 0.5, 0.4, 0.9);
        cases.push((
            "node/step_busy",
            median_ns_per_op(15, 20_000, || {
                black_box(node.step(10_000, &demand));
            }),
        ));
    }
    {
        let mut node = Node::new(NodeConfig::intel_a100());
        let demand = Demand::new(60.0, 0.5, 0.4, 0.9);
        let mut ff = FastForward::new();
        for _ in 0..200 {
            node.step_fast(10_000, &demand, &mut ff);
        }
        cases.push((
            "node/step_busy_fast",
            median_ns_per_op(15, 20_000, || {
                black_box(node.step_fast(10_000, &demand, &mut ff));
            }),
        ));
    }

    // -- trials group: whole-suite throughput -----------------------------
    let suite = |path: SimPath| {
        for &app in AppId::all() {
            let mut d = MagusDriver::with_defaults();
            black_box(run_trial(
                SystemId::IntelA100,
                app,
                &mut d,
                TrialOpts::default().with_path(path),
            ));
        }
    };
    cases.push((
        "trials/suite_reference",
        median_ns_per_op(3, 1, || suite(SimPath::Reference)),
    ));
    cases.push((
        "trials/suite_fast",
        median_ns_per_op(3, 1, || suite(SimPath::Fast)),
    ));
    {
        let mut d = NoopDriver;
        cases.push((
            "trials/bfs_baseline_trial",
            median_ns_per_op(5, 1, || {
                black_box(run_trial(
                    SystemId::IntelA100,
                    AppId::Bfs,
                    &mut d,
                    TrialOpts::default(),
                ));
            }),
        ));
    }

    let suite_ref = cases
        .iter()
        .find(|(n, _)| *n == "trials/suite_reference")
        .map_or(0.0, |(_, v)| *v);
    let suite_fast = cases
        .iter()
        .find(|(n, _)| *n == "trials/suite_fast")
        .map_or(f64::INFINITY, |(_, v)| *v);
    let speedup = suite_ref / suite_fast;

    let json = serde_json::json!({
        "schema_version": magus_bench::baseline::BASELINE_SCHEMA_VERSION,
        "measured": true,
        "seed": 0,
        "git_sha": magus_bench::baseline::git_sha(),
        "unit": "ns/op (median)",
        "taxonomy": carried("BENCH_sim.json", "taxonomy", serde_json::json!({})),
        "thresholds": carried(
            "BENCH_sim.json",
            "thresholds",
            serde_json::json!({"suite_speedup_min": 10.0}),
        ),
        "suite_speedup": speedup,
        "cases": cases
            .iter()
            .map(|(n, v)| (n.to_string(), serde_json::json!(v.round())))
            .collect::<serde_json::Map<_, _>>(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("serialise");
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH_sim.json");
    println!("{rendered}");
    println!("wrote {out_path} (suite speedup fast vs reference: {speedup:.1}x)");
}
