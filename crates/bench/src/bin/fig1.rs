//! Fig 1: UNet profiling under the stock governor on Intel+A100.
//!
//! Paper: CPU core frequency (a) and GPU SM clock (b) are adjusted
//! dynamically by default; the uncore frequency (c) stays pinned at its
//! maximum because package power never approaches TDP.

use magus_experiments::engine_from_cli;
use magus_experiments::figures::fig1_unet_profile;
use magus_experiments::report::render_series;

fn main() {
    let (engine, _, _) = engine_from_cli("fig1");
    let r = fig1_unet_profile(&engine);
    println!("== Fig 1: UNet under the stock governor (Intel+A100) ==");
    println!(
        "runtime {:.1} s | mean pkg {:.1} W (TDP budget {:.0} W per socket)",
        r.summary.runtime_s,
        r.summary.energy.pkg_j() / r.summary.energy.elapsed_s,
        270.0
    );
    print!(
        "{}",
        render_series(
            "(a) CPU core frequency",
            &r.samples,
            |s| s.core_freq_ghz,
            "GHz",
            25
        )
    );
    print!(
        "{}",
        render_series(
            "(b) GPU SM clock",
            &r.samples,
            |s| s.gpu_clock_mhz,
            "MHz",
            25
        )
    );
    print!(
        "{}",
        render_series(
            "(c) uncore frequency",
            &r.samples,
            |s| s.uncore_ghz,
            "GHz",
            25
        )
    );
    let min_uncore = r
        .samples
        .iter()
        .map(|s| s.uncore_ghz)
        .fold(f64::INFINITY, f64::min);
    println!("uncore stayed at maximum: min observed = {min_uncore:.2} GHz (hardware max 2.2 GHz)");
    engine.finish("fig1");
}
