//! Export recorded traces as JSON for external plotting.
//!
//! ```sh
//! cargo run --release -p magus-bench --bin export_traces -- srad out/
//! ```
//!
//! Writes one JSON file per policy (baseline, min/max fixed, MAGUS, UPS)
//! containing the full [`TraceSample`] series — throughput, uncore
//! frequency, per-domain power — ready for any plotting stack.
//!
//! [`TraceSample`]: magus_hetsim::TraceSample

use std::fs;
use std::path::PathBuf;

use magus_experiments::drivers::{FixedUncoreDriver, MagusDriver, NoopDriver, UpsDriver};
use magus_experiments::harness::{run_trial, SystemId, TrialOpts};
use magus_workloads::AppId;

fn main() {
    let mut args = std::env::args().skip(1);
    let app = args
        .next()
        .and_then(|s| AppId::from_name(&s))
        .unwrap_or(AppId::Srad);
    let out_dir = PathBuf::from(args.next().unwrap_or_else(|| "results/traces".into()));
    fs::create_dir_all(&out_dir).expect("create output directory");

    let system = SystemId::IntelA100;
    let opts = TrialOpts::recorded();
    let cfg = system.node_config();

    let runs: Vec<(&str, magus_experiments::TrialResult)> = vec![
        ("baseline", {
            let mut d = NoopDriver;
            run_trial(system, app, &mut d, opts)
        }),
        ("fixed_max", {
            let mut d = FixedUncoreDriver::new(cfg.uncore.freq_max_ghz);
            run_trial(system, app, &mut d, opts)
        }),
        ("fixed_min", {
            let mut d = FixedUncoreDriver::new(cfg.uncore.freq_min_ghz);
            run_trial(system, app, &mut d, opts)
        }),
        ("magus", {
            let mut d = MagusDriver::with_defaults();
            run_trial(system, app, &mut d, opts)
        }),
        ("ups", {
            let mut d = UpsDriver::with_defaults();
            run_trial(system, app, &mut d, opts)
        }),
    ];

    for (name, result) in runs {
        let path = out_dir.join(format!("{}_{}.json", app.name(), name));
        let json = serde_json::to_string_pretty(&result).expect("serialise");
        fs::write(&path, json).expect("write trace");
        println!(
            "{}: {} samples, runtime {:.2} s -> {}",
            name,
            result.samples.len(),
            result.summary.runtime_s,
            path.display()
        );
    }
}
