//! Export recorded traces as JSON for external plotting.
//!
//! ```sh
//! cargo run --release -p magus-bench --bin export_traces -- srad out/
//! ```
//!
//! Writes one JSON file per policy (baseline, min/max fixed, MAGUS, UPS)
//! containing the full [`TraceSample`] series — throughput, uncore
//! frequency, per-domain power — ready for any plotting stack.
//!
//! [`TraceSample`]: magus_hetsim::TraceSample

use std::fs;
use std::path::PathBuf;

use magus_experiments::{engine_from_cli, GovernorSpec, SystemId, TrialSpec};
use magus_workloads::AppId;

fn main() {
    let (engine, _, rest) = engine_from_cli("export_traces");
    let mut args = rest.into_iter();
    let app = args
        .next()
        .and_then(|s| AppId::from_name(&s))
        .unwrap_or(AppId::Srad);
    let out_dir = PathBuf::from(args.next().unwrap_or_else(|| "results/traces".into()));
    fs::create_dir_all(&out_dir).expect("create output directory");
    let system = SystemId::IntelA100;
    let cfg = system.node_config();

    let policies = [
        ("baseline", GovernorSpec::Default),
        (
            "fixed_max",
            GovernorSpec::Fixed {
                ghz: cfg.uncore.freq_max_ghz,
            },
        ),
        (
            "fixed_min",
            GovernorSpec::Fixed {
                ghz: cfg.uncore.freq_min_ghz,
            },
        ),
        ("magus", GovernorSpec::magus_default()),
        ("ups", GovernorSpec::ups_default()),
    ];
    let specs: Vec<TrialSpec> = policies
        .iter()
        .map(|(_, g)| TrialSpec::new(system, app, g.clone()).recorded())
        .collect();
    let outs = engine.run_suite(&specs);

    for ((name, _), out) in policies.iter().zip(&outs) {
        let path = out_dir.join(format!("{}_{}.json", app.name(), name));
        let json = serde_json::to_string_pretty(&out.result).expect("serialise");
        fs::write(&path, json).expect("write trace");
        println!(
            "{}: {} samples, runtime {:.2} s -> {}",
            name,
            out.result.samples.len(),
            out.result.summary.runtime_s,
            path.display()
        );
    }
    engine.finish("export_traces");
}
