//! Diagnostic: where do baseline and MAGUS burst intervals disagree?
use magus_experiments::drivers::{MagusDriver, NoopDriver};
use magus_experiments::harness::{run_trial, SystemId, TrialOpts};
use magus_experiments::metrics::default_burst_threshold;
use magus_workloads::AppId;

fn main() {
    let app = AppId::from_name(&std::env::args().nth(1).unwrap_or_else(|| "bfs".into())).unwrap();
    let mut base_d = NoopDriver;
    let base = run_trial(SystemId::IntelA100, app, &mut base_d, TrialOpts::recorded());
    let mut magus_d = MagusDriver::with_defaults();
    let magus = run_trial(SystemId::IntelA100, app, &mut magus_d, TrialOpts::recorded());
    let thr = default_burst_threshold(&base.samples);
    println!("threshold = {thr:.1} GB/s, base peak = {:.1}", base.samples.iter().map(|s| s.mem_gbs).fold(0.0, f64::max));
    println!("base len {} magus len {}", base.samples.len(), magus.samples.len());
    // Print burst intervals in progress domain for each.
    for (name, samples) in [("base", &base.samples), ("magus", &magus.samples)] {
        let mut intervals = vec![];
        let mut start: Option<f64> = None;
        for s in samples.iter() {
            if s.mem_gbs > thr && start.is_none() { start = Some(s.progress_s); }
            if s.mem_gbs <= thr {
                if let Some(st) = start.take() { intervals.push((st, s.progress_s)); }
            }
        }
        println!("{name}: {} bursts:", intervals.len());
        for (a, b) in intervals.iter().take(12) {
            print!(" [{a:.2}-{b:.2}]");
        }
        println!();
    }
}
