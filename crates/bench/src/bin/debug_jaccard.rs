//! Diagnostic: where do baseline and MAGUS burst intervals disagree?
use magus_experiments::metrics::default_burst_threshold;
use magus_experiments::{engine_from_cli, GovernorSpec, SystemId, TrialSpec};
use magus_workloads::AppId;

fn main() {
    let (engine, _, args) = engine_from_cli("debug_jaccard");
    let app = AppId::from_name(args.first().map_or("bfs", String::as_str)).unwrap();
    let outs = engine.run_suite(&[
        TrialSpec::new(SystemId::IntelA100, app, GovernorSpec::Default).recorded(),
        TrialSpec::new(SystemId::IntelA100, app, GovernorSpec::magus_default()).recorded(),
    ]);
    let base = &outs[0].result;
    let magus = &outs[1].result;
    let thr = default_burst_threshold(&base.samples);
    println!(
        "threshold = {thr:.1} GB/s, base peak = {:.1}",
        base.samples.iter().map(|s| s.mem_gbs).fold(0.0, f64::max)
    );
    println!(
        "base len {} magus len {}",
        base.samples.len(),
        magus.samples.len()
    );
    // Print burst intervals in progress domain for each.
    for (name, samples) in [("base", &base.samples), ("magus", &magus.samples)] {
        let mut intervals = vec![];
        let mut start: Option<f64> = None;
        for s in samples.iter() {
            if s.mem_gbs > thr && start.is_none() {
                start = Some(s.progress_s);
            }
            if s.mem_gbs <= thr {
                if let Some(st) = start.take() {
                    intervals.push((st, s.progress_s));
                }
            }
        }
        println!("{name}: {} bursts:", intervals.len());
        for (a, b) in intervals.iter().take(12) {
            print!(" [{a:.2}-{b:.2}]");
        }
        println!();
    }
    engine.finish("debug_jaccard");
}
