//! Table 1: Jaccard similarity of memory-throughput burst intervals,
//! MAGUS vs the maximum-uncore baseline.
//!
//! Paper: scores range 0.40-0.99; fdtd2d, cfd_double, gemm, and
//! particlefilter_float score low because brief initialisation bursts land
//! inside MAGUS's 2 s warm-up, before uncore scaling starts.

use magus_experiments::engine_from_cli;
use magus_experiments::figures::table1_jaccard;
use magus_experiments::report::render_pairs;

fn main() {
    let (engine, _, _) = engine_from_cli("table1");
    let mut rows = table1_jaccard(&engine);
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    print!(
        "{}",
        render_pairs(
            "Table 1: Jaccard similarity for memory throughput trend",
            &rows,
            "raw"
        )
    );
    let min = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let max = rows.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
    println!("\nrange: {min:.2} .. {max:.2} (paper: 0.40 .. 0.99)");
    engine.finish("table1");
}
