//! Ablation: MAGUS monitoring-interval sweep (§6.4's 0.2 s choice).
//!
//! Shorter intervals raise monitoring overhead; longer intervals miss
//! throughput transitions and cost performance.

use magus_experiments::engine_from_cli;
use magus_experiments::figures::ablation_interval;
use magus_workloads::AppId;

fn main() {
    let (engine, _, _) = engine_from_cli("ablation_interval");
    let intervals = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6];
    for app in [AppId::Unet, AppId::Srad] {
        println!("== monitoring-interval ablation: {app} ==");
        for (interval, c) in ablation_interval(&engine, app, &intervals) {
            println!(
                "interval {interval:>5.2} s: loss {:>5.2}% | power saving {:>6.2}% | energy saving {:>6.2}%",
                c.perf_loss_pct, c.power_saving_pct, c.energy_saving_pct
            );
        }
        println!();
    }
    engine.finish("ablation_interval");
}
