//! Fleet bench: node-steps/sec of the batched fleet simulator plus the
//! streaming-vs-collect suite reduction, as JSON.
//!
//! Runs the full workload catalog × {default, MAGUS, UPS} across an
//! N-node synthetic fleet (round-robin apps on interned traces) and times
//! each governor's fleet run, then times one catalog suite through the
//! engine's collect (`run_suite`) and streaming (`fold_suite`) reductions.
//! Results land in `BENCH_fleet.json`:
//!
//! * `node_steps_per_sec` — simulator ticks advanced across all nodes per
//!   wall-clock second, summed over the three governor fleets (the CI
//!   regression gate's headline).
//! * `streaming_vs_collect` — streaming suite time / collect suite time
//!   (CI gates this ≤ 1.10: streaming must not be slower).
//! * `peak_rss_proxy_kb` — the process's `VmHWM` high-water mark from
//!   `/proc/self/status` (0 where unavailable), a coarse resident-memory
//!   proxy for the O(workers) streaming claim.
//!
//! Usage: `cargo run --release --bin fleet_bench [out.json] [nodes]`

use std::hint::black_box;
use std::time::Instant;

use magus_experiments::engine::{Engine, GovernorSpec, TrialSpec};
use magus_experiments::fleet::{run_fleet, FleetSpec};
use magus_experiments::harness::SystemId;
use magus_workloads::AppId;

/// Median seconds over `reps` timed runs of `f`.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// `VmHWM` (peak resident set, kB) from `/proc/self/status`; 0 where the
/// proc filesystem is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    let nodes: usize = std::env::args()
        .nth(2)
        .map(|n| n.parse().expect("node count"))
        .unwrap_or(64);
    // Fail fast (clear message, non-zero exit) if the committed baseline
    // the CI gate will diff against is malformed — before benching.
    magus_bench::baseline::validate_baseline_or_exit("BENCH_fleet.json");
    // Bounded per-node budget: throughput needs steady stepping, not
    // catalog completion (the longest apps run for hundreds of sim-secs).
    let max_s = 120.0;

    let mut cases: Vec<(String, f64)> = Vec::new();

    // -- fleet group: lockstep stepping throughput per governor -----------
    let governors = [
        GovernorSpec::Default,
        GovernorSpec::magus_default(),
        GovernorSpec::ups_default(),
    ];
    let mut total_node_steps = 0u64;
    let mut total_fleet_secs = 0.0;
    for governor in governors {
        let spec = FleetSpec {
            max_s,
            ..FleetSpec::new(governor.clone(), nodes)
        };
        // Fleet runs are deterministic: take the step count once, time the
        // median over repeats.
        let node_steps = run_fleet(&spec).summary.node_steps;
        let secs = median_secs(3, || {
            black_box(run_fleet(&spec));
        });
        cases.push((format!("fleet/{}_s", governor.name()), secs));
        total_node_steps += node_steps;
        total_fleet_secs += secs;
    }
    let node_steps_per_sec = total_node_steps as f64 / total_fleet_secs;

    // -- suite group: collect vs streaming reduction ----------------------
    // One catalog × MAGUS sweep through an uncached engine; both paths run
    // identical trials, so the ratio isolates the reduction strategy.
    let specs: Vec<TrialSpec> = AppId::all()
        .iter()
        .map(|&app| TrialSpec::new(SystemId::IntelA100, app, GovernorSpec::magus_default()))
        .collect();
    let engine = Engine::ephemeral();
    let collect_s = median_secs(3, || {
        black_box(engine.run_suite(&specs));
    });
    let streaming_s = median_secs(3, || {
        let count = engine.fold_suite(
            &specs,
            |_, outcome| outcome.result.summary.runtime_s,
            0usize,
            |acc, _, runtime_s| {
                black_box(runtime_s);
                *acc += 1;
            },
        );
        assert_eq!(count, specs.len());
    });
    cases.push(("suite/collect_s".to_string(), collect_s));
    cases.push(("suite/streaming_s".to_string(), streaming_s));
    let streaming_vs_collect = streaming_s / collect_s;

    let json = serde_json::json!({
        "measured": true,
        "unit": "seconds (median) per case",
        "nodes": nodes,
        "node_steps_per_sec": node_steps_per_sec.round(),
        "streaming_vs_collect": streaming_vs_collect,
        "peak_rss_proxy_kb": peak_rss_kb(),
        "cases": cases
            .iter()
            .map(|(n, v)| (n.clone(), serde_json::json!(v)))
            .collect::<serde_json::Map<_, _>>(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("serialise");
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH_fleet.json");
    println!("{rendered}");
    println!(
        "wrote {out_path} ({nodes} nodes: {node_steps_per_sec:.0} node-steps/sec, \
         streaming/collect = {streaming_vs_collect:.2})"
    );
}
