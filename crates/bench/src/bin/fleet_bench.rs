//! Fleet bench: node-steps/sec of the sharded fleet kernel plus the
//! streaming-vs-collect suite reduction, as schema-v2 JSON.
//!
//! Default mode runs the full workload catalog × {default, MAGUS, UPS}
//! across an N-node synthetic fleet (round-robin apps on bulk-interned
//! traces) and times each governor's fleet run, measures shard-scaling
//! efficiency on the MAGUS fleet, then times one catalog suite through
//! the engine's collect (`run_suite`) and streaming (`fold_suite`)
//! reductions. Results land in `BENCH_fleet.json` (schema v2: gate
//! thresholds travel in the file, see `magus_bench::baseline`):
//!
//! * `node_steps_per_sec` — simulator ticks advanced across all nodes per
//!   wall-clock second, summed over the three governor fleets (the CI
//!   regression gate's headline).
//! * `streaming_vs_collect` — streaming suite time / collect suite time
//!   (CI gates this against `thresholds.streaming_vs_collect_max`).
//! * `shard_efficiency` — single-shard time / (sharded time × shards) for
//!   the MAGUS fleet: 1.0 is perfect scaling.
//! * `peak_rss_proxy_kb` — the process's `VmHWM` high-water mark from
//!   `/proc/self/status` (`null` where unavailable, e.g. off-Linux, so
//!   baseline validation can tell "unmeasured" from "zero"), a coarse
//!   resident-memory proxy for the O(workers) streaming claim.
//!
//! Smoke mode (`--smoke`, default 100000 nodes) runs the raw lockstep
//! kernel — no governor, one noop decision per node — at 100k-node scale
//! on one shard and on one shard per CPU (both with trajectory dedup off),
//! then re-runs the sharded fleet with dedup on in the same process. It
//! asserts all three runs are bit-identical and merges a `"smoke"` section
//! (node-steps/sec, shard efficiency, peak-RSS proxy, and a `"dedup"`
//! subsection with class count, representative-vs-replayed node-rounds,
//! and the dedup speedup) into the existing baseline file without touching
//! the measured 64-node numbers. A fourth pair of runs staggers the same
//! fleet by catalog wave (every `(app, wave)` pair becomes its own exact
//! dedup class) and times exact-only dedup against phase-shifted offset
//! sharing: the runs must be bit-identical, offset sharing must strictly
//! beat exact-only node-steps/sec, and the offset-class counters land in
//! an `"offset_dedup"` subsection next to `"dedup"`.
//!
//! `--write-baseline` regenerates the complete measured v2 baseline in one
//! command — the full 64-node default bench followed by the 100k smoke —
//! so the first CI run with a working registry can land measured numbers
//! mechanically (ROADMAP standing caveat: the committed files are still
//! `measured:false` because the build registry is unreachable here).
//!
//! Usage: `cargo run --release --bin fleet_bench [--smoke|--write-baseline] \
//!         [out.json] [nodes] [engine switches]`

use std::hint::black_box;
use std::time::Instant;

use magus_experiments::engine::{Engine, GovernorSpec, TrialSpec};
use magus_experiments::fleet::{fleet_app, run_fleet, FleetSpec};
use magus_experiments::harness::SystemId;
use magus_experiments::opts::take_switch;
use magus_experiments::EngineOpts;
use magus_hetsim::{FleetSim, RunOpts};
use magus_workloads::{app_traces, AppId, Platform};

/// Median seconds over `reps` timed runs of `f`.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// `VmHWM` (peak resident set, kB) from `/proc/self/status`; `None` where
/// the proc filesystem is unavailable (off-Linux), so the baseline records
/// `null` rather than a bogus 0 that validation could mistake for a
/// measurement.
fn peak_rss_kb() -> Option<u64> {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
}

/// Human-readable peak-RSS for console lines: kB count or "unavailable".
fn peak_rss_label() -> String {
    peak_rss_kb().map_or_else(|| "unavailable".to_string(), |kb| format!("{kb} kB"))
}

/// One shard per CPU — the shard count both modes scale out to.
fn cpu_shards() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Carry a field forward from the committed baseline so regeneration
/// never silently rewrites the gate contract (`thresholds`) or drops a
/// section another mode owns (`smoke`).
fn carried(path: &str, key: &str, default: serde_json::Value) -> serde_json::Value {
    std::fs::read(path)
        .ok()
        .and_then(|bytes| serde_json::from_slice::<serde_json::Value>(&bytes).ok())
        .and_then(|v| v.get(key).cloned())
        .unwrap_or(default)
}

/// Default gate thresholds for a fresh baseline file.
fn default_thresholds() -> serde_json::Value {
    serde_json::json!({
        "streaming_vs_collect_max": 1.1,
        "node_steps_per_sec_min_ratio": 0.8,
        "smoke_node_steps_per_sec_min": 1000000.0,
        "smoke_shard_efficiency_min": 0.5,
        "smoke_dedup_speedup_min": 1.0,
        "smoke_offset_dedup_speedup_min": 1.0,
    })
}

/// Thresholds carried from the committed baseline, with any *missing*
/// gate keys filled from the defaults (a regeneration must never drop a
/// newer gate just because the committed file predates it). Committed
/// values always win over defaults.
fn carried_thresholds(path: &str) -> serde_json::Value {
    let mut thresholds = default_thresholds();
    if let Some(committed) = carried(path, "thresholds", serde_json::Value::Null).as_object() {
        for (key, value) in committed {
            thresholds[key] = value.clone();
        }
    }
    thresholds
}

/// A catalog fleet for the raw-kernel smoke: round-robin apps on
/// bulk-interned traces (one `AppTrace` per distinct app, one intern-table
/// lock round-trip for all `nodes`). `stagger_us` staggers each catalog
/// wave's start on the fleet clock (wave `w = i / catalog` starts at
/// `w * stagger_us`); `share_offsets` opts the builder into quotienting
/// the dedup class key by that offset.
fn smoke_fleet(
    nodes: usize,
    budget_s: f64,
    shards: usize,
    dedup: bool,
    stagger_us: u64,
    share_offsets: bool,
) -> FleetSim {
    let keys: Vec<(AppId, Platform)> = (0..nodes)
        .map(|i| (fleet_app(i), SystemId::IntelA100.platform()))
        .collect();
    let catalog = AppId::all().len();
    let mut builder = FleetSim::builder(budget_s)
        .shards(shards)
        .dedup(dedup)
        .share_offsets(share_offsets);
    for (i, trace) in app_traces(&keys).into_iter().enumerate() {
        let offset_us = ((i / catalog) as u64).saturating_mul(stagger_us);
        builder = builder.node_at(SystemId::IntelA100.node_config(), trace, offset_us);
    }
    builder.build().expect("smoke fleet spec is valid")
}

/// The 100k smoke: raw lockstep-kernel throughput with a noop decider
/// (one decision at t=0, then rest forever — pure SoA stepping, no
/// governor cost), single-shard vs one-shard-per-CPU. Merges a `"smoke"`
/// section into `out_path` in place.
fn run_smoke(nodes: usize, out_path: &str) {
    let budget_s = 30.0;
    let opts = RunOpts::noop();
    let shards = cpu_shards();

    let mut single = smoke_fleet(nodes, budget_s, 1, false, 0, false);
    let t0 = Instant::now();
    let summary = single.run(&opts);
    let single_s = t0.elapsed().as_secs_f64();
    drop(single);

    let mut sharded = smoke_fleet(nodes, budget_s, shards, false, 0, false);
    let t0 = Instant::now();
    let sharded_summary = sharded.run(&opts);
    let sharded_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        summary, sharded_summary,
        "sharded smoke diverged from single-shard (bit-identity contract)"
    );
    drop(sharded);

    // Same-process dedup run: the catalog round-robin collapses `nodes`
    // trajectories into one class per (shard, distinct app), so stepping
    // work drops from O(nodes x rounds) to O(classes x rounds).
    let mut dedup = smoke_fleet(nodes, budget_s, shards, true, 0, false);
    let t0 = Instant::now();
    let dedup_summary = dedup.run(&opts);
    let dedup_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        summary, dedup_summary,
        "dedup smoke diverged from dedup-off (bit-identity contract)"
    );
    let classes: u64 = dedup.shard_stats().iter().map(|s| s.classes).sum();
    let rep_node_rounds: u64 = dedup.shard_stats().iter().map(|s| s.rep_node_rounds).sum();
    let replayed_node_rounds: u64 = dedup
        .shard_stats()
        .iter()
        .map(|s| s.replayed_node_rounds)
        .sum();
    let dedup_steps_per_sec = summary.node_steps as f64 / dedup_s;
    let dedup_speedup = sharded_s / dedup_s;
    assert!(
        dedup_steps_per_sec > summary.node_steps as f64 / sharded_s,
        "dedup run was not faster than the dedup-off run in the same process \
         ({dedup_s:.2} s vs {sharded_s:.2} s)"
    );

    // Phase-shifted sharing: the same catalog round-robin, but each
    // catalog wave starts 0.25 s after the previous one on the fleet
    // clock. Exact-key dedup degenerates — every `(app, wave)` pair is
    // its own singleton class, so everything steps live — while offset
    // sharing quotients the waves back into one class per distinct app,
    // the redundancy real staggered fleets expose. Both runs keep dedup
    // on; only the offset quotient differs.
    let stagger_us: u64 = 250_000;
    let mut exact = smoke_fleet(nodes, budget_s, shards, true, stagger_us, false);
    let t0 = Instant::now();
    let exact_summary = exact.run(&opts);
    let exact_s = t0.elapsed().as_secs_f64();
    drop(exact);

    let mut offset = smoke_fleet(nodes, budget_s, shards, true, stagger_us, true);
    let t0 = Instant::now();
    let offset_summary = offset.run(&opts);
    let offset_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        exact_summary, offset_summary,
        "offset-sharing smoke diverged from exact-only dedup (bit-identity contract)"
    );
    let offset_run_classes: u64 = offset.shard_stats().iter().map(|s| s.classes).sum();
    let offset_classes: u64 = offset.shard_stats().iter().map(|s| s.offset_classes).sum();
    let offset_replayed_rounds: u64 = offset
        .shard_stats()
        .iter()
        .map(|s| s.offset_replayed_rounds)
        .sum();
    let offset_evictions: u64 = offset
        .shard_stats()
        .iter()
        .map(|s| s.offset_evictions)
        .sum();
    let offset_steps_per_sec = offset_summary.node_steps as f64 / offset_s;
    let offset_speedup = exact_s / offset_s;
    assert!(
        offset_steps_per_sec > exact_summary.node_steps as f64 / exact_s,
        "offset sharing was not faster than exact-only dedup on the staggered fleet \
         ({offset_s:.2} s vs {exact_s:.2} s)"
    );

    let node_steps_per_sec = summary.node_steps as f64 / sharded_s;
    let shard_efficiency = single_s / (sharded_s * shards as f64);
    let smoke = serde_json::json!({
        "measured": true,
        "git_sha": magus_bench::baseline::git_sha(),
        "nodes": nodes,
        "shards": shards,
        "budget_s": budget_s,
        "node_steps": summary.node_steps,
        "node_steps_per_sec": node_steps_per_sec.round(),
        "single_shard_s": single_s,
        "sharded_s": sharded_s,
        "shard_efficiency": shard_efficiency,
        "peak_rss_proxy_kb": peak_rss_kb(),
        "dedup": {
            "measured": true,
            "classes": classes,
            "rep_node_rounds": rep_node_rounds,
            "replayed_node_rounds": replayed_node_rounds,
            "dedup_s": dedup_s,
            "node_steps_per_sec": dedup_steps_per_sec.round(),
            "speedup_vs_off": dedup_speedup,
        },
        "offset_dedup": {
            "measured": true,
            "stagger_us": stagger_us,
            "classes": offset_run_classes,
            "offset_classes": offset_classes,
            "offset_replayed_rounds": offset_replayed_rounds,
            "offset_evictions": offset_evictions,
            "exact_s": exact_s,
            "offset_s": offset_s,
            "node_steps": exact_summary.node_steps,
            "node_steps_per_sec": offset_steps_per_sec.round(),
            "speedup_vs_exact": offset_speedup,
        },
    });

    // Merge into the existing baseline (or a fresh v2 skeleton) without
    // touching the 64-node numbers the default mode owns.
    let mut doc = std::fs::read(out_path)
        .ok()
        .and_then(|bytes| serde_json::from_slice::<serde_json::Value>(&bytes).ok())
        .unwrap_or_else(|| {
            serde_json::json!({
                "schema_version": magus_bench::baseline::BASELINE_SCHEMA_VERSION,
                "measured": false,
                "seed": 0,
                "git_sha": "unmeasured",
                "unit": "seconds (median) per case",
                "thresholds": default_thresholds(),
                "cases": {},
            })
        });
    doc["smoke"] = smoke;
    let rendered = serde_json::to_string_pretty(&doc).expect("serialise");
    std::fs::write(out_path, format!("{rendered}\n")).expect("write smoke section");
    println!(
        "smoke: {nodes} nodes, {} node-steps in {sharded_s:.2} s across {shards} shards \
         ({node_steps_per_sec:.0} node-steps/sec, shard efficiency {shard_efficiency:.2}, \
         peak RSS {}) -> {out_path}",
        summary.node_steps,
        peak_rss_label(),
    );
    println!(
        "smoke dedup: {classes} classes for {nodes} nodes, {rep_node_rounds} representative vs \
         {replayed_node_rounds} replayed node-rounds, {dedup_s:.2} s \
         ({dedup_steps_per_sec:.0} node-steps/sec, x{dedup_speedup:.2} vs dedup-off)"
    );
    println!(
        "smoke offset-dedup: {stagger_us} us/wave stagger, {offset_run_classes} classes \
         ({offset_classes} spanning multiple offsets), {offset_replayed_rounds} offset-replayed \
         node-rounds, {offset_evictions} offset evictions, exact-only {exact_s:.2} s vs \
         shared {offset_s:.2} s ({offset_steps_per_sec:.0} node-steps/sec, \
         x{offset_speedup:.2} vs exact-only)"
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = take_switch(&mut args, "--smoke");
    let write_baseline = take_switch(&mut args, "--write-baseline");
    let engine_opts = match EngineOpts::take_from_args(&mut args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("fleet_bench: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = engine_opts.install_defaults() {
        eprintln!("fleet_bench: {e}");
        std::process::exit(2);
    }
    // Positional arguments keep their pre-EngineOpts meaning:
    // [out.json] [nodes], with mode-specific node-count defaults.
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());
    if smoke {
        let nodes: usize = args
            .get(1)
            .map(|n| n.parse().expect("node count"))
            .unwrap_or(100_000);
        run_smoke(nodes, &out_path);
        return;
    }
    let nodes: usize = args
        .get(1)
        .map(|n| n.parse().expect("node count"))
        .unwrap_or(64);
    // Fail fast (clear message, non-zero exit) if the committed baseline
    // the CI gate will diff against is malformed — before benching.
    // `--write-baseline` regenerates that file wholesale, so a malformed
    // (or missing) committed baseline is not an error there.
    if !write_baseline {
        magus_bench::baseline::validate_baseline_or_exit("BENCH_fleet.json");
    }
    // Bounded per-node budget: throughput needs steady stepping, not
    // catalog completion (the longest apps run for hundreds of sim-secs).
    let max_s = 120.0;

    // The engine only aggregates fleet telemetry and exports it on
    // `--telemetry`; the timing loops below never go through its cache.
    let mut engine = Engine::ephemeral();
    if engine_opts.serial {
        engine = engine.serial();
    }
    if let Some(jobs) = engine_opts.jobs {
        engine = engine.with_jobs(jobs);
    }

    let mut cases: Vec<(String, f64)> = Vec::new();

    // -- fleet group: lockstep stepping throughput per governor -----------
    let governors = [
        GovernorSpec::Default,
        GovernorSpec::magus_default(),
        GovernorSpec::ups_default(),
    ];
    let mut total_node_steps = 0u64;
    let mut total_fleet_secs = 0.0;
    for governor in governors {
        let spec = FleetSpec {
            max_s,
            ..FleetSpec::new(governor.clone(), nodes)
        };
        // Fleet runs are deterministic: take the step count once, time the
        // median over repeats.
        let run = run_fleet(&spec);
        engine.observe_fleet(&run);
        let node_steps = run.summary.node_steps;
        let secs = median_secs(3, || {
            black_box(run_fleet(&spec));
        });
        cases.push((format!("fleet/{}_s", governor.name()), secs));
        total_node_steps += node_steps;
        total_fleet_secs += secs;
    }
    let node_steps_per_sec = total_node_steps as f64 / total_fleet_secs;

    // -- shard scaling: the MAGUS fleet, one shard vs one per CPU ---------
    let shards = cpu_shards();
    let magus_spec = FleetSpec {
        max_s,
        ..FleetSpec::new(GovernorSpec::magus_default(), nodes)
    };
    let single_s = median_secs(3, || {
        black_box(run_fleet(&magus_spec));
    });
    let sharded_spec = magus_spec.clone().with_shards(shards);
    let sharded_s = median_secs(3, || {
        black_box(run_fleet(&sharded_spec));
    });
    let shard_efficiency = single_s / (sharded_s * shards as f64);
    cases.push(("fleet/MAGUS_sharded_s".to_string(), sharded_s));

    // -- suite group: collect vs streaming reduction ----------------------
    // One catalog × MAGUS sweep through the uncached engine; both paths
    // run identical trials, so the ratio isolates the reduction strategy.
    let specs: Vec<TrialSpec> = AppId::all()
        .iter()
        .map(|&app| TrialSpec::new(SystemId::IntelA100, app, GovernorSpec::magus_default()))
        .collect();
    let collect_s = median_secs(3, || {
        black_box(engine.run_suite(&specs));
    });
    let streaming_s = median_secs(3, || {
        let count = engine.fold_suite(
            &specs,
            |_, outcome| outcome.result.summary.runtime_s,
            0usize,
            |acc, _, runtime_s| {
                black_box(runtime_s);
                *acc += 1;
            },
        );
        assert_eq!(count, specs.len());
    });
    cases.push(("suite/collect_s".to_string(), collect_s));
    cases.push(("suite/streaming_s".to_string(), streaming_s));
    let streaming_vs_collect = streaming_s / collect_s;

    let json = serde_json::json!({
        "schema_version": magus_bench::baseline::BASELINE_SCHEMA_VERSION,
        "measured": true,
        "seed": 0,
        "git_sha": magus_bench::baseline::git_sha(),
        "unit": "seconds (median) per case",
        "nodes": nodes,
        "taxonomy": carried("BENCH_fleet.json", "taxonomy", serde_json::json!({})),
        "thresholds": carried_thresholds("BENCH_fleet.json"),
        "node_steps_per_sec": node_steps_per_sec.round(),
        "streaming_vs_collect": streaming_vs_collect,
        "shard_efficiency": shard_efficiency,
        "shards": shards,
        "peak_rss_proxy_kb": peak_rss_kb(),
        "smoke": carried("BENCH_fleet.json", "smoke", serde_json::Value::Null),
        "cases": cases
            .iter()
            .map(|(n, v)| (n.clone(), serde_json::json!(v)))
            .collect::<serde_json::Map<_, _>>(),
    });
    let rendered = serde_json::to_string_pretty(&json).expect("serialise");
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH_fleet.json");
    println!("{rendered}");
    println!(
        "wrote {out_path} ({nodes} nodes: {node_steps_per_sec:.0} node-steps/sec, \
         streaming/collect = {streaming_vs_collect:.2}, \
         shard efficiency x{shards} = {shard_efficiency:.2}, peak RSS {})",
        peak_rss_label(),
    );
    if write_baseline {
        // Complete the measured baseline in one command: the 64-node
        // default numbers above plus the 100k raw-kernel smoke (with its
        // dedup subsection), ready to commit as-is.
        run_smoke(100_000, &out_path);
    }
    if let Some(path) = &engine_opts.telemetry {
        match engine.write_telemetry(path) {
            Ok(()) => eprintln!("[engine] telemetry written to {}", path.display()),
            Err(e) => {
                eprintln!("[engine] telemetry write failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
