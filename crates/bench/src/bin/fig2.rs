//! Fig 2: UNet power profiles under max (2.2 GHz) vs min (0.8 GHz) uncore.
//!
//! Paper: pinning the uncore at minimum cuts CPU package power by ~82 W
//! (200 W → 120 W) and stretches runtime by ~21% (47 s → 57 s).

use magus_experiments::engine_from_cli;
use magus_experiments::figures::fig2_unet_extremes;
use magus_experiments::report::render_series;

fn main() {
    let (engine, _, _) = engine_from_cli("fig2");
    let data = fig2_unet_extremes(&engine);
    let max = &data.max_uncore;
    let min = &data.min_uncore;

    println!("== Fig 2: UNet under uncore extremes (Intel+A100) ==");
    println!(
        "max uncore: runtime {:.1} s, pkg {:.1} W, dram {:.1} W, gpu {:.1} W",
        max.summary.runtime_s,
        max.summary.energy.pkg_j() / max.summary.energy.elapsed_s,
        max.summary.energy.dram_j / max.summary.energy.elapsed_s,
        max.summary.energy.gpu_j / max.summary.energy.elapsed_s,
    );
    println!(
        "min uncore: runtime {:.1} s, pkg {:.1} W, dram {:.1} W, gpu {:.1} W",
        min.summary.runtime_s,
        min.summary.energy.pkg_j() / min.summary.energy.elapsed_s,
        min.summary.energy.dram_j / min.summary.energy.elapsed_s,
        min.summary.energy.gpu_j / min.summary.energy.elapsed_s,
    );
    println!(
        "pkg power drop: {:.1} W (paper: ~82 W) | runtime increase: {:.1}% (paper: ~21%)",
        data.pkg_power_drop_w(),
        data.runtime_increase_pct()
    );
    println!();
    print!(
        "{}",
        render_series(
            "CPU pkg power, max uncore",
            &max.samples,
            |s| s.pkg_w,
            "W",
            30
        )
    );
    print!(
        "{}",
        render_series(
            "CPU pkg power, min uncore",
            &min.samples,
            |s| s.pkg_w,
            "W",
            30
        )
    );
    engine.finish("fig2");
}
