//! Traffic study: governor energy savings and deadline misses under
//! multi-tenant load.
//!
//! Sweeps the seeded traffic tiers (light / steady / diurnal / bursty)
//! across an N-node fleet under {default, MAGUS, UPS}; every row compares
//! a governor against the same-tier stock baseline. Deterministic: the
//! table is bit-identical across runs, shard counts, and stepping paths.
//! Regenerate `results/traffic.txt` with:
//!
//! ```text
//! cargo run --release -p magus-bench --bin traffic_study > results/traffic.txt
//! ```
//!
//! Options: `--nodes N` (default 12) sets the fleet size.

use magus_experiments::{render_traffic_report, traffic_study};

fn main() {
    let mut nodes = 12usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--nodes takes a positive integer");
            }
            other => panic!("unknown argument: {other} (supported: --nodes N)"),
        }
    }
    let evals = traffic_study(nodes, 600.0);
    print!("{}", render_traffic_report(nodes, &evals));
    let worst_miss = evals
        .iter()
        .flat_map(|e| e.rows.iter())
        .map(magus_experiments::GovernorRow::miss_pct)
        .fold(0.0f64, f64::max);
    println!("\nworst deadline-miss rate across tiers and governors: {worst_miss:.1}%");
}
