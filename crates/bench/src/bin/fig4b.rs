//! Fig 4b: end-to-end comparison on Intel+Max1550 (Altis-SYCL suite).
//!
//! Paper: MAGUS holds performance loss below 4% with up to 10% energy
//! savings; UPS goes *negative* on some applications because its 7.9%
//! power overhead outweighs its savings.

use magus_experiments::figures::fig4;
use magus_experiments::report::render_fig4_table;
use magus_experiments::{engine_from_cli, SystemId};

fn main() {
    let (engine, _, _) = engine_from_cli("fig4b");
    let rows = fig4(&engine, SystemId::IntelMax1550);
    print!("{}", render_fig4_table("Fig 4b: Intel+Max1550", &rows));
    let magus_min = rows
        .iter()
        .map(|r| r.magus.energy_saving_pct)
        .fold(f64::INFINITY, f64::min);
    let ups_min = rows
        .iter()
        .map(|r| r.ups.energy_saving_pct)
        .fold(f64::INFINITY, f64::min);
    println!("\nminimum energy saving: MAGUS {magus_min:.1}% (paper: positive everywhere), UPS {ups_min:.1}% (paper: negative for some apps)");
    engine.finish("fig4b");
}
