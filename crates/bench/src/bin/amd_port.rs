//! §6.6 portability demonstration: MAGUS on an AMD EPYC + MI210 node,
//! actuating Infinity Fabric P-states through the HSMP mailbox.
//!
//! The decision core is byte-for-byte the Intel one; only the actuation
//! path differs. This is the paper's Discussion section, implemented.

use magus_experiments::amd::evaluate_amd;
use magus_experiments::engine_from_cli;
use magus_workloads::AppId;

fn main() {
    let (engine, _, _) = engine_from_cli("amd_port");
    println!("== MAGUS on AMD+MI210 via HSMP (paper §6.6) ==");
    println!(
        "{:<22} {:>8} {:>10} {:>10}",
        "app", "loss%", "pwr-sv%", "en-sv%"
    );
    for app in [
        AppId::Bfs,
        AppId::Gemm,
        AppId::Cfd,
        AppId::Srad,
        AppId::Unet,
        AppId::Gromacs,
    ] {
        let (cmp, summary) = evaluate_amd(&engine, app);
        println!(
            "{:<22} {:>8.2} {:>10.2} {:>10.2}   ({:.1} s)",
            app.name(),
            cmp.perf_loss_pct,
            cmp.power_saving_pct,
            cmp.energy_saving_pct,
            summary.runtime_s,
        );
    }
    println!("\nfabric P-states: P0..P3 = 1.6 / 1.333 / 1.067 / 0.8 GHz (discrete);");
    println!("MAGUS's two-level control maps exactly onto P0 and the deepest P-state.");
    engine.finish("amd_port");
}
