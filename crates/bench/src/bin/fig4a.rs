//! Fig 4a: end-to-end comparison on Intel+A100 (single GPU).
//!
//! Paper: MAGUS keeps performance loss below 5% while reaching up to 27%
//! energy savings; compute-heavy kernels (BFS, GEMM, Pathfinder) save the
//! most CPU package power.

use magus_experiments::figures::fig4;
use magus_experiments::report::render_fig4_table;
use magus_experiments::{engine_from_cli, SystemId};

fn main() {
    let (engine, _, _) = engine_from_cli("fig4a");
    let rows = fig4(&engine, SystemId::IntelA100);
    print!("{}", render_fig4_table("Fig 4a: Intel+A100", &rows));
    let max_energy = rows
        .iter()
        .map(|r| r.magus.energy_saving_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let max_loss = rows
        .iter()
        .map(|r| r.magus.perf_loss_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    println!("\nMAGUS: max energy saving {max_energy:.1}% (paper: up to 27%), max perf loss {max_loss:.1}% (paper: <5%)");
    engine.finish("fig4a");
}
